"""Shim for environments without the `wheel` package (offline editable install)."""
from setuptools import setup

setup()
