#!/usr/bin/env python3
"""Digital-sovereignty report for selected countries.

Usage::

    python examples/sovereignty_report.py [CC [CC ...]]

For each requested country (default: BR UY AR MX FR CN), prints its
hosting-category mix, domestic/international split, top foreign
dependencies and provider concentration -- the per-country view behind
the paper's Sections 5-7.
"""

import sys

from repro import Pipeline, SyntheticWorld, WorldConfig
from repro.analysis.crossborder import EU_MEMBER_CODES, flows
from repro.analysis.diversification import country_network_hhi
from repro.analysis.registration import registration_split, server_split
from repro.categories import CATEGORY_ORDER
from repro.reporting.tables import render_table
from repro.world.countries import get_country

DEFAULT_COUNTRIES = ("BR", "UY", "AR", "MX", "FR", "CN")


def report(dataset, code: str) -> None:
    country = get_country(code)
    country_dataset = dataset.country(code)
    if not country_dataset.records:
        print(f"\n== {country} -- no sites collected ==")
        return
    print(f"\n== {country} ({country.region.name}) ==")
    urls = country_dataset.category_url_fractions()
    byte_mix = country_dataset.category_byte_fractions()
    print(render_table(
        ["category", "URLs", "bytes"],
        [[str(c), f"{urls[c]:.2f}", f"{byte_mix[c]:.2f}"] for c in CATEGORY_ORDER],
    ))
    location = server_split(country_dataset.records)
    registration = registration_split(country_dataset.records)
    print(f"servers abroad: {location.international:.0%}  |  "
          f"foreign-registered orgs: {registration.international:.0%}")

    foreign = [f for f in flows(dataset) if f.source == code]
    foreign.sort(key=lambda f: -f.url_count)
    if foreign:
        top = ", ".join(
            f"{f.destination} ({f.url_count} URLs)" for f in foreign[:4]
        )
        print(f"top foreign dependencies: {top}")
    hhi = country_network_hhi(dataset, by_bytes=True).get(code)
    if hhi is not None:
        label = "concentrated" if hhi > 0.5 else "diversified"
        print(f"network concentration (HHI over bytes): {hhi:.2f} ({label})")
    if country.eu_member:
        eu_ok = sum(
            1 for r in country_dataset.included_records()
            if r.server_country in EU_MEMBER_CODES
        )
        total = len(country_dataset.included_records())
        print(f"GDPR: {eu_ok / total:.1%} of URLs served within the EU")


def main() -> None:
    codes = [c.upper() for c in sys.argv[1:]] or list(DEFAULT_COUNTRIES)
    world = SyntheticWorld.generate(WorldConfig(seed=42, scale=0.04))
    dataset = Pipeline(world).run()
    for code in codes:
        report(dataset, code)


if __name__ == "__main__":
    main()
