#!/usr/bin/env python3
"""Regenerate the whole evaluation as one text report.

Usage::

    python examples/full_report.py [scale] > report.txt

Generates a world, measures it, and renders every Section 5-7 analysis
(plus the DNS/HTTPS extensions) into a single document.
"""

import sys

from repro import Pipeline, SyntheticWorld, WorldConfig
from repro.analysis.engine import AnalysisIndex
from repro.reporting.paper_report import render_paper_report


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.05
    world = SyntheticWorld.generate(WorldConfig(seed=42, scale=scale))
    dataset = Pipeline(world).run()
    # One columnar pass over the records feeds every Section 5-7 analysis.
    index = AnalysisIndex.build(dataset)
    print(render_paper_report(index, world))


if __name__ == "__main__":
    main()
