#!/usr/bin/env python3
"""Inspect one government hostname end to end (Table 2 of the paper).

Usage::

    python examples/inspect_hostname.py [hostname]

Without an argument, picks Uruguay's main portal analogue.  Shows every
step the pipeline performs for one hostname: resolution from the
in-country vantage, WHOIS registration data, ownership evidence and the
geolocation verdict.
"""

import sys

from repro import Pipeline, SyntheticWorld, WorldConfig
from repro.netsim.ipaddr import format_ip
from repro.reporting.tables import render_table


def main() -> None:
    world = SyntheticWorld.generate(WorldConfig(seed=42, scale=0.04))
    pipeline = Pipeline(world)

    if len(sys.argv) > 1:
        hostname = sys.argv[1].lower()
    else:
        hostname = next(iter(world.truth.directories["UY"]))
        hostname = hostname.split("//", 1)[1].rstrip("/").split("/", 1)[0]
    truth = world.truth.hosts.get(hostname)
    if truth is None:
        raise SystemExit(f"unknown hostname {hostname!r}; try one from "
                         f"world.truth.hosts")

    vantage = world.vpn.vantage_for(truth.country)
    info = pipeline.mapper.map_host(hostname, vantage)
    ownership = pipeline.ownership.classify(info.asn)
    verdict = pipeline.geolocator.locate(info.address, truth.country)

    rows = [
        ["URL", f"https://{hostname}/"],
        ["Vantage", f"{vantage.city}, {vantage.country} ({vantage.provider})"],
        ["IP address", format_ip(info.address)],
        ["CNAME chain", " -> ".join(info.cname_chain) or "(none)"],
        ["ASN", info.asn],
        ["Organization", info.organization],
        ["Registration", info.registered_country],
        ["Government-operated",
         f"{ownership.is_government}"
         + (f" (evidence: {ownership.evidence.value})" if ownership.evidence else "")],
        ["Anycast", verdict.anycast],
        ["Geolocation", verdict.country or "excluded"],
        ["Validation", verdict.method.value],
    ]
    print(render_table(["field", "value"], rows,
                       title="Serving infrastructure (Table 2 analogue)"))


if __name__ == "__main__":
    main()
