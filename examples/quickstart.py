#!/usr/bin/env python3
"""Quickstart: generate a synthetic world, measure it, print the headlines.

Usage::

    python examples/quickstart.py [scale] [seed]

Generates the 61-country synthetic Internet at the given scale (default
0.03), runs the paper's full measurement pipeline and prints the
Table 3 summary plus the Figure 2 global hosting breakdown.
"""

import sys
import time

from repro import Pipeline, SyntheticWorld, WorldConfig
from repro.analysis import global_breakdown, global_split
from repro.categories import CATEGORY_ORDER
from repro.reporting.tables import render_table


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.03
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 42

    print(f"Generating synthetic world (seed={seed}, scale={scale}) ...")
    started = time.perf_counter()
    world = SyntheticWorld.generate(WorldConfig(seed=seed, scale=scale))
    print(f"  done in {time.perf_counter() - started:.1f}s: "
          f"{len(world.truth.hosts)} hostnames, {world.web.page_count} pages")

    print("Running the measurement pipeline (crawl -> filter -> WHOIS -> "
          "geolocate -> classify) ...")
    started = time.perf_counter()
    dataset = Pipeline(world).run()
    print(f"  done in {time.perf_counter() - started:.1f}s")

    summary = dataset.summarize()
    print()
    print(render_table(
        ["quantity", "value"],
        [
            ["Landing URLs", f"{summary.landing_urls:,}"],
            ["Internal URLs", f"{summary.internal_urls:,}"],
            ["Total unique URLs", f"{summary.total_unique_urls:,}"],
            ["Unique hostnames", f"{summary.unique_hostnames:,}"],
            ["ASes", summary.ases],
            ["Government ASes", summary.government_ases],
            ["Unique addresses", summary.unique_addresses],
            ["Anycast addresses", summary.anycast_addresses],
            ["Countries with servers", summary.countries_with_servers],
        ],
        title="Dataset summary (Table 3 analogue)",
    ))

    breakdown = global_breakdown(dataset)
    print()
    print(render_table(
        ["category", "URLs", "bytes"],
        [
            [str(category),
             f"{breakdown['urls'][category]:.2f}",
             f"{breakdown['bytes'][category]:.2f}"]
            for category in CATEGORY_ORDER
        ],
        title="Global hosting mix (Figure 2 analogue)",
    ))

    splits = global_split(dataset)
    print()
    print(f"Domestic server share: {splits['geolocation'].domestic:.0%} "
          f"(paper: 87%); domestic registration: "
          f"{splits['whois'].domestic:.0%} (paper: 77%)")


if __name__ == "__main__":
    main()
