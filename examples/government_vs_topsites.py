#!/usr/bin/env python3
"""Governments vs popular websites (Appendix D, Figures 3 and 7).

Usage::

    python examples/government_vs_topsites.py

Runs the topsites methodology (depth-1 crawl, CNAME/SAN self-hosting
heuristic, provider classification, geolocation) for the 14 comparison
countries and contrasts it with the same countries' government numbers.
"""

from repro import Pipeline, SyntheticWorld, WorldConfig
from repro.analysis.topsites import (
    analyze_topsites,
    government_subset_breakdown,
    government_subset_location,
)
from repro.reporting.tables import render_table
from repro.websim.topsites import TopsiteHosting


def main() -> None:
    world = SyntheticWorld.generate(WorldConfig(seed=42, scale=0.04))
    pipeline = Pipeline(world)
    dataset = pipeline.run()
    topsite_report = analyze_topsites(world, dataset,
                                      geolocator=pipeline.geolocator)

    gov = government_subset_breakdown(dataset)
    top_urls = topsite_report.hosting_fractions()
    top_bytes = topsite_report.hosting_fractions(by_bytes=True)
    print(render_table(
        ["category", "gov URLs", "gov bytes", "topsite URLs", "topsite bytes"],
        [
            [str(label),
             f"{gov['urls'][label]:.2f}", f"{gov['bytes'][label]:.2f}",
             f"{top_urls[label]:.2f}", f"{top_bytes[label]:.2f}"]
            for label in TopsiteHosting
        ],
        title="Hosting mixes, 14 comparison countries (Figure 3)",
    ))

    gov_location = government_subset_location(dataset)
    print()
    print(render_table(
        ["series", "domestic", "international"],
        [
            ["government / WHOIS",
             f"{gov_location['whois'].domestic:.2f}",
             f"{gov_location['whois'].international:.2f}"],
            ["government / geolocation",
             f"{gov_location['geolocation'].domestic:.2f}",
             f"{gov_location['geolocation'].international:.2f}"],
            ["topsites / WHOIS",
             f"{topsite_report.registration_location_split().domestic:.2f}",
             f"{topsite_report.registration_location_split().international:.2f}"],
            ["topsites / geolocation",
             f"{topsite_report.location_split().domestic:.2f}",
             f"{topsite_report.location_split().international:.2f}"],
        ],
        title="Domestic vs international hosting (Figure 7)",
    ))
    print("\nGovernments favour control and jurisdictional autonomy; popular "
          "sites follow the market toward global CDNs.")


if __name__ == "__main__":
    main()
