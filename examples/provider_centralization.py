#!/usr/bin/env python3
"""Global-provider centralization analysis (Section 7).

Usage::

    python examples/provider_centralization.py

Prints the Figure 10 analogue (countries relying on each Global
provider and the highest single-provider byte reliances) and the
Figure 11 analogue (network diversification by dominant hosting
source).
"""

import statistics

from repro import Pipeline, SyntheticWorld, WorldConfig
from repro.analysis.diversification import (
    hhi_by_dominant_category,
    single_network_dependence,
)
from repro.analysis.providers import global_provider_footprints, top_reliances
from repro.categories import HostingCategory
from repro.reporting.figures import render_histogram
from repro.reporting.tables import render_table


def main() -> None:
    world = SyntheticWorld.generate(WorldConfig(seed=42, scale=0.05))
    dataset = Pipeline(world).run()

    footprints = global_provider_footprints(dataset)
    print(render_histogram(
        [f"{fp.name} (AS{fp.asn})" for fp in footprints[:12]],
        [fp.country_count for fp in footprints[:12]],
        title="Countries relying on each Global provider (Figure 10)",
    ))

    print()
    print(render_table(
        ["provider", "country", "share of bytes"],
        [[name, country, f"{fraction:.0%}"]
         for name, _asn, country, fraction in top_reliances(dataset, 6)],
        title="Deepest single-provider dependencies",
    ))

    print()
    groups = hhi_by_dominant_category(dataset, by_bytes=True)
    dependence = single_network_dependence(dataset)
    rows = []
    for category in (HostingCategory.GOVT_SOE, HostingCategory.P3_LOCAL,
                     HostingCategory.P3_GLOBAL):
        values = groups.get(category, [])
        above, total = dependence.get(category, (0, 0))
        rows.append([
            str(category), len(values),
            f"{statistics.median(values):.2f}" if values else "-",
            f"{above}/{total}",
        ])
    print(render_table(
        ["dominant source", "countries", "median HHI", ">50% on one network"],
        rows, title="Diversification by dominant hosting source (Figure 11)",
    ))
    print("\nPaper: 63% of Govt&SOE-dominant countries serve most bytes from "
          "a single network, vs 32% of Global-dominant ones.")


if __name__ == "__main__":
    main()
