"""Figure 9: cross-border dependency flows (Sankey inputs)."""

from paper_values import BILATERAL

from repro.analysis.crossborder import bilateral_share, flows
from repro.reporting.tables import render_table


def test_fig09_flows(benchmark, bench_dataset, report):
    all_flows = benchmark(flows, bench_dataset, "server")
    top = sorted(all_flows, key=lambda f: -f.url_count)[:12]
    rows = [[f.source, f.destination, f.url_count] for f in top]
    bilateral_rows = []
    for (source, destination), paper in sorted(BILATERAL.items()):
        measured = bilateral_share(bench_dataset, source, destination)
        bilateral_rows.append([
            f"{source}->{destination}", f"{paper:.3f}", f"{measured:.3f}",
        ])
    text = render_table(
        ["source", "destination", "urls"], rows,
        title="Figure 9b -- largest cross-border flows (server location)",
    ) + "\n\n" + render_table(
        ["pair", "paper", "measured"], bilateral_rows,
        title="Section 6.3 bilateral dependencies",
    )
    report("fig09_crossborder", text)
    # The marquee bilateral relationships reproduce.
    assert bilateral_share(bench_dataset, "MX", "US") > 0.6
    assert bilateral_share(bench_dataset, "NZ", "AU") > 0.25
    assert bilateral_share(bench_dataset, "FR", "NC") > 0.10
    assert bilateral_share(bench_dataset, "BR", "US") < 0.08


def test_fig09a_registration_flows(benchmark, bench_dataset, report):
    registration_flows = benchmark(flows, bench_dataset, "registration")
    by_dest = {}
    for flow in registration_flows:
        by_dest[flow.destination] = by_dest.get(flow.destination, 0) + flow.url_count
    top = sorted(by_dest.items(), key=lambda kv: -kv[1])[:8]
    report("fig09a_registration_flows", render_table(
        ["destination", "urls"], top,
        title="Figure 9a -- foreign registration destinations",
    ))
    # Foreign registration flows concentrate on the US (Section 6.3).
    assert top[0][0] == "US"
