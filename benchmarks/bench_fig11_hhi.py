"""Figure 11: HHI distribution per dominant hosting category."""

import statistics

from paper_values import SINGLE_NETWORK

from repro.analysis.diversification import (
    hhi_by_dominant_category,
    single_network_dependence,
)
from repro.categories import HostingCategory
from repro.reporting.tables import render_table


def test_fig11_hhi_distribution(benchmark, bench_dataset, report):
    groups = benchmark(hhi_by_dominant_category, bench_dataset, by_bytes=True)
    dependence = single_network_dependence(bench_dataset)
    rows = []
    for category in (HostingCategory.GOVT_SOE, HostingCategory.P3_LOCAL,
                     HostingCategory.P3_GLOBAL):
        values = groups.get(category, [])
        above, total = dependence.get(category, (0, 0))
        rows.append([
            str(category), len(values),
            f"{statistics.median(values):.2f}" if values else "-",
            f"{above}/{total}",
            f"{above / total:.0%}" if total else "-",
        ])
    text = render_table(
        ["dominant source", "countries", "median HHI", ">50% single net", "share"],
        rows, title="Figure 11 -- network diversification by dominant source",
    )
    text += "\npaper: Govt&SOE {}/{} (63%), Global {}/{} (32%)".format(
        *SINGLE_NETWORK["Govt&SOE"], *SINGLE_NETWORK["3P Global"]
    )
    report("fig11_hhi", text)
    gov_above, gov_total = dependence[HostingCategory.GOVT_SOE]
    glob_above, glob_total = dependence[HostingCategory.P3_GLOBAL]
    # Shape: Govt&SOE-dominant countries are markedly less diversified.
    assert gov_above / gov_total > glob_above / glob_total
    gov_values = groups[HostingCategory.GOVT_SOE]
    glob_values = groups[HostingCategory.P3_GLOBAL]
    assert statistics.median(gov_values) > statistics.median(glob_values)
