"""Figure 1: per-country majority source (third party vs Govt&SOE)."""

from repro.analysis.hosting import country_majority
from repro.reporting.tables import render_table

#: Countries whose Figure 1 shading the paper makes explicit.
_PAPER_SHADING = {
    "AR": "3P", "UY": "Govt&SOE", "BR": "Govt&SOE", "CL": "3P",
    "IT": "3P", "IN": "Govt&SOE", "ID": "Govt&SOE", "MY": "3P",
    "CA": "3P", "RU": "Govt&SOE",
}


def test_fig01_country_majority(benchmark, bench_dataset, report):
    majority = benchmark(country_majority, bench_dataset)
    rows = []
    matches = 0
    for code, paper in sorted(_PAPER_SHADING.items()):
        measured = majority.get(code, "n/a")
        rows.append([code, paper, measured, "ok" if measured == paper else "DIFF"])
        matches += measured == paper
    rows.append(["(all countries)", "-", f"{len(majority)} shaded", ""])
    report("fig01_worldmap", render_table(
        ["country", "paper shading", "measured", ""], rows,
        title="Figure 1 -- majority hosting source per country",
    ))
    assert matches >= len(_PAPER_SHADING) - 1
