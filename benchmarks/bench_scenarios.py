"""Scenario sweep engine: dedup exactness, speedup, executor identity.

Three gates, archived to ``BENCH_scenarios.json``:

(a) **exactness** — the sweep executes exactly ``unique_keys`` scans
    (no cache, so every unique key is a miss), never more or fewer;
(b) **speedup** — the deduplicated wave beats S independent
    ``Pipeline.run`` calls by >= 4x at the benchmark scale, because the
    matrix leans on scan sharing (outage what-ifs share everything, a
    vantage shift re-keys two countries, an evolution step a handful);
(c) **identity** — every scenario's dataset is byte-identical to a
    standalone ``Pipeline.run`` of its config, under the serial,
    thread and process executors alike.
"""

from __future__ import annotations

import hashlib
import time

from conftest import BENCH_SCALE, BENCH_SEED, write_bench_json
from repro import Pipeline, SyntheticWorld, WorldConfig
from repro.exec import make_executor
from repro.io import save_dataset
from repro.scenarios import ScenarioMatrix, SweepRunner

SPEEDUP_THRESHOLD = 4.0


def _bench_matrix(base: WorldConfig) -> ScenarioMatrix:
    """A realistic sensitivity matrix: two vantage shifts, what-if
    outages of the five biggest government hosts, one evolution step."""
    matrix = ScenarioMatrix(base)
    matrix.add_vantage("vantage-shift", countries=("US", "DE"), rank=1)
    matrix.add_vantage("vantage-deep", countries=("US", "IN"), rank=2)
    for provider in ("cloudflare", "amazon", "akamai", "microsoft",
                     "google"):
        matrix.add_outage(f"{provider}-outage", provider=provider)
    matrix.add_evolution("evolved-1", steps=1)
    return matrix


def _digest(dataset, tmp_path, name: str) -> str:
    path = tmp_path / f"{name}.jsonl"
    save_dataset(dataset, path)
    return hashlib.sha256(path.read_bytes()).hexdigest()


def test_scenario_sweep_gates(report, tmp_path_factory):
    tmp_path = tmp_path_factory.mktemp("scenario_bench")
    base = WorldConfig(seed=BENCH_SEED, scale=BENCH_SCALE)
    assert BENCH_SCALE >= 0.05, \
        "the speedup gate is calibrated for scale >= 0.05"

    # The deduplicated sweep (timed: the benchmark's headline number).
    sweep_started = time.perf_counter()
    sweep = SweepRunner(_bench_matrix(base)).run()
    sweep_s = time.perf_counter() - sweep_started
    accounting = sweep.accounting

    # Gate (a): every unique key scanned exactly once, none skipped.
    exactness_pass = (
        accounting.cache_hits == 0
        and accounting.executed == accounting.unique_keys
        and accounting.unique_keys < accounting.total_tasks
    )
    assert exactness_pass

    # The naive alternative: one independent pipeline run per scenario
    # (also the source of the standalone reference datasets).
    naive_started = time.perf_counter()
    standalone = {}
    for result in sweep:
        config = result.scenario.config
        standalone[result.name] = Pipeline(
            SyntheticWorld.generate(config)
        ).run()
    naive_s = time.perf_counter() - naive_started
    speedup = naive_s / sweep_s if sweep_s else float("inf")

    # Gate (c): byte-identity vs standalone, across all three executors.
    reference = {
        name: _digest(dataset, tmp_path, f"standalone-{name}")
        for name, dataset in standalone.items()
    }
    digests = {}
    identity_pass = True
    for executor_name in ("serial", "threads", "processes"):
        if executor_name == "serial":
            executed_sweep = sweep
        else:
            executor = make_executor(executor_name, workers=4)
            try:
                executed_sweep = SweepRunner(
                    _bench_matrix(base), executor=executor
                ).run()
            finally:
                executor.close()
        digests[executor_name] = {
            result.name: _digest(
                result.dataset, tmp_path,
                f"{executor_name}-{result.name}",
            )
            for result in executed_sweep
        }
        identity_pass = identity_pass and digests[executor_name] == reference

    payload = {
        "scale": BENCH_SCALE,
        "seed": BENCH_SEED,
        "accounting": accounting.to_dict(),
        "gates": {
            "unique_scan_exactness": {
                "unique_keys": accounting.unique_keys,
                "cache_hits": accounting.cache_hits,
                "executed": accounting.executed,
                "total_tasks": accounting.total_tasks,
                "pass": exactness_pass,
            },
            "speedup": {
                "naive_runs_s": round(naive_s, 3),
                "sweep_s": round(sweep_s, 3),
                "speedup_x": round(speedup, 2),
                "threshold_x": SPEEDUP_THRESHOLD,
                "pass": speedup >= SPEEDUP_THRESHOLD,
            },
            "executor_identity": {
                "reference": reference,
                "digests": digests,
                "pass": identity_pass,
            },
        },
    }
    write_bench_json("scenarios", payload)

    report("scenarios", "\n".join([
        accounting.summary(),
        f"naive: {len(sweep)} independent runs in {naive_s:.2f}s; "
        f"sweep wave {sweep_s:.2f}s -> {speedup:.1f}x "
        f"(gate >= {SPEEDUP_THRESHOLD:.0f}x)",
        f"executor identity: "
        f"{'byte-identical' if identity_pass else 'DIVERGED'} across "
        f"serial/threads/processes",
    ]))

    assert identity_pass
    assert speedup >= SPEEDUP_THRESHOLD, \
        f"sweep only {speedup:.2f}x faster than independent runs"
