"""Ablation: crawl depth (Section 3.2).

The paper crawls seven levels deep but observes that 84% of unique URLs
sit on landing pages and 95% within one level -- which justifies the
depth-1 shortcut used for topsites.  This bench reproduces the curve.
"""

from repro.core.crawler import Crawler
from repro.reporting.tables import render_table
from repro.websim.browser import Browser


def _url_count_at_depth(world, max_depth, codes):
    crawler = Crawler(Browser(world.web), max_depth=max_depth)
    total = 0
    for code in codes:
        seeds = list(world.truth.directories[code])
        vantage = world.vpn.vantage_for(code)
        total += len(crawler.crawl(seeds, vantage).archive)
    return total


def test_ablation_crawl_depth(benchmark, bench_world, report):
    codes = bench_world.country_codes()
    full = benchmark.pedantic(
        _url_count_at_depth, args=(bench_world, 7, codes),
        rounds=1, iterations=1,
    )
    counts = {depth: _url_count_at_depth(bench_world, depth, codes)
              for depth in (0, 1, 2, 7)}
    rows = [
        [depth, counts[depth], f"{counts[depth] / full:.1%}"]
        for depth in sorted(counts)
    ]
    report("ablation_crawl_depth", render_table(
        ["max depth", "unique URLs", "share of full crawl"], rows,
        title="Ablation -- crawl depth vs URL mass "
              "(paper: 84% at depth 0, 95% within depth 1)",
    ))
    assert counts[0] / full > 0.75
    assert counts[1] / full > 0.92
    assert counts[7] == full
