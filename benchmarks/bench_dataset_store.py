"""Dataset store vs jsonl: cold-load time, report time and peak RSS.

Builds one world at 5x the benchmark scale (the "large world" the store
exists for), exports it both ways, and measures each backend in a
*subprocess* -- ``resource.getrusage`` reports the process-lifetime
maximum RSS, so the two paths must not share a process (whichever ran
second would inherit the first one's peak).  Each child prints one JSON
line: load time, report time, peak RSS and the report's SHA-256.

Archived as ``BENCH_store.json``.  Gates:

* both backends render the byte-identical report (sha compare);
* the cold store load (manifests + stat checks, no column bytes) beats
  a full jsonl parse -- >=5x at ``REPRO_BENCH_SCALE`` >= 0.2, >=1x on
  smaller smoke runs;
* the store-backed report's peak RSS stays at or below the jsonl
  path's (which must materialize every record before analyzing).
"""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import sys

from conftest import BENCH_SCALE, BENCH_SEED, write_bench_json

from repro import Pipeline, SyntheticWorld, WorldConfig
from repro.io import save_dataset
from repro.store import write_store

#: The store targets worlds larger than analysis benchmarks use.
RSS_SCALE = BENCH_SCALE * 5

_CHILD = r"""
import hashlib, json, resource, sys, time

# Imports stay outside every timed window: both children pay the same
# interpreter + numpy startup, and load_s measures only the load.
from repro.io import load_dataset
from repro.store import load_store_dataset
from repro.reporting.paper_report import render_paper_report

backend, path = sys.argv[1], sys.argv[2]
loader = load_store_dataset if backend == "store" else load_dataset
t0 = time.perf_counter()
dataset = loader(path)
load_s = time.perf_counter() - t0

t0 = time.perf_counter()
text = render_paper_report(dataset)
report_s = time.perf_counter() - t0

print(json.dumps({
    "load_s": load_s,
    "report_s": report_s,
    "maxrss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    "report_sha": hashlib.sha256(text.encode()).hexdigest(),
}))
"""


def _measure(backend: str, path: pathlib.Path) -> dict:
    env = dict(os.environ)
    src = pathlib.Path(__file__).parent.parent / "src"
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(src), env.get("PYTHONPATH")) if p
    )
    output = subprocess.run(
        [sys.executable, "-c", _CHILD, backend, str(path)],
        check=True, capture_output=True, text=True, env=env,
    ).stdout
    return json.loads(output.strip().splitlines()[-1])


def test_store_vs_jsonl(report, tmp_path_factory):
    world_dir = tmp_path_factory.mktemp("store_bench")
    config = WorldConfig(seed=BENCH_SEED, scale=RSS_SCALE)
    dataset = Pipeline(SyntheticWorld.generate(config)).run()
    records = sum(cd.url_count for cd in dataset.countries.values())

    jsonl_path = world_dir / "world.jsonl"
    save_dataset(dataset, jsonl_path)
    store_path = world_dir / "world.store"
    write_store(dataset, store_path)

    jsonl = _measure("jsonl", jsonl_path)
    store = _measure("store", store_path)

    assert store["report_sha"] == jsonl["report_sha"], \
        "store-backed report diverged from the jsonl-backed report"

    load_speedup = (jsonl["load_s"] / store["load_s"]
                    if store["load_s"] else float("inf"))
    rss_ratio = (store["maxrss_kb"] / jsonl["maxrss_kb"]
                 if jsonl["maxrss_kb"] else float("inf"))
    report(
        "dataset_store",
        f"records={records} (scale {RSS_SCALE})\n"
        f"cold load:  jsonl {jsonl['load_s']:.3f} s, "
        f"store {store['load_s']:.3f} s ({load_speedup:.1f}x)\n"
        f"report:     jsonl {jsonl['report_s']:.3f} s, "
        f"store {store['report_s']:.3f} s\n"
        f"peak RSS:   jsonl {jsonl['maxrss_kb']} KiB, "
        f"store {store['maxrss_kb']} KiB ({rss_ratio:.2f}x)",
    )
    write_bench_json("store", {
        "scale": BENCH_SCALE,
        "rss_scale": RSS_SCALE,
        "seed": BENCH_SEED,
        "records": records,
        "jsonl_load_s": round(jsonl["load_s"], 6),
        "store_load_s": round(store["load_s"], 6),
        "load_speedup": round(load_speedup, 2),
        "jsonl_report_s": round(jsonl["report_s"], 6),
        "store_report_s": round(store["report_s"], 6),
        "jsonl_peak_rss_kb": jsonl["maxrss_kb"],
        "store_peak_rss_kb": store["maxrss_kb"],
        "rss_ratio": round(rss_ratio, 4),
        "identical_report": True,
    })
    floor = 5.0 if BENCH_SCALE >= 0.2 else 1.0
    assert load_speedup >= floor, \
        f"expected >={floor}x cold-load speedup, got {load_speedup:.2f}x"
    assert store["maxrss_kb"] <= jsonl["maxrss_kb"], (
        f"store peak RSS {store['maxrss_kb']} KiB exceeds the "
        f"record-materializing jsonl path ({jsonl['maxrss_kb']} KiB)"
    )
