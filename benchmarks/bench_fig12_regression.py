"""Figure 12 and Table 7: explanatory OLS regression and VIFs."""

from paper_values import FIG12, TABLE7_VIF

from repro.analysis.regression import (
    FEATURE_NAMES,
    explanatory_regression,
    variance_inflation_factors,
)
from repro.reporting.tables import render_table


def test_fig12_regression(benchmark, bench_dataset, report):
    result = benchmark(explanatory_regression, bench_dataset)
    rows = []
    for name in FEATURE_NAMES:
        coefficient = result.coefficient(name)
        paper = FIG12.get(name)
        rows.append([
            name,
            f"{paper[0]:+.3f} (p={paper[1]:.3f})" if paper else "ns",
            f"{coefficient.estimate:+.3f} (p={coefficient.p_value:.3f})",
            f"[{coefficient.ci_low:+.2f}, {coefficient.ci_high:+.2f}]",
        ])
    report("fig12_regression", render_table(
        ["feature", "paper", "measured", "95% CI"], rows,
        title="Figure 12 -- correlates of offshore hosting",
    ))
    users = result.coefficient("internet_users")
    nri = result.coefficient("NRI")
    gdp = result.coefficient("GDP")
    assert users.estimate > 0 and users.significant
    assert nri.estimate < 0 and nri.significant
    assert gdp.estimate < 0.15


def test_tab07_vif(benchmark, bench_dataset, report):
    vifs = benchmark(variance_inflation_factors, bench_dataset)
    rows = [
        [name, f"{TABLE7_VIF[name]:.2f}", f"{vifs[name]:.2f}"]
        for name in FEATURE_NAMES
    ]
    report("tab07_vif", render_table(
        ["feature", "paper VIF", "measured VIF"], rows,
        title="Table 7 -- variance inflation factors",
    ))
    assert all(value < 10 for value in vifs.values())
    assert min(vifs, key=vifs.get) == "internet_users"
