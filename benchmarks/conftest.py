"""Benchmark harness fixtures.

Every benchmark regenerates one of the paper's tables or figures from a
shared synthetic world, times the analysis with pytest-benchmark, and
prints (and archives under ``benchmarks/out/``) a paper-vs-measured
report.  Control the dataset size with ``REPRO_BENCH_SCALE`` (fraction
of the paper's dataset; default 0.05) and the seed with
``REPRO_BENCH_SEED``.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro import Pipeline, SyntheticWorld, WorldConfig

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.05"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "42"))

_OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def bench_world() -> SyntheticWorld:
    """The shared benchmark world."""
    return SyntheticWorld.generate(
        WorldConfig(seed=BENCH_SEED, scale=BENCH_SCALE)
    )


@pytest.fixture(scope="session")
def bench_pipeline(bench_world) -> Pipeline:
    return Pipeline(bench_world)


@pytest.fixture(scope="session")
def bench_dataset(bench_pipeline):
    return bench_pipeline.run()


@pytest.fixture(scope="session")
def report():
    """Print a regeneration report and archive it under benchmarks/out/."""
    _OUT_DIR.mkdir(exist_ok=True)

    def emit(name: str, text: str) -> None:
        banner = f"\n===== {name} (scale={BENCH_SCALE}, seed={BENCH_SEED}) ====="
        print(banner)
        print(text)
        (_OUT_DIR / f"{name}.txt").write_text(text + "\n")

    return emit
