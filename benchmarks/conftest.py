"""Benchmark harness fixtures.

Every benchmark regenerates one of the paper's tables or figures from a
shared synthetic world, times the analysis with pytest-benchmark, and
prints (and archives under ``benchmarks/out/``) a paper-vs-measured
report.  Control the dataset size with ``REPRO_BENCH_SCALE`` (fraction
of the paper's dataset; default 0.05) and the seed with
``REPRO_BENCH_SEED``.
"""

from __future__ import annotations

import json
import os
import pathlib

import pytest

from repro import Pipeline, SyntheticWorld, WorldConfig

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.05"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "42"))

_OUT_DIR = pathlib.Path(__file__).parent / "out"
_REPO_ROOT = pathlib.Path(__file__).parent.parent


def write_bench_json(name: str, payload: dict) -> None:
    """Archive one benchmark's JSON under ``benchmarks/out/`` *and* at
    the canonical repo-root path (``BENCH_<name>.json``), where release
    tooling and the README point to the latest committed numbers."""
    _OUT_DIR.mkdir(exist_ok=True)
    text = json.dumps(payload, indent=2) + "\n"
    (_OUT_DIR / f"BENCH_{name}.json").write_text(text)
    (_REPO_ROOT / f"BENCH_{name}.json").write_text(text)


@pytest.fixture(scope="session")
def bench_world() -> SyntheticWorld:
    """The shared benchmark world."""
    return SyntheticWorld.generate(
        WorldConfig(seed=BENCH_SEED, scale=BENCH_SCALE)
    )


@pytest.fixture(scope="session")
def bench_pipeline(bench_world) -> Pipeline:
    return Pipeline(bench_world)


@pytest.fixture(scope="session")
def bench_dataset(bench_pipeline):
    return bench_pipeline.run()


@pytest.fixture(scope="session")
def report():
    """Print a regeneration report and archive it under benchmarks/out/."""
    _OUT_DIR.mkdir(exist_ok=True)

    def emit(name: str, text: str) -> None:
        banner = f"\n===== {name} (scale={BENCH_SCALE}, seed={BENCH_SEED}) ====="
        print(banner)
        print(text)
        (_OUT_DIR / f"{name}.txt").write_text(text + "\n")

    return emit
