"""Figure 6: domestic vs international registration and server location."""

from paper_values import FIG6_DOMESTIC

from repro.analysis.registration import global_split
from repro.reporting.tables import render_table


def test_fig06_global_split(benchmark, bench_dataset, report):
    splits = benchmark(global_split, bench_dataset)
    rows = [
        [view, f"{FIG6_DOMESTIC[view]:.2f}", f"{split.domestic:.2f}",
         f"{split.international:.2f}"]
        for view, split in splits.items()
    ]
    report("fig06_domestic_split", render_table(
        ["view", "paper domestic", "measured domestic", "measured intl"],
        rows, title="Figure 6 -- domestic vs international hosting",
    ))
    assert abs(splits["geolocation"].domestic - 0.87) < 0.08
    assert abs(splits["whois"].domestic - 0.77) < 0.10
    # Registration is more international than physical server location.
    assert splits["whois"].international > splits["geolocation"].international
