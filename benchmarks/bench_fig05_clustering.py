"""Figure 5: Ward-linkage clustering of country serving signatures."""

from repro.analysis.clustering import (
    cluster_assignments,
    country_signatures,
    dendrogram_order,
    dominant_category_of_cluster,
    ward_linkage,
)
from repro.categories import HostingCategory
from repro.reporting.tables import render_table


def _cluster(dataset, by_bytes):
    codes, signatures = country_signatures(dataset, by_bytes=by_bytes)
    linkage = ward_linkage(signatures)
    return codes, signatures, linkage


def test_fig05_dendrogram(benchmark, bench_dataset, report):
    codes, signatures, linkage = benchmark(_cluster, bench_dataset, True)
    assignments = cluster_assignments(codes, linkage, n_clusters=3)
    order = dendrogram_order(linkage, codes)
    rows = []
    for cluster in (1, 2, 3):
        members = sorted(code for code, c in assignments.items() if c == cluster)
        dominant = dominant_category_of_cluster(codes, signatures, assignments, cluster)
        rows.append([cluster, str(dominant), len(members), " ".join(members)])
    text = render_table(
        ["branch", "dominant source", "size", "members"], rows,
        title="Figure 5 -- three-branch clustering (bytes)",
    ) + "\nleaf order: " + " ".join(order)
    report("fig05_clustering", text)
    # Three branches, each dominated by a distinct hosting source; the
    # Section 5.3 examples hold.
    dominants = {
        cluster: dominant_category_of_cluster(codes, signatures, assignments, cluster)
        for cluster in (1, 2, 3)
    }
    assert len(set(dominants.values())) == 3
    assert HostingCategory.GOVT_SOE in dominants.values()
    # Brazil and Russia share the Govt&SOE-dominant branch; Argentina sits
    # in the Global-dominant branch (Section 5.3).  Tiny-crawl countries
    # (e.g. Vietnam) can drift between branches at small scales.
    for code in ("BR", "RU", "UY", "IN"):
        assert dominants[assignments[code]] is HostingCategory.GOVT_SOE, code
    assert dominants[assignments["AR"]] is HostingCategory.P3_GLOBAL
    # Consistency: every country sits in the branch whose dominant source
    # matches its own measured dominant category for the vast majority of
    # the sample (clustering on a 4-simplex cannot do worse than this).
    from repro.categories import CATEGORY_ORDER

    agree = 0
    for index, code in enumerate(codes):
        own = CATEGORY_ORDER[int(signatures[index].argmax())]
        if dominants[assignments[code]] is own:
            agree += 1
    assert agree / len(codes) > 0.8
