"""Query-service throughput: closed-loop load against a warm service.

N client threads (``REPRO_BENCH_SERVE_THREADS``, default 8) each issue
``REPRO_BENCH_SERVE_ROUNDS`` (default 25) passes over a mixed query
workload against one in-process :class:`~repro.serve.DatasetService`
-- closed loop: every thread waits for its answer before sending the
next query, so sustained RPS is what a saturated synchronous client
pool actually gets, not an open-loop arrival-rate fiction.

Archived as ``BENCH_serve.json`` (sustained RPS + p50/p95/p99 latency
per the whole workload and per endpoint).  Gates:

* every concurrent response is byte-identical to the serial pass over
  the same service (the consistency guarantee under load);
* the served ``full`` report fragment equals the batch
  ``render_paper_report`` output byte-for-byte;
* the service's own request counter agrees with the generator.
"""

from __future__ import annotations

import json
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from conftest import BENCH_SCALE, BENCH_SEED, write_bench_json

from repro.reporting.paper_report import render_paper_report
from repro.serve import DatasetService

THREADS = int(os.environ.get("REPRO_BENCH_SERVE_THREADS", "8"))
ROUNDS = int(os.environ.get("REPRO_BENCH_SERVE_ROUNDS", "25"))

#: The throughput workload leans on the cheap aggregate queries (the
#: realistic steady state); the expensive ``full`` report is checked
#: for byte-equality separately rather than skewing the latency mix.
WORKLOAD = [
    ("summary", {}),
    ("categories", {"country": "US"}),
    ("categories", {"country": "DE", "weighting": "bytes"}),
    ("crossborder", {"sources": "US,FR"}),
    ("crossborder", {"basis": "registration", "sources": "BR"}),
    ("providers", {"top": 10}),
    ("report", {"section": "summary"}),
    ("report", {"section": "providers"}),
]


def _canonical(result: dict) -> str:
    return json.dumps(result, sort_keys=True)


def _percentile(sorted_values: list, fraction: float) -> float:
    if not sorted_values:
        return 0.0
    position = int(round(fraction * (len(sorted_values) - 1)))
    return sorted_values[position]


def _latency_summary(latencies_ms: list) -> dict:
    ordered = sorted(latencies_ms)
    return {
        "p50_ms": round(_percentile(ordered, 0.50), 4),
        "p95_ms": round(_percentile(ordered, 0.95), 4),
        "p99_ms": round(_percentile(ordered, 0.99), 4),
        "max_ms": round(ordered[-1], 4) if ordered else 0.0,
        "count": len(ordered),
    }


def test_serve_throughput(bench_dataset, report):
    service = DatasetService(bench_dataset)

    # Serial reference pass: the byte-identity baseline and the warmup
    # (after this, every memoized table is hot -- steady state).
    serial = [_canonical(service.query(endpoint, payload))
              for endpoint, payload in WORKLOAD]
    served_full = service.query("report", {"section": "full"})["text"]
    assert served_full == render_paper_report(bench_dataset)
    warmup_requests = len(WORKLOAD) + 1

    barrier = threading.Barrier(THREADS)
    mismatches: list = []

    def client(worker_id: int):
        latencies = [[] for _ in WORKLOAD]
        barrier.wait()
        for round_number in range(ROUNDS):
            for offset in range(len(WORKLOAD)):
                position = (worker_id + round_number + offset) \
                    % len(WORKLOAD)
                endpoint, payload = WORKLOAD[position]
                start = time.perf_counter()
                answer = _canonical(service.query(endpoint, payload))
                latencies[position].append(
                    (time.perf_counter() - start) * 1000.0
                )
                if answer != serial[position]:
                    mismatches.append((worker_id, position))
        return latencies

    started = time.perf_counter()
    with ThreadPoolExecutor(max_workers=THREADS) as pool:
        per_thread = list(pool.map(client, range(THREADS)))
    duration_s = time.perf_counter() - started

    assert not mismatches, \
        f"concurrent responses diverged from serial: {mismatches[:5]}"

    by_position = [
        [ms for thread in per_thread for ms in thread[position]]
        for position in range(len(WORKLOAD))
    ]
    all_latencies = [ms for position in by_position for ms in position]
    total_requests = len(all_latencies)
    assert total_requests == THREADS * ROUNDS * len(WORKLOAD)

    snapshot = service.metrics_snapshot()
    assert snapshot["counters"]["serve.requests"] == \
        total_requests + warmup_requests

    rps = total_requests / duration_s if duration_s else 0.0
    payload = {
        "scale": BENCH_SCALE,
        "seed": BENCH_SEED,
        "threads": THREADS,
        "rounds": ROUNDS,
        "requests": total_requests,
        "duration_s": round(duration_s, 4),
        "rps": round(rps, 2),
        "latency": _latency_summary(all_latencies),
        "endpoints": {
            f"{endpoint}:{json.dumps(query, sort_keys=True)}":
                _latency_summary(by_position[position])
            for position, (endpoint, query) in enumerate(WORKLOAD)
        },
        "inflight_peak": snapshot["gauges"]["serve.inflight.peak"],
        "identical_to_serial": True,
    }
    write_bench_json("serve", payload)
    report("serve_throughput", json.dumps(payload, indent=2))

    assert rps > 0
    assert payload["latency"]["p99_ms"] >= payload["latency"]["p50_ms"]
