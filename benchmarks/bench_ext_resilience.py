"""Extension bench: outage impact and longitudinal drift.

Quantifies two claims the paper motivates but does not plot: the
digital-shutdown risk of concentrated hosting (Section 7.2, citing the
Mirai/Dyn incident) and the year-over-year growth in third-party
dependency (the paper's longitudinal predecessor).
"""

from conftest import BENCH_SCALE, BENCH_SEED

from repro import Pipeline, SyntheticWorld, WorldConfig
from repro.analysis.longitudinal import compare_snapshots, trend_summary
from repro.analysis.resilience import (
    single_points_of_failure,
    worst_global_outage,
)
from repro.reporting.tables import render_table


def test_ext_outage_resilience(benchmark, bench_dataset, report):
    asn, affected, mean_loss = benchmark(worst_global_outage, bench_dataset)
    spofs = single_points_of_failure(bench_dataset)
    rows = [
        [code, f"AS{spof_asn}", f"{share:.0%}"]
        for code, (spof_asn, share) in sorted(
            spofs.items(), key=lambda kv: -kv[1][1]
        )[:10]
    ]
    text = render_table(
        ["country", "single point of failure", "bytes lost if it fails"],
        rows, title="Extension -- single points of failure",
    )
    text += (f"\nworst global outage: AS{asn} disrupts {affected} "
             f"governments (mean {mean_loss:.0%} of their URLs)")
    report("ext_resilience", text)
    assert affected >= 3
    assert "UY" in spofs


def test_ext_longitudinal_drift(benchmark, report):
    countries = ("BR", "ES", "ID", "EG", "PL", "TH")

    def measure(drift):
        world = SyntheticWorld.generate(WorldConfig(
            seed=BENCH_SEED, scale=min(BENCH_SCALE, 0.05),
            countries=countries, include_topsites=False,
            third_party_drift=drift,
        ))
        return Pipeline(world).run(list(countries))

    before = measure(0.0)
    after = benchmark.pedantic(measure, args=(0.12,), rounds=1, iterations=1)
    deltas = compare_snapshots(before, after)
    summary = trend_summary(deltas)
    rows = [
        [code, f"{d.third_party_before:.2f}", f"{d.third_party_after:.2f}",
         f"{d.delta:+.2f}"]
        for code, d in sorted(deltas.items())
    ]
    text = render_table(
        ["country", "3P share (t0)", "3P share (t1)", "delta"],
        rows, title="Extension -- longitudinal third-party drift",
    )
    text += (f"\nmean delta {summary['mean_delta']:+.3f}; "
             f"{summary['share_increasing']:.0%} of countries increasing "
             f"(Kumar et al.: dependencies increase across countries)")
    report("ext_longitudinal", text)
    assert summary["mean_delta"] > 0