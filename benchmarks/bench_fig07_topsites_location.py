"""Figure 7: domestic/international hosting, governments vs topsites."""

import pytest

from paper_values import FIG7_GOV, FIG7_TOPSITES

from repro.analysis.topsites import analyze_topsites, government_subset_location
from repro.reporting.tables import render_table


@pytest.fixture(scope="module")
def topsite_report(bench_world, bench_pipeline, bench_dataset):
    return analyze_topsites(bench_world, bench_dataset,
                            geolocator=bench_pipeline.geolocator)


def test_fig07_location_comparison(benchmark, bench_dataset, topsite_report, report):
    gov = benchmark(government_subset_location, bench_dataset)
    top_geo = topsite_report.location_split()
    top_whois = topsite_report.registration_location_split()
    rows = [
        ["gov / whois", f"{FIG7_GOV['whois']:.2f}", f"{gov['whois'].domestic:.2f}"],
        ["gov / geolocation", f"{FIG7_GOV['geolocation']:.2f}",
         f"{gov['geolocation'].domestic:.2f}"],
        ["topsites / whois", f"{FIG7_TOPSITES['whois']:.2f}",
         f"{top_whois.domestic:.2f}"],
        ["topsites / geolocation", f"{FIG7_TOPSITES['geolocation']:.2f}",
         f"{top_geo.domestic:.2f}"],
    ]
    report("fig07_topsites_location", render_table(
        ["series", "paper domestic", "measured domestic"], rows,
        title="Figure 7 -- domestic hosting: governments vs topsites",
    ))
    # Shape: governments host domestically far more than topsites, on both
    # the registration and the server-location view.
    assert gov["geolocation"].domestic > top_geo.domestic + 0.2
    assert gov["whois"].domestic > top_whois.domestic + 0.2
    assert 0.3 < top_geo.domestic < 0.7


def test_fig07_timing_topsite_analysis(benchmark, bench_world, bench_pipeline,
                                       bench_dataset):
    benchmark.pedantic(
        analyze_topsites,
        args=(bench_world, bench_dataset),
        kwargs={"geolocator": bench_pipeline.geolocator},
        rounds=1, iterations=1,
    )
