"""Calibration bench: measured world vs per-country profile targets.

Not a paper figure -- a quality gate on the reproduction itself: how
faithfully the measured dataset reproduces the hosting profiles the
paper's findings were encoded into.
"""

from repro.datagen.calibration import calibrate
from repro.reporting.tables import render_table


def test_calibration_quality(benchmark, bench_dataset, report):
    calibration = benchmark(calibrate, bench_dataset)
    worst = calibration.worst(8)
    rows = [
        [c.country, c.sites, f"{c.url_mix_error:.3f}",
         f"{c.byte_mix_error:.3f}", f"{c.intl_error:.3f}"]
        for c in worst
    ]
    text = render_table(
        ["country", "sites", "URL-mix err", "byte-mix err", "intl err"],
        rows, title="Calibration -- worst-calibrated countries",
    )
    text += (f"\nmean URL-mix error: {calibration.mean_url_mix_error:.3f}; "
             f"mean offshore-share error: {calibration.mean_intl_error:.3f} "
             f"over {len(calibration.countries)} countries")
    report("calibration", text)
    assert calibration.mean_url_mix_error < 0.12
    assert calibration.mean_intl_error < 0.10
