"""Table 4: geolocation validation outcome fractions."""

from paper_values import TABLE4

from repro.reporting.tables import render_table


def test_tab04_validation(benchmark, bench_dataset, report):
    table = benchmark(bench_dataset.validation.table4)
    rows = []
    for family in ("unicast", "anycast"):
        for method in ("AP", "MG", "UR"):
            rows.append([
                family, method,
                f"{TABLE4[family][method]:.2f}",
                f"{table[family][method]:.2f}",
            ])
    report("tab04_geolocation", render_table(
        ["addresses", "method", "paper", "measured"], rows,
        title="Table 4 -- geolocation validation fractions",
    ))
    unicast = table["unicast"]
    # Shape: multistage carries more weight than direct probing for
    # unicast; very few addresses stay unresolved; anycast splits between
    # confirmed-in-country and excluded.
    assert unicast["MG"] > unicast["AP"] * 0.8
    assert unicast["UR"] < 0.10
    assert table["anycast"]["MG"] == 0.0
    assert table["anycast"]["AP"] > 0.6
