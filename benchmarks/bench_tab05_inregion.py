"""Table 5 and Section 6.3: in-region retention, affinity and GDPR."""

from paper_values import GDPR_COMPLIANCE, TABLE5

from repro.analysis.crossborder import (
    gdpr_compliance,
    regional_affinity,
    same_region_share,
)
from repro.reporting.tables import render_table
from repro.world.regions import Region


def test_tab05_in_region_share(benchmark, bench_dataset, report):
    shares = benchmark(same_region_share, bench_dataset)
    rows = []
    for region_name, paper in TABLE5.items():
        region = Region[region_name]
        measured = shares.get(region, 0.0) * 100
        rows.append([region_name, f"{paper:.2f}", f"{measured:.2f}"])
    affinity = regional_affinity(bench_dataset)
    lines = [render_table(
        ["region", "paper %", "measured %"], rows,
        title="Table 5 -- cross-border dependencies remaining in-region",
    )]
    for region, hosts in sorted(affinity.items(), key=lambda kv: kv[0].name):
        leader = max(hosts, key=hosts.get)
        lines.append(
            f"regional affinity {region.name}: {leader} hosts "
            f"{hosts[leader]:.0%} of in-region cross-border URLs"
        )
    compliance = gdpr_compliance(bench_dataset)
    lines.append(
        f"GDPR compliance: paper {GDPR_COMPLIANCE:.1%}, measured {compliance:.1%}"
    )
    report("tab05_inregion", "\n".join(lines))
    assert shares[Region.ECA] > 0.75
    assert shares[Region.EAP] > 0.6
    assert shares.get(Region.LAC, 0.0) < 0.15
    assert compliance > 0.93
    eca_hosts = affinity[Region.ECA]
    assert max(eca_hosts, key=eca_hosts.get) == "DE"
