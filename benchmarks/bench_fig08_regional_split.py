"""Figure 8: regional domestic/international splits."""

from paper_values import FIG8_LOCATION, FIG8_REGISTRATION

from repro.analysis.registration import regional_split
from repro.reporting.tables import render_table
from repro.world.regions import Region


def test_fig08a_registration(benchmark, bench_dataset, report):
    measured = benchmark(regional_split, bench_dataset, view="whois", weighting="url")
    rows = [
        [region.name, f"{FIG8_REGISTRATION[region.name]:.2f}",
         f"{split.domestic:.2f}"]
        for region, split in sorted(measured.items(), key=lambda kv: kv[1].domestic)
    ]
    report("fig08a_regional_registration", render_table(
        ["region", "paper domestic", "measured domestic"], rows,
        title="Figure 8a -- country of registration per region",
    ))
    assert measured[Region.NA].domestic > measured[Region.SSA].domestic


def test_fig08b_server_location(benchmark, bench_dataset, report):
    measured = benchmark(regional_split, bench_dataset, view="geolocation", weighting="url")
    rows = [
        [region.name, f"{FIG8_LOCATION[region.name]:.2f}",
         f"{split.domestic:.2f}"]
        for region, split in sorted(measured.items(), key=lambda kv: kv[1].domestic)
    ]
    report("fig08b_regional_location", render_table(
        ["region", "paper domestic", "measured domestic"], rows,
        title="Figure 8b -- server location per region",
    ))
    # SSA is the extreme international region; NA/EAP/SA stay domestic.
    assert measured[Region.SSA].domestic < 0.65
    assert measured[Region.NA].domestic > 0.9
    assert measured[Region.EAP].domestic > 0.8
    assert measured[Region.SA].domestic > 0.8
