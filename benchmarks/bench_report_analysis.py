"""Report-layer timing: columnar index vs legacy record loops.

Renders the full paper report twice over the same measured dataset --
once with the verbatim pre-index record-loop implementations
(:mod:`repro.analysis.engine.baseline`, ~15 record scans) and once
through the one-pass :class:`~repro.analysis.engine.AnalysisIndex` --
checks the outputs are byte-identical, and archives the timings as
``benchmarks/out/BENCH_analysis.json``.

The >=3x speedup gate applies at ``REPRO_BENCH_SCALE`` >= 0.2 (the
acceptance scale); smaller smoke runs only assert the index does not
lose.
"""

import time

from conftest import BENCH_SCALE, BENCH_SEED, write_bench_json

from repro.analysis.engine import AnalysisIndex
from repro.analysis.engine.baseline import baseline_render_paper_report
from repro.analysis.engine.index import _CACHE_ATTRIBUTE
from repro.reporting.paper_report import render_paper_report

#: Timed runs per variant; the minimum is reported (steady-state cost).
ROUNDS = 3


def _materialize(dataset) -> None:
    """Force record assembly so both variants time pure analysis."""
    for country_dataset in dataset.countries.values():
        country_dataset.records


def _drop_cached_index(dataset) -> None:
    if hasattr(dataset, _CACHE_ATTRIBUTE):
        delattr(dataset, _CACHE_ATTRIBUTE)


def _best_of(fn, rounds: int = ROUNDS) -> tuple[float, object]:
    best = float("inf")
    result = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def test_index_build(benchmark, bench_dataset):
    """Cost of the single record scan the index replaces 15 with."""
    _materialize(bench_dataset)
    index = benchmark(AnalysisIndex.build, bench_dataset)
    assert index.record_count == sum(
        len(cd.records) for cd in bench_dataset.countries.values()
    )


def test_report_via_index(benchmark, bench_dataset):
    """Full report through a fresh index (build cost included)."""
    _materialize(bench_dataset)

    def render():
        _drop_cached_index(bench_dataset)
        return render_paper_report(bench_dataset)

    text = benchmark.pedantic(render, rounds=1, iterations=1)
    assert "reproduction report" in text


def test_report_analysis_speedup(report, bench_dataset):
    """Index-backed vs record-loop report; archives BENCH_analysis.json.

    Byte-identical output is asserted before any timing claim; the
    index time includes the index build (cleared between rounds).
    """
    _materialize(bench_dataset)

    baseline_s, baseline_text = _best_of(
        lambda: baseline_render_paper_report(bench_dataset)
    )

    def render_indexed():
        _drop_cached_index(bench_dataset)
        return render_paper_report(bench_dataset)

    index_s, index_text = _best_of(render_indexed)

    assert index_text == baseline_text

    speedup = baseline_s / index_s if index_s else float("inf")
    records = sum(len(cd.records) for cd in bench_dataset.countries.values())
    report(
        "report_analysis_speedup",
        f"records={records}\n"
        f"record loops: {baseline_s:.3f} s (~15 scans)\n"
        f"index:        {index_s:.3f} s (1 scan, build included)\n"
        f"speedup:      {speedup:.2f}x",
    )
    write_bench_json("analysis", {
        "scale": BENCH_SCALE,
        "seed": BENCH_SEED,
        "records": records,
        "baseline_s": round(baseline_s, 6),
        "index_s": round(index_s, 6),
        "speedup": round(speedup, 2),
        "identical_output": True,
    })
    floor = 3.0 if BENCH_SCALE >= 0.2 else 1.0
    assert speedup >= floor, \
        f"expected >={floor}x at scale {BENCH_SCALE}, got {speedup:.2f}x"
