"""Incremental delta-scan vs cold full run over a two-snapshot series.

Runs ``SnapshotSeries`` (base + one evolved month at realistic churn)
against a content-addressed ``ScanCache``, then times the T+1 snapshot
two ways over the identical world: warm (unchanged countries decode
from cache, changed ones re-scan) and cold (every country scanned).
Both timings are best-of-``_REPEATS`` of the pipeline pass alone --
world generation is identical on both sides and excluded.

Archived as ``BENCH_longitudinal.json``.  Gates:

* incremental T+1 wall-clock >=5x faster than the cold full run at the
  default scale (>=1.5x on sub-default smoke runs, where per-country
  scan cost shrinks toward fixed overhead);
* cache hit-rate equals the unchanged-country fraction *exactly*
  (hits == unchanged, misses == changed);
* the incremental dataset is byte-identical (jsonl export) to the cold
  run of the same derived config under serial, threads and processes
  executors.
"""

from __future__ import annotations

import time

from conftest import BENCH_SCALE, BENCH_SEED, write_bench_json

from repro import Pipeline, SyntheticWorld, WorldConfig
from repro.cache import CacheStats, ScanCache
from repro.evolve import EvolutionRates, SnapshotSeries
from repro.exec import make_executor
from repro.io import save_dataset

#: Monthly-churn evolution rates: a handful of the 61 countries see a
#: hosting change per step, the rest must ride the cache.
_MONTHLY = EvolutionRates(
    provider_gain=0.03,
    provider_loss=0.02,
    hyperscaler_migration=0.03,
    soe_formation=0.01,
    prefix_reregistration=0.01,
)

_REPEATS = 3


def _best_of(repeats: int, run) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - start)
    return best


def _dataset_bytes(dataset, tmp_path, name: str) -> bytes:
    out = tmp_path / f"{name}.jsonl"
    save_dataset(dataset, out)
    return out.read_bytes()


def test_incremental_snapshot_vs_cold(report, tmp_path_factory):
    tmp = tmp_path_factory.mktemp("longitudinal_bench")
    base = WorldConfig(seed=BENCH_SEED, scale=BENCH_SCALE)

    series = SnapshotSeries(base, 2, evolution_seed=BENCH_SEED,
                            rates=_MONTHLY, cache=str(tmp / "series-cache"))
    records = series.run()  # verifies the hit-rate contract internally
    evolved = records[1]
    total = len(base.country_codes())
    changed = len(evolved.changed_countries)
    assert 0 < changed < total

    base_pipeline = Pipeline(SyntheticWorld.generate(base))
    primed = iter(range(1000))

    def prime() -> ScanCache:
        """A cache holding exactly the T+0 snapshot — the state an
        incremental T+1 run starts from.  Fresh per measurement: a warm
        run stores the changed countries, which would turn a repeat
        into a 100%-hit replay instead of a delta-scan."""
        cache = ScanCache(tmp / f"primed-{next(primed)}")
        base_pipeline.run(cache=cache)
        cache.stats = CacheStats()
        return cache

    # Time the T+1 pipeline pass over the identical world, warm vs cold.
    pipeline = Pipeline(SyntheticWorld.generate(evolved.config))
    incremental_s = float("inf")
    stats = None
    for _ in range(_REPEATS):
        cache = prime()
        start = time.perf_counter()
        pipeline.run(cache=cache)
        incremental_s = min(incremental_s, time.perf_counter() - start)
        stats = cache.stats
        assert stats.hits == total - changed
        assert stats.misses == changed

    cold_s = _best_of(_REPEATS, pipeline.run)
    speedup = cold_s / incremental_s if incremental_s else float("inf")

    # Byte identity: warm runs under every executor == the cold run.
    cold_bytes = _dataset_bytes(pipeline.run(), tmp, "cold")
    identical = {}
    for name in ("serial", "threads", "processes"):
        executor = make_executor(name)
        cache = prime()
        dataset = pipeline.run(executor=executor, cache=cache)
        identical[name] = (
            _dataset_bytes(dataset, tmp, f"warm-{name}") == cold_bytes
            and cache.stats.hits == total - changed
        )

    report(
        "longitudinal",
        f"countries={total}, changed at T+1: {changed} "
        f"({evolved.changed_countries})\n"
        f"T+1 incremental: {incremental_s * 1000:.1f} ms "
        f"({stats.summary()})\n"
        f"T+1 cold:        {cold_s * 1000:.1f} ms\n"
        f"speedup:         {speedup:.2f}x "
        f"(hit rate {stats.hit_rate:.3f}, "
        f"expected {evolved.expected_hit_rate:.3f})\n"
        f"byte-identical:  {identical}",
    )
    write_bench_json("longitudinal", {
        "scale": BENCH_SCALE,
        "seed": BENCH_SEED,
        "countries": total,
        "changed_countries": list(evolved.changed_countries),
        "incremental_s": round(incremental_s, 6),
        "cold_s": round(cold_s, 6),
        "speedup": round(speedup, 2),
        "cache_hits": stats.hits,
        "cache_misses": stats.misses,
        "hit_rate": round(stats.hit_rate, 6),
        "expected_hit_rate": round(evolved.expected_hit_rate, 6),
        "byte_identical": identical,
    })

    assert stats.hit_rate == evolved.expected_hit_rate
    assert all(identical.values()), \
        f"incremental dataset diverged from cold run: {identical}"
    floor = 5.0 if BENCH_SCALE >= 0.05 else 1.5
    assert speedup >= floor, \
        f"expected >={floor}x incremental speedup, got {speedup:.2f}x"
