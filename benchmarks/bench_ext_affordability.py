"""Extension bench: affordability of government websites.

Reproduces the shape of Habib et al. (WWW 2023, cited in the paper's
related work): visiting public-service sites costs dramatically more,
relative to income, in developing countries.
"""

from repro.analysis.affordability import affordability_gap, affordability_ranking
from repro.reporting.tables import render_table


def test_ext_affordability(benchmark, bench_dataset, report):
    ranking = benchmark(affordability_ranking, bench_dataset)
    gap = affordability_gap(bench_dataset)
    rows = [
        [r.country, f"{r.median_landing_bytes / 1e6:.1f} MB",
         f"${r.visit_cost_usd:.4f}",
         f"{r.cost_share_of_daily_income:.5%}"]
        for r in ranking[:8]
    ]
    text = render_table(
        ["country", "median landing weight", "visit cost",
         "share of daily income"],
        rows, title="Extension -- least affordable government webs",
    )
    text += (f"\npoorest-vs-richest quartile relative-cost ratio: "
             f"{gap:.1f}x (Habib et al.: affordability burden concentrates "
             f"in developing countries)")
    report("ext_affordability", text)
    assert gap > 2.0
    shares = [r.cost_share_of_daily_income for r in ranking]
    assert shares == sorted(shares, reverse=True)
