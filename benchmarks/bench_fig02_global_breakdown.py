"""Figure 2: global fraction of URLs and bytes served by each category."""

from paper_values import FIG2_BYTES, FIG2_URLS

from repro.analysis.hosting import global_breakdown
from repro.categories import CATEGORY_ORDER
from repro.reporting.tables import render_table


def test_fig02_global_breakdown(benchmark, bench_dataset, report):
    breakdown = benchmark(global_breakdown, bench_dataset)
    rows = []
    for view, paper in (("URLs", FIG2_URLS), ("Bytes", FIG2_BYTES)):
        measured = breakdown[view.lower()]
        for category in CATEGORY_ORDER:
            rows.append([
                view, str(category),
                f"{paper[category]:.2f}", f"{measured[category]:.2f}",
            ])
    report("fig02_global_breakdown", render_table(
        ["series", "category", "paper", "measured"], rows,
        title="Figure 2 -- global prevalence by provider category",
    ))
    urls = breakdown["urls"]
    # Shape: Govt&SOE leads, then Local, then Global; Regional marginal.
    ordered = sorted(CATEGORY_ORDER, key=lambda c: -urls[c])
    assert str(ordered[-1]) == "3P Regional"
    assert abs(urls[CATEGORY_ORDER[0]] - FIG2_URLS[CATEGORY_ORDER[0]]) < 0.10
