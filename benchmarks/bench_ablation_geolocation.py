"""Ablation: contribution of each geolocation stage (Section 3.5).

Disables stages of the cascade (active probing, HOIHO, IPmap,
single-radius) and measures how many unicast addresses keep a validated
location -- quantifying why the paper needs the full multistage design.
"""

import pytest

from repro.core.geolocation import Geolocator
from repro.reporting.tables import render_table

_VARIANTS = {
    "full cascade": {},
    "no active probing": {"enable_active_probing": False},
    "no HOIHO": {"enable_hoiho": False},
    "no IPmap": {"enable_ipmap": False},
    "no single-radius": {"enable_single_radius": False},
    "IPInfo + probing only": {
        "enable_hoiho": False, "enable_ipmap": False,
        "enable_single_radius": False,
    },
}


@pytest.fixture(scope="module")
def unicast_addresses(bench_dataset):
    return sorted({
        record.address for record in bench_dataset.iter_records()
        if not record.anycast
    })


def _coverage(world, pipeline, addresses, **flags):
    geolocator = Geolocator(
        ipinfo=world.ipinfo, manycast=world.manycast, atlas=pipeline.atlas,
        hoiho=world.hoiho, ipmap=world.ipmap, **flags,
    )
    confirmed = sum(
        1 for address in addresses
        if not geolocator.locate_unicast(address).excluded
    )
    return confirmed / len(addresses)


def test_ablation_geolocation(benchmark, bench_world, bench_pipeline,
                              unicast_addresses, report):
    results = {}
    for name, flags in _VARIANTS.items():
        results[name] = _coverage(
            bench_world, bench_pipeline, unicast_addresses, **flags
        )
    benchmark(_coverage, bench_world, bench_pipeline, unicast_addresses)
    rows = [[name, f"{value:.2%}"] for name, value in results.items()]
    report("ablation_geolocation", render_table(
        ["variant", "confirmed coverage"], rows,
        title="Ablation -- geolocation stage contributions",
    ))
    full = results["full cascade"]
    assert full > 0.90
    # Every stage contributes: removing any of them costs coverage.
    assert results["no HOIHO"] < full
    assert results["IPInfo + probing only"] < results["no HOIHO"]
    assert results["no active probing"] <= full


def test_ablation_fixed_vs_percountry_threshold(
    bench_world, bench_pipeline, bench_dataset, report, benchmark,
):
    """The per-country road-distance thresholds of Section 3.5 vs one
    generous global threshold, evaluated on the anycast verification
    step: with a fixed generous bound, anycast services without any
    domestic site get 'confirmed' as in-country."""
    pairs = sorted({
        (record.address, record.country)
        for record in bench_dataset.iter_records()
        if record.anycast
    } | {
        (t.address, t.country)
        for t in bench_world.truth.hosts.values() if t.anycast
    })

    def false_domestic(fixed):
        geolocator = Geolocator(
            ipinfo=bench_world.ipinfo, manycast=bench_world.manycast,
            atlas=bench_pipeline.atlas, hoiho=bench_world.hoiho,
            ipmap=bench_world.ipmap, fixed_threshold_ms=fixed,
        )
        confirmed = wrong = 0
        for address, home in pairs:
            verdict = geolocator.locate_anycast(address, home)
            if verdict.excluded:
                continue
            confirmed += 1
            group = bench_world.anycast_index.get(address)
            if group is not None and not group.serves_country(home):
                wrong += 1
        return confirmed, wrong

    per_country = benchmark.pedantic(
        false_domestic, args=(None,), rounds=1, iterations=1
    )
    generous = false_domestic(400.0)
    rows = [
        ["per-country road thresholds", per_country[0], per_country[1]],
        ["fixed 400 ms threshold", generous[0], generous[1]],
    ]
    report("ablation_thresholds", render_table(
        ["variant", "confirmed in-country", "without any domestic site"],
        rows, title="Ablation -- per-country vs fixed latency thresholds "
                    "(anycast verification)",
    ))
    assert generous[1] >= per_country[1]
    assert generous[0] >= per_country[0]
    # The generous bound confirms everything, including offshore catchments.
    if generous[0] > per_country[0]:
        assert generous[1] > per_country[1]
