"""Table 3 and Section 4.2: dataset headline numbers and filter shares."""

from collections import Counter

from conftest import BENCH_SCALE
from paper_values import FILTER_FRACTIONS, TABLE3

from repro.reporting.tables import render_table


def test_tab03_summary(benchmark, bench_dataset, report):
    summary = benchmark(bench_dataset.summarize)
    rows = []
    for field, paper in TABLE3.items():
        measured = getattr(summary, field)
        # URL-ish quantities scale linearly; infrastructure counts sublinearly.
        scaled_note = (
            f"{paper * BENCH_SCALE:,.0f}"
            if field in ("landing_urls", "internal_urls", "total_unique_urls",
                         "unique_hostnames")
            else "-"
        )
        rows.append([field, f"{paper:,}", scaled_note, f"{measured:,}"])
    report("tab03_dataset", render_table(
        ["quantity", "paper (full)", "paper x scale", "measured"], rows,
        title="Table 3 -- dataset overview",
    ))
    assert summary.internal_urls > 0.6 * TABLE3["internal_urls"] * BENCH_SCALE
    assert summary.government_ases / summary.ases > 0.25
    assert summary.countries_with_servers >= 60


def test_sec42_filter_attribution(benchmark, bench_dataset, report):
    def attribution():
        counts = Counter(record.via for record in bench_dataset.iter_records())
        total = sum(counts.values())
        return {via.value: count / total for via, count in counts.items()}

    fractions = benchmark(attribution)
    rows = [
        [via, f"{paper:.3f}", f"{fractions.get(via, 0.0):.3f}"]
        for via, paper in FILTER_FRACTIONS.items()
    ]
    report("sec42_filter_attribution", render_table(
        ["heuristic", "paper", "measured"], rows,
        title="Section 4.2 -- URL-filter attribution",
    ))
    # Domain matching dominates, TLDs follow, SANs are marginal.
    assert fractions["domain"] > fractions["tld"] > fractions["san"]
