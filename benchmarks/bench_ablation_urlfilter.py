"""Ablation: contribution of each URL-filter heuristic (Table 1).

Re-filters the crawled archives with heuristics disabled, quantifying
how many government URLs each of the three steps uniquely recovers.
"""

import pytest

from repro.core.crawler import Crawler
from repro.core.gathering import GovernmentDirectory, compile_directory
from repro.core.urlfilter import GovernmentUrlFilter
from repro.netsim.tls import CertificateStore
from repro.reporting.tables import render_table
from repro.websim.browser import Browser


@pytest.fixture(scope="module")
def archives(bench_world):
    crawler = Crawler(Browser(bench_world.web))
    result = {}
    for code in bench_world.country_codes():
        directory = compile_directory(bench_world, code)
        vantage = bench_world.vpn.vantage_for(code)
        result[code] = (
            directory,
            crawler.crawl(list(directory.landing_urls), vantage).archive,
        )
    return result


def _accepted(bench_world, archives, use_domain=True, use_san=True):
    total = 0
    for code, (directory, archive) in archives.items():
        if not use_domain:
            directory = GovernmentDirectory(country=code, landing_urls=())
        certificates = bench_world.certificates if use_san else CertificateStore()
        outcome = GovernmentUrlFilter(directory, certificates).run(archive)
        total += len(outcome.accepted)
    return total


def test_ablation_urlfilter(benchmark, bench_world, archives, report):
    full = benchmark(_accepted, bench_world, archives)
    tld_only = _accepted(bench_world, archives, use_domain=False, use_san=False)
    no_san = _accepted(bench_world, archives, use_san=False)
    no_domain = _accepted(bench_world, archives, use_domain=False)
    rows = [
        ["TLD + domain + SAN (full)", full, "100.0%"],
        ["TLD + domain", no_san, f"{no_san / full:.1%}"],
        ["TLD + SAN", no_domain, f"{no_domain / full:.1%}"],
        ["TLD only", tld_only, f"{tld_only / full:.1%}"],
    ]
    report("ablation_urlfilter", render_table(
        ["heuristics", "accepted URLs", "vs full"], rows,
        title="Ablation -- URL-filter heuristic contributions",
    ))
    # Domain matching carries most of the recall (72.1% in the paper);
    # dropping it loses more than dropping the SAN step.
    assert tld_only < no_san <= full
    assert (full - no_domain) > (full - no_san)
    assert tld_only / full < 0.7
