"""Figure 10: global-provider footprints and byte reliance."""

from paper_values import FIG10_TOP, TOP_RELIANCES

from repro.analysis.providers import global_provider_footprints, top_reliances
from repro.reporting.figures import render_histogram
from repro.reporting.tables import render_table


def test_fig10_country_counts(benchmark, bench_dataset, report):
    footprints = benchmark(global_provider_footprints, bench_dataset)
    labels = [f"{fp.name} (AS{fp.asn})" for fp in footprints[:15]]
    counts = [fp.country_count for fp in footprints[:15]]
    text = render_histogram(labels, counts,
                            title="Figure 10 -- countries per Global provider")
    text += "\npaper top-3: " + ", ".join(
        f"{name}={count}" for name, count in FIG10_TOP.items()
    )
    report("fig10_provider_counts", text)
    assert footprints[0].asn == 13335  # Cloudflare leads
    # Cloudflare's lead over the third provider mirrors the "nearly twice
    # as many countries" finding.
    if len(footprints) > 2:
        assert footprints[0].country_count >= 1.4 * footprints[2].country_count


def test_fig10_byte_reliance_cdf(benchmark, bench_dataset, report):
    top = benchmark(top_reliances, bench_dataset, 8)
    rows = [[name, f"AS{asn}", country, f"{fraction:.2f}"]
            for name, asn, country, fraction in top]
    text = render_table(
        ["provider", "asn", "country", "byte share"], rows,
        title="Figure 10 (CDF tail) -- highest single-provider reliances",
    )
    text += "\npaper highlights: " + ", ".join(
        f"{name}~{value:.2f}" for name, value in TOP_RELIANCES.items()
    )
    report("fig10_byte_reliance", text)
    assert top[0][3] > 0.55
