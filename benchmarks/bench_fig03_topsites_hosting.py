"""Figure 3: government vs topsites hosting mixes (14 countries)."""

import pytest

from paper_values import FIG3_GOV_URLS, FIG3_TOP_URLS

from repro.analysis.topsites import analyze_topsites, government_subset_breakdown
from repro.reporting.tables import render_table
from repro.websim.topsites import TopsiteHosting


@pytest.fixture(scope="module")
def topsite_report(bench_world, bench_pipeline, bench_dataset):
    return analyze_topsites(bench_world, bench_dataset,
                            geolocator=bench_pipeline.geolocator)


def test_fig03_comparison(benchmark, bench_dataset, topsite_report, report):
    gov = benchmark(government_subset_breakdown, bench_dataset)
    top_urls = topsite_report.hosting_fractions()
    rows = []
    for label in TopsiteHosting:
        rows.append([
            str(label),
            f"{FIG3_GOV_URLS[str(label)]:.2f}", f"{gov['urls'][label]:.2f}",
            f"{FIG3_TOP_URLS[str(label)]:.2f}", f"{top_urls[label]:.2f}",
        ])
    report("fig03_topsites_hosting", render_table(
        ["category", "gov paper", "gov measured", "top paper", "top measured"],
        rows, title="Figure 3 -- government vs topsites URL mixes",
    ))
    # Shape: topsites lean on Global providers far more than governments.
    assert top_urls[TopsiteHosting.GLOBAL] > gov["urls"][TopsiteHosting.GLOBAL] + 0.2
    assert gov["urls"][TopsiteHosting.SELF_HOSTING] > top_urls[TopsiteHosting.SELF_HOSTING] + 0.1
