"""End-to-end timing: world generation and the full measurement pipeline.

The parallel variants exercise the ``repro.exec`` strategies and verify
the executor contract as they go: every strategy must reproduce the
serial dataset exactly.  The speedup report compares serial against a
4-worker process pool; the >=2x assertion only applies on machines with
at least four cores (the scan phase is GIL-bound, so threads are not
expected to beat serial on CPU-bound work).
"""

import os
import time

from conftest import BENCH_SCALE, BENCH_SEED, write_bench_json

from repro import Pipeline, SyntheticWorld, WorldConfig
from repro.cache import ScanCache
from repro.exec import ProcessExecutor, ThreadExecutor
from repro.io import save_dataset

#: The cache speedup acceptance gate runs at this fixed scale (not
#: REPRO_BENCH_SCALE), so the reported number is comparable across runs.
CACHE_BENCH_SCALE = 0.05


def test_world_generation(benchmark):
    config = WorldConfig(seed=BENCH_SEED, scale=BENCH_SCALE)
    world = benchmark(SyntheticWorld.generate, config)
    assert world.truth.hosts


def test_full_pipeline(benchmark):
    config = WorldConfig(seed=BENCH_SEED, scale=BENCH_SCALE)
    world = SyntheticWorld.generate(config)

    def run():
        return Pipeline(world).run()

    dataset = benchmark.pedantic(run, rounds=1, iterations=1)
    assert dataset.summarize().total_unique_urls > 0


def test_full_pipeline_threads(benchmark):
    config = WorldConfig(seed=BENCH_SEED, scale=BENCH_SCALE)
    world = SyntheticWorld.generate(config)
    serial = Pipeline(world).run()
    executor = ThreadExecutor(workers=4)
    try:
        dataset = benchmark.pedantic(
            lambda: Pipeline(world).run(executor=executor),
            rounds=1, iterations=1,
        )
    finally:
        executor.close()
    assert dataset.summarize() == serial.summarize()
    assert dataset.validation == serial.validation


def test_full_pipeline_processes(benchmark):
    config = WorldConfig(seed=BENCH_SEED, scale=BENCH_SCALE)
    world = SyntheticWorld.generate(config)
    serial = Pipeline(world).run()
    executor = ProcessExecutor(workers=min(4, os.cpu_count() or 1))
    try:
        # First run pays the per-worker world rebuild; time the steady state.
        Pipeline(world).run(executor=executor)
        dataset = benchmark.pedantic(
            lambda: Pipeline(world).run(executor=executor),
            rounds=1, iterations=1,
        )
    finally:
        executor.close()
    assert dataset.summarize() == serial.summarize()
    assert dataset.validation == serial.validation


def test_parallel_speedup_report(report):
    """Serial vs 4-worker process pool; >=2x asserted on 4+-core hosts."""
    cores = os.cpu_count() or 1
    workers = min(4, cores)
    config = WorldConfig(seed=BENCH_SEED, scale=BENCH_SCALE)
    world = SyntheticWorld.generate(config)

    t0 = time.perf_counter()
    serial = Pipeline(world).run()
    serial_s = time.perf_counter() - t0

    executor = ProcessExecutor(workers=workers)
    try:
        Pipeline(world).run(executor=executor)  # warm the worker pool
        t0 = time.perf_counter()
        parallel = Pipeline(world).run(executor=executor)
        parallel_s = time.perf_counter() - t0
    finally:
        executor.close()

    speedup = serial_s / parallel_s if parallel_s else float("inf")
    report(
        "pipeline_parallel_speedup",
        f"cores={cores} workers={workers}\n"
        f"serial:   {serial_s:.3f} s\n"
        f"parallel: {parallel_s:.3f} s (steady-state, pool warm)\n"
        f"speedup:  {speedup:.2f}x",
    )
    assert parallel.summarize() == serial.summarize()
    if cores >= 4:
        assert speedup >= 2.0, f"expected >=2x on {cores} cores, got {speedup:.2f}x"


def test_full_pipeline_warm_cache(benchmark, tmp_path):
    """Steady-state warm start: every partial served from the cache."""
    config = WorldConfig(seed=BENCH_SEED, scale=BENCH_SCALE)
    world = SyntheticWorld.generate(config)
    Pipeline(world).run(cache=ScanCache(tmp_path / "cache"))  # populate

    warm = ScanCache(tmp_path / "cache")
    dataset = benchmark.pedantic(
        lambda: Pipeline(world).run(cache=warm),
        rounds=1, iterations=1,
    )
    assert warm.stats.misses == 0
    assert dataset.summarize().total_unique_urls > 0


def test_cache_warm_speedup_report(report, tmp_path):
    """Cold vs warm ``Pipeline.run`` at scale 0.05; >=5x asserted.

    Also checks the cache contract end to end — the warm dataset must
    export byte-identically to the cold one — and archives the timings
    as ``benchmarks/out/BENCH_pipeline.json`` for CI to pick up.
    """
    config = WorldConfig(seed=BENCH_SEED, scale=CACHE_BENCH_SCALE)
    world = SyntheticWorld.generate(config)

    cold_cache = ScanCache(tmp_path / "cache")
    t0 = time.perf_counter()
    cold = Pipeline(world).run(cache=cold_cache)
    cold_s = time.perf_counter() - t0

    warm_cache = ScanCache(tmp_path / "cache")
    t0 = time.perf_counter()
    warm = Pipeline(world).run(cache=warm_cache)
    warm_s = time.perf_counter() - t0

    save_dataset(cold, tmp_path / "cold.jsonl")
    save_dataset(warm, tmp_path / "warm.jsonl")
    assert (tmp_path / "warm.jsonl").read_bytes() == \
        (tmp_path / "cold.jsonl").read_bytes()
    assert warm_cache.stats.misses == 0

    speedup = cold_s / warm_s if warm_s else float("inf")
    report(
        "pipeline_cache_warm_speedup",
        f"scale={CACHE_BENCH_SCALE} (fixed) seed={BENCH_SEED}\n"
        f"cold: {cold_s:.3f} s ({cold_cache.stats.summary()})\n"
        f"warm: {warm_s:.3f} s ({warm_cache.stats.summary()})\n"
        f"speedup: {speedup:.2f}x",
    )
    write_bench_json("pipeline", {
        "scale": CACHE_BENCH_SCALE,
        "seed": BENCH_SEED,
        "cold_s": round(cold_s, 6),
        "warm_s": round(warm_s, 6),
        "speedup": round(speedup, 2),
        "hits": warm_cache.stats.hits,
        "misses": warm_cache.stats.misses,
    })
    assert speedup >= 5.0, f"expected >=5x warm speedup, got {speedup:.2f}x"


def test_single_country_pipeline(benchmark):
    config = WorldConfig(seed=BENCH_SEED, scale=BENCH_SCALE)
    world = SyntheticWorld.generate(config)
    pipeline = Pipeline(world)
    dataset = benchmark(pipeline.run, ["BR"])
    assert set(dataset.countries) == {"BR"}
