"""End-to-end timing: world generation and the full measurement pipeline."""

from conftest import BENCH_SCALE, BENCH_SEED

from repro import Pipeline, SyntheticWorld, WorldConfig


def test_world_generation(benchmark):
    config = WorldConfig(seed=BENCH_SEED, scale=BENCH_SCALE)
    world = benchmark(SyntheticWorld.generate, config)
    assert world.truth.hosts


def test_full_pipeline(benchmark):
    config = WorldConfig(seed=BENCH_SEED, scale=BENCH_SCALE)
    world = SyntheticWorld.generate(config)

    def run():
        return Pipeline(world).run()

    dataset = benchmark.pedantic(run, rounds=1, iterations=1)
    assert dataset.summarize().total_unique_urls > 0


def test_single_country_pipeline(benchmark):
    config = WorldConfig(seed=BENCH_SEED, scale=BENCH_SCALE)
    world = SyntheticWorld.generate(config)
    pipeline = Pipeline(world)
    dataset = benchmark(pipeline.run, ["BR"])
    assert set(dataset.countries) == {"BR"}
