"""End-to-end timing: world generation and the full measurement pipeline.

The parallel variants exercise the ``repro.exec`` strategies and verify
the executor contract as they go: every strategy must reproduce the
serial dataset exactly.  The speedup report compares serial against a
4-worker process pool; the >=2x assertion only applies on machines with
at least four cores (the scan phase is GIL-bound, so threads are not
expected to beat serial on CPU-bound work).
"""

import os
import time

from conftest import BENCH_SCALE, BENCH_SEED

from repro import Pipeline, SyntheticWorld, WorldConfig
from repro.exec import ProcessExecutor, ThreadExecutor


def test_world_generation(benchmark):
    config = WorldConfig(seed=BENCH_SEED, scale=BENCH_SCALE)
    world = benchmark(SyntheticWorld.generate, config)
    assert world.truth.hosts


def test_full_pipeline(benchmark):
    config = WorldConfig(seed=BENCH_SEED, scale=BENCH_SCALE)
    world = SyntheticWorld.generate(config)

    def run():
        return Pipeline(world).run()

    dataset = benchmark.pedantic(run, rounds=1, iterations=1)
    assert dataset.summarize().total_unique_urls > 0


def test_full_pipeline_threads(benchmark):
    config = WorldConfig(seed=BENCH_SEED, scale=BENCH_SCALE)
    world = SyntheticWorld.generate(config)
    serial = Pipeline(world).run()
    executor = ThreadExecutor(workers=4)
    try:
        dataset = benchmark.pedantic(
            lambda: Pipeline(world).run(executor=executor),
            rounds=1, iterations=1,
        )
    finally:
        executor.close()
    assert dataset.summarize() == serial.summarize()
    assert dataset.validation == serial.validation


def test_full_pipeline_processes(benchmark):
    config = WorldConfig(seed=BENCH_SEED, scale=BENCH_SCALE)
    world = SyntheticWorld.generate(config)
    serial = Pipeline(world).run()
    executor = ProcessExecutor(workers=min(4, os.cpu_count() or 1))
    try:
        # First run pays the per-worker world rebuild; time the steady state.
        Pipeline(world).run(executor=executor)
        dataset = benchmark.pedantic(
            lambda: Pipeline(world).run(executor=executor),
            rounds=1, iterations=1,
        )
    finally:
        executor.close()
    assert dataset.summarize() == serial.summarize()
    assert dataset.validation == serial.validation


def test_parallel_speedup_report(report):
    """Serial vs 4-worker process pool; >=2x asserted on 4+-core hosts."""
    cores = os.cpu_count() or 1
    workers = min(4, cores)
    config = WorldConfig(seed=BENCH_SEED, scale=BENCH_SCALE)
    world = SyntheticWorld.generate(config)

    t0 = time.perf_counter()
    serial = Pipeline(world).run()
    serial_s = time.perf_counter() - t0

    executor = ProcessExecutor(workers=workers)
    try:
        Pipeline(world).run(executor=executor)  # warm the worker pool
        t0 = time.perf_counter()
        parallel = Pipeline(world).run(executor=executor)
        parallel_s = time.perf_counter() - t0
    finally:
        executor.close()

    speedup = serial_s / parallel_s if parallel_s else float("inf")
    report(
        "pipeline_parallel_speedup",
        f"cores={cores} workers={workers}\n"
        f"serial:   {serial_s:.3f} s\n"
        f"parallel: {parallel_s:.3f} s (steady-state, pool warm)\n"
        f"speedup:  {speedup:.2f}x",
    )
    assert parallel.summarize() == serial.summarize()
    if cores >= 4:
        assert speedup >= 2.0, f"expected >=2x on {cores} cores, got {speedup:.2f}x"


def test_single_country_pipeline(benchmark):
    config = WorldConfig(seed=BENCH_SEED, scale=BENCH_SCALE)
    world = SyntheticWorld.generate(config)
    pipeline = Pipeline(world)
    dataset = benchmark(pipeline.run, ["BR"])
    assert set(dataset.countries) == {"BR"}
