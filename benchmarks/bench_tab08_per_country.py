"""Table 8: per-country dataset statistics."""

from conftest import BENCH_SCALE

from repro.reporting.tables import render_table
from repro.world.countries import get_country

_SHOWCASE = ("US", "DE", "BE", "HU", "CN", "IN", "BR", "NG", "UY", "KR")


def test_tab08_per_country(benchmark, bench_dataset, report):
    stats = benchmark(bench_dataset.per_country_stats)
    rows = []
    for code in _SHOWCASE:
        country = get_country(code)
        measured = stats[code]
        rows.append([
            code,
            f"{country.landing_urls}/{country.internal_urls}/{country.hostnames}",
            f"{measured['landing_urls']}/{measured['internal_urls']}"
            f"/{measured['hostnames']}",
        ])
    report("tab08_per_country", render_table(
        ["country", "paper (L/I/H, full scale)",
         f"measured (L/I/H, scale={BENCH_SCALE})"], rows,
        title="Table 8 -- per-country dataset statistics (excerpt)",
    ))
    # Relative country sizes mirror Table 8: Belgium and Hungary dwarf the
    # others in internal URLs; Korea is empty.
    internals = {code: stats[code]["internal_urls"] for code in stats}
    assert internals["BE"] > internals["DE"] > internals["UY"]
    assert internals["HU"] > internals["CN"]
    assert internals["KR"] == 0
    for code in _SHOWCASE:
        if code == "KR":
            continue
        expected = get_country(code).internal_urls * BENCH_SCALE
        assert internals[code] > 0.4 * expected
