"""The paper's reported values, used for paper-vs-measured reports.

Every constant is transcribed from the IMC 2024 paper; benchmarks print
them next to the values measured over the synthetic world so the shape
of each result can be compared at a glance.
"""

from repro.categories import HostingCategory

_G = HostingCategory.GOVT_SOE
_L = HostingCategory.P3_LOCAL
_GL = HostingCategory.P3_GLOBAL
_R = HostingCategory.P3_REGIONAL

#: Figure 2 -- global prevalence by category.
FIG2_URLS = {_G: 0.39, _L: 0.34, _GL: 0.25, _R: 0.03}
FIG2_BYTES = {_G: 0.47, _L: 0.28, _GL: 0.23, _R: 0.02}

#: Figure 3 -- 14-country comparison (government vs topsites).
FIG3_GOV_URLS = {"Self-Hosting": 0.46, "3P Local": 0.20, "3P Global": 0.32,
                 "3P Regional": 0.01}
FIG3_TOP_URLS = {"Self-Hosting": 0.18, "3P Local": 0.03, "3P Global": 0.78,
                 "3P Regional": 0.01}

#: Figure 4a/4b -- regional category mixes (G, L, GL, R).
FIG4_URLS = {
    "SSA": (0.01, 0.46, 0.39, 0.14),
    "ECA": (0.24, 0.46, 0.28, 0.02),
    "NA": (0.25, 0.17, 0.58, 0.00),
    "LAC": (0.41, 0.25, 0.30, 0.03),
    "MENA": (0.43, 0.10, 0.47, 0.00),
    "EAP": (0.48, 0.35, 0.14, 0.02),
    "SA": (0.80, 0.09, 0.11, 0.01),
}
FIG4_BYTES = {
    "SSA": (0.00, 0.48, 0.34, 0.17),
    "ECA": (0.18, 0.61, 0.19, 0.02),
    "NA": (0.22, 0.10, 0.68, 0.00),
    "LAC": (0.27, 0.30, 0.41, 0.01),
    "EAP": (0.50, 0.26, 0.22, 0.02),
    "MENA": (0.71, 0.03, 0.26, 0.00),
    "SA": (0.95, 0.02, 0.03, 0.00),
}

#: Figure 6 -- global domestic shares (WHOIS registration, geolocation).
FIG6_DOMESTIC = {"whois": 0.77, "geolocation": 0.87}

#: Figure 7 -- 14-country domestic shares.
FIG7_GOV = {"whois": 0.78, "geolocation": 0.89}
FIG7_TOPSITES = {"whois": 0.11, "geolocation": 0.49}

#: Figure 8a/8b -- regional domestic shares.
FIG8_REGISTRATION = {"SSA": 0.45, "MENA": 0.52, "LAC": 0.66, "ECA": 0.71,
                     "EAP": 0.87, "SA": 0.88, "NA": 0.91}
FIG8_LOCATION = {"SSA": 0.52, "MENA": 0.74, "LAC": 0.80, "ECA": 0.85,
                 "SA": 0.94, "EAP": 0.96, "NA": 0.98}

#: Section 6.3 bilateral dependencies (fraction of source URLs).
BILATERAL = {
    ("MX", "US"): 0.7922,
    ("CR", "US"): 0.4970,
    ("NZ", "AU"): 0.40,
    ("CN", "JP"): 0.264,
    ("MA", "FR"): 0.2982,
    ("FR", "NC"): 0.1803,
    ("BR", "US"): 0.0178,
}

#: Table 3 -- dataset headline numbers (full scale).
TABLE3 = {
    "landing_urls": 15_878,
    "internal_urls": 1_017_865,
    "total_unique_urls": 1_033_743,
    "unique_hostnames": 13_483,
    "ases": 950,
    "government_ases": 347,
    "unique_addresses": 4_286,
    "anycast_addresses": 433,
    "countries_with_servers": 68,
}

#: Section 4.2 -- URL-filter attribution.
FILTER_FRACTIONS = {"tld": 0.276, "domain": 0.721, "san": 0.003}

#: Table 4 -- geolocation validation fractions.
TABLE4 = {
    "unicast": {"AP": 0.41, "MG": 0.57, "UR": 0.02},
    "anycast": {"AP": 0.83, "MG": 0.00, "UR": 0.17},
}

#: Table 5 -- % of cross-border dependencies remaining in-region.
TABLE5 = {
    "ECA": 94.87, "EAP": 80.79, "NA": 59.89, "LAC": 3.41,
    "SSA": 2.95, "MENA": 0.00, "SA": 0.00,
}

#: Section 6.3 -- GDPR compliance of EU government URLs.
GDPR_COMPLIANCE = 0.983

#: Figure 10 -- countries per provider (top of the histogram).
FIG10_TOP = {"Cloudflare": 49, "Amazon": 31, "Microsoft": 28}

#: Section 7.1 -- highest single-provider byte reliances.
TOP_RELIANCES = {"Amazon": 0.97, "Cloudflare": 0.72, "Hetzner": 0.57}

#: Section 7.2 -- single-network dependence by dominant category.
SINGLE_NETWORK = {"Govt&SOE": (12, 19), "3P Global": (8, 25)}

#: Figure 12 -- significant coefficients (estimate, p-value).
FIG12 = {
    "internet_users": (0.845, 0.001),
    "NRI": (-0.660, 0.022),
    "GDP": (-0.239, 0.003),
}

#: Table 7 -- VIF per feature.
TABLE7_VIF = {
    "internet_users": 2.06, "HDI": 8.61, "IDI": 4.11,
    "NRI": 9.09, "GDP": 5.00, "econ_freedom": 3.71,
}
