"""Extension benches: DNS dependency and HTTPS adoption.

Not figures of this paper, but of the related work it builds on
(Sommese et al. / Houser et al. on e-government DNS; Singanamalla et
al. on government HTTPS) -- implemented as the paper's natural
extensions over the same dataset.
"""

from repro.analysis.dnsdep import (
    country_dns_dependency,
    global_third_party_dns_share,
    managed_dns_footprints,
)
from repro.analysis.https_adoption import (
    global_https_prevalence,
    https_development_correlation,
)
from repro.reporting.tables import render_table


def test_ext_dns_dependency(benchmark, bench_world, bench_dataset, report):
    share = benchmark(global_third_party_dns_share, bench_world, bench_dataset)
    footprints = managed_dns_footprints(bench_world, bench_dataset)
    named = {13335: "Cloudflare", 16509: "Amazon Route53-like",
             8075: "Microsoft"}
    rows = [
        [named[asn], f"AS{asn}", count]
        for asn, count in sorted(footprints.items(), key=lambda kv: -kv[1])
        if asn in named
    ]
    reports = country_dns_dependency(bench_world, bench_dataset)
    most_dependent = max(reports.values(), key=lambda r: r.top_provider_share)
    text = render_table(
        ["managed-DNS provider", "asn", "countries"], rows,
        title="Extension -- third-party DNS dependency",
    )
    text += (f"\nglobal third-party DNS share: {share:.1%}"
             f"\nmost single-provider-dependent country: "
             f"{most_dependent.country} "
             f"({most_dependent.top_provider_share:.0%} of domains on "
             f"AS{most_dependent.top_provider_asn})")
    report("ext_dns_dependency", text)
    assert 0.3 < share < 0.9
    assert max(footprints, key=footprints.get) == 13335


def test_ext_https_adoption(benchmark, bench_world, bench_dataset, report):
    have, valid = benchmark(global_https_prevalence, bench_world, bench_dataset)
    correlation = https_development_correlation(bench_world, bench_dataset)
    text = (f"hostnames presenting a certificate: {have:.1%}\n"
            f"hostnames with a *valid* certificate: {valid:.1%}\n"
            f"(Singanamalla et al. 2020: >70% of government sites lacked "
            f"valid HTTPS)\n"
            f"correlation of valid-HTTPS rate with EGDI: {correlation:+.2f}")
    report("ext_https_adoption", text)
    assert valid <= have <= 1
    assert valid < 0.8
    assert correlation > 0
