"""Figure 4: fraction of URLs and bytes served per category, per region."""

from paper_values import FIG4_BYTES, FIG4_URLS

from repro.analysis.hosting import regional_breakdown
from repro.categories import CATEGORY_ORDER, HostingCategory
from repro.reporting.tables import render_table

_ORDER = (HostingCategory.GOVT_SOE, HostingCategory.P3_LOCAL,
          HostingCategory.P3_GLOBAL, HostingCategory.P3_REGIONAL)


def _rows(measured, paper):
    rows = []
    for region, mix in sorted(measured.items(), key=lambda kv: kv[0].name):
        reference = paper[region.name]
        rows.append(
            [region.name]
            + [f"{reference[i]:.2f}/{mix[cat]:.2f}" for i, cat in enumerate(_ORDER)]
        )
    return rows


def test_fig04a_regional_urls(benchmark, bench_dataset, report):
    measured = benchmark(regional_breakdown, bench_dataset, by_bytes=False)
    report("fig04a_regional_urls", render_table(
        ["region", "Govt&SOE", "3P Local", "3P Global", "3P Regional"],
        _rows(measured, FIG4_URLS),
        title="Figure 4a -- regional URL mix (paper/measured)",
    ))
    from repro.world.regions import Region

    assert measured[Region.SA][HostingCategory.GOVT_SOE] > 0.5
    assert measured[Region.SSA][HostingCategory.GOVT_SOE] < 0.1


def test_fig04b_regional_bytes(benchmark, bench_dataset, report):
    measured = benchmark(regional_breakdown, bench_dataset, by_bytes=True)
    report("fig04b_regional_bytes", render_table(
        ["region", "Govt&SOE", "3P Local", "3P Global", "3P Regional"],
        _rows(measured, FIG4_BYTES),
        title="Figure 4b -- regional byte mix (paper/measured)",
    ))
    from repro.world.regions import Region

    assert measured[Region.SA][HostingCategory.GOVT_SOE] > 0.7
    assert measured[Region.NA][HostingCategory.P3_GLOBAL] > 0.4
