"""Table 9: the country sample with indices and VPN assignments."""

from repro.measure.vpn import VpnCatalog
from repro.reporting.tables import render_table
from repro.world.countries import COUNTRIES, countries_in_region
from repro.world.regions import Region


def _sample_summary():
    per_region = {
        region.name: len(countries_in_region(region)) for region in Region
    }
    coverage = sum(c.internet_pop_share for c in COUNTRIES.values())
    vpns = VpnCatalog().provider_usage()
    return per_region, coverage, vpns


def test_tab09_sample(benchmark, report):
    per_region, coverage, vpns = benchmark(_sample_summary)
    rows = [[name, count] for name, count in sorted(per_region.items())]
    text = render_table(["region", "countries"], rows,
                        title="Table 9 -- sample composition")
    text += f"\nInternet population coverage: {coverage:.2f}% (paper: 82.70%)"
    text += "\nVPNs: " + ", ".join(f"{k}={v}" for k, v in sorted(vpns.items()))
    report("tab09_countries", text)
    assert sum(per_region.values()) == 61
    assert per_region["ECA"] == 29
    assert abs(coverage - 82.70) < 1.5
    assert vpns == {"NordVPN": 49, "Surfshark": 10, "Hotspot Shield": 2}
