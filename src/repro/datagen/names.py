"""Name pools for synthetic government organizations and providers.

Hostname and organization names only need to be plausible, unique and
deterministic; the pools below combine base institution names with
sector/branch qualifiers to scale to the thousands of hostnames the
largest countries require.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.websim.sites import SiteKind

MINISTRY_SECTORS = (
    "health", "finance", "interior", "education", "defense", "justice",
    "agriculture", "energy", "transport", "environment", "labor", "culture",
    "tourism", "science", "trade", "housing", "communications", "planning",
    "sports", "foreign-affairs", "economy", "industry", "mining", "fisheries",
    "youth", "women", "social-development", "public-works", "technology",
    "infrastructure",
)

AGENCY_NAMES = (
    "tax", "customs", "statistics", "meteorology", "space", "police",
    "elections", "archives", "library", "census", "water", "roads",
    "aviation", "maritime", "railways", "pensions", "immigration",
    "procurement", "standards", "patents", "competition", "securities",
    "centralbank", "audit", "anticorruption", "cybersecurity", "parks",
    "heritage", "food-safety", "medicines", "nuclear", "geology",
    "forestry", "irrigation", "ports", "telecom-regulator", "broadcasting",
    "social-security", "veterans", "disaster-management",
)

SOE_NAMES = (
    "national-telecom", "national-oil", "national-rail", "national-power",
    "national-airline", "national-bank", "postal-service", "water-utility",
    "national-gas", "mining-corp", "national-broadcaster", "ports-authority",
    "national-lottery", "energy-holding", "national-shipping",
)

LOCAL_PROVIDER_STEMS = (
    "rapidhost", "webnode", "datacenter", "cloudpoint", "serverfarm",
    "netbox", "hostline", "primeweb", "bitlodge", "stackhouse",
    "coreracks", "zenhost",
)

REGIONAL_PROVIDER_STEMS = (
    "continental-cloud", "interlink-hosting", "transnet-dc", "meridian-cloud",
    "axis-hosting", "unity-dc",
)

TOPSITE_STEMS = (
    "news", "shop", "bank", "mail", "video", "social", "weather", "sports",
    "travel", "food", "auto", "jobs", "realty", "music", "games", "health",
    "forum", "market", "stream", "learn",
)


def iter_site_names(kind: SiteKind, rng: random.Random) -> Iterator[str]:
    """Infinite stream of unique site names for one country and kind."""
    if kind is SiteKind.MINISTRY:
        base = list(MINISTRY_SECTORS)
    elif kind is SiteKind.AGENCY:
        base = list(AGENCY_NAMES)
    else:
        base = list(SOE_NAMES)
    rng.shuffle(base)
    yield from base
    index = 2
    while True:
        for name in base:
            yield f"{name}{index}"
        index += 1


def government_org_name(sector: str, country_name: str, rng: random.Random) -> str:
    """A WHOIS-style organization name for a government network."""
    templates = (
        "Ministry of {sector} of {country}",
        "Ministerio de {sector} - {country}",
        "Ministere de {sector} ({country})",
        "{country} Federal {sector} Administration",
        "National {sector} Directorate of {country}",
    )
    template = rng.choice(templates)
    return template.format(sector=sector.replace("-", " ").title(), country=country_name)


def soe_org_name(stem: str, country_name: str, rng: random.Random) -> str:
    """A WHOIS-style organization name for a state-owned enterprise.

    A share of these intentionally omits any government keyword (the
    YPF case of Section 3.4): ownership is only discoverable through a
    web search.
    """
    plain = stem.replace("-", " ").title()
    if rng.random() < 0.5:
        return f"{plain} of {country_name}"
    return f"{plain} S.A."


__all__ = [
    "MINISTRY_SECTORS",
    "AGENCY_NAMES",
    "SOE_NAMES",
    "LOCAL_PROVIDER_STEMS",
    "REGIONAL_PROVIDER_STEMS",
    "TOPSITE_STEMS",
    "iter_site_names",
    "government_org_name",
    "soe_org_name",
]
