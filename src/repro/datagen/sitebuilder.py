"""Construction of synthetic government site trees.

Builds :class:`~repro.websim.sites.GovernmentSite` objects whose URL
mass follows the depth distribution the paper reports (84% of unique
URLs on landing pages, 95% within one level, trees up to seven levels
deep), sprinkled with static-asset hostnames, external contractor
resources and cross-site links.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Callable, Optional, Sequence

from repro.websim.sites import GovernmentSite, Page, Resource, SiteKind

#: File extensions used for leaf resources.
_RESOURCE_EXTENSIONS = ("js", "css", "png", "jpg", "pdf", "woff2", "json")


def largest_remainder(total: int, weights: Sequence[float]) -> list[int]:
    """Apportion ``total`` integer units according to ``weights``.

    Uses the largest-remainder (Hamilton) method, so the result always
    sums exactly to ``total`` and is within one unit of proportionality.
    """
    if total < 0:
        raise ValueError("total must be non-negative")
    weight_sum = float(sum(weights))
    if weight_sum <= 0:
        raise ValueError("weights must have positive mass")
    shares = [w / weight_sum * total for w in weights]
    counts = [int(share) for share in shares]
    shortfall = total - sum(counts)
    remainders = sorted(
        range(len(weights)),
        key=lambda i: (shares[i] - counts[i], -i),
        reverse=True,
    )
    for i in remainders[:shortfall]:
        counts[i] += 1
    return counts


@dataclasses.dataclass
class SiteBuildSpec:
    """Everything needed to materialize one site's page tree."""

    hostname: str
    country: str
    kind: SiteKind
    #: URL paths of the landing pages ('/' first).
    landing_paths: list[str]
    #: Total internal-URL budget across all landing trees.
    internal_budget: int
    #: Draws one object size in bytes.
    size_sampler: Callable[[], int]
    static_hostname: Optional[str] = None
    #: External (non-government) resources per landing resource.
    external_ratio: float = 0.0
    external_hosts: Sequence[str] = ()
    geo_restricted: bool = False
    #: Extra landing-page links pointing at other sites (e.g. SAN sites).
    extra_links: Sequence[str] = ()


def _chain_depth_counts(budget: int, depth_fracs: Sequence[float]) -> list[int]:
    """Depth counts for one landing tree; deeper levels need a parent."""
    counts = largest_remainder(budget, depth_fracs)
    if counts[0] == 0 and budget > 0:
        # The landing page itself always exists.
        donor = max(range(len(counts)), key=lambda i: counts[i])
        counts[donor] -= 1
        counts[0] += 1
    for depth in range(1, len(counts)):
        if counts[depth] > 0 and counts[depth - 1] == 0:
            counts[depth - 1] = counts[depth]
            counts[depth] = 0
    return counts


def build_site(
    spec: SiteBuildSpec,
    depth_fracs: Sequence[float],
    rng: random.Random,
) -> GovernmentSite:
    """Materialize a site from its spec.

    The total number of unique government URLs contributed by the site
    equals ``spec.internal_budget`` plus one page URL per landing path.
    """
    if not spec.landing_paths:
        raise ValueError("a site needs at least one landing path")
    base = f"https://{spec.hostname}"
    pages: dict[str, Page] = {}
    path_weights = [1.0 / (index + 1) for index in range(len(spec.landing_paths))]
    budgets = largest_remainder(spec.internal_budget, path_weights)

    for path, budget in zip(spec.landing_paths, budgets):
        prefix = path if path.endswith("/") else path + "/"
        landing_url = base + path
        counts = _chain_depth_counts(budget, depth_fracs)

        # Depth-0 resource objects embedded in the landing page.
        resources: list[Resource] = []
        for index in range(counts[0]):
            extension = rng.choice(_RESOURCE_EXTENSIONS)
            if spec.static_hostname is not None and rng.random() < 0.30:
                host = spec.static_hostname
                url = f"https://{host}{prefix}assets/r{index}.{extension}"
            else:
                host = spec.hostname
                url = f"{base}{prefix}assets/r{index}.{extension}"
            resources.append(
                Resource(
                    url=url,
                    hostname=host,
                    size_bytes=spec.size_sampler(),
                    content_type=f"application/{extension}",
                )
            )
        # External contractor resources (discarded later by the URL filter).
        if spec.external_hosts and spec.external_ratio > 0:
            external_count = round(spec.external_ratio * max(counts[0], 1))
            for index in range(external_count):
                host = rng.choice(list(spec.external_hosts))
                resources.append(
                    Resource(
                        url=f"https://{host}/embed/{spec.hostname}/w{index}.js",
                        hostname=host,
                        size_bytes=spec.size_sampler(),
                        content_type="application/javascript",
                    )
                )

        # Internal pages, level by level.
        level_urls: dict[int, list[str]] = {0: [landing_url]}
        page_specs: list[tuple[str, int]] = []  # (url, depth)
        for depth in range(1, len(counts)):
            level_urls[depth] = [
                f"{base}{prefix}l{depth}/p{index}" for index in range(counts[depth])
            ]
            page_specs.extend((url, depth) for url in level_urls[depth])

        # Children are distributed round-robin among the previous level.
        links_of: dict[str, list[str]] = {url: [] for url, _ in page_specs}
        links_of[landing_url] = []
        for depth in range(1, len(counts)):
            parents = level_urls[depth - 1]
            if not parents:
                break
            for index, child in enumerate(level_urls[depth]):
                links_of[parents[index % len(parents)]].append(child)

        landing_links = tuple(links_of[landing_url]) + tuple(spec.extra_links)
        pages[landing_url] = Page(
            url=landing_url,
            hostname=spec.hostname,
            depth=0,
            resources=tuple(resources),
            links=landing_links,
            size_bytes=spec.size_sampler(),
        )
        for url, depth in page_specs:
            pages[url] = Page(
                url=url,
                hostname=spec.hostname,
                depth=depth,
                resources=(),
                links=tuple(links_of[url]),
                size_bytes=spec.size_sampler(),
            )

    return GovernmentSite(
        country=spec.country,
        hostname=spec.hostname,
        landing_url=base + spec.landing_paths[0],
        kind=spec.kind,
        pages=pages,
        geo_restricted=spec.geo_restricted,
    )


__all__ = ["largest_remainder", "SiteBuildSpec", "build_site"]
