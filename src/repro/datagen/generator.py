"""Generation of the complete synthetic world.

Instantiates every substrate -- ASes (government, SOE, local hosting,
continental and global providers), IP prefixes and WHOIS data, DNS
records (static, geo-aware and anycast, with CNAME chains), TLS
certificates with SANs, government site trees, topsites and the
measurement databases (IPInfo, MAnycast2, PTR/HOIHO, IPmap, PeeringDB,
web-search snippets) -- calibrated by the per-country hosting profiles.

The measurement pipeline never reads ground truth; it re-measures the
generated world through the same steps the paper describes.
"""

from __future__ import annotations

import dataclasses
import math
import random
from typing import Optional

from repro.categories import HostingCategory
from repro.datagen.config import WorldConfig
from repro.datagen.names import (
    LOCAL_PROVIDER_STEMS,
    REGIONAL_PROVIDER_STEMS,
    TOPSITE_STEMS,
    government_org_name,
    iter_site_names,
    soe_org_name,
)
from repro.datagen.seeds import derive_rng
from repro.datagen.sitebuilder import SiteBuildSpec, build_site, largest_remainder
from repro.measure.hoiho import HoihoExtractor, PtrTable, normalize_city
from repro.measure.ipinfo import IpInfoDatabase, IpInfoEntry
from repro.measure.ipmap import IpMapCache
from repro.measure.manycast import MAnycastSnapshot
from repro.measure.peeringdb import PeeringDb, PeeringDbRecord
from repro.measure.vpn import VpnCatalog
from repro.netsim.anycast import AnycastGroup, AnycastIndex
from repro.netsim.asn import ASKind, AutonomousSystem, PoP
from repro.netsim.dns import CnameRecord, DnsZone, GeoARecord, Resolver, StaticARecord
from repro.netsim.fabric import ServingFabric
from repro.netsim.nameservers import NsDelegation, NsRegistry
from repro.netsim.providers import GLOBAL_PROVIDERS, WIDE, GlobalProviderSpec
from repro.netsim.registry import IpRegistry
from repro.netsim.tls import Certificate, CertificateStore
from repro.netsim.whois import WhoisService
from repro.websim.sites import SiteKind
from repro.websim.topsites import COMPARISON_COUNTRIES, TopSite, TopsiteHosting
from repro.websim.webserver import WebFabric
from repro.world.cities import EXTRA_TERRITORIES, all_location_codes, capital_of, cities_of
from repro.world.countries import COUNTRIES, Country, get_country
from repro.world.profiles import HostingProfile, get_profile
from repro.world.regions import Continent

#: First ASN used for synthetic (non-catalog) networks.
SYNTHETIC_ASN_BASE = 210_000

#: ASNs reserved for shared infrastructure (regional providers) before
#: the per-country blocks begin.
_ASN_INFRA_BLOCK = 1_024

#: ASNs reserved per country.  Numbering is positional over the *full*
#: country table, so one country's AS count (e.g. evolution adding an
#: SOE) can never shift another country's ASNs.
_ASN_COUNTRY_BLOCK = 64

#: Stable allocation-scope index per country code (full table order,
#: independent of the configured sample).
_SCOPE_INDEX = {code: index for index, code in enumerate(COUNTRIES)}

#: Anycast hub countries providers announce from besides the customer country.
ANYCAST_HUBS = ("US", "DE", "SG", "BR", "AU")

#: Continental hubs for regional-provider registration.
REGIONAL_HUBS: dict[Continent, tuple[str, ...]] = {
    Continent.EUROPE: ("NL", "AT", "SK", "FI", "IE"),
    Continent.ASIA: ("JP", "SG", "HK"),
    Continent.NORTH_AMERICA: ("US", "CA"),
    Continent.SOUTH_AMERICA: ("CO", "BR"),
    Continent.AFRICA: ("ZA", "EG"),
    Continent.OCEANIA: ("AU", "NZ"),
}

_EXTERNAL_HOSTS = tuple(
    f"cdn{i}.contractor-widgets.com" for i in range(1, 6)
) + tuple(f"static{i}.analytics-embed.net" for i in range(1, 4))


@dataclasses.dataclass(frozen=True)
class HostTruth:
    """Ground truth about one government hostname (tests/calibration only)."""

    hostname: str
    country: str
    category: HostingCategory
    asn: int
    address: int
    #: Physical country the content is served from (anycast: the catchment
    #: as seen from the home capital).
    serving_country: str
    anycast: bool
    registered_country: str
    #: How the URL filter is expected to pick this hostname up.
    expected_filter: str  # "tld" | "domain" | "san"


@dataclasses.dataclass
class GroundTruth:
    """Everything the generator knows that the pipeline must rediscover."""

    hosts: dict[str, HostTruth] = dataclasses.field(default_factory=dict)
    #: Per-country landing URLs (the Section 3.1 directory).
    directories: dict[str, list[str]] = dataclasses.field(default_factory=dict)
    #: Per-country landing-page hostnames whose certificates carry the
    #: SAN-verified hostnames.
    san_anchor: dict[str, str] = dataclasses.field(default_factory=dict)
    #: Hostnames of topsites by country.
    topsite_hosts: dict[str, list[str]] = dataclasses.field(default_factory=dict)

    def hosts_of(self, country: str) -> list[HostTruth]:
        """Truth records of one country's hostnames."""
        return [h for h in self.hosts.values() if h.country == country]


@dataclasses.dataclass
class SyntheticWorld:
    """A fully generated world plus handles to all its substrates."""

    config: WorldConfig
    registry: IpRegistry
    whois: WhoisService
    zone: DnsZone
    resolver: Resolver
    certificates: CertificateStore
    anycast_index: AnycastIndex
    fabric: ServingFabric
    web: WebFabric
    vpn: VpnCatalog
    ipinfo: IpInfoDatabase
    manycast: MAnycastSnapshot
    ptr_table: PtrTable
    hoiho: HoihoExtractor
    ipmap: IpMapCache
    peeringdb: PeeringDb
    #: Website URL -> public description (the "Google search" corpus).
    websearch: dict[str, str]
    truth: GroundTruth
    topsites: dict[str, list[TopSite]]
    #: Authoritative-DNS delegations of government domains (extension).
    nameservers: NsRegistry

    @classmethod
    def generate(cls, config: Optional[WorldConfig] = None) -> "SyntheticWorld":
        """Build a world from a configuration (defaults if omitted)."""
        return _Generator(config or WorldConfig()).run()

    def country_codes(self) -> list[str]:
        """The generated sample countries."""
        return self.config.country_codes()


class _Generator:
    """Stateful builder behind :meth:`SyntheticWorld.generate`."""

    def __init__(self, config: WorldConfig) -> None:
        self.config = config
        self.codes = config.country_codes()
        self.registry = IpRegistry()
        self.zone = DnsZone()
        self.certificates = CertificateStore()
        self.anycast_index = AnycastIndex()
        self.web = WebFabric()
        self.ipinfo = IpInfoDatabase()
        self.manycast = MAnycastSnapshot()
        self.ptr_table = PtrTable()
        self.ipmap = IpMapCache()
        self.peeringdb = PeeringDb()
        self.websearch: dict[str, str] = {}
        self.truth = GroundTruth()
        self.topsites: dict[str, list[TopSite]] = {}
        self.nameservers = NsRegistry()

        self._next_infra_asn = SYNTHETIC_ASN_BASE
        self._country_asn_next: dict[str, int] = {}
        #: Customer country whose slice is currently being generated;
        #: scopes every address allocation, pool and CNAME name so one
        #: country's consumption never shifts another's.
        self._scope_code: Optional[str] = None
        self._used_hostnames: set[str] = set()
        self._global_as: dict[str, AutonomousSystem] = {}
        self._global_spec: dict[str, GlobalProviderSpec] = {}
        self._adoption: dict[str, list[tuple[AutonomousSystem, float]]] = {}
        self._regional: dict[Continent, list[AutonomousSystem]] = {}
        self._gov_as: dict[str, list[AutonomousSystem]] = {}
        self._soe_as: dict[str, list[AutonomousSystem]] = {}
        self._local_as: dict[str, list[AutonomousSystem]] = {}
        self._intl_local_as: dict[str, AutonomousSystem] = {}
        self._enterprise_as: dict[str, AutonomousSystem] = {}
        self._anycast_groups: dict[tuple[int, str], list[AnycastGroup]] = {}
        self._address_pools: dict[tuple[str, int, str], list[int]] = {}
        self._prominent_addresses: set[int] = set()
        #: address -> (AS, allocation PoP, is_anycast)
        self._address_info: dict[int, tuple[AutonomousSystem, PoP, bool]] = {}
        #: address -> customer country it was allocated for.
        self._address_scope: dict[int, str] = {}
        self._cname_counters: dict[str, int] = {}

    # ------------------------------------------------------------------ util

    def _alloc_infra_asn(self) -> int:
        """An ASN from the shared-infrastructure block."""
        asn = self._next_infra_asn
        if asn >= SYNTHETIC_ASN_BASE + _ASN_INFRA_BLOCK:
            raise RuntimeError("infrastructure ASN block exhausted")
        self._next_infra_asn += 1
        return asn

    def _alloc_country_asn(self, code: str) -> int:
        """The next ASN of ``code``'s fixed, positional block."""
        base = (SYNTHETIC_ASN_BASE + _ASN_INFRA_BLOCK
                + _SCOPE_INDEX[code] * _ASN_COUNTRY_BLOCK)
        asn = self._country_asn_next.get(code, base)
        if asn >= base + _ASN_COUNTRY_BLOCK:
            raise RuntimeError(f"ASN block of {code} exhausted")
        self._country_asn_next[code] = asn + 1
        return asn

    def _scope_args(self) -> tuple[int, int]:
        """(scope index, prefix epoch) of the current customer country."""
        assert self._scope_code is not None, "allocation outside a scope"
        override = self.config.override_for(self._scope_code)
        epoch = override.prefix_epoch if override is not None else 0
        return _SCOPE_INDEX[self._scope_code], epoch

    @staticmethod
    def _pop_at(code: str, city_index: int = 0) -> PoP:
        cities = cities_of(code)
        city = cities[city_index % len(cities)]
        return PoP(country=code, city=city.name, lat=city.lat, lon=city.lon)

    def _unique_hostname(self, candidate: str) -> str:
        hostname = candidate
        suffix = 2
        while hostname in self._used_hostnames:
            head, _, tail = candidate.partition(".")
            hostname = f"{head}{suffix}.{tail}"
            suffix += 1
        self._used_hostnames.add(hostname)
        return hostname

    def _new_address(
        self,
        autonomous_system: AutonomousSystem,
        pop: PoP,
        rng: random.Random,
        reuse: bool = True,
    ) -> int:
        """An address for a deployment, reusing pool addresses per config.

        Pools are scoped to the customer country being generated: two
        countries deploying on the same provider PoP draw from disjoint
        pools, so neither's allocation history perturbs the other's.
        """
        assert self._scope_code is not None
        key = (self._scope_code, autonomous_system.asn, pop.country)
        pool = self._address_pools.setdefault(key, [])
        if reuse and pool and rng.random() < self.config.ip_reuse_prob:
            return rng.choice(pool)
        scope, epoch = self._scope_args()
        address = self.registry.allocate_address(
            autonomous_system, pop, scope, epoch
        )
        pool.append(address)
        self._address_info[address] = (autonomous_system, pop, False)
        self._address_scope[address] = self._scope_code
        return address

    def _next_cname_target(self, provider: AutonomousSystem) -> str:
        assert self._scope_code is not None
        count = self._cname_counters.get(self._scope_code, 0) + 1
        self._cname_counters[self._scope_code] = count
        domain = provider.contact_domain or f"as{provider.asn}.net"
        return f"edge-{self._scope_code.lower()}-{count}.cdn.{domain}"

    # ------------------------------------------------------------ providers

    def _build_global_providers(self) -> None:
        location_codes = all_location_codes()
        for spec in GLOBAL_PROVIDERS:
            if spec.footprint is WIDE:
                pop_codes = location_codes
            else:
                pop_codes = list(spec.footprint)
            pops = tuple(self._pop_at(code) for code in pop_codes)
            autonomous_system = AutonomousSystem(
                asn=spec.asn,
                name=spec.name,
                organization=f"{spec.name}, Inc.",
                registration_country=spec.registration_country,
                kind=ASKind.GLOBAL_PROVIDER,
                pops=pops,
                website=f"https://www.{spec.key}.com",
                contact_domain=f"{spec.key}.com",
                anycast_capable=spec.anycast,
            )
            self.registry.register_as(autonomous_system)
            self._global_as[spec.key] = autonomous_system
            self._global_spec[spec.key] = spec
            self.websearch[autonomous_system.website] = (
                f"{spec.name} is a cloud and content delivery provider."
            )

    def _build_adoption(self) -> None:
        for code in self.codes:
            profile = get_profile(code)
            rng = derive_rng(self.config.seed, "adoption", code)
            adopted: list[tuple[AutonomousSystem, float]] = []
            for spec in GLOBAL_PROVIDERS:
                override = profile.provider_overrides.get(spec.key)
                if override is not None:
                    adopted.append((self._global_as[spec.key], override))
                elif rng.random() < spec.adoption_prior:
                    weight = spec.base_weight * rng.uniform(0.5, 1.5)
                    adopted.append((self._global_as[spec.key], weight))
            if not adopted:
                adopted.append((self._global_as["cloudflare"], 1.0))
            override = self.config.override_for(code)
            if override is not None and override.provider_tilt:
                adopted = self._tilt_adoption(adopted, override.provider_tilt)
            self._adoption[code] = adopted

    def _tilt_adoption(
        self,
        adopted: list[tuple[AutonomousSystem, float]],
        tilt: tuple[tuple[str, float], ...],
    ) -> list[tuple[AutonomousSystem, float]]:
        """Apply evolution's provider gain/loss multipliers to one country."""
        factors = dict(tilt)
        tilted = [
            (provider, weight * factors.get(self._spec_key_of(provider), 1.0))
            for provider, weight in adopted
        ]
        present = {self._spec_key_of(provider) for provider, _ in tilted}
        for key, factor in sorted(factors.items()):
            # A gaining provider the base draw skipped enters the mix.
            if factor > 1.0 and key not in present and key in self._global_as:
                spec = self._global_spec[key]
                tilted.append(
                    (self._global_as[key], spec.base_weight * (factor - 1.0))
                )
        return tilted

    def _spec_key_of(self, provider: AutonomousSystem) -> str:
        for key, candidate in self._global_as.items():
            if candidate is provider:
                return key
        return provider.name.lower()

    def _build_regional_providers(self) -> None:
        # Membership comes from the *full* country table, not the
        # configured sample: the providers (and their ASNs and PoP
        # lists) are identical no matter which countries are generated,
        # so adding a country to a series never perturbs the others.
        members_by_continent: dict[Continent, list[str]] = {}
        for code, country in COUNTRIES.items():
            members_by_continent.setdefault(country.continent, []).append(code)
        for continent, hubs in REGIONAL_HUBS.items():
            members = members_by_continent.get(continent, [])
            providers: list[AutonomousSystem] = []
            rng = derive_rng(self.config.seed, "regional", continent.name)
            for index, hub in enumerate(hubs):
                stem = REGIONAL_PROVIDER_STEMS[index % len(REGIONAL_PROVIDER_STEMS)]
                name = f"{stem}-{hub.lower()}".replace("_", "-")
                pop_codes = list(dict.fromkeys([hub] + members))
                pops = tuple(self._pop_at(code) for code in pop_codes)
                autonomous_system = AutonomousSystem(
                    asn=self._alloc_infra_asn(),
                    name=name.upper(),
                    organization=f"{stem.replace('-', ' ').title()} ({hub})",
                    registration_country=hub,
                    kind=ASKind.REGIONAL_HOSTING,
                    pops=pops,
                    website=f"https://www.{name}.com",
                    contact_domain=f"{name}.com",
                )
                self.registry.register_as(autonomous_system)
                providers.append(autonomous_system)
                self.websearch[autonomous_system.website] = (
                    f"{autonomous_system.organization} offers colocation and "
                    f"hosting across {continent.value}."
                )
                rng.random()  # reserved for future per-provider variation
            self._regional[continent] = providers

    # ----------------------------------------------------------- country ASes

    def _build_country_ases(self, country: Country, profile: HostingProfile) -> None:
        code = country.code
        rng = derive_rng(self.config.seed, "ases", code)
        suffix = country.gov_suffixes[0] if country.gov_suffixes else f"gov-{country.cctld}.{country.cctld}"

        gov_list: list[AutonomousSystem] = []
        sectors = ["informatics", "interior", "finance", "defense", "education",
                   "health", "justice", "planning"]
        for index in range(profile.gov_network_count):
            sector = sectors[index % len(sectors)]
            org = government_org_name(sector, country.name, rng)
            autonomous_system = AutonomousSystem(
                asn=self._alloc_country_asn(code),
                name=f"GOVNET-{code}-{index + 1}",
                organization=org,
                registration_country=code,
                kind=ASKind.GOVERNMENT,
                pops=(self._pop_at(code, index),),
                website=f"https://www.{sector}.{suffix}",
                contact_domain=suffix if rng.random() < 0.7 else f"{sector}-{code.lower()}.{country.cctld}",
            )
            self.registry.register_as(autonomous_system)
            gov_list.append(autonomous_system)
            if rng.random() < self.config.websearch_coverage:
                self.websearch[autonomous_system.website] = (
                    f"{org} is a federal government institution of {country.name}."
                )
        self._gov_as[code] = gov_list

        soe_list: list[AutonomousSystem] = []
        # "energy-holding"/"petro-fiscal" carry no government keyword in
        # their names (the YPF case): only the web-search step finds them.
        soe_stems = ["national-telecom", "energy-holding", "petro-fiscal"]
        chosen_stems = soe_stems[: max(1, profile.gov_network_count // 2)]
        override = self.config.override_for(code)
        if override is not None and override.extra_soes:
            # Evolution: newly corporatized state ventures get their own
            # networks, drawn from this country's fixed ASN block.
            chosen_stems = chosen_stems + [
                f"state-venture-{n + 1}" for n in range(override.extra_soes)
            ]
        for index, stem in enumerate(chosen_stems):
            org = soe_org_name(stem, country.name, rng)
            website = f"https://www.{stem}-{country.cctld}.com"
            autonomous_system = AutonomousSystem(
                asn=self._alloc_country_asn(code),
                name=f"{stem.replace('-', '').upper()}-{code}",
                organization=org,
                registration_country=code,
                kind=ASKind.SOE,
                pops=(self._pop_at(code, index),),
                website=website,
                contact_domain=f"{stem}-{country.cctld}.com",
            )
            self.registry.register_as(autonomous_system)
            soe_list.append(autonomous_system)
            if rng.random() < self.config.websearch_coverage:
                self.websearch[website] = (
                    f"{org} is a state-owned enterprise; the government of "
                    f"{country.name} holds a majority stake."
                )
        self._soe_as[code] = soe_list

        local_list: list[AutonomousSystem] = []
        for index in range(profile.local_provider_count):
            stem = LOCAL_PROVIDER_STEMS[index % len(LOCAL_PROVIDER_STEMS)]
            name = f"{stem}-{country.cctld}"
            autonomous_system = AutonomousSystem(
                asn=self._alloc_country_asn(code),
                name=name.upper(),
                organization=f"{stem.title()} Hosting {country.name}",
                registration_country=code,
                kind=ASKind.LOCAL_HOSTING,
                pops=(self._pop_at(code, index),),
                website=f"https://www.{name}.com",
                contact_domain=f"{name}.com",
            )
            self.registry.register_as(autonomous_system)
            local_list.append(autonomous_system)
            self.websearch[autonomous_system.website] = (
                f"{autonomous_system.organization} is a commercial web host."
            )
        self._local_as[code] = local_list

        # A domestically registered provider with offshore serving sites,
        # used when the foreign-hosting quota exceeds the global share
        # (e.g. China's domestic providers serving from Japan).
        partner_codes = list(profile.partners) or ["US"]
        pops = tuple(
            self._pop_at(pc) for pc in dict.fromkeys([code] + partner_codes)
        )
        intl_local = AutonomousSystem(
            asn=self._alloc_country_asn(code),
            name=f"GLOBALEDGE-{code}",
            organization=f"GlobalEdge Hosting {country.name}",
            registration_country=code,
            kind=ASKind.LOCAL_HOSTING,
            pops=pops,
            website=f"https://www.globaledge-{country.cctld}.com",
            contact_domain=f"globaledge-{country.cctld}.com",
        )
        self.registry.register_as(intl_local)
        self.websearch[intl_local.website] = (
            f"{intl_local.organization} operates data centers at home and abroad."
        )
        self._intl_local_as[code] = intl_local

    # ------------------------------------------------------------- deployment

    def _weighted_as(
        self,
        candidates: list[AutonomousSystem],
        concentration: float,
        rng: random.Random,
    ) -> AutonomousSystem:
        """Pick an AS with Zipf-like concentration over the candidate list."""
        weights = [(index + 1) ** (-concentration) for index in range(len(candidates))]
        return rng.choices(candidates, weights=weights, k=1)[0]

    def _anycast_group_for(
        self,
        provider: AutonomousSystem,
        code: str,
        rng: random.Random,
    ) -> AnycastGroup:
        key = (provider.asn, code)
        groups = self._anycast_groups.setdefault(key, [])
        if groups and rng.random() < 0.6:
            return rng.choice(groups)
        offshore = rng.random() < self.config.anycast_offshore_rate
        pop_codes = [hub for hub in ANYCAST_HUBS if hub != code]
        if not offshore:
            pop_codes.insert(0, code)
        pops = tuple(self._pop_at(pc) for pc in pop_codes)
        scope, epoch = self._scope_args()
        address = self.registry.allocate_address(provider, pops[0], scope, epoch)
        group = AnycastGroup(address=address, asn=provider.asn, pops=pops)
        self.anycast_index.add(group)
        self._address_info[address] = (provider, pops[0], True)
        self._address_scope[address] = code
        groups.append(group)
        return group

    def _deploy_host(
        self,
        hostname: str,
        code: str,
        category: HostingCategory,
        foreign: bool,
        partner: Optional[str],
        profile: HostingProfile,
        rng: random.Random,
        fresh_ip: bool = False,
    ) -> HostTruth:
        """Create the AS/address/DNS/anycast wiring for one hostname."""
        country = get_country(code)
        anycast = False
        record = None
        if category is HostingCategory.GOVT_SOE:
            candidates = self._gov_as[code] + self._soe_as[code]
            autonomous_system = self._weighted_as(candidates, profile.concentration, rng)
            pop = autonomous_system.pops[0]
            address = self._new_address(autonomous_system, pop, rng)
            serving = pop.country
        elif category is HostingCategory.P3_LOCAL:
            if foreign:
                autonomous_system = self._intl_local_as[code]
                target = partner or "US"
                pop = next(
                    (p for p in autonomous_system.pops if p.country == target),
                    autonomous_system.pops[-1],
                )
            else:
                autonomous_system = self._weighted_as(
                    self._local_as[code], profile.concentration, rng
                )
                pop = autonomous_system.pops[0]
            address = self._new_address(autonomous_system, pop, rng)
            serving = pop.country
        elif category is HostingCategory.P3_REGIONAL:
            continent = country.continent
            candidates = [
                provider
                for provider in self._regional.get(continent, [])
                if provider.registration_country != code
            ]
            if not candidates:
                # No same-continent provider exists: degrade to global.
                return self._deploy_host(
                    hostname, code, HostingCategory.P3_GLOBAL, foreign, partner,
                    profile, rng,
                )
            autonomous_system = self._weighted_as(candidates, 1.0, rng)
            if foreign:
                target = autonomous_system.registration_country
                if partner and autonomous_system.has_pop_in(partner) and partner != code:
                    target = partner
            else:
                target = code
            pop = next(
                (p for p in autonomous_system.pops if p.country == target),
                autonomous_system.pops[0],
            )
            address = self._new_address(autonomous_system, pop, rng)
            serving = pop.country
        else:  # P3_GLOBAL
            adopted = self._adoption[code]
            if foreign:
                target = partner or "US"
                candidates = [
                    (a, w) for a, w in adopted if a.has_pop_in(target)
                ]
                if not candidates:
                    fallback = self._global_as["cloudflare"]
                    candidates = [(fallback, 1.0)]
                autonomous_system = rng.choices(
                    [a for a, _ in candidates],
                    weights=[w for _, w in candidates],
                    k=1,
                )[0]
                pop = next(p for p in autonomous_system.pops if p.country == target)
                address = self._new_address(
                    autonomous_system, pop, rng, reuse=not fresh_ip
                )
                serving = pop.country
            else:
                use_anycast = rng.random() < profile.anycast_frac
                if use_anycast:
                    pool = [(a, w) for a, w in adopted if a.anycast_capable]
                else:
                    # Domestic serving requires a provider with a local
                    # region; countries pick accordingly.
                    pool = [(a, w) for a, w in adopted if a.has_pop_in(code)]
                if not pool:
                    pool = [(self._global_as["cloudflare"], 1.0)]
                autonomous_system = rng.choices(
                    [a for a, _ in pool],
                    weights=[w for _, w in pool],
                    k=1,
                )[0]
                if autonomous_system.anycast_capable and use_anycast:
                    group = self._anycast_group_for(autonomous_system, code, rng)
                    address = group.address
                    anycast = True
                    capital = capital_of(code)
                    serving = group.catchment(capital.lat, capital.lon).country
                elif autonomous_system.has_pop_in(code):
                    domestic_pop = autonomous_system.pops_in(code)[0]
                    if rng.random() < self.config.geo_dns_prob and len(autonomous_system.pops) > 2:
                        # Geo-DNS record: domestic PoP plus two hub PoPs.
                        others = [
                            p for p in autonomous_system.pops
                            if p.country != code and p.country in ANYCAST_HUBS
                        ][:2]
                        endpoints = []
                        for pop in [domestic_pop] + others:
                            endpoint_address = self._new_address(
                                autonomous_system, pop, rng
                            )
                            endpoints.append((pop, endpoint_address))
                        record = GeoARecord(endpoints=tuple(endpoints))
                        address = endpoints[0][1]
                        serving = code
                    else:
                        address = self._new_address(autonomous_system, domestic_pop, rng)
                        serving = code
                else:
                    # Provider lacks a domestic region: nearest hub serves.
                    pop = autonomous_system.pops[0]
                    address = self._new_address(autonomous_system, pop, rng)
                    serving = pop.country

        if record is None:
            record = StaticARecord(address=address)

        # Third-party deployments frequently sit behind a CNAME chain.
        if category.is_third_party and rng.random() < 0.6:
            target = self._next_cname_target(autonomous_system)
            self.zone.add(hostname, CnameRecord(target=target))
            self.zone.add(target, record)
        else:
            self.zone.add(hostname, record)

        # Late import: the urlfilter package pulls in the whole pipeline,
        # which itself imports this module at init time.
        from repro.core.urlfilter import matches_gov_tld

        expected_filter = "tld" if matches_gov_tld(hostname) else "domain"
        return HostTruth(
            hostname=hostname,
            country=code,
            category=category,
            asn=autonomous_system.asn,
            address=address,
            serving_country=serving,
            anycast=anycast,
            registered_country=autonomous_system.registration_country,
            expected_filter=expected_filter,
        )

    # ---------------------------------------------------------------- country

    @dataclasses.dataclass
    class _SiteSlot:
        """Scratch record for one site before deployment."""

        hostname: str
        kind: SiteKind
        budget: int
        in_directory: bool
        category: Optional[HostingCategory] = None
        foreign: bool = False
        partner: Optional[str] = None
        forced_category: Optional[HostingCategory] = None
        forced_serving: Optional[str] = None
        #: Mission/embassy sites always occupy their own address.
        fresh_ip: bool = False

    def _make_hostname(
        self, country: Country, kind: SiteKind, name: str, rng: random.Random
    ) -> str:
        has_suffix = bool(country.gov_suffixes)
        www = "www." if rng.random() < 0.5 else ""
        # Government suffixes are far from universally used (Section 8):
        # ministries mostly adopt them, agencies only partially, SOEs rarely.
        suffix_usage = {
            SiteKind.MINISTRY: 0.65,
            SiteKind.AGENCY: 0.40,
            SiteKind.SOE: 0.10,
        }
        if has_suffix and rng.random() < suffix_usage[kind]:
            suffix = rng.choice(country.gov_suffixes)
            candidate = f"{www}{name}.{suffix}"
        elif kind is SiteKind.SOE and rng.random() < 0.5:
            candidate = f"{www}{name}-{country.cctld}.com"
        else:
            candidate = f"{www}{name}.{country.cctld}"
        return self._unique_hostname(candidate)

    def _size_sampler(
        self, multiplier: float, rng: random.Random
    ):
        """A sampler of object sizes whose mean is scaled by ``multiplier``."""
        multiplier = min(max(multiplier, 0.05), 20.0)
        sigma = 1.0
        mu = math.log(self.config.mean_resource_bytes * multiplier) - sigma ** 2 / 2.0
        def sample() -> int:
            return max(200, int(rng.lognormvariate(mu, sigma)))
        return sample

    def _build_country(self, country: Country) -> None:
        code = country.code
        self._scope_code = code
        profile = get_profile(code)
        override = self.config.override_for(code)
        if self.config.third_party_drift > 0:
            from repro.world.profiles import drift_profile

            profile = drift_profile(profile, self.config.third_party_drift)
        if override is not None and override.hyperscaler_shift > 0:
            # Evolution: part of this country's sites migrated to
            # hyperscalers since the parent snapshot.
            from repro.world.profiles import drift_profile

            profile = drift_profile(profile, override.hyperscaler_shift)
        rng = derive_rng(self.config.seed, "country", code)
        scale = self.config.scale

        if country.hostnames <= 0:
            # e.g. South Korea: Table 8 records no collected sites.
            self.truth.directories[code] = []
            self._build_country_ases(country, profile)
            return

        self._build_country_ases(country, profile)

        has_suffix = bool(country.gov_suffixes)
        n_sites_target = max(3, round(country.hostnames * scale))
        n_named = max(3, round(n_sites_target / 1.25)) if has_suffix else n_sites_target
        n_internal = max(n_named * 2, round(country.internal_urls * scale))
        n_landing = max(n_named, round(country.landing_urls * scale))
        n_landing = min(n_landing, n_named * 3)

        # France's offshore share is one state-owned hostname in New
        # Caledonia (gouv.nc, hosted by OPT, Section 6.3).
        nc_budget = 0
        if code == "FR":
            nc_budget = round(profile.intl_server_frac * n_internal)
            n_internal -= nc_budget

        # --- name the sites --------------------------------------------------
        name_iters = {
            kind: iter_site_names(kind, derive_rng(self.config.seed, "names", code, kind.name))
            for kind in SiteKind
        }
        slots: list[_Generator._SiteSlot] = []
        for index in range(n_named):
            draw = index % 10
            if draw < 3:
                kind = SiteKind.MINISTRY
            elif draw < 8:
                kind = SiteKind.AGENCY
            else:
                kind = SiteKind.SOE
            hostname = self._make_hostname(country, kind, next(name_iters[kind]), rng)
            slots.append(self._SiteSlot(hostname=hostname, kind=kind, budget=0,
                                        in_directory=True))

        # --- URL budgets (Zipf-ish, exact total) ------------------------------
        weights = [(index + 1) ** -0.85 for index in range(n_named)]
        budgets = largest_remainder(n_internal, weights)
        for slot, budget in zip(slots, budgets):
            slot.budget = budget
        for slot in slots:
            if slot.budget == 0:
                donor = max(slots, key=lambda s: s.budget)
                if donor.budget > 1:
                    donor.budget -= 1
                    slot.budget = 1

        # --- SAN-verified sites ----------------------------------------------
        san_slots: list[_Generator._SiteSlot] = []
        if n_named >= 25:
            k_san = max(1, round(self.config.san_site_frac * n_named))
            for index in range(k_san):
                hostname = self._unique_hostname(
                    f"{next(name_iters[SiteKind.SOE])}-{country.name.split()[0].lower()}.com"
                )
                budget = max(1, round(0.003 * n_internal / k_san))
                donor = max(slots, key=lambda s: s.budget)
                donor.budget = max(1, donor.budget - budget)
                san_slots.append(self._SiteSlot(
                    hostname=hostname, kind=SiteKind.SOE, budget=budget,
                    in_directory=False,
                ))
        if code == "NL":
            # The Dutch bilateral deployments of Section 6.3.
            for hostname, partner in (
                ("dutchculturekorea.com", "KR"),
                ("nbso-brazil.com.br", "BR"),
            ):
                donor = max(slots, key=lambda s: s.budget)
                budget = max(1, min(3, donor.budget - 1))
                donor.budget -= budget
                slot = self._SiteSlot(
                    hostname=self._unique_hostname(hostname), kind=SiteKind.AGENCY,
                    budget=budget, in_directory=False,
                    forced_category=HostingCategory.P3_LOCAL,
                )
                slot.foreign = True
                slot.partner = partner
                san_slots.append(slot)

        # --- mission (embassy/consulate) sites ---------------------------------
        # Governments run small web properties abroad, hosted near the
        # mission (the Dutch examples of Section 6.3 generalize); populous
        # countries operate many more of them.  Each occupies its own
        # address, so foreign *address* shares exceed foreign URL shares.
        mission_slots: list[_Generator._SiteSlot] = []
        if n_named >= 5:
            from repro.world.profiles import development_z

            z_users, _, _ = development_z(code)
            emb_scale = math.exp(0.8 * z_users)
            n_missions = round(0.05 * n_named * emb_scale)
            n_missions = min(n_missions, max(0, int(0.006 * n_internal)))
            dests = [d for d in ("US", "GB", "DE", "FR", "JP", "BR", "ZA",
                                 "AU", "AE", "SG", "CA", "IN")
                     if d != code and d in COUNTRIES]
            for index in range(n_missions):
                dest = dests[index % len(dests)]
                suffix = (
                    rng.choice(country.gov_suffixes)
                    if country.gov_suffixes
                    else country.cctld
                )
                hostname = self._unique_hostname(
                    f"mission-{dest.lower()}.mfa.{suffix}"
                )
                donor = max(slots, key=lambda s: s.budget)
                budget = 2 if donor.budget > 3 else 1
                donor.budget = max(1, donor.budget - budget)
                slot = self._SiteSlot(
                    hostname=hostname, kind=SiteKind.AGENCY, budget=budget,
                    in_directory=True,
                    forced_category=HostingCategory.P3_GLOBAL,
                    fresh_ip=True,
                )
                slot.foreign = True
                slot.partner = dest
                mission_slots.append(slot)

        all_slots = slots + san_slots + mission_slots

        # --- category assignment (URL-weighted greedy) -------------------------
        total_budget = sum(slot.budget for slot in all_slots)
        full_total = total_budget + nc_budget
        targets = {
            category: share * full_total
            for category, share in profile.url_mix.items()
        }
        if nc_budget:
            targets[HostingCategory.GOVT_SOE] = max(
                0.0, targets[HostingCategory.GOVT_SOE] - nc_budget
            )
        assignable = [slot for slot in all_slots if slot.forced_category is None]
        # Categories with no share in the profile must never absorb tail
        # slots, even once the other targets run (slightly) negative.
        eligible = [
            category for category, share in profile.url_mix.items() if share > 0
        ] or list(profile.url_mix)
        for slot in sorted(assignable, key=lambda s: -s.budget):
            category = max(eligible, key=lambda cat: targets[cat])
            slot.category = category
            targets[category] -= slot.budget
        for slot in all_slots:
            if slot.forced_category is not None:
                slot.category = slot.forced_category

        # --- foreign-serving quota ---------------------------------------------
        if code != "FR":
            target_foreign = round(profile.intl_server_frac * total_budget)
            target_foreign -= sum(s.budget for s in all_slots if s.foreign)
            order: list[_Generator._SiteSlot] = []
            for category in (
                HostingCategory.P3_GLOBAL,
                HostingCategory.P3_LOCAL,
                HostingCategory.P3_REGIONAL,
            ):
                group = [
                    slot for slot in all_slots
                    if slot.category is category and not slot.foreign
                ]
                # Small sites first: offshore hosting concentrates on the
                # long tail of minor agency sites, so a country's foreign
                # *address* share exceeds its foreign URL share.
                group.sort(key=lambda slot: slot.budget)
                order.extend(group)
            partner_codes = list(profile.partners)
            partner_weights = [profile.partners[p] for p in partner_codes]
            accumulated = 0
            for slot in order:
                if accumulated >= target_foreign:
                    break
                # Only take the slot if it brings the total closer to the
                # target; Zipf-sized slots would otherwise overshoot badly.
                if abs(accumulated + slot.budget - target_foreign) > abs(
                    accumulated - target_foreign
                ):
                    continue
                slot.foreign = True
                if partner_codes:
                    slot.partner = rng.choices(partner_codes, partner_weights, k=1)[0]
                else:
                    slot.partner = "US"
                accumulated += slot.budget

        # --- deployments, DNS, pages, certificates ------------------------------
        landing_extra = n_landing - len(slots)
        extra_allocation = largest_remainder(
            max(landing_extra, 0), [slot.budget + 1 for slot in slots]
        ) if slots else []
        directory: list[str] = []
        san_hostnames = [slot.hostname for slot in san_slots]
        anchor_slot = max(slots, key=lambda s: s.budget)
        san_landing_urls = [f"https://{slot.hostname}/" for slot in san_slots]

        if nc_budget:
            self._deploy_new_caledonia(country, nc_budget, rng, directory)

        rng_https = derive_rng(self.config.seed, "https", code)
        rng_dns = derive_rng(self.config.seed, "dns", code)
        for slot_index, slot in enumerate(all_slots):
            truth = self._deploy_slot(country, profile, slot, rng)
            static_hostname = None
            if (
                slot.in_directory
                and has_suffix
                and truth.expected_filter == "tld"
                and rng.random() < self.config.static_subdomain_frac
            ):
                static_hostname = self._unique_hostname(f"static.{slot.hostname}")
                self.zone.add(static_hostname, StaticARecord(address=truth.address))
                self.truth.hosts[static_hostname] = dataclasses.replace(
                    truth, hostname=static_hostname
                )
            n_paths = 1
            if slot.in_directory and slot_index < len(slots):
                n_paths += extra_allocation[slot_index]
            landing_paths = ["/"] + [f"/portal{j}/" for j in range(1, n_paths)]
            multiplier = (
                profile.byte_mix[slot.category] / profile.url_mix[slot.category]
                if profile.url_mix[slot.category] > 0
                else 1.0
            )
            spec = SiteBuildSpec(
                hostname=slot.hostname,
                country=code,
                kind=slot.kind,
                landing_paths=landing_paths,
                internal_budget=slot.budget,
                size_sampler=self._size_sampler(multiplier, rng),
                static_hostname=static_hostname,
                external_ratio=self.config.external_url_ratio,
                external_hosts=_EXTERNAL_HOSTS,
                geo_restricted=rng.random() < self.config.geo_restricted_frac,
                extra_links=san_landing_urls if slot is anchor_slot else (),
            )
            site = build_site(spec, self.config.depth_distribution, rng)
            self.web.register_site(site)
            if slot.in_directory:
                directory.extend(f"https://{slot.hostname}{p}" for p in landing_paths)
            sans = [slot.hostname]
            if static_hostname:
                sans.append(static_hostname)
            if slot is anchor_slot:
                sans.extend(san_hostnames)
            # HTTPS adoption follows digital development (Singanamalla et
            # al.): low-EGDI governments serve plain HTTP or invalid certs.
            # The SAN-verification anchor always presents a valid cert.
            egdi = country.egdi if country.egdi is not None else 0.85
            https_rate = min(0.98, 0.20 + 0.65 * egdi)
            if slot is anchor_slot or rng_https.random() < https_rate:
                valid = slot is anchor_slot or rng_https.random() < 0.80
                self.certificates.install(
                    slot.hostname,
                    Certificate(subject=slot.hostname, sans=tuple(sans),
                                valid=valid),
                )
            self._register_delegation(truth, rng_dns)

        self.truth.directories[code] = directory
        self.truth.san_anchor[code] = anchor_slot.hostname

    def _deploy_slot(
        self,
        country: Country,
        profile: HostingProfile,
        slot: "_Generator._SiteSlot",
        rng: random.Random,
    ) -> HostTruth:
        assert slot.category is not None
        truth = self._deploy_host(
            hostname=slot.hostname,
            code=country.code,
            category=slot.category,
            foreign=slot.foreign,
            partner=slot.partner,
            profile=profile,
            rng=rng,
            fresh_ip=slot.fresh_ip,
        )
        if not slot.in_directory and truth.expected_filter == "domain":
            truth = dataclasses.replace(truth, expected_filter="san")
        self.truth.hosts[truth.hostname] = truth
        return truth

    def _register_delegation(self, truth: HostTruth, rng: random.Random) -> None:
        """Assign the authoritative-DNS delegation of a hostname's domain.

        Government-operated sites mostly self-host their nameservers;
        third-party-hosted sites split between the serving provider's DNS
        and the big managed-DNS platforms -- the concentration pattern the
        e-government DNS studies report.
        """
        from repro.urltools import registrable_domain

        domain = registrable_domain(truth.hostname)
        if self.nameservers.lookup(domain) is not None:
            return
        serving_as = self.registry.get_as(truth.asn)
        managed = [
            (self._global_as["cloudflare"], 3.0),
            (self._global_as["amazon"], 2.0),
            (self._global_as["microsoft"], 1.5),
        ]
        if truth.category is HostingCategory.GOVT_SOE:
            self_hosted = rng.random() < 0.70
            provider = serving_as if self_hosted else rng.choices(
                [a for a, _ in managed], weights=[w for _, w in managed], k=1
            )[0]
        else:
            draw = rng.random()
            if draw < 0.50:
                provider, self_hosted = serving_as, False
            elif draw < 0.80:
                provider = rng.choices(
                    [a for a, _ in managed], weights=[w for _, w in managed], k=1
                )[0]
                self_hosted = False
            else:
                provider, self_hosted = serving_as, True
        if self_hosted and provider is serving_as and \
                truth.category is HostingCategory.GOVT_SOE:
            names = (f"ns1.{domain}", f"ns2.{domain}")
        elif self_hosted:
            names = (f"ns1.{domain}",)
        else:
            ns_domain = provider.contact_domain or f"as{provider.asn}.net"
            label = domain.split(".")[0][:12]
            names = (f"{label}.ns.{ns_domain}", f"{label}2.ns.{ns_domain}")
        self.nameservers.register(NsDelegation(
            domain=domain,
            nameservers=names,
            provider_asn=provider.asn,
            self_hosted=self_hosted,
        ))

    def _deploy_new_caledonia(
        self,
        country: Country,
        budget: int,
        rng: random.Random,
        directory: list[str],
    ) -> None:
        """France's gouv.nc: state-owned OPT serving from New Caledonia."""
        noumea = EXTRA_TERRITORIES["NC"][3]
        pop = PoP(country="NC", city=noumea.name, lat=noumea.lat, lon=noumea.lon)
        opt = AutonomousSystem(
            asn=18200,
            name="OPT-NC",
            organization="Office des Postes et des Telecomm de Nouvelle Caledonie",
            registration_country="NC",
            kind=ASKind.SOE,
            pops=(pop,),
            website="https://www.opt.nc",
            contact_domain="opt.nc",
        )
        self.registry.register_as(opt)
        self.websearch[opt.website] = (
            "OPT is the state-owned post and telecommunications operator of "
            "New Caledonia."
        )
        hostname = self._unique_hostname("gouv.nc")
        address = self._new_address(opt, pop, rng, reuse=False)
        self.zone.add(hostname, StaticARecord(address=address))
        truth = HostTruth(
            hostname=hostname,
            country=country.code,
            category=HostingCategory.GOVT_SOE,
            asn=opt.asn,
            address=address,
            serving_country="NC",
            anycast=False,
            registered_country="NC",
            expected_filter="tld",
        )
        self.truth.hosts[hostname] = truth
        self.nameservers.register(NsDelegation(
            domain=hostname,
            nameservers=(f"ns1.{hostname}", f"ns2.{hostname}"),
            provider_asn=opt.asn,
            self_hosted=True,
        ))
        spec = SiteBuildSpec(
            hostname=hostname,
            country=country.code,
            kind=SiteKind.AGENCY,
            landing_paths=["/"],
            internal_budget=budget,
            size_sampler=self._size_sampler(1.0, rng),
            external_ratio=0.0,
        )
        site = build_site(spec, self.config.depth_distribution, rng)
        self.web.register_site(site)
        directory.append(f"https://{hostname}/")
        self.certificates.install(
            hostname, Certificate(subject=hostname, sans=(hostname,))
        )

    # ----------------------------------------------------------- measurement

    def _build_measurement_databases(self) -> set[int]:
        """Populate IPInfo, MAnycast2, PTR, IPmap and PeeringDB; return the
        set of ICMP-unresponsive addresses.

        Every address draws from its own seeded stream: the databases'
        view of one address is a pure function of that address, so a
        country gaining or losing addresses (evolution) can never
        perturb the measurement noise of any other address.
        """
        config = self.config
        location_codes = all_location_codes()
        unresponsive: set[int] = set()
        self._mark_prominent_addresses()

        for address in sorted(self._address_info):
            rng = derive_rng(config.seed, "measurement", address)
            autonomous_system, pop, is_anycast = self._address_info[address]
            if is_anycast:
                hq = autonomous_system.registration_country
                capital = capital_of(hq)
                self.ipinfo.add(IpInfoEntry(
                    address=address, country=hq, city=capital.name,
                    lat=capital.lat, lon=capital.lon,
                ))
                if rng.random() < config.manycast_recall:
                    self.manycast.flag(address)
                if rng.random() > config.anycast_icmp_rate:
                    unresponsive.add(address)
                continue

            prominent = address in self._prominent_addresses
            draw = 1.0 if prominent else rng.random()
            if draw < config.ipinfo_wrong_country_rate:
                other = rng.choice([c for c in location_codes if c != pop.country])
                capital = capital_of(other)
                entry = IpInfoEntry(address=address, country=other,
                                    city=capital.name, lat=capital.lat,
                                    lon=capital.lon)
            elif draw < config.ipinfo_wrong_country_rate + config.ipinfo_wrong_city_rate:
                cities = cities_of(pop.country)
                city = rng.choice(cities)
                entry = IpInfoEntry(address=address, country=pop.country,
                                    city=city.name, lat=city.lat, lon=city.lon)
            else:
                entry = IpInfoEntry(address=address, country=pop.country,
                                    city=pop.city, lat=pop.lat, lon=pop.lon)
            self.ipinfo.add(entry)

            if rng.random() < config.manycast_false_positive_rate:
                self.manycast.flag(address)
            if rng.random() > config.unicast_icmp_rate and not prominent:
                unresponsive.add(address)

            as_slug = "".join(
                ch for ch in autonomous_system.name.lower() if ch.isalnum()
            ) or f"as{autonomous_system.asn}"
            dialect = rng.random()
            city_token = normalize_city(pop.city)
            if dialect < config.ptr_city_rate:
                self.ptr_table.add(
                    address,
                    f"ae{rng.randint(0, 9)}.cr{rng.randint(1, 4)}."
                    f"{city_token}{rng.randint(1, 9)}.{pop.country.lower()}"
                    f".bb.{as_slug}.net",
                )
            elif dialect < config.ptr_city_rate + config.ptr_ntt_rate:
                token = (city_token + "xxxx")[:4] + pop.country.lower() + \
                    f"{rng.randint(1, 9):02d}"
                self.ptr_table.add(
                    address,
                    f"ge-{rng.randint(0, 9)}-0-1.a{rng.randint(10, 99)}."
                    f"{token}.{as_slug}-gin.net",
                )
            elif dialect < config.ptr_city_rate + config.ptr_ntt_rate + config.ptr_opaque_rate:
                self.ptr_table.add(
                    address, f"host-{address & 0xFFFF}.{as_slug}.example.net"
                )

            if rng.random() < config.ipmap_coverage:
                self.ipmap.store(address, pop.country)

        self._build_peeringdb()
        return unresponsive

    def _mark_prominent_addresses(self) -> None:
        """Flag the top quartile of each country's addresses by URL mass.

        The addresses behind major portals are ICMP-responsive and
        correctly geolocated in commercial databases; measurement noise
        concentrates on the long tail, as on the real Internet.  The
        quartile is taken per customer country so one country's site
        sizes never move another's prominence threshold.
        """
        weight: dict[int, int] = {}
        for hostname, truth in self.truth.hosts.items():
            site = self.web.site_of(hostname)
            if site is None:
                continue
            mass = sum(1 + len(page.resources) for page in site.pages.values())
            weight[truth.address] = weight.get(truth.address, 0) + mass
        by_scope: dict[str, list[int]] = {}
        for address, (_a, _p, is_anycast) in self._address_info.items():
            if is_anycast:
                continue
            scope = self._address_scope.get(address, "")
            by_scope.setdefault(scope, []).append(address)
        for unicast in by_scope.values():
            unicast.sort(key=lambda address: (-weight.get(address, 0), address))
            top = max(1, len(unicast) // 4)
            self._prominent_addresses.update(unicast[:top])

    def _build_peeringdb(self) -> None:
        config = self.config
        coverage_by_kind = {
            ASKind.GOVERNMENT: config.peeringdb_gov_coverage,
            ASKind.SOE: config.peeringdb_soe_coverage,
            ASKind.LOCAL_HOSTING: config.peeringdb_local_coverage,
            ASKind.REGIONAL_HOSTING: config.peeringdb_regional_coverage,
            ASKind.GLOBAL_PROVIDER: 1.0,
            ASKind.ISP: 0.7,
        }
        for autonomous_system in self.registry.iter_ases():
            # One stream per AS: a new AS appearing (evolution adding an
            # SOE) cannot perturb any other AS's coverage draws.
            rng = derive_rng(config.seed, "peeringdb", autonomous_system.asn)
            coverage = coverage_by_kind[autonomous_system.kind]
            if rng.random() > coverage:
                continue
            name = autonomous_system.name
            org = autonomous_system.organization
            notes = ""
            if autonomous_system.kind is ASKind.GOVERNMENT:
                if rng.random() < config.peeringdb_opaque_gov_rate:
                    name = f"NET-{autonomous_system.asn}"
                    org = f"ORG-{autonomous_system.asn}"
            elif autonomous_system.kind is ASKind.SOE and rng.random() < 0.5:
                notes = "Majority state-owned operator."
            self.peeringdb.add(PeeringDbRecord(
                asn=autonomous_system.asn,
                name=name,
                org=org,
                website=autonomous_system.website,
                notes=notes,
            ))

    # --------------------------------------------------------------- topsites

    def _build_topsites(self) -> None:
        if not self.config.include_topsites:
            return
        hosting_mix = (
            (TopsiteHosting.SELF_HOSTING, 0.18),
            (TopsiteHosting.GLOBAL, 0.76),
            (TopsiteHosting.LOCAL, 0.04),
            (TopsiteHosting.FOREIGN, 0.02),
        )
        for code in COMPARISON_COUNTRIES:
            if code not in self.codes:
                continue
            country = get_country(code)
            self._scope_code = code
            rng = derive_rng(self.config.seed, "topsites", code)
            sites: list[TopSite] = []
            hosts: list[str] = []
            for rank in range(1, self.config.topsites_per_country + 1):
                stem = TOPSITE_STEMS[(rank - 1) % len(TOPSITE_STEMS)]
                tld = country.cctld if rng.random() < 0.6 else "com"
                label = f"{stem}{rank}" if tld != "com" else f"{stem}{rank}-{country.cctld}"
                hostname = self._unique_hostname(f"www.{label}.{tld}")
                hosting = rng.choices(
                    [h for h, _ in hosting_mix],
                    weights=[w for _, w in hosting_mix],
                    k=1,
                )[0]
                self._deploy_topsite(country, hostname, hosting, rng)
                landing = f"https://{hostname}/"
                sites.append(TopSite(
                    country=code, hostname=hostname, landing_url=landing,
                    rank=rank, truth_hosting=hosting,
                ))
                hosts.append(hostname)
            self.topsites[code] = sites
            self.truth.topsite_hosts[code] = hosts

    def _deploy_topsite(
        self,
        country: Country,
        hostname: str,
        hosting: TopsiteHosting,
        rng: random.Random,
    ) -> None:
        code = country.code
        from repro.urltools import registrable_domain

        sans = [hostname]
        if hosting is TopsiteHosting.SELF_HOSTING:
            enterprise = self._enterprise_as_for(code)
            serving = code if rng.random() < 0.70 else "US"
            pop = next(
                (p for p in enterprise.pops if p.country == serving),
                enterprise.pops[0],
            )
            address = self._new_address(enterprise, pop, rng)
            if rng.random() < 0.25:
                # Off-domain static brand covered by the SAN list.
                brand = registrable_domain(hostname).split(".")[0]
                target = self._unique_hostname(f"cdn.{brand}-static.com")
                sans.append(f"{brand}-static.com")
            else:
                target = f"origin.{registrable_domain(hostname)}"
            self.zone.add(hostname, CnameRecord(target=target))
            self.zone.add(target, StaticARecord(address=address))
        elif hosting is TopsiteHosting.GLOBAL:
            specs = list(GLOBAL_PROVIDERS)
            provider = self._global_as[
                rng.choices(specs, weights=[s.base_weight for s in specs], k=1)[0].key
            ]
            domestic = provider.has_pop_in(code) and rng.random() < 0.52
            if domestic:
                pop = provider.pops_in(code)[0]
            else:
                hub = rng.choice(["US", "DE"])
                pop = next(
                    (p for p in provider.pops if p.country == hub),
                    provider.pops[0],
                )
            address = self._new_address(provider, pop, rng)
            target = self._next_cname_target(provider)
            self.zone.add(hostname, CnameRecord(target=target))
            self.zone.add(target, StaticARecord(address=address))
        elif hosting is TopsiteHosting.LOCAL:
            provider = self._weighted_as(self._local_as[code], 1.0, rng)
            address = self._new_address(provider, provider.pops[0], rng)
            self.zone.add(hostname, StaticARecord(address=address))
        else:  # FOREIGN
            continent = country.continent
            candidates = [
                provider for provider in self._regional.get(continent, [])
                if provider.registration_country != code
            ]
            provider = candidates[0] if candidates else self._global_as["cloudflare"]
            pop = next(
                (p for p in provider.pops
                 if p.country == provider.registration_country),
                provider.pops[0],
            )
            address = self._new_address(provider, pop, rng)
            self.zone.add(hostname, StaticARecord(address=address))

        self.certificates.install(
            hostname, Certificate(subject=hostname, sans=tuple(sans))
        )
        spec = SiteBuildSpec(
            hostname=hostname,
            country=code,
            kind=SiteKind.AGENCY,
            landing_paths=["/"],
            internal_budget=rng.randint(8, 40),
            size_sampler=self._size_sampler(1.0, rng),
        )
        site = build_site(spec, (0.85, 0.15, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0), rng)
        self.web.register_site(site)

    def _enterprise_as_for(self, code: str) -> AutonomousSystem:
        existing = self._enterprise_as.get(code)
        if existing is not None:
            return existing
        autonomous_system = AutonomousSystem(
            asn=self._alloc_country_asn(code),
            name=f"CORPNET-{code}",
            organization=f"Enterprise Colocation {get_country(code).name}",
            registration_country=code,
            kind=ASKind.ISP,
            pops=(self._pop_at(code), self._pop_at("US")),
            website=f"https://www.corpnet-{code.lower()}.example",
            contact_domain=f"corpnet-{code.lower()}.example",
        )
        self.registry.register_as(autonomous_system)
        self._enterprise_as[code] = autonomous_system
        return autonomous_system

    # -------------------------------------------------------------------- run

    def run(self) -> SyntheticWorld:
        self._build_global_providers()
        self._build_adoption()
        self._build_regional_providers()
        for code in self.codes:
            self._build_country(get_country(code))
        self._build_topsites()
        self._scope_code = None
        unresponsive = self._build_measurement_databases()
        fabric = ServingFabric(self.registry, self.anycast_index)
        for address in unresponsive:
            fabric.mark_unresponsive(address)
        return SyntheticWorld(
            config=self.config,
            registry=self.registry,
            whois=WhoisService(self.registry),
            zone=self.zone,
            resolver=Resolver(self.zone),
            certificates=self.certificates,
            anycast_index=self.anycast_index,
            fabric=fabric,
            web=self.web,
            vpn=VpnCatalog(),
            ipinfo=self.ipinfo,
            manycast=self.manycast,
            ptr_table=self.ptr_table,
            hoiho=HoihoExtractor(self.ptr_table),
            ipmap=self.ipmap,
            peeringdb=self.peeringdb,
            websearch=self.websearch,
            truth=self.truth,
            topsites=self.topsites,
            nameservers=self.nameservers,
        )


__all__ = ["HostTruth", "GroundTruth", "SyntheticWorld", "SYNTHETIC_ASN_BASE"]
