"""Calibration verification: measured dataset vs profile targets.

The generator promises that a pipeline run over its world reproduces
the per-country hosting profiles (which in turn encode the paper's
findings).  This module quantifies that promise: per-country deviations
between measured category mixes / offshore shares and their profile
targets, aggregated into a report that tests and benchmarks assert on.

Deviations shrink with ``WorldConfig.scale`` (quantization: a country
with three sites cannot hit a 12% share exactly) and with measurement
noise (excluded addresses), so thresholds are scale-aware.
"""

from __future__ import annotations

import dataclasses
import statistics

from repro.categories import HostingCategory
from repro.core.dataset import GovernmentHostingDataset
from repro.world.profiles import HostingProfile, drift_profile, get_profile


@dataclasses.dataclass(frozen=True)
class CountryCalibration:
    """Deviation of one country's measurements from its profile."""

    country: str
    sites: int
    #: Maximum absolute deviation across the four URL-mix shares.
    url_mix_error: float
    #: Maximum absolute deviation across the four byte-mix shares.
    byte_mix_error: float
    #: Absolute deviation of the offshore URL share.
    intl_error: float


@dataclasses.dataclass(frozen=True)
class CalibrationReport:
    """Aggregate calibration quality over a measured dataset."""

    countries: dict[str, CountryCalibration]

    @property
    def mean_url_mix_error(self) -> float:
        return statistics.mean(c.url_mix_error for c in self.countries.values())

    @property
    def mean_intl_error(self) -> float:
        return statistics.mean(c.intl_error for c in self.countries.values())

    def worst(self, count: int = 5) -> list[CountryCalibration]:
        """The countries furthest from their targets (by URL-mix error)."""
        ranked = sorted(
            self.countries.values(), key=lambda c: -c.url_mix_error
        )
        return ranked[:count]


def _mix_error(
    measured: dict[HostingCategory, float], target: dict[HostingCategory, float]
) -> float:
    return max(
        abs(measured[category] - target[category]) for category in HostingCategory
    )


def country_calibration(
    dataset: GovernmentHostingDataset,
    code: str,
    profile: HostingProfile,
) -> CountryCalibration:
    """Deviation of one country from a given profile."""
    country_dataset = dataset.countries[code]
    measured_urls = country_dataset.category_url_fractions()
    measured_bytes = country_dataset.category_byte_fractions()
    included = country_dataset.included_records()
    if included:
        measured_intl = sum(
            1 for record in included if not record.server_domestic
        ) / len(included)
    else:
        measured_intl = 0.0
    return CountryCalibration(
        country=code,
        sites=len(country_dataset.hostnames),
        url_mix_error=_mix_error(measured_urls, profile.url_mix),
        byte_mix_error=_mix_error(measured_bytes, profile.byte_mix),
        intl_error=abs(measured_intl - profile.intl_server_frac),
    )


def calibrate(
    dataset: GovernmentHostingDataset, drift: float = 0.0
) -> CalibrationReport:
    """Compare every measured country against its (possibly drifted) profile."""
    countries: dict[str, CountryCalibration] = {}
    for code, country_dataset in sorted(dataset.countries.items()):
        if not country_dataset.records:
            continue
        profile = get_profile(code)
        if drift > 0:
            profile = drift_profile(profile, drift)
        countries[code] = country_calibration(dataset, code, profile)
    return CalibrationReport(countries=countries)


__all__ = ["CountryCalibration", "CalibrationReport", "country_calibration",
           "calibrate"]
