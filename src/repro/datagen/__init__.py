"""Deterministic synthetic-world generation.

Builds a complete synthetic Internet -- ASes, prefixes, DNS, TLS,
government sites, measurement databases -- calibrated by the
per-country hosting profiles.  Everything derives from a single master
seed, so worlds are fully reproducible.
"""

from repro.datagen.config import WorldConfig
from repro.datagen.seeds import derive_seed, derive_rng
from repro.datagen.generator import SyntheticWorld, GroundTruth, HostTruth

__all__ = [
    "WorldConfig",
    "derive_seed",
    "derive_rng",
    "SyntheticWorld",
    "GroundTruth",
    "HostTruth",
]
