"""Stable seed derivation.

Every random decision in the generator and the measurement substrate
draws from a :class:`random.Random` seeded via a BLAKE2 hash of the
master seed and a component path (e.g. ``("country", "BR", "sites")``).
Adding a new component never perturbs the streams of existing ones,
which keeps calibration stable as the generator evolves.
"""

from __future__ import annotations

import hashlib
import random


def derive_seed(master_seed: int, *components: object) -> int:
    """A 64-bit seed derived from the master seed and a component path."""
    hasher = hashlib.blake2b(digest_size=8)
    hasher.update(str(master_seed).encode("utf-8"))
    for component in components:
        hasher.update(b"\x1f")
        hasher.update(str(component).encode("utf-8"))
    return int.from_bytes(hasher.digest(), "big")


def derive_rng(master_seed: int, *components: object) -> random.Random:
    """A :class:`random.Random` seeded by :func:`derive_seed`."""
    return random.Random(derive_seed(master_seed, *components))


__all__ = ["derive_seed", "derive_rng"]
