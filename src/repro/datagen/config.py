"""Generator configuration.

The defaults encode the error and coverage rates the paper reports for
its measurement inputs (IPInfo accuracy, ICMP responsiveness, PTR and
IPmap coverage, PeeringDB coverage).  ``scale`` shrinks the dataset for
quick runs; ``scale=1.0`` approximates the paper's full dataset size
(15,878 landing URLs, ~1M internal URLs).
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence


@dataclasses.dataclass(frozen=True)
class CountryOverride:
    """Per-country deviations from the base world (evolution deltas).

    Each field perturbs exactly one country's slice of the world; a
    country without an override (or with an all-default one) generates
    byte-identically to the base configuration.  The evolution model
    (:mod:`repro.evolve`) composes these across snapshot steps.
    """

    country: str
    #: (provider key, weight multiplier) pairs applied to the country's
    #: global-provider adoption weights; a multiplier above 1 also
    #: force-adopts a provider the base draw skipped.
    provider_tilt: tuple[tuple[str, float], ...] = ()
    #: Share of the remaining Govt&SOE/local mix migrated to 3P Global
    #: hosting (sites moving to hyperscalers), composed on top of the
    #: world-wide ``third_party_drift``.
    hyperscaler_shift: float = 0.0
    #: Additional state-owned-enterprise networks beyond the profile's.
    extra_soes: int = 0
    #: Prefix registration epoch: bumping it re-registers the country's
    #: address space in a fresh block range.
    prefix_epoch: int = 0
    #: Which VPN exit of the country the measurement connects through
    #: (0 = the primary capital exit; see ``VpnCatalog.vantage_at``).
    #: Changes where geo-DNS resolution happens from, not the generated
    #: world -- the vantage-sensitivity axis of scenario sweeps.
    vantage_rank: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.hyperscaler_shift <= 0.5:
            raise ValueError(
                f"hyperscaler_shift must be within [0, 0.5], "
                f"got {self.hyperscaler_shift}"
            )
        if self.extra_soes < 0:
            raise ValueError("extra_soes must be non-negative")
        if not 0 <= self.prefix_epoch < 32:
            raise ValueError("prefix_epoch must be in [0, 32)")
        if not 0 <= self.vantage_rank < 8:
            raise ValueError("vantage_rank must be in [0, 8)")
        for key, factor in self.provider_tilt:
            if factor <= 0:
                raise ValueError(
                    f"provider_tilt factor for {key!r} must be positive"
                )

    def is_default(self) -> bool:
        """True when the override changes nothing (fingerprint no-op)."""
        return (not self.provider_tilt and self.hyperscaler_shift == 0.0
                and self.extra_soes == 0 and self.prefix_epoch == 0
                and self.vantage_rank == 0)

    def canonical_dict(self) -> dict:
        """JSON-stable form: uppercased country, sorted tilt pairs."""
        return {
            "country": self.country.upper(),
            "provider_tilt": sorted(
                [key, float(factor)] for key, factor in self.provider_tilt
            ),
            "hyperscaler_shift": self.hyperscaler_shift,
            "extra_soes": self.extra_soes,
            "prefix_epoch": self.prefix_epoch,
            "vantage_rank": self.vantage_rank,
        }


@dataclasses.dataclass(frozen=True)
class WorldConfig:
    """All knobs of the synthetic world."""

    #: Master seed for every random stream.
    seed: int = 42
    #: Fraction of the paper's dataset sizes to generate.
    scale: float = 0.02
    #: Restrict generation to these country codes (None = all 61).
    countries: Optional[Sequence[str]] = None
    #: Generate topsites for the 14 comparison countries (Appendix D).
    include_topsites: bool = True
    #: Topsites per comparison country.
    topsites_per_country: int = 40
    #: Longitudinal drift toward third-party hosting: the share of the
    #: Govt&SOE mix migrated to 3P Global (the Kumar et al. follow-up
    #: finds dependencies increasing year over year).  0 = the paper's
    #: snapshot; ~0.05 approximates one further year.
    third_party_drift: float = 0.0

    # --- measurement-plane fault injection (repro.faults) -------------------
    #: Base per-attempt failure probability of the fault injector; 0
    #: disables injection entirely (byte-identical to an unfaulted run).
    fault_rate: float = 0.0
    #: Named fault profile scaling the base rate per fault domain.
    fault_profile: str = "mixed"
    #: Seed of the fault decision streams (None: derived from ``seed``),
    #: so failures can vary while the generated world stays fixed.
    fault_seed: Optional[int] = None

    # --- longitudinal evolution (repro.evolve) ------------------------------
    #: Per-country deviations from the base world.  Countries without an
    #: entry generate byte-identically to an override-free config, which
    #: is what lets an evolved snapshot reuse their cached scans.
    country_overrides: tuple[CountryOverride, ...] = ()

    # --- web structure -----------------------------------------------------
    #: Share of unique URLs found at each crawl depth (0 = landing page).
    #: Calibrated to "84% directly on landing pages, 95% within one level".
    depth_distribution: tuple[float, ...] = (
        0.84, 0.11, 0.025, 0.012, 0.006, 0.004, 0.002, 0.001,
    )
    #: Extra non-government (contractor/analytics) URLs added per government
    #: URL; the URL filter must discard these.
    external_url_ratio: float = 0.12
    #: Fraction of sites that expose an additional static asset hostname.
    static_subdomain_frac: float = 0.30
    #: Fraction of sites reachable only through SAN verification
    #: (no government TLD, not in the directory).
    san_site_frac: float = 0.004
    #: Fraction of sites refusing foreign clients.
    geo_restricted_frac: float = 0.02
    #: Mean object size in bytes before category skew.
    mean_resource_bytes: float = 60_000.0

    # --- address plan ------------------------------------------------------
    #: Probability a new hostname reuses an existing address of its AS pool.
    ip_reuse_prob: float = 0.70
    #: Probability a domestic global deployment uses a geo-DNS record
    #: instead of a pinned unicast address (when not anycast).
    geo_dns_prob: float = 0.35

    # --- measurement-substrate fidelity ------------------------------------
    #: Probability IPInfo places a unicast address in the wrong country.
    ipinfo_wrong_country_rate: float = 0.022
    #: Probability IPInfo places it in the wrong city of the right country.
    ipinfo_wrong_city_rate: float = 0.09
    #: Probability a true anycast address is flagged by MAnycast2.
    manycast_recall: float = 0.97
    #: Probability a unicast address is wrongly flagged as anycast.
    manycast_false_positive_rate: float = 0.002
    #: Probability a (non-prominent) unicast address answers ICMP; the top
    #: quartile of addresses by URL mass always responds (see
    #: ``_mark_prominent_addresses``), so the effective rate is higher.
    unicast_icmp_rate: float = 0.02
    #: Probability an anycast address answers ICMP.
    anycast_icmp_rate: float = 0.95
    #: PTR dialect mix (city, ntt, opaque); the remainder has no PTR at all.
    ptr_city_rate: float = 0.60
    ptr_ntt_rate: float = 0.25
    ptr_opaque_rate: float = 0.08
    #: Probability RIPE IPmap has a cached location for an address.
    ipmap_coverage: float = 0.70
    #: Probability an anycast deployment for a country lacks a domestic
    #: site (its catchment lands abroad and the address gets excluded).
    anycast_offshore_rate: float = 0.15
    #: PeeringDB record coverage by operator kind.
    peeringdb_gov_coverage: float = 0.45
    peeringdb_soe_coverage: float = 0.35
    peeringdb_local_coverage: float = 0.60
    peeringdb_regional_coverage: float = 0.80
    #: Among government PeeringDB records, share whose name/org fields are
    #: opaque so only the website reveals ownership.
    peeringdb_opaque_gov_rate: float = 0.25
    #: Probability a government/SOE AS has a findable website description
    #: (the "Google search" fallback of Section 3.4).
    websearch_coverage: float = 0.90

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValueError("scale must be positive")
        if abs(sum(self.depth_distribution) - 1.0) > 1e-6:
            raise ValueError("depth_distribution must sum to 1")
        for name in (
            "external_url_ratio", "static_subdomain_frac", "san_site_frac",
            "geo_restricted_frac", "ip_reuse_prob", "geo_dns_prob",
            "ipinfo_wrong_country_rate", "ipinfo_wrong_city_rate",
            "manycast_recall", "manycast_false_positive_rate",
            "unicast_icmp_rate", "anycast_icmp_rate", "ptr_city_rate",
            "ptr_ntt_rate", "ptr_opaque_rate", "ipmap_coverage",
            "anycast_offshore_rate", "peeringdb_gov_coverage",
            "peeringdb_soe_coverage", "peeringdb_local_coverage",
            "peeringdb_regional_coverage", "peeringdb_opaque_gov_rate",
            "websearch_coverage", "third_party_drift",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability, got {value}")
        if self.ptr_city_rate + self.ptr_ntt_rate + self.ptr_opaque_rate > 1.0:
            raise ValueError("PTR dialect rates must sum to at most 1")
        if not 0.0 <= self.fault_rate <= 1.0:
            raise ValueError(
                f"fault_rate must be a probability, got {self.fault_rate}"
            )
        from repro.faults.plan import FAULT_PROFILE_NAMES

        if self.fault_profile not in FAULT_PROFILE_NAMES:
            raise ValueError(
                f"unknown fault profile {self.fault_profile!r}; expected one "
                f"of {', '.join(FAULT_PROFILE_NAMES)}"
            )
        seen_override_codes = set()
        for override in self.country_overrides:
            if not isinstance(override, CountryOverride):
                raise ValueError(
                    "country_overrides must hold CountryOverride instances"
                )
            code = override.country.upper()
            if code in seen_override_codes:
                raise ValueError(f"duplicate override for country {code}")
            seen_override_codes.add(code)

    def canonical_dict(self) -> dict:
        """Every field as a JSON-stable dict (the scan-cache key input).

        Sequences become lists, country restrictions are uppercased and
        a defaulted ``fault_seed`` is resolved to the stream it derives
        (mirroring :meth:`~repro.faults.plan.FaultPlan.from_config`), so
        two configs that run identically fingerprint identically
        regardless of how their fields were spelled; any other field
        difference yields a different fingerprint.
        """
        from repro.faults.plan import FaultPlan

        data = dataclasses.asdict(self)
        data["countries"] = (
            None if self.countries is None
            else [code.upper() for code in self.countries]
        )
        data["depth_distribution"] = list(self.depth_distribution)
        data["fault_seed"] = FaultPlan.from_config(self).seed
        data["country_overrides"] = sorted(
            (override.canonical_dict() for override in self.country_overrides
             if not override.is_default()),
            key=lambda entry: entry["country"],
        )
        return data

    def canonical_global_dict(self) -> dict:
        """The country-independent fields as a JSON-stable dict.

        Everything in :meth:`canonical_dict` except the country
        selection and the per-country overrides -- the inputs that
        decide *which* scans run and how single slices deviate, but
        never the content of an unchanged country's slice.  The scan
        cache keys per-country entries on this plus the country's own
        slice (:meth:`country_slice_dict`), so mutating one country
        can only ever invalidate that country's entries.
        """
        data = self.canonical_dict()
        del data["countries"]
        del data["country_overrides"]
        return data

    def override_for(self, country: str) -> Optional[CountryOverride]:
        """The override applying to ``country``, if any."""
        code = country.upper()
        for override in self.country_overrides:
            if override.country.upper() == code:
                return override
        return None

    def country_slice_dict(self, country: str) -> dict:
        """One country's slice of the config as a JSON-stable dict."""
        override = self.override_for(country)
        return {
            "country": country.upper(),
            "override": (
                None if override is None or override.is_default()
                else override.canonical_dict()
            ),
        }

    def vantage_rank_for(self, country: str) -> int:
        """The VPN exit rank the measurement of ``country`` connects at."""
        override = self.override_for(country)
        return 0 if override is None else override.vantage_rank

    def country_codes(self) -> list[str]:
        """The country codes to generate (validated against the sample)."""
        from repro.world.countries import COUNTRIES

        if self.countries is None:
            return list(COUNTRIES)
        codes = [code.upper() for code in self.countries]
        unknown = [code for code in codes if code not in COUNTRIES]
        if unknown:
            raise ValueError(f"unknown country codes: {unknown}")
        return codes


__all__ = ["CountryOverride", "WorldConfig"]
