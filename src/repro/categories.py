"""Hosting categories shared across the library.

The paper classifies the serving infrastructure of every government URL
into four categories (Section 5.1):

* ``GOVT_SOE`` -- on-premise infrastructure operated by the government
  itself or by a State-Owned Enterprise (IMF rule: >50% federal
  ownership).
* ``P3_LOCAL`` -- a third-party provider registered in the same country
  as the government it serves.
* ``P3_REGIONAL`` -- a third-party provider registered in a different
  country whose footprint does not span beyond one continent.
* ``P3_GLOBAL`` -- a third-party network serving governments across
  multiple continents.
"""

from __future__ import annotations

import enum


class HostingCategory(enum.Enum):
    """Serving-infrastructure category of a government URL."""

    GOVT_SOE = "Govt&SOE"
    P3_LOCAL = "3P Local"
    P3_REGIONAL = "3P Regional"
    P3_GLOBAL = "3P Global"

    @property
    def is_third_party(self) -> bool:
        """True for any of the three third-party categories."""
        return self is not HostingCategory.GOVT_SOE

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Plot ordering used by the paper's stacked bar charts.
CATEGORY_ORDER = [
    HostingCategory.GOVT_SOE,
    HostingCategory.P3_LOCAL,
    HostingCategory.P3_GLOBAL,
    HostingCategory.P3_REGIONAL,
]

__all__ = ["HostingCategory", "CATEGORY_ORDER"]
