"""Rendering of paper-style tables and figure data as text."""

from repro.reporting.tables import render_table, format_fraction
from repro.reporting.figures import (
    render_mix_bars,
    render_split_bars,
    render_region_table,
)

__all__ = [
    "render_table",
    "format_fraction",
    "render_mix_bars",
    "render_split_bars",
    "render_region_table",
]
