"""Rendering of paper-style tables and figure data as text."""

from repro.reporting.tables import render_table, format_fraction
from repro.reporting.faults import render_fault_report
from repro.reporting.figures import (
    render_mix_bars,
    render_split_bars,
    render_region_table,
)
from repro.reporting.paper_report import render_paper_report
from repro.reporting.sections import (
    SECTION_NAMES,
    render_report_section,
    render_trend_report,
)
from repro.reporting.obs import render_run_summary

__all__ = [
    "SECTION_NAMES",
    "render_report_section",
    "render_trend_report",
    "render_table",
    "format_fraction",
    "render_fault_report",
    "render_run_summary",
    "render_mix_bars",
    "render_split_bars",
    "render_region_table",
    "render_paper_report",
]
