"""Rendering of fault-injection accounting (``repro.faults``)."""

from __future__ import annotations

from repro.faults.report import FaultReport
from repro.reporting.tables import render_table


def render_fault_report(report: FaultReport) -> str:
    """A per-domain fault summary table, plus per-country rows.

    Empty reports (rate-0 or fault-free runs) render a one-line notice
    instead of an empty table.
    """
    rows = [
        (country, domain, tally.injected, tally.retried,
         tally.recovered, tally.degraded, f"{tally.backoff_ms:.0f}")
        for country, domain, tally in report.iter_tallies()
        if tally.injected or tally.degraded
    ]
    if not rows:
        return "Fault report: no faults injected."
    total = report.total()
    rows.append(
        ("TOTAL", "all", total.injected, total.retried,
         total.recovered, total.degraded, f"{total.backoff_ms:.0f}")
    )
    return render_table(
        headers=("Country", "Domain", "Injected", "Retried",
                 "Recovered", "Degraded", "Backoff (ms)"),
        rows=rows,
        title="Fault injection report",
    )


__all__ = ["render_fault_report"]
