"""Plain-text table rendering used by the benchmark harness."""

from __future__ import annotations

from typing import Sequence


def format_fraction(value: float, digits: int = 2) -> str:
    """A fraction like the paper prints them (e.g. ``0.39``)."""
    return f"{value:.{digits}f}"


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned monospace table."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in cells:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))
    lines: list[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(
        header.ljust(widths[index]) for index, header in enumerate(headers)
    )
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in cells:
        lines.append(
            "  ".join(value.ljust(widths[index]) for index, value in enumerate(row))
        )
    return "\n".join(lines)


__all__ = ["format_fraction", "render_table"]
