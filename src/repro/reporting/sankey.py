"""Figure 9 Sankey data export.

Builds the data structure behind the paper's circular Sankey diagrams
-- nodes grouped by World Bank region, flows from source government to
the foreign country it depends on -- and serializes it to the JSON
shape plotting libraries (d3-sankey, plotly) consume.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Optional

from repro.analysis.crossborder import Basis, flows, region_of
from repro.core.dataset import GovernmentHostingDataset


@dataclasses.dataclass(frozen=True)
class SankeyNode:
    """One country on the diagram's ring."""

    code: str
    region: str


@dataclasses.dataclass(frozen=True)
class SankeyLink:
    """One cross-border dependency flow."""

    source: str
    target: str
    urls: int
    bytes: int
    source_region: str
    target_region: str


@dataclasses.dataclass(frozen=True)
class SankeyDiagram:
    """All Figure 9 inputs for one basis (registration / server)."""

    basis: str
    nodes: tuple[SankeyNode, ...]
    links: tuple[SankeyLink, ...]

    def to_json(self, indent: Optional[int] = None) -> str:
        """Serialize for d3-sankey / plotly consumption."""
        return json.dumps({
            "basis": self.basis,
            "nodes": [dataclasses.asdict(node) for node in self.nodes],
            "links": [dataclasses.asdict(link) for link in self.links],
        }, indent=indent)

    def region_matrix(self) -> dict[tuple[str, str], int]:
        """URL flows aggregated to (source region, target region)."""
        matrix: dict[tuple[str, str], int] = {}
        for link in self.links:
            key = (link.source_region, link.target_region)
            matrix[key] = matrix.get(key, 0) + link.urls
        return matrix


def build_sankey(
    dataset: GovernmentHostingDataset, basis: Basis = "server",
    min_urls: int = 1,
) -> SankeyDiagram:
    """Build the Figure 9 diagram data from a measured dataset."""
    links = []
    node_codes: set[str] = set()
    for flow in flows(dataset, basis):
        if flow.url_count < min_urls:
            continue
        links.append(SankeyLink(
            source=flow.source,
            target=flow.destination,
            urls=flow.url_count,
            bytes=flow.byte_count,
            source_region=region_of(flow.source).name,
            target_region=region_of(flow.destination).name,
        ))
        node_codes.add(flow.source)
        node_codes.add(flow.destination)
    nodes = tuple(
        SankeyNode(code=code, region=region_of(code).name)
        for code in sorted(node_codes, key=lambda c: (region_of(c).name, c))
    )
    return SankeyDiagram(basis=basis, nodes=nodes, links=tuple(links))


__all__ = ["SankeyNode", "SankeyLink", "SankeyDiagram", "build_sankey"]
