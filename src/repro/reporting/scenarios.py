"""Comparative sweep report: every scenario's divergence vs baseline.

Rendered from a :class:`~repro.scenarios.runner.SweepResult` plus its
:func:`~repro.scenarios.compare.compare_sweep` divergences.  The first
line after the header is the runner's grep-able dedup accounting
(``sweep: S scenarios x C countries = T tasks -> U unique scans ...``),
which CI smoke jobs assert on.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.reporting.tables import render_table
from repro.scenarios.compare import ScenarioDivergence, compare_sweep
from repro.scenarios.runner import SweepResult


def _fmt_delta(value: float, digits: int = 4) -> str:
    return f"{value:+.{digits}f}"


def render_sweep_report(
    sweep: SweepResult,
    divergences: Optional[Sequence[ScenarioDivergence]] = None,
) -> str:
    """The full comparative report of one sweep, as monospace text."""
    if divergences is None:
        divergences = compare_sweep(sweep)
    accounting = sweep.accounting
    baseline = sweep.baseline

    lines: list[str] = []
    lines.append("SCENARIO SWEEP REPORT")
    lines.append("=" * 70)
    lines.append(accounting.summary())
    lines.append(
        f"scan wave: {accounting.scan_wave_s:.2f}s; baseline config "
        f"fingerprint {baseline.run_fp}"
    )
    lines.append("")

    # Overview: one row per scenario including the baseline.
    overview_rows = [[
        baseline.name, baseline.scenario.kind, "-", "0", "-", "-", "-",
    ]]
    by_name = {divergence.name: divergence for divergence in divergences}
    for result in sweep.results[1:]:
        divergence = by_name[result.name]
        overview_rows.append([
            result.name,
            result.scenario.kind,
            ("shared" if divergence.identical_dataset
             else str(len(result.changed_countries))),
            str(divergence.verdict_flips),
            _fmt_delta(divergence.third_party_delta),
            _fmt_delta(divergence.hhi_mean_delta),
            (str(divergence.outage.affected_count)
             if divergence.outage is not None else "-"),
        ])
    lines.append(render_table(
        ["scenario", "kind", "changed", "flips", "d(3P share)",
         "d(mean HHI)", "outage hit"],
        overview_rows,
        title="Divergence vs baseline",
    ))
    lines.append("")

    # Per-scenario detail sections.
    for divergence in divergences:
        lines.append(f"--- {divergence.name} ({divergence.kind}): "
                     f"{divergence.description}")
        if divergence.identical_dataset:
            lines.append(
                "    dataset shared with baseline (no re-scan, no "
                "measurement divergence)"
            )
        else:
            changed = ", ".join(divergence.changed_countries) or "none"
            lines.append(f"    re-keyed countries: {changed}")
            if divergence.flips_by_country:
                flips = ", ".join(
                    f"{code}:{count}"
                    for code, count in divergence.flips_by_country
                )
                lines.append(
                    f"    geolocation verdict flips: "
                    f"{divergence.verdict_flips} ({flips})"
                )
            else:
                lines.append("    geolocation verdict flips: 0")
            deltas = ", ".join(
                f"{label} {_fmt_delta(delta)}"
                for label, delta in divergence.category_deltas
            )
            lines.append(f"    category URL-share deltas: {deltas}")
            lines.append(
                f"    mean network-HHI delta: "
                f"{_fmt_delta(divergence.hhi_mean_delta)}"
            )
            if divergence.hhi_top_movers:
                movers = ", ".join(
                    f"{code} {_fmt_delta(delta)}"
                    for code, delta in divergence.hhi_top_movers
                )
                lines.append(f"    HHI top movers: {movers}")
        if divergence.outage is not None:
            outage = divergence.outage
            names = ", ".join(outage.names)
            asns = ", ".join(f"AS{asn}" for asn in outage.asns)
            lines.append(
                f"    outage blast radius of {names} ({asns}): "
                f"{outage.affected_count} governments lose >10% of URLs"
            )
            if outage.affected:
                worst = ", ".join(
                    f"{code} -{share:.0%}" for code, share in outage.affected
                )
                lines.append(
                    f"    affected: {worst} "
                    f"(mean loss {outage.mean_share_lost:.0%})"
                )
        lines.append("")

    return "\n".join(lines)


__all__ = ["render_sweep_report"]
