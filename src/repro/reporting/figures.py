"""Text renderings of the paper's figures (stacked bars as rows)."""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.categories import CATEGORY_ORDER, HostingCategory
from repro.reporting.tables import format_fraction, render_table


def render_mix_bars(
    mixes: Mapping[str, Mapping[HostingCategory, float]],
    title: str = "",
) -> str:
    """Rows of category fractions (the Figure 2/4 stacked bars)."""
    headers = ["series"] + [str(category) for category in CATEGORY_ORDER]
    rows = [
        [name] + [format_fraction(mix[category]) for category in CATEGORY_ORDER]
        for name, mix in mixes.items()
    ]
    return render_table(headers, rows, title=title)


def render_split_bars(
    splits: Mapping[str, object],
    title: str = "",
) -> str:
    """Rows of Domestic/International splits (Figures 6/7/8)."""
    headers = ["series", "Domestic", "International"]
    rows = []
    for name, split in splits.items():
        rows.append([
            name,
            format_fraction(split.domestic),
            format_fraction(split.international),
        ])
    return render_table(headers, rows, title=title)


def render_region_table(
    values: Mapping[object, float],
    value_name: str,
    title: str = "",
    as_percent: bool = True,
) -> str:
    """One value per region, descending (e.g. Table 5)."""
    headers = ["Region", value_name]
    items = sorted(values.items(), key=lambda item: -item[1])
    rows = [
        [str(region), f"{value * 100:.2f}" if as_percent else format_fraction(value)]
        for region, value in items
    ]
    return render_table(headers, rows, title=title)


def render_histogram(
    labels: Sequence[str],
    counts: Sequence[int],
    title: str = "",
    bar_char: str = "#",
    max_width: int = 50,
) -> str:
    """An ASCII histogram (the Figure 10 provider counts)."""
    if len(labels) != len(counts):
        raise ValueError("labels and counts must align")
    peak = max(counts) if counts else 1
    lines = [title] if title else []
    width = max((len(label) for label in labels), default=0)
    for label, count in zip(labels, counts):
        bar = bar_char * max(1, round(count / peak * max_width)) if count else ""
        lines.append(f"{label.ljust(width)}  {str(count).rjust(4)}  {bar}")
    return "\n".join(lines)


__all__ = [
    "render_mix_bars",
    "render_split_bars",
    "render_region_table",
    "render_histogram",
]
