"""Named report sections shared by the CLI and the query service.

``repro-gov report --section X`` and the service's ``/v1/report``
endpoint must emit byte-identical text for the same dataset, so both
call :func:`render_report_section` -- one renderer, one set of
formatting decisions.  Each section matches what ``repro-gov report``
historically printed (the returned string carries no trailing newline;
``print`` adds it on the CLI side).
"""

from __future__ import annotations

from repro.analysis.engine.index import DatasetOrIndex, ensure_index
from repro.reporting.tables import render_table

#: Section names accepted by the CLI and the ``/v1/report`` endpoint.
SECTION_NAMES = ("summary", "global", "regional", "domestic", "providers",
                 "diversification", "trends", "full")


def _summary_section(index) -> str:
    # Via the index, not dataset.summarize(): over a store this streams
    # the mmapped columns instead of materializing records.
    summary = index.summary()
    rows = [[field, f"{getattr(summary, field):,}"]
            for field in ("landing_urls", "internal_urls",
                          "total_unique_urls", "unique_hostnames", "ases",
                          "government_ases", "unique_addresses",
                          "anycast_addresses", "countries_with_servers")]
    return render_table(["quantity", "value"], rows, title="Dataset summary")


def _global_section(index) -> str:
    from repro.analysis import global_breakdown
    from repro.categories import CATEGORY_ORDER

    breakdown = global_breakdown(index)
    rows = [[str(c), f"{breakdown['urls'][c]:.2f}",
             f"{breakdown['bytes'][c]:.2f}"] for c in CATEGORY_ORDER]
    return render_table(["category", "URLs", "bytes"], rows,
                        title="Global hosting mix (Figure 2)")


def _regional_section(index) -> str:
    from repro.analysis import regional_breakdown
    from repro.categories import CATEGORY_ORDER

    regional = regional_breakdown(index)
    rows = [
        [region.name] + [f"{mix[c]:.2f}" for c in CATEGORY_ORDER]
        for region, mix in sorted(regional.items(), key=lambda kv: kv[0].name)
    ]
    return render_table(
        ["region"] + [str(c) for c in CATEGORY_ORDER], rows,
        title="Regional hosting mixes (Figure 4)",
    )


def _domestic_section(index) -> str:
    from repro.analysis import global_split

    splits = global_split(index)
    rows = [[view, f"{split.domestic:.2f}", f"{split.international:.2f}"]
            for view, split in splits.items()]
    return render_table(["view", "domestic", "international"], rows,
                        title="Domestic vs international (Figure 6)")


def _providers_section(index) -> str:
    from repro.analysis import global_provider_footprints

    rows = [[fp.name, f"AS{fp.asn}", fp.country_count]
            for fp in global_provider_footprints(index)[:15]]
    return render_table(["provider", "asn", "countries"], rows,
                        title="Global providers (Figure 10)")


def _diversification_section(index) -> str:
    from repro.analysis import single_network_dependence

    rows = [[str(category), f"{above}/{total}"]
            for category, (above, total)
            in single_network_dependence(index).items()]
    return render_table(["dominant source", ">50% on one network"], rows,
                        title="Diversification (Figure 11)")


def render_trend_report(report) -> str:
    """Render a :class:`~repro.analysis.longitudinal.TrendReport`.

    Shared by ``repro-gov evolve``, the ``trends`` report section and
    anything else that wants the longitudinal tables as text.
    """
    sections = [render_table(
        ["snapshot", "countries", "3P share", "mean HHI", "providers",
         "links", "top share"],
        [[point.label, point.countries,
          f"{point.mean_third_party_share:.3f}", f"{point.mean_hhi:.3f}",
          point.provider_count, point.provider_relationships,
          f"{point.top_provider_share:.3f}"]
         for point in report.points],
        title="Longitudinal trends",
    )]
    if report.snapshot_count > 1:
        sections.append(
            f"drift over {report.snapshot_count} snapshots: "
            f"mean HHI {report.hhi_drift:+.4f}, "
            f"third-party share {report.third_party_drift:+.4f}"
        )
    if report.migrations:
        sections.append(render_table(
            ["country", "between", "from", "to"],
            [[m.country, f"{m.from_label}->{m.to_label}",
              m.from_category, m.to_category]
             for m in report.migrations],
            title="Dominant-category migrations",
        ))
    return "\n\n".join(sections)


def _trends_section(index) -> str:
    # One dataset is the degenerate single-snapshot series -- the same
    # tables a SnapshotSeries run prints, with no drift row.  Service
    # instances holding real history override this via their own series.
    from repro.analysis.longitudinal import compute_trends

    return render_trend_report(compute_trends([index]))


def _full_section(index) -> str:
    from repro.reporting.paper_report import render_paper_report

    return render_paper_report(index)


_RENDERERS = {
    "summary": _summary_section,
    "global": _global_section,
    "regional": _regional_section,
    "domestic": _domestic_section,
    "providers": _providers_section,
    "diversification": _diversification_section,
    "trends": _trends_section,
    "full": _full_section,
}


def render_report_section(dataset: DatasetOrIndex, section: str) -> str:
    """Render one named report section over a dataset or prebuilt index.

    ``KeyError`` on an unknown section name (the CLI restricts choices
    up front; the service maps this to a structured 400).
    """
    try:
        renderer = _RENDERERS[section]
    except KeyError:
        raise KeyError(
            f"unknown report section {section!r}; expected one of "
            f"{', '.join(SECTION_NAMES)}"
        ) from None
    return renderer(ensure_index(dataset))


__all__ = ["SECTION_NAMES", "render_report_section", "render_trend_report"]
