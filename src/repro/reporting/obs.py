"""Rendering of observability data (``repro.obs``) as run summaries,
run-registry listings and cross-run diffs."""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

from repro.reporting.tables import render_table

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs import Observability
    from repro.obs.registry import ManifestDiff, RegisteredRun
    from repro.obs.trace import Span


def _format_seconds(seconds: float) -> str:
    if seconds >= 60.0:
        minutes, rest = divmod(seconds, 60.0)
        return f"{int(minutes)}m{rest:04.1f}s"
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    return f"{seconds * 1000.0:.1f}ms"


def _stage_rows(run_span: "Span") -> list[tuple]:
    """One row per driver phase, with per-country rows under ``scan``."""
    total = run_span.duration_s or 1.0
    rows: list[tuple] = []
    for phase in run_span.children:
        rows.append((phase.name, _format_seconds(phase.duration_s),
                     f"{phase.duration_s / total:.0%}"))
        if phase.name == "scan":
            for scan in phase.children:
                country = scan.tags.get("country", "?")
                rows.append((f"  scan {country}",
                             _format_seconds(scan.duration_s), ""))
    return rows


def render_run_summary(obs: "Observability",
                       cache_line: Optional[str] = None) -> str:
    """Human-readable digest of one observed run.

    Renders the stage timing table from the trace, the headline
    counters from the merged metrics (crawl volume, geolocation funnel,
    fault totals) and, when given, the cache's one-line summary.
    Purely read-side: rendering never mutates the tracer or registry.
    """
    sections: list[str] = []
    run_span = obs.tracer.find("pipeline.run")
    if run_span is not None:
        header = (f"Run summary: {run_span.tags.get('countries', '?')} "
                  f"countries via {run_span.tags.get('executor', '?')} "
                  f"in {_format_seconds(run_span.duration_s)}")
        sections.append(header)
        sections.append(render_table(
            headers=("stage", "wall time", "share"),
            rows=_stage_rows(run_span),
            title="Stage timings",
        ))
    metrics = obs.metrics
    counter_rows = [
        ("pages crawled", metrics.counter("crawl.page_loads")),
        ("URLs fetched", metrics.counter("crawl.fetched_urls")),
        ("URLs accepted", metrics.counter("filter.accepted_urls")),
        ("hosts resolved", metrics.counter("resolve.resolved_hosts")),
        ("addresses geolocated", metrics.counter("geo.addresses")),
        ("  via active probing", metrics.counter("geo.funnel.active_probing")),
        ("  via HOIHO", metrics.counter("geo.funnel.hoiho")),
        ("  via IPmap", metrics.counter("geo.funnel.ipmap")),
        ("  via single-radius", metrics.counter("geo.funnel.single_radius")),
        ("  anycast", metrics.counter("geo.funnel.anycast")),
        ("  excluded", metrics.counter("geo.funnel.excluded")),
    ]
    injected = metrics.counter("faults.injected")
    if injected:
        counter_rows.extend([
            ("faults injected", injected),
            ("faults recovered", metrics.counter("faults.recovered")),
            ("faults degraded", metrics.counter("faults.degraded")),
        ])
    sections.append(render_table(
        headers=("metric", "value"),
        rows=[(name, f"{value:,}") for name, value in counter_rows],
        title="Pipeline metrics",
    ))
    if cache_line:
        sections.append(f"cache: {cache_line}")
    return "\n\n".join(sections)


def render_run_listing(runs: Sequence["RegisteredRun"]) -> str:
    """The ``obs runs`` table: one row per registered run."""
    if not runs:
        return "registry is empty (no runs recorded)"
    rows = []
    for run in runs:
        manifest = run.manifest
        wall = run.wall_s
        rate = run.hit_rate
        rows.append((
            f"#{run.seq}",
            run.id[:12],
            manifest.fingerprint[:12],
            str(manifest.seed),
            f"{manifest.scale:g}",
            manifest.executor,
            _format_seconds(wall) if wall is not None else "-",
            f"{rate:.0%}" if rate is not None else "-",
            manifest.tool_version,
        ))
    return render_table(
        headers=("run", "id", "fingerprint", "seed", "scale",
                 "executor", "wall", "hit rate", "tool"),
        rows=rows,
        title=f"Registered runs ({len(runs)})",
    )


def render_run_diff(diff: "ManifestDiff") -> str:
    """Human-readable ``obs diff`` output: only what changed."""
    header = "\n".join([
        f"A {diff.a_fingerprint}",
        f"B {diff.b_fingerprint}",
        ("fingerprints match: same measured inputs, any drift below is "
         "environmental") if diff.same_inputs
        else "fingerprints differ: the runs measured different inputs",
    ])
    if not diff.changed_fields:
        return header + "\nno differences"
    sections = [header]

    def _section(title: str, changes: dict) -> None:
        if not changes:
            return
        rows = []
        for key, change in changes.items():
            delta = change.get("delta")
            rows.append((key, str(change["a"]), str(change["b"]),
                         f"{delta:+g}" if delta is not None else ""))
        sections.append(render_table(
            headers=("field", "a", "b", "delta"),
            rows=rows, title=title,
        ))

    _section("Config", diff.config)
    if diff.countries_added or diff.countries_removed:
        parts = []
        if diff.countries_added:
            parts.append("added " + ", ".join(diff.countries_added))
        if diff.countries_removed:
            parts.append("removed " + ", ".join(diff.countries_removed))
        sections.append("countries: " + "; ".join(parts))
    _section("Dataset shape", diff.summary)
    _section("Stage wall times", diff.stage_seconds)
    _section("Cache", diff.cache)
    _section("Versions", diff.versions)
    return "\n\n".join(sections)


__all__ = ["render_run_diff", "render_run_listing", "render_run_summary"]
