"""Full paper-style evaluation report.

Renders every Section 5-7 analysis (plus the extensions) over a
measured dataset into one text document -- the "regenerate the paper's
evaluation" entry point used by ``examples/full_report.py`` and the
CLI.

The renderer builds one :class:`~repro.analysis.engine.AnalysisIndex`
up front (cached on the dataset) and feeds it to every analysis, so the
whole report costs a single record scan; the rendered text is
byte-identical to the record-loop implementations (see
``repro.analysis.engine.baseline`` and the equivalence suite).
"""

from __future__ import annotations

import statistics
from typing import Optional

from repro.analysis.crossborder import (
    foreign_share_by_destination,
    gdpr_compliance,
    regional_affinity,
    same_region_share,
)
from repro.analysis.diversification import (
    hhi_by_dominant_category,
    single_network_dependence,
)
from repro.analysis.hosting import country_majority, global_breakdown, regional_breakdown
from repro.analysis.providers import global_provider_footprints, top_reliances
from repro.analysis.registration import global_split, regional_split
from repro.analysis.regression import (
    FEATURE_NAMES,
    explanatory_regression,
    variance_inflation_factors,
)
from repro.analysis.engine.index import AnalysisIndex, DatasetOrIndex, ensure_index
from repro.categories import CATEGORY_ORDER, HostingCategory
from repro.reporting.figures import render_histogram
from repro.reporting.tables import render_table


def _section(title: str) -> str:
    rule = "=" * len(title)
    return f"\n{title}\n{rule}\n"


def _hosting_section(index: AnalysisIndex) -> str:
    parts = [_section("Trends in government hosting (Section 5)")]
    breakdown = global_breakdown(index)
    parts.append(render_table(
        ["category", "URLs", "bytes"],
        [[str(c), f"{breakdown['urls'][c]:.2f}", f"{breakdown['bytes'][c]:.2f}"]
         for c in CATEGORY_ORDER],
        title="Global prevalence (Figure 2)",
    ))
    regional = regional_breakdown(index, by_bytes=True)
    parts.append("")
    parts.append(render_table(
        ["region"] + [str(c) for c in CATEGORY_ORDER],
        [[region.name] + [f"{mix[c]:.2f}" for c in CATEGORY_ORDER]
         for region, mix in sorted(regional.items(), key=lambda kv: kv[0].name)],
        title="Regional byte mixes (Figure 4b)",
    ))
    majority = country_majority(index)
    third_party = sorted(c for c, label in majority.items() if label == "3P")
    parts.append(
        f"\nMajority third-party countries (Figure 1): {len(third_party)} of "
        f"{len(majority)} -- {' '.join(third_party)}"
    )
    return "\n".join(parts)


def _location_section(index: AnalysisIndex) -> str:
    parts = [_section("Registration and server locations (Section 6)")]
    splits = global_split(index)
    parts.append(render_table(
        ["view", "domestic", "international"],
        [[view, f"{split.domestic:.2f}", f"{split.international:.2f}"]
         for view, split in splits.items()],
        title="Global domestic/international (Figure 6)",
    ))
    location = regional_split(index, view="geolocation", weighting="url")
    parts.append("")
    parts.append(render_table(
        ["region", "domestic"],
        [[region.name, f"{split.domestic:.2f}"]
         for region, split in sorted(location.items(),
                                     key=lambda kv: kv[1].domestic)],
        title="Server location per region (Figure 8b)",
    ))
    retention = same_region_share(index)
    parts.append("")
    parts.append(render_table(
        ["region", "% in-region"],
        [[region.name, f"{share * 100:.1f}"]
         for region, share in sorted(retention.items(), key=lambda kv: -kv[1])],
        title="Cross-border dependencies staying in-region (Table 5)",
    ))
    affinity = regional_affinity(index)
    for region, hosts in sorted(affinity.items(), key=lambda kv: kv[0].name):
        leader = max(hosts, key=hosts.get)
        parts.append(f"  {region.name}: {leader} hosts {hosts[leader]:.0%} "
                     f"of in-region cross-border URLs")
    destinations = foreign_share_by_destination(index)
    if destinations:
        top = sorted(destinations.items(), key=lambda kv: -kv[1])[:5]
        parts.append("  top foreign destinations: " + ", ".join(
            f"{code} {share:.0%}" for code, share in top))
    parts.append(f"  GDPR compliance of EU members: {gdpr_compliance(index):.1%}")
    return "\n".join(parts)


def _centralization_section(index: AnalysisIndex) -> str:
    parts = [_section("Global providers and diversification (Section 7)")]
    footprints = global_provider_footprints(index)
    if footprints:
        parts.append(render_histogram(
            [f"{fp.name} (AS{fp.asn})" for fp in footprints[:10]],
            [fp.country_count for fp in footprints[:10]],
            title="Countries per Global provider (Figure 10)",
        ))
    reliances = top_reliances(index, 5)
    parts.append("")
    parts.append(render_table(
        ["provider", "country", "byte share"],
        [[name, country, f"{fraction:.0%}"]
         for name, _asn, country, fraction in reliances],
        title="Deepest single-provider reliances",
    ))
    groups = hhi_by_dominant_category(index, by_bytes=True)
    dependence = single_network_dependence(index)
    rows = []
    for category in (HostingCategory.GOVT_SOE, HostingCategory.P3_LOCAL,
                     HostingCategory.P3_GLOBAL):
        values = groups.get(category, [])
        above, total = dependence.get(category, (0, 0))
        rows.append([
            str(category),
            f"{statistics.median(values):.2f}" if values else "-",
            f"{above}/{total}" if total else "-",
        ])
    parts.append("")
    parts.append(render_table(
        ["dominant source", "median HHI", ">50% single network"],
        rows, title="Diversification (Figure 11)",
    ))
    return "\n".join(parts)


def _regression_section(index: AnalysisIndex) -> str:
    parts = [_section("Explanatory factors (Appendix E)")]
    try:
        result = explanatory_regression(index)
    except ValueError:
        return parts[0] + "not enough countries for the regression"
    vifs = variance_inflation_factors(index)
    parts.append(render_table(
        ["feature", "estimate", "p-value", "VIF"],
        [[name,
          f"{result.coefficient(name).estimate:+.3f}",
          f"{result.coefficient(name).p_value:.3f}",
          f"{vifs[name]:.2f}"]
         for name in FEATURE_NAMES],
        title="OLS over offshore-hosting shares (Figure 12, Table 7)",
    ))
    parts.append(f"R^2 = {result.r_squared:.2f}, n = {result.n_observations}")
    return "\n".join(parts)


def render_paper_report(
    dataset: DatasetOrIndex,
    world: Optional[object] = None,
) -> str:
    """The full evaluation report; pass the world to add the extensions."""
    index = ensure_index(dataset)
    summary = index.summary()
    header = (
        "OF CHOICES AND CONTROL -- reproduction report\n"
        f"{summary.total_unique_urls:,} URLs / "
        f"{summary.unique_hostnames:,} hostnames / "
        f"{summary.ases} ASes / {summary.unique_addresses} addresses / "
        f"{summary.countries_with_servers} server countries\n"
    )
    sections = [
        header,
        _hosting_section(index),
        _location_section(index),
        _centralization_section(index),
        _regression_section(index),
    ]
    if world is not None:
        from repro.analysis.dnsdep import global_third_party_dns_share
        from repro.analysis.https_adoption import global_https_prevalence

        have, valid = global_https_prevalence(world, index)
        dns_share = global_third_party_dns_share(world, index)
        sections.append(_section("Extensions") + (
            f"valid HTTPS on government hostnames: {valid:.1%}\n"
            f"government domains on third-party DNS: {dns_share:.1%}"
        ))
    return "\n".join(sections) + "\n"


__all__ = ["render_paper_report"]
