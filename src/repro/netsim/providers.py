"""Catalog of global third-party providers.

Figure 10 of the paper identifies 28 global providers serving
government content, led by Cloudflare (49 of 61 countries), Amazon (31)
and Microsoft/Azure (28).  This module declares those providers with
their real ASNs and registration countries, an *adoption prior* that
reproduces the country-count histogram, and footprint descriptions used
by the generator to instantiate PoPs.
"""

from __future__ import annotations

import dataclasses

#: Sentinel for providers with a PoP in essentially every sample country
#: (large anycast CDNs).
WIDE = "WIDE"

#: Countries commonly hosting hyperscaler regions; used as the footprint of
#: non-WIDE providers unless an explicit list is given.
HUB_COUNTRIES = (
    "US", "CA", "IE", "DE", "GB", "FR", "NL", "SE", "IT", "ES", "PL", "CH",
    "JP", "SG", "AU", "IN", "KR", "HK", "ID", "AE", "BR", "ZA", "FI", "AT",
)


@dataclasses.dataclass(frozen=True)
class GlobalProviderSpec:
    """Static description of one global provider."""

    key: str
    name: str
    asn: int
    registration_country: str
    #: Probability that a given sample country adopts this provider at all;
    #: calibrated so the expected country counts match Figure 10.
    adoption_prior: float
    #: Either :data:`WIDE` or a tuple of country codes with PoPs.
    footprint: object = HUB_COUNTRIES
    anycast: bool = False
    #: Relative weight among adopted providers when assigning deployments.
    base_weight: float = 1.0


#: The 28 global providers of Figure 10, most-adopted first.
GLOBAL_PROVIDERS: tuple[GlobalProviderSpec, ...] = (
    GlobalProviderSpec("cloudflare", "Cloudflare", 13335, "US", 0.80,
                       WIDE, anycast=True, base_weight=3.0),
    GlobalProviderSpec("amazon", "Amazon", 16509, "US", 0.51,
                       base_weight=2.2),
    GlobalProviderSpec("microsoft", "Microsoft", 8075, "US", 0.46,
                       base_weight=2.0),
    GlobalProviderSpec("hetzner", "Hetzner", 24940, "DE", 0.30,
                       ("DE", "FI", "US", "SG"), base_weight=1.4),
    GlobalProviderSpec("google", "Google", 396982, "US", 0.28,
                       base_weight=1.3),
    GlobalProviderSpec("ovh", "OVH", 16276, "FR", 0.25,
                       ("FR", "DE", "PL", "GB", "CA", "US", "SG", "AU"),
                       base_weight=1.2),
    GlobalProviderSpec("incapsula", "Incapsula", 19551, "US", 0.21,
                       WIDE, anycast=True, base_weight=1.0),
    GlobalProviderSpec("digitalocean", "DigitalOcean", 14061, "US", 0.19,
                       ("US", "NL", "DE", "GB", "SG", "IN", "CA", "AU"),
                       base_weight=1.0),
    GlobalProviderSpec("google-cloud", "Google Cloud", 15169, "US", 0.17,
                       base_weight=0.9),
    GlobalProviderSpec("akamai", "Akamai", 20940, "US", 0.15,
                       WIDE, anycast=True, base_weight=0.9),
    GlobalProviderSpec("fastly", "Fastly", 54113, "US", 0.14,
                       WIDE, anycast=True, base_weight=0.8),
    GlobalProviderSpec("cloudflare-lon", "Cloudflare London", 209242, "GB",
                       0.12, WIDE, anycast=True, base_weight=0.6),
    GlobalProviderSpec("unified-layer", "Unified Layer", 46606, "US", 0.11,
                       ("US",), base_weight=0.6),
    GlobalProviderSpec("sucuri", "Sucuri", 30148, "US", 0.10,
                       WIDE, anycast=True, base_weight=0.5),
    GlobalProviderSpec("automattic", "Automattic", 2635, "US", 0.09,
                       ("US", "NL", "GB"), base_weight=0.5),
    GlobalProviderSpec("akamai-linode", "Akamai Linode", 63949, "US", 0.09,
                       ("US", "DE", "GB", "SG", "JP", "IN", "AU"),
                       base_weight=0.5),
    GlobalProviderSpec("softlayer", "SoftLayer", 36351, "US", 0.08,
                       ("US", "DE", "GB", "JP", "AU"), base_weight=0.4),
    GlobalProviderSpec("squarespace", "Squarespace", 53831, "US", 0.08,
                       ("US",), base_weight=0.4),
    GlobalProviderSpec("amazon-data", "Amazon Data Services", 14618, "US",
                       0.07, ("US",), base_weight=0.4),
    GlobalProviderSpec("servercentral", "Server Central", 23352, "US", 0.06,
                       ("US",), base_weight=0.3),
    GlobalProviderSpec("singlehop", "SingleHop", 32475, "US", 0.06,
                       ("US",), base_weight=0.3),
    GlobalProviderSpec("constant", "The Constant Company", 20473, "US", 0.05,
                       ("US", "NL", "DE", "JP", "SG", "AU"), base_weight=0.3),
    GlobalProviderSpec("inmotion", "InMotion Hosting", 54641, "US", 0.05,
                       ("US",), base_weight=0.3),
    GlobalProviderSpec("network-sol", "Network Solutions", 19871, "US", 0.04,
                       ("US",), base_weight=0.25),
    GlobalProviderSpec("ionos", "Ionos", 8560, "DE", 0.04,
                       ("DE", "US", "GB", "ES"), base_weight=0.25),
    GlobalProviderSpec("godaddy", "GoDaddy", 26496, "US", 0.04,
                       ("US",), base_weight=0.2),
    GlobalProviderSpec("godaddy-2", "GoDaddy Operating", 398101, "US", 0.03,
                       ("US",), base_weight=0.2),
    GlobalProviderSpec("voxility", "Voxility", 3223, "RO", 0.03,
                       ("RO", "US", "GB", "DE"), base_weight=0.2),
)

PROVIDERS_BY_KEY = {spec.key: spec for spec in GLOBAL_PROVIDERS}


def provider_keys() -> list[str]:
    """Keys of all global providers, most-adopted first."""
    return [spec.key for spec in GLOBAL_PROVIDERS]


__all__ = [
    "WIDE",
    "HUB_COUNTRIES",
    "GlobalProviderSpec",
    "GLOBAL_PROVIDERS",
    "PROVIDERS_BY_KEY",
    "provider_keys",
]
