"""WHOIS query surface over the synthetic registry.

The paper resolves each server address to its AS number, organization
and country of registration using public WHOIS services (Section 3.4),
and uses organization names and contact e-mail domains to corroborate
government ownership of networks.  This module reproduces that query
surface.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.netsim.registry import IpRegistry


@dataclasses.dataclass(frozen=True)
class WhoisRecord:
    """The answer to a WHOIS query for one IP address."""

    address: int
    asn: int
    organization: str
    registration_country: str
    contact_email: Optional[str]
    as_name: str


class WhoisService:
    """Answers IP-level and AS-level WHOIS queries."""

    def __init__(self, registry: IpRegistry) -> None:
        self._registry = registry

    def query_ip(self, address: int) -> WhoisRecord:
        """Full WHOIS record for an address.

        Raises :class:`KeyError` when no registration covers the address.
        """
        entry = self._registry.lookup(address)
        autonomous_system = self._registry.get_as(entry.asn)
        email = None
        if autonomous_system.contact_domain:
            email = f"noc@{autonomous_system.contact_domain}"
        return WhoisRecord(
            address=address,
            asn=entry.asn,
            organization=entry.organization,
            registration_country=entry.registration_country,
            contact_email=email,
            as_name=autonomous_system.name,
        )

    def query_asn(self, asn: int) -> dict[str, Optional[str]]:
        """AS-level WHOIS attributes (organization, country, website, email)."""
        autonomous_system = self._registry.get_as(asn)
        email = None
        if autonomous_system.contact_domain:
            email = f"admin@{autonomous_system.contact_domain}"
        return {
            "as-name": autonomous_system.name,
            "org": autonomous_system.organization,
            "country": autonomous_system.registration_country,
            "website": autonomous_system.website,
            "email": email,
        }


__all__ = ["WhoisService", "WhoisRecord"]
