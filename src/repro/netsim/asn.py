"""Autonomous System model for the synthetic Internet.

Each AS has a registration country (WHOIS), an organization, a *kind*
(government network, state-owned enterprise, commercial hosting at
local/regional/global footprint, or access ISP), and a set of points of
presence (PoPs) where its servers physically sit.  The measurement
pipeline must *recover* government ownership from PeeringDB/WHOIS-style
breadcrumbs; the ``kind`` field is ground truth used only by the
generator and by truth-checking tests.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Optional


class ASKind(enum.Enum):
    """Ground-truth operator type of an autonomous system."""

    GOVERNMENT = "government"
    SOE = "state-owned enterprise"
    LOCAL_HOSTING = "local hosting"
    REGIONAL_HOSTING = "regional hosting"
    GLOBAL_PROVIDER = "global provider"
    ISP = "access ISP"

    @property
    def is_government_operated(self) -> bool:
        """Whether the paper's Govt&SOE label applies to the operator."""
        return self in (ASKind.GOVERNMENT, ASKind.SOE)


@dataclasses.dataclass(frozen=True)
class PoP:
    """A point of presence: a serving location of an AS."""

    country: str
    city: str
    lat: float
    lon: float


@dataclasses.dataclass(frozen=True)
class AutonomousSystem:
    """A synthetic autonomous system."""

    asn: int
    name: str
    organization: str
    registration_country: str
    kind: ASKind
    pops: tuple[PoP, ...]
    website: Optional[str] = None
    #: Domain used for WHOIS contact addresses (e.g. ``"ministry.gov.br"``).
    contact_domain: Optional[str] = None
    #: Whether this AS announces anycast prefixes.
    anycast_capable: bool = False

    def __post_init__(self) -> None:
        if not 0 < self.asn < 2 ** 32:
            raise ValueError(f"invalid ASN {self.asn}")
        if not self.pops:
            raise ValueError(f"AS{self.asn} must have at least one PoP")

    @property
    def pop_countries(self) -> frozenset[str]:
        """Countries in which the AS has serving infrastructure."""
        return frozenset(pop.country for pop in self.pops)

    def pops_in(self, country: str) -> list[PoP]:
        """PoPs located in a given country."""
        return [pop for pop in self.pops if pop.country == country]

    def has_pop_in(self, country: str) -> bool:
        """Whether the AS can serve from within ``country``."""
        return any(pop.country == country for pop in self.pops)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"AS{self.asn} {self.name}"


__all__ = ["ASKind", "PoP", "AutonomousSystem"]
