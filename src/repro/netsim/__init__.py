"""Synthetic Internet substrate.

Implements the pieces of the Internet the paper's methodology touches:
autonomous systems and their PoPs, IP prefix allocation and WHOIS
registration data, DNS resolution (including CNAME chains and
geo-aware/anycast record selection), TLS certificates with Subject
Alternative Names, and a great-circle latency model.
"""

from repro.netsim.ipaddr import format_ip, parse_ip, Prefix
from repro.netsim.asn import ASKind, AutonomousSystem, PoP
from repro.netsim.registry import IpRegistry, RegistryEntry
from repro.netsim.whois import WhoisService, WhoisRecord
from repro.netsim.latency import LatencyModel
from repro.netsim.anycast import AnycastGroup, AnycastIndex
from repro.netsim.dns import DnsZone, Resolver, Resolution
from repro.netsim.tls import Certificate, CertificateStore

__all__ = [
    "format_ip",
    "parse_ip",
    "Prefix",
    "ASKind",
    "AutonomousSystem",
    "PoP",
    "IpRegistry",
    "RegistryEntry",
    "WhoisService",
    "WhoisRecord",
    "LatencyModel",
    "AnycastGroup",
    "AnycastIndex",
    "DnsZone",
    "Resolver",
    "Resolution",
    "Certificate",
    "CertificateStore",
]
