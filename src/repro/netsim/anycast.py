"""IP anycast: one address, many serving sites.

Anycast complicates latency-based geolocation (Section 3.5, step 2):
the same address is announced from many PoPs and BGP routes a client to
a nearby one.  We model the catchment as nearest-PoP by great-circle
distance, which is the dominant effect the paper's methodology has to
cope with.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, Optional

from repro.netsim.asn import PoP
from repro.world.geography import haversine_km


@dataclasses.dataclass(frozen=True)
class AnycastGroup:
    """An anycast address announced from several PoPs."""

    address: int
    asn: int
    pops: tuple[PoP, ...]

    def __post_init__(self) -> None:
        if not self.pops:
            raise ValueError("anycast group needs at least one PoP")

    def catchment(self, lat: float, lon: float) -> PoP:
        """The PoP a client at (lat, lon) is routed to (nearest site)."""
        return min(
            self.pops,
            key=lambda pop: haversine_km(lat, lon, pop.lat, pop.lon),
        )

    def serves_country(self, country: str) -> bool:
        """Whether any anycast site sits inside ``country``."""
        return any(pop.country == country for pop in self.pops)


class AnycastIndex:
    """Registry of all anycast groups in the synthetic Internet."""

    def __init__(self) -> None:
        self._groups: dict[int, AnycastGroup] = {}

    def add(self, group: AnycastGroup) -> None:
        """Register a group (addresses must be unique)."""
        if group.address in self._groups:
            raise ValueError(f"duplicate anycast address {group.address}")
        self._groups[group.address] = group

    def get(self, address: int) -> Optional[AnycastGroup]:
        """The group announced at ``address``, or ``None`` for unicast."""
        return self._groups.get(address)

    def is_anycast(self, address: int) -> bool:
        """Ground truth: is ``address`` anycast?"""
        return address in self._groups

    def __len__(self) -> int:
        return len(self._groups)

    def __iter__(self) -> Iterator[AnycastGroup]:
        return iter(self._groups.values())


__all__ = ["AnycastGroup", "AnycastIndex"]
