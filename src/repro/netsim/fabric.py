"""Ground-truth serving fabric: where is an address physically answered?

Combines the registry (unicast addresses pinned to the PoP they were
allocated at) and the anycast index (per-client catchments) into one
lookup used by the active-measurement substrate.  Also tracks ICMP
responsiveness: like on the real Internet, a sizeable share of servers
never answers pings, which is why the paper needs its multistage
geolocation fallback.
"""

from __future__ import annotations

from repro.netsim.anycast import AnycastIndex
from repro.netsim.asn import PoP
from repro.netsim.registry import IpRegistry


class ServingFabric:
    """Resolves addresses to the physical site answering a given client."""

    def __init__(self, registry: IpRegistry, anycast_index: AnycastIndex) -> None:
        self._registry = registry
        self._anycast = anycast_index
        self._unresponsive: set[int] = set()

    @property
    def registry(self) -> IpRegistry:
        return self._registry

    @property
    def anycast_index(self) -> AnycastIndex:
        return self._anycast

    def mark_unresponsive(self, address: int) -> None:
        """Declare that ``address`` drops ICMP echo requests."""
        self._unresponsive.add(address)

    def responds_to_ping(self, address: int) -> bool:
        """Whether ``address`` answers ICMP at all."""
        return address not in self._unresponsive

    def server_site(self, address: int, from_lat: float, from_lon: float) -> PoP:
        """The PoP that answers ``address`` for a client at (lat, lon).

        For unicast addresses the answer is client-independent; for
        anycast addresses it is the catchment of the client location.
        """
        group = self._anycast.get(address)
        if group is not None:
            return group.catchment(from_lat, from_lon)
        return self._registry.pop_of(address)

    def unicast_location(self, address: int) -> PoP:
        """Ground-truth location of a unicast address.

        Raises :class:`ValueError` if the address is anycast (it has no
        single location).
        """
        if self._anycast.is_anycast(address):
            raise ValueError("anycast addresses have no single location")
        return self._registry.pop_of(address)


__all__ = ["ServingFabric"]
