"""Great-circle latency model.

Round-trip times are derived from great-circle distance at roughly
two-thirds of the speed of light in fiber (~200 km/ms one-way), with a
path-inflation factor and stochastic jitter.  The same constants feed
the per-country latency thresholds of Section 3.5, so a ping within a
country reliably lands below its road-distance threshold while
intercontinental pings do not.
"""

from __future__ import annotations

import random
from typing import Optional

#: One-way propagation speed in fiber, km per millisecond.
FIBER_KM_PER_MS = 200.0

#: Multiplier capturing the fact that cables do not follow great circles.
PATH_INFLATION = 1.45

#: Fixed per-hop processing overhead in milliseconds.
BASE_OVERHEAD_MS = 1.0


def propagation_rtt_ms(distance_km: float) -> float:
    """Deterministic component of the RTT over ``distance_km``."""
    one_way_ms = distance_km * PATH_INFLATION / FIBER_KM_PER_MS
    return BASE_OVERHEAD_MS + 2.0 * one_way_ms


class LatencyModel:
    """Produces RTT samples between two coordinates.

    The model is intentionally simple but preserves the property the
    geolocation methodology depends on: latency lower-bounds distance.
    Jitter is strictly additive, so a measured RTT can never be *faster*
    than the propagation time -- exactly the invariant that makes
    latency-based country verification sound.
    """

    def __init__(self, rng: random.Random, jitter_ms: float = 2.0) -> None:
        self._rng = rng
        self._jitter_ms = jitter_ms

    def rtt_ms(self, lat1: float, lon1: float, lat2: float, lon2: float) -> float:
        """One RTT sample between two coordinates."""
        from repro.world.geography import haversine_km

        distance = haversine_km(lat1, lon1, lat2, lon2)
        return self.rtt_for_distance(distance)

    def rtt_for_distance(
        self,
        distance_km: float,
        rng: Optional[random.Random] = None,
        extra_ms: float = 0.0,
    ) -> float:
        """One RTT sample for a known distance.

        ``rng`` overrides the model's own jitter stream; callers that
        need order-independent samples (e.g. the Atlas client keying
        jitter per probe/target pair) pass a derived generator so the
        sample does not depend on how many draws happened before it.
        ``extra_ms`` adds a deterministic penalty on top of the sample —
        the fault injector's congestion spikes — which preserves the
        latency-lower-bounds-distance invariant (penalties only inflate).
        """
        base = propagation_rtt_ms(distance_km) + extra_ms
        if self._jitter_ms <= 0:
            return base
        jitter = (rng or self._rng).expovariate(1.0 / self._jitter_ms)
        return base + jitter


def country_threshold_ms(road_span_km: float, slack_ms: float = 10.0) -> float:
    """Latency threshold for 'is this server within the country?'.

    Converts the intercity road distance between the two furthest cities
    of a country into an RTT bound (Section 3.5), plus a small slack for
    queueing jitter.
    """
    return propagation_rtt_ms(road_span_km) + slack_ms


__all__ = [
    "FIBER_KM_PER_MS",
    "PATH_INFLATION",
    "BASE_OVERHEAD_MS",
    "propagation_rtt_ms",
    "LatencyModel",
    "country_threshold_ms",
]
