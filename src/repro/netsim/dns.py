"""DNS for the synthetic Internet.

Supports the behaviours the paper's methodology must cope with:

* plain A records (one static unicast address),
* geo-aware A records as used by CDNs with DNS-based redirection (the
  answer depends on where the query comes from -- the reason the
  authors resolve hostnames from *within* the target country),
* CNAME chains (followed with loop protection; the topsites
  self-hosting heuristic of Appendix D inspects the first CNAME), and
* anycast addresses, which are ordinary A records whose address is
  announced from many sites (see :mod:`repro.netsim.anycast`).
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Union

from repro.netsim.asn import PoP
from repro.world.geography import haversine_km

MAX_CNAME_CHAIN = 8


class DnsError(Exception):
    """Base class for resolution failures."""


class NxDomain(DnsError):
    """The hostname does not exist."""


class CnameLoopError(DnsError):
    """CNAME chain exceeded :data:`MAX_CNAME_CHAIN` or looped."""


@dataclasses.dataclass(frozen=True)
class StaticARecord:
    """An A record with a fixed address (unicast or anycast)."""

    address: int


@dataclasses.dataclass(frozen=True)
class GeoARecord:
    """A latency-steering A record: answers the address of the nearest PoP."""

    endpoints: tuple[tuple[PoP, int], ...]

    def __post_init__(self) -> None:
        if not self.endpoints:
            raise ValueError("GeoARecord needs at least one endpoint")

    def select(self, lat: float, lon: float) -> int:
        """Address of the endpoint nearest to the client."""
        _, address = min(
            self.endpoints,
            key=lambda item: haversine_km(lat, lon, item[0].lat, item[0].lon),
        )
        return address


@dataclasses.dataclass(frozen=True)
class CnameRecord:
    """An alias to another hostname."""

    target: str


DnsRecord = Union[StaticARecord, GeoARecord, CnameRecord]


@dataclasses.dataclass(frozen=True)
class Resolution:
    """Result of resolving a hostname from a specific vantage."""

    hostname: str
    address: int
    #: Hostnames traversed via CNAME (empty if resolved directly).
    cname_chain: tuple[str, ...]

    @property
    def canonical_name(self) -> str:
        """The final hostname the address belongs to."""
        return self.cname_chain[-1] if self.cname_chain else self.hostname


class DnsZone:
    """The global record table of the synthetic Internet."""

    def __init__(self) -> None:
        self._records: dict[str, DnsRecord] = {}

    def add(self, hostname: str, record: DnsRecord) -> None:
        """Publish a record; each hostname holds exactly one record."""
        hostname = hostname.lower()
        if hostname in self._records:
            raise ValueError(f"duplicate DNS record for {hostname!r}")
        self._records[hostname] = record

    def get(self, hostname: str) -> Optional[DnsRecord]:
        """The record for ``hostname`` (or None)."""
        return self._records.get(hostname.lower())

    def remove(self, hostname: str) -> bool:
        """Withdraw a record (e.g. a lapsed delegation); True if present."""
        return self._records.pop(hostname.lower(), None) is not None

    def __contains__(self, hostname: str) -> bool:
        return hostname.lower() in self._records

    def __len__(self) -> int:
        return len(self._records)


class Resolver:
    """A stub resolver bound to nothing; the vantage is passed per query.

    The same resolver instance serves every vantage point -- location
    enters only through the query coordinates, mirroring how the paper
    resolves hostnames through VPN exits in the target country.
    """

    def __init__(self, zone: DnsZone) -> None:
        self._zone = zone

    def resolve(self, hostname: str, lat: float, lon: float) -> Resolution:
        """Resolve ``hostname`` as seen from coordinates (lat, lon)."""
        chain: list[str] = []
        current = hostname.lower()
        for _ in range(MAX_CNAME_CHAIN + 1):
            record = self._zone.get(current)
            if record is None:
                raise NxDomain(current)
            if isinstance(record, CnameRecord):
                target = record.target.lower()
                if target in chain or target == hostname.lower():
                    raise CnameLoopError(hostname)
                chain.append(target)
                current = target
                continue
            if isinstance(record, StaticARecord):
                address = record.address
            else:
                address = record.select(lat, lon)
            return Resolution(
                hostname=hostname.lower(),
                address=address,
                cname_chain=tuple(chain),
            )
        raise CnameLoopError(hostname)

    def first_cname(self, hostname: str) -> Optional[str]:
        """The CNAME target of ``hostname`` if it is an alias, else None.

        Used by the self-hosting heuristic of Appendix D.
        """
        record = self._zone.get(hostname)
        if isinstance(record, CnameRecord):
            return record.target.lower()
        return None


__all__ = [
    "MAX_CNAME_CHAIN",
    "DnsError",
    "NxDomain",
    "CnameLoopError",
    "StaticARecord",
    "GeoARecord",
    "CnameRecord",
    "DnsRecord",
    "Resolution",
    "DnsZone",
    "Resolver",
]
