"""IP prefix allocation and the registration database behind WHOIS.

The generator asks the registry to allocate prefixes for an AS at a
given PoP; the registry records which organization each prefix is
registered to and in which country, mirroring the delegation data that
public WHOIS services expose (Section 3.4 of the paper).
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, Optional

from repro.netsim.asn import AutonomousSystem, PoP
from repro.netsim.ipaddr import Prefix, PrefixPool, format_ip


@dataclasses.dataclass(frozen=True)
class RegistryEntry:
    """Registration data for one allocated prefix."""

    prefix: Prefix
    asn: int
    organization: str
    #: WHOIS registration country of the holder (the AS's country, not the
    #: physical server location).
    registration_country: str


class _Allocation:
    """Mutable bookkeeping for one (AS, PoP) prefix with a bump allocator."""

    __slots__ = ("prefix", "pop", "next_offset")

    def __init__(self, prefix: Prefix, pop: PoP) -> None:
        self.prefix = prefix
        self.pop = pop
        self.next_offset = 1  # skip the network address

    def take_address(self) -> Optional[int]:
        if self.next_offset >= self.prefix.size - 1:  # keep broadcast free
            return None
        address = self.prefix.address(self.next_offset)
        self.next_offset += 1
        return address


class IpRegistry:
    """Allocates prefixes and answers prefix-registration lookups."""

    def __init__(self) -> None:
        self._pool = PrefixPool()
        self._entries: dict[int, RegistryEntry] = {}  # keyed by /24 block base
        self._allocations: dict[
            tuple[int, int, int, str, str], _Allocation
        ] = {}
        self._pop_by_block: dict[int, PoP] = {}
        self._ases: dict[int, AutonomousSystem] = {}

    def register_as(self, autonomous_system: AutonomousSystem) -> None:
        """Make an AS known to the registry (idempotent by ASN)."""
        existing = self._ases.get(autonomous_system.asn)
        if existing is not None and existing is not autonomous_system:
            raise ValueError(f"ASN {autonomous_system.asn} already registered")
        self._ases[autonomous_system.asn] = autonomous_system

    def get_as(self, asn: int) -> AutonomousSystem:
        """The AS object registered under ``asn``."""
        return self._ases[asn]

    def iter_ases(self) -> Iterator[AutonomousSystem]:
        """All registered ASes."""
        return iter(self._ases.values())

    def allocate_address(
        self,
        autonomous_system: AutonomousSystem,
        pop: PoP,
        scope: int = 0,
        epoch: int = 0,
    ) -> int:
        """Hand out a fresh address for an AS at a specific PoP.

        A new /24 is allocated transparently when the current one for the
        (scope, epoch, AS, PoP) tuple fills up.  ``scope`` isolates one
        customer country's allocations from every other's (see
        :class:`~repro.netsim.ipaddr.PrefixPool`); ``epoch`` moves a
        scope to a fresh block range when its prefixes re-register.
        """
        if autonomous_system.asn not in self._ases:
            self.register_as(autonomous_system)
        key = (scope, epoch, autonomous_system.asn, pop.country, pop.city)
        allocation = self._allocations.get(key)
        if allocation is not None:
            address = allocation.take_address()
            if address is not None:
                return address
        prefix = self._pool.allocate(scope, epoch)
        self._entries[prefix.base] = RegistryEntry(
            prefix=prefix,
            asn=autonomous_system.asn,
            organization=autonomous_system.organization,
            registration_country=autonomous_system.registration_country,
        )
        allocation = _Allocation(prefix, pop)
        self._allocations[key] = allocation
        self._pop_by_block[prefix.base] = pop
        address = allocation.take_address()
        assert address is not None
        return address

    def lookup(self, address: int) -> RegistryEntry:
        """Registration entry covering ``address``.

        Raises :class:`KeyError` for unallocated space (the equivalent of an
        empty WHOIS response).
        """
        block = address & 0xFFFFFF00
        entry = self._entries.get(block)
        if entry is None:
            raise KeyError(f"no registration covering {format_ip(address)}")
        return entry

    def pop_of(self, address: int) -> PoP:
        """Ground-truth PoP an address was allocated at (generator/tests only)."""
        block = address & 0xFFFFFF00
        pop = self._pop_by_block.get(block)
        if pop is None:
            raise KeyError(f"no PoP recorded for {format_ip(address)}")
        return pop

    @property
    def prefix_count(self) -> int:
        """Number of allocated prefixes."""
        return len(self._entries)


__all__ = ["IpRegistry", "RegistryEntry"]
