"""Authoritative DNS delegations.

An extension substrate for the e-government DNS analyses the paper
builds on (Sommese et al., CNSM 2022; Houser et al., DSN 2022): every
registrable government domain delegates to a set of authoritative
nameservers, either self-hosted on government infrastructure or
outsourced to a managed-DNS provider.  The
:mod:`repro.analysis.dnsdep` analysis measures the resulting
third-party DNS dependency and its concentration.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, Optional


@dataclasses.dataclass(frozen=True)
class NsDelegation:
    """The authoritative-DNS delegation of one registrable domain."""

    domain: str
    nameservers: tuple[str, ...]
    #: AS operating the authoritative servers.
    provider_asn: int
    #: Whether the nameservers sit inside the domain itself (in-bailiwick,
    #: the self-hosted pattern: ``ns1.health.gov.br``).
    self_hosted: bool

    def __post_init__(self) -> None:
        if not self.nameservers:
            raise ValueError("a delegation needs at least one nameserver")


class NsRegistry:
    """Delegations of every government domain in the synthetic world."""

    def __init__(self) -> None:
        self._by_domain: dict[str, NsDelegation] = {}

    def register(self, delegation: NsDelegation) -> None:
        """Publish a delegation (one per registrable domain)."""
        domain = delegation.domain.lower()
        if domain in self._by_domain:
            raise ValueError(f"duplicate delegation for {domain!r}")
        self._by_domain[domain] = delegation

    def lookup(self, domain: str) -> Optional[NsDelegation]:
        """Delegation of ``domain`` (None when unknown)."""
        return self._by_domain.get(domain.lower())

    def __len__(self) -> int:
        return len(self._by_domain)

    def __iter__(self) -> Iterator[NsDelegation]:
        return iter(self._by_domain.values())


__all__ = ["NsDelegation", "NsRegistry"]
