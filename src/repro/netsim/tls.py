"""TLS certificates with Subject Alternative Names.

The paper's third URL-filtering heuristic (Table 1) inspects the SAN
lists of landing-page certificates to catch government resources that
use neither a government TLD nor a hostname from the curated list
(e.g. ``energia-argentina.com.ar``); Appendix D reuses SANs for the
topsites self-hosting heuristic.  We model just the fields those
heuristics read.
"""

from __future__ import annotations

import dataclasses
import fnmatch
from typing import Optional


@dataclasses.dataclass(frozen=True)
class Certificate:
    """A served TLS certificate (subject CN plus SAN list).

    ``valid`` is False for self-signed or expired certificates -- the
    long tail Singanamalla et al. measured on government sites.
    """

    subject: str
    sans: tuple[str, ...]
    valid: bool = True

    def covers(self, hostname: str) -> bool:
        """Whether the certificate is valid for ``hostname``.

        Supports single-label wildcards (``*.example.gov``), as in RFC 6125.
        """
        hostname = hostname.lower()
        names = (self.subject,) + self.sans
        for name in names:
            name = name.lower()
            if name == hostname:
                return True
            if name.startswith("*.") and fnmatch.fnmatch(hostname, name):
                # The wildcard must not swallow additional labels.
                if hostname.count(".") == name.count("."):
                    return True
        return False


class CertificateStore:
    """Certificates indexed by the hostname that serves them."""

    def __init__(self) -> None:
        self._by_host: dict[str, Certificate] = {}

    def install(self, hostname: str, certificate: Certificate) -> None:
        """Attach a certificate to a serving hostname."""
        self._by_host[hostname.lower()] = certificate

    def get(self, hostname: str) -> Optional[Certificate]:
        """Certificate served for ``hostname`` (None if HTTP-only)."""
        return self._by_host.get(hostname.lower())

    def sans_of(self, hostname: str) -> tuple[str, ...]:
        """SAN list of the certificate at ``hostname`` (empty if none)."""
        certificate = self.get(hostname)
        return certificate.sans if certificate else ()

    def __len__(self) -> int:
        return len(self._by_host)


__all__ = ["Certificate", "CertificateStore"]
