"""IPv4 address handling for the synthetic address space.

Addresses are represented as plain ``int`` values internally (fast and
hashable); helpers convert to and from dotted-quad strings.  The
synthetic Internet allocates /24 prefixes sequentially from a private
numbering plan, so addresses never collide.
"""

from __future__ import annotations

import dataclasses


def format_ip(value: int) -> str:
    """Render an integer address as a dotted-quad string."""
    if not 0 <= value <= 0xFFFFFFFF:
        raise ValueError(f"address out of range: {value!r}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def parse_ip(text: str) -> int:
    """Parse a dotted-quad string into an integer address."""
    parts = text.split(".")
    if len(parts) != 4:
        raise ValueError(f"malformed IPv4 address: {text!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"malformed IPv4 address: {text!r}")
        value = (value << 8) | octet
    return value


@dataclasses.dataclass(frozen=True)
class Prefix:
    """An IPv4 prefix (``base`` is the network address as an int)."""

    base: int
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= 32:
            raise ValueError(f"invalid prefix length {self.length}")
        mask = self.netmask
        if self.base & ~mask & 0xFFFFFFFF:
            raise ValueError("prefix base has host bits set")

    @property
    def netmask(self) -> int:
        """The prefix netmask as an int."""
        return (0xFFFFFFFF << (32 - self.length)) & 0xFFFFFFFF

    @property
    def size(self) -> int:
        """Number of addresses covered by the prefix."""
        return 1 << (32 - self.length)

    def __contains__(self, address: int) -> bool:
        return (address & self.netmask) == self.base

    def address(self, offset: int) -> int:
        """The ``offset``-th address within the prefix."""
        if not 0 <= offset < self.size:
            raise ValueError(f"offset {offset} outside /{self.length}")
        return self.base + offset

    def __str__(self) -> str:
        return f"{format_ip(self.base)}/{self.length}"


#: /24 blocks reserved per allocation scope (a scope is one customer
#: country of the generator).  Scoping makes the numbering plan
#: *hermetic*: the prefixes one country's deployments receive are a pure
#: function of that country's own allocation order, never of how many
#: blocks other countries consumed first.
SCOPE_BLOCKS = 1 << 17

#: /24 blocks per registration epoch within a scope.  Bumping a scope's
#: epoch (the "prefixes re-register" evolution event) moves all of its
#: future allocations to a fresh, disjoint block range.
EPOCH_BLOCKS = 1 << 12


class PrefixPool:
    """Hands out non-overlapping /24 prefixes from scoped block ranges.

    The pool starts at 1.0.0.0 and walks upward within each scope's
    reserved range; this is a synthetic numbering plan, not a claim
    about real allocations.  Scope 0, epoch 0 (the defaults) preserve
    the historical globally-sequential behavior.
    """

    FIRST_BLOCK = 1 << 24  # 1.0.0.0
    LAST_BLOCK = (223 << 24)  # stay within unicast space

    #: Highest usable scope index given the reserved range size.
    MAX_SCOPES = ((LAST_BLOCK - FIRST_BLOCK) >> 8) // SCOPE_BLOCKS

    def __init__(self) -> None:
        self._counters: dict[tuple[int, int], int] = {}
        self._allocated = 0

    def allocate(self, scope: int = 0, epoch: int = 0) -> Prefix:
        """Allocate the next free /24 of ``(scope, epoch)``."""
        if not 0 <= scope < self.MAX_SCOPES:
            raise ValueError(f"scope {scope} outside the numbering plan")
        if not 0 <= epoch < SCOPE_BLOCKS // EPOCH_BLOCKS:
            raise ValueError(f"epoch {epoch} outside scope {scope}")
        key = (scope, epoch)
        counter = self._counters.get(key, 0)
        if counter >= EPOCH_BLOCKS:
            raise RuntimeError(
                f"scope {scope} epoch {epoch} exhausted its block range"
            )
        block_index = scope * SCOPE_BLOCKS + epoch * EPOCH_BLOCKS + counter
        base = self.FIRST_BLOCK + (block_index << 8)
        if base >= self.LAST_BLOCK:
            raise RuntimeError("synthetic address space exhausted")
        self._counters[key] = counter + 1
        self._allocated += 1
        return Prefix(base, 24)

    @property
    def allocated_count(self) -> int:
        """Number of /24 blocks handed out so far."""
        return self._allocated


__all__ = [
    "EPOCH_BLOCKS",
    "SCOPE_BLOCKS",
    "format_ip",
    "parse_ip",
    "Prefix",
    "PrefixPool",
]
