"""Low-level column and string-table codecs shared by the store and cache.

Three byte-level building blocks, all little-endian and
platform-independent:

* **typed columns** -- a flat buffer of one fixed-width dtype
  (:data:`KINDS` names the allowed ones), written with
  :func:`column_bytes` and viewed back zero-copy with
  :func:`column_view` (over any buffer: ``bytes``, ``memoryview`` or a
  ``numpy.memmap``).
* **string tables** -- a UTF-8 blob plus an ``int64`` offset column of
  length ``n + 1`` (``offsets[0] == 0``), so table entry ``i`` is
  ``blob[offsets[i]:offsets[i + 1]]``.  Encoding preserves order, so a
  first-seen interner round-trips exactly.
* **section packs** -- several named byte sections concatenated behind
  a tiny JSON directory, for single-blob consumers like the scan
  cache's bulk segment (:mod:`repro.cache.columnar`).

Content digests use BLAKE2b-128, the same discipline as
:mod:`repro.cache.fingerprint`.
"""

from __future__ import annotations

import hashlib
import json
from typing import Iterable, Sequence

import numpy as np

#: Column kind -> platform-independent numpy dtype string.
KINDS = {
    "i64": "<i8",
    "i32": "<i4",
    "u32": "<u4",
    "u8": "|u1",
}

#: Bytes per element, per kind (for size checks before mapping).
KIND_ITEMSIZE = {kind: np.dtype(dtype).itemsize for kind, dtype in KINDS.items()}


def digest(payload: bytes) -> str:
    """BLAKE2b-128 hex digest (the store's content-address discipline)."""
    return hashlib.blake2b(payload, digest_size=16).hexdigest()


# ------------------------------------------------------------- columns

def column_bytes(values, kind: str) -> bytes:
    """Encode a sequence (or ndarray) as one typed little-endian buffer."""
    return np.asarray(values, dtype=KINDS[kind]).tobytes()


def column_view(buffer, kind: str) -> np.ndarray:
    """Zero-copy ndarray view of a typed buffer written by
    :func:`column_bytes` (empty buffers yield empty arrays)."""
    if len(buffer) == 0:
        return np.zeros(0, dtype=KINDS[kind])
    return np.frombuffer(buffer, dtype=KINDS[kind])


# -------------------------------------------------------- string tables

def strtab_bytes(strings: Iterable[str]) -> tuple[bytes, bytes]:
    """Encode strings (order-preserving) as ``(offsets, blob)`` buffers."""
    offsets = [0]
    chunks = []
    total = 0
    for text in strings:
        raw = text.encode("utf-8")
        chunks.append(raw)
        total += len(raw)
        offsets.append(total)
    return column_bytes(offsets, "i64"), b"".join(chunks)


def strtab_decode(offsets_buffer, blob_buffer) -> list[str]:
    """Decode a full string table back into its ordered string list."""
    offsets = column_view(offsets_buffer, "i64").tolist()
    if not offsets:
        return []
    blob = bytes(blob_buffer)
    return [
        blob[start:stop].decode("utf-8")
        for start, stop in zip(offsets, offsets[1:])
    ]


def strtab_length(offsets_buffer) -> int:
    """Number of entries in a string table, from its offsets alone."""
    count = len(offsets_buffer) // KIND_ITEMSIZE["i64"]
    return max(0, count - 1)


# -------------------------------------------------------- section packs

def pack_sections(sections: Sequence[tuple[str, bytes]]) -> bytes:
    """Concatenate named byte sections behind a JSON directory."""
    directory = json.dumps(
        [[name, len(data)] for name, data in sections]
    ).encode("ascii")
    return (
        len(directory).to_bytes(4, "little")
        + directory
        + b"".join(data for _, data in sections)
    )


def unpack_sections(blob: bytes) -> dict[str, bytes]:
    """Inverse of :func:`pack_sections`; raises ``ValueError`` on a
    malformed pack (truncated directory or payload)."""
    if len(blob) < 4:
        raise ValueError("section pack too short for its directory size")
    directory_size = int.from_bytes(blob[:4], "little")
    directory_end = 4 + directory_size
    if directory_end > len(blob):
        raise ValueError("section pack directory truncated")
    try:
        directory = json.loads(blob[4:directory_end])
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ValueError(f"corrupt section pack directory ({exc})") from exc
    sections: dict[str, bytes] = {}
    cursor = directory_end
    for entry in directory:
        name, size = entry
        stop = cursor + size
        if stop > len(blob):
            raise ValueError(f"section pack payload truncated at {name!r}")
        sections[name] = blob[cursor:stop]
        cursor = stop
    if cursor != len(blob):
        raise ValueError("section pack carries trailing bytes")
    return sections


__all__ = [
    "KINDS",
    "KIND_ITEMSIZE",
    "digest",
    "column_bytes",
    "column_view",
    "strtab_bytes",
    "strtab_decode",
    "strtab_length",
    "pack_sections",
    "unpack_sections",
]
