"""On-disk layout of the sharded columnar dataset store.

A store is one directory, sharded per country::

    <store_dir>/
      manifest.json            root manifest (format, counts, global
                               string tables, validation, faults,
                               per-shard digests)
      <CC>/                    one shard directory per country code
        shard.json             shard manifest (counts, per-country
                               metadata, per-file sizes + digests)
        sizes.i64  addresses.i64  asns.i64  depth.i64
        category.u8  via.u8  validation.u8  gov.u8  anycast.u8
        registered.i32  server.i32  organization.i32   (global ids)
        hostname.u32                                   (shard-local ids)
        urls.idx / urls.blob                 per-record URL string table
        hostnames.idx / hostnames.blob       shard hostname string table

The analytic columns are bit-identical dumps of the corresponding
:class:`~repro.analysis.engine.AnalysisIndex` buffers: ``registered``,
``server`` and ``organization`` hold *globally* interned ids whose
tables live in the root manifest, in the exact first-seen order the
index's scan assigns, so a store-backed index reproduces every
aggregate of a scan-built index bit for bit without re-interning.
``server`` uses ``-1`` for excluded (unlocated) records, mirroring the
index's ``None`` country id.

Integrity forms a digest chain (BLAKE2b-128, the ``repro.cache``
discipline): each shard manifest records size and digest of every
column file, and the root manifest records size and digest of every
shard manifest.  Opening a store checks the chain's manifests and every
file size (cheap stats); :meth:`~repro.store.reader.DatasetStore.verify`
re-hashes all column bytes.
"""

from __future__ import annotations

from repro.categories import HostingCategory
from repro.core.geolocation import ValidationMethod
from repro.core.urlfilter import FilterVia

#: Format marker written into every manifest.
STORE_FORMAT_VERSION = 1

#: Root and shard manifest filenames.
MANIFEST_NAME = "manifest.json"
SHARD_MANIFEST_NAME = "shard.json"

#: Code spaces of the uint8 enum columns, in declaration order (the
#: same order ``repro.analysis.engine.index.CATEGORIES`` fixes).
CATEGORY_CODES: tuple[HostingCategory, ...] = tuple(HostingCategory)
VIA_CODES: tuple[FilterVia, ...] = tuple(FilterVia)
VALIDATION_CODES: tuple[ValidationMethod, ...] = tuple(ValidationMethod)

CATEGORY_CODE = {category: code for code, category in enumerate(CATEGORY_CODES)}
VIA_CODE = {via: code for code, via in enumerate(VIA_CODES)}
VALIDATION_CODE = {method: code for code, method in enumerate(VALIDATION_CODES)}

#: Typed column files of one shard: filename -> codec kind.
COLUMN_FILES: dict[str, str] = {
    "sizes.i64": "i64",
    "addresses.i64": "i64",
    "asns.i64": "i64",
    "depth.i64": "i64",
    "category.u8": "u8",
    "via.u8": "u8",
    "validation.u8": "u8",
    "gov.u8": "u8",
    "anycast.u8": "u8",
    "registered.i32": "i32",
    "server.i32": "i32",
    "organization.i32": "i32",
    "hostname.u32": "u32",
}

#: String-table files of one shard (offsets column + UTF-8 blob pairs).
STRTAB_FILES: tuple[tuple[str, str], ...] = (
    ("urls.idx", "urls.blob"),
    ("hostnames.idx", "hostnames.blob"),
)


class StoreError(ValueError):
    """A store directory is missing, malformed or fails integrity."""


__all__ = [
    "STORE_FORMAT_VERSION",
    "MANIFEST_NAME",
    "SHARD_MANIFEST_NAME",
    "CATEGORY_CODES",
    "VIA_CODES",
    "VALIDATION_CODES",
    "CATEGORY_CODE",
    "VIA_CODE",
    "VALIDATION_CODE",
    "COLUMN_FILES",
    "STRTAB_FILES",
    "StoreError",
]
