"""Out-of-core sharded columnar dataset store.

The jsonl exports of :mod:`repro.io` round-trip one JSON object per
record; at paper scale (~1M URL records, more for multi-snapshot runs)
loading one means parsing a million objects, materializing a million
:class:`~repro.core.dataset.UrlRecord` tuples, and then re-transposing
them into the analysis engine's columns -- three passes over data that
is columnar at both ends.  This package is the storage format that cuts
the middleman out:

* :func:`write_store` -- one directory per country holding typed,
  mmap-able column buffers (the exact buffers of a built
  :class:`~repro.analysis.engine.AnalysisIndex`) plus url/hostname
  string tables, under a BLAKE2-digest-chained manifest;
* :class:`DatasetStore` / :func:`load_store_dataset` -- open a store
  and get a dataset whose analyses (including the byte-identical full
  paper report) run zero-copy off the mmapped columns, while
  ``records`` / ``iter_records()`` remain available as lazy
  compatibility views;
* :class:`StoreBackedIndex` -- the mmap-backed analysis index itself;
* :func:`jsonl_to_store` / :func:`store_to_jsonl` -- lossless,
  byte-identical conversions (the CLI's ``repro-gov convert``).
"""

from repro.store.convert import jsonl_to_store, store_to_jsonl
from repro.store.format import STORE_FORMAT_VERSION, StoreError
from repro.store.index import StoreBackedIndex
from repro.store.reader import (
    DatasetStore,
    ShardReader,
    is_store_path,
    load_store_dataset,
)
from repro.store.writer import StoreWriteResult, write_store

__all__ = [
    "STORE_FORMAT_VERSION",
    "StoreError",
    "StoreBackedIndex",
    "DatasetStore",
    "ShardReader",
    "StoreWriteResult",
    "is_store_path",
    "jsonl_to_store",
    "load_store_dataset",
    "store_to_jsonl",
    "write_store",
]
