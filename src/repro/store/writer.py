"""Writing a dataset into the sharded columnar store layout.

:func:`write_store` dumps the column buffers of a built
:class:`~repro.analysis.engine.AnalysisIndex` -- the one canonical
columnar form of a dataset -- plus the per-record url/hostname/via/
depth/validation columns the index does not carry (they are needed only
to reconstruct :class:`~repro.core.dataset.UrlRecord` objects for the
compatibility view and for lossless jsonl round-trips).

The write is the single full pass over the records; everything a later
analysis run needs comes back out of the shards without record
materialization.  Output is deterministic: converting the same dataset
twice produces byte-identical stores (no timestamps, sorted manifest
keys, insertion orders preserved).

Writes are atomic at store granularity: the shards and manifests are
assembled under a temporary sibling directory and renamed into place
only when complete, so a crashed convert never leaves a half-written
store behind.
"""

from __future__ import annotations

import dataclasses
import json
import logging
import os
import pathlib
import shutil
from typing import Union

from repro.analysis.engine.index import AnalysisIndex
from repro.core.dataset import GovernmentHostingDataset
from repro.store import codec
from repro.store.format import (
    COLUMN_FILES,
    MANIFEST_NAME,
    SHARD_MANIFEST_NAME,
    STORE_FORMAT_VERSION,
    STRTAB_FILES,
    VALIDATION_CODE,
    VIA_CODE,
    StoreError,
)

logger = logging.getLogger(__name__)

PathLike = Union[str, pathlib.Path]


def _write_file(directory: pathlib.Path, name: str, payload: bytes) -> dict:
    (directory / name).write_bytes(payload)
    return {"bytes": len(payload), "digest": codec.digest(payload)}


def _shard_columns(index: AnalysisIndex, records, start: int, stop: int) -> dict:
    """All column buffers of one shard, keyed by filename."""
    cols = index._cols
    buffers: dict[str, bytes] = {
        "sizes.i64": codec.column_bytes(cols.sizes[start:stop], "i64"),
        "addresses.i64": codec.column_bytes(cols.addresses[start:stop], "i64"),
        "asns.i64": codec.column_bytes(cols.asns[start:stop], "i64"),
        "category.u8": codec.column_bytes(cols.categories[start:stop], "u8"),
        "gov.u8": codec.column_bytes(cols.gov[start:stop], "u8"),
        "anycast.u8": codec.column_bytes(cols.anycast[start:stop], "u8"),
        "registered.i32": codec.column_bytes(cols.registered[start:stop], "i32"),
        "server.i32": codec.column_bytes(cols.server[start:stop], "i32"),
        "organization.i32": codec.column_bytes(
            cols.organizations[start:stop], "i32"
        ),
    }
    if records:
        (urls, hostnames, _, _, vias, depths, *_rest) = zip(*records)
        validations = tuple(record.validation for record in records)
    else:
        urls = hostnames = vias = depths = validations = ()
    buffers["via.u8"] = codec.column_bytes(
        [VIA_CODE[via] for via in vias], "u8"
    )
    buffers["validation.u8"] = codec.column_bytes(
        [VALIDATION_CODE[method] for method in validations], "u8"
    )
    buffers["depth.i64"] = codec.column_bytes(list(depths), "i64")
    # Shard-local hostname interning, first-seen in record order.
    hostname_ids: dict[str, int] = {}
    hostname_table: list[str] = []
    hid_column: list[int] = []
    for hostname in hostnames:
        hid = hostname_ids.get(hostname)
        if hid is None:
            hid = len(hostname_table)
            hostname_ids[hostname] = hid
            hostname_table.append(hostname)
        hid_column.append(hid)
    buffers["hostname.u32"] = codec.column_bytes(hid_column, "u32")
    buffers["urls.idx"], buffers["urls.blob"] = codec.strtab_bytes(urls)
    buffers["hostnames.idx"], buffers["hostnames.blob"] = codec.strtab_bytes(
        hostname_table
    )
    return buffers


def _write_shard(
    shard_dir: pathlib.Path,
    code: str,
    country_dataset,
    index: AnalysisIndex,
    start: int,
    stop: int,
) -> bytes:
    """Write one country's shard; returns the shard manifest bytes."""
    shard_dir.mkdir(parents=True)
    records = country_dataset.records
    buffers = _shard_columns(index, records, start, stop)
    files = {}
    for name in list(COLUMN_FILES) + [n for pair in STRTAB_FILES for n in pair]:
        entry = _write_file(shard_dir, name, buffers[name])
        if name in COLUMN_FILES:
            entry["kind"] = COLUMN_FILES[name]
        files[name] = entry
    manifest = {
        "format": STORE_FORMAT_VERSION,
        "country": code,
        "records": stop - start,
        "landing_count": country_dataset.landing_count,
        "discarded_url_count": country_dataset.discarded_url_count,
        "unresolved_hostnames": list(country_dataset.unresolved_hostnames),
        # Ordered pairs, not an object: shard manifests are written with
        # sorted keys, but jsonl round-trips must preserve the
        # histogram's insertion order byte for byte.
        "depth_histogram": [
            [depth, count]
            for depth, count in country_dataset.depth_histogram.items()
        ],
        "total_bytes": country_dataset.total_bytes,
        "hostname_count": codec.strtab_length(buffers["hostnames.idx"]),
        "files": files,
    }
    payload = (json.dumps(manifest, sort_keys=True, indent=2) + "\n").encode()
    (shard_dir / SHARD_MANIFEST_NAME).write_bytes(payload)
    return payload


@dataclasses.dataclass(frozen=True)
class StoreWriteResult:
    """What :func:`write_store` produced."""

    store_dir: pathlib.Path
    record_count: int
    shard_count: int


def write_store(
    dataset: GovernmentHostingDataset,
    store_dir: PathLike,
    *,
    overwrite: bool = False,
) -> StoreWriteResult:
    """Write ``dataset`` as a sharded columnar store under ``store_dir``.

    Builds (or reuses, via :meth:`AnalysisIndex.ensure`) the dataset's
    analysis index and dumps its buffers per country span.  Refuses to
    clobber an existing path unless ``overwrite`` is set.
    """
    store_dir = pathlib.Path(store_dir)
    if store_dir.exists() and not overwrite:
        raise StoreError(f"{store_dir}: already exists (pass overwrite=True)")
    index = AnalysisIndex.ensure(dataset)
    staging = store_dir.with_name(f"{store_dir.name}.tmp.{os.getpid()}")
    if staging.exists():
        shutil.rmtree(staging)
    staging.mkdir(parents=True)
    try:
        shards = {}
        for code, _country_id, start, stop in index._spans:
            manifest_bytes = _write_shard(
                staging / code, code, dataset.countries[code],
                index, start, stop,
            )
            shards[code] = {
                "records": stop - start,
                "manifest_bytes": len(manifest_bytes),
                "manifest_digest": codec.digest(manifest_bytes),
            }
        root = {
            "format": STORE_FORMAT_VERSION,
            "record_count": index.record_count,
            "countries": [code for code, *_ in index._spans],
            "country_table": list(index._countries.table),
            "organization_table": list(index._organizations.table),
            "validation": dataclasses.asdict(dataset.validation),
            "shards": shards,
        }
        # Mirrors repro.io.save_dataset: the key only exists for faulted
        # runs, so fault-free stores stay byte-identical across layers.
        if dataset.faults.countries:
            root["faults"] = dataset.faults.to_dict()
        (staging / MANIFEST_NAME).write_bytes(
            (json.dumps(root, sort_keys=True, indent=2) + "\n").encode()
        )
        if store_dir.exists():
            shutil.rmtree(store_dir)
        os.replace(staging, store_dir)
    except BaseException:
        shutil.rmtree(staging, ignore_errors=True)
        raise
    logger.info(
        "wrote %d records across %d shards to %s",
        index.record_count, len(shards), store_dir,
    )
    return StoreWriteResult(
        store_dir=store_dir,
        record_count=index.record_count,
        shard_count=len(shards),
    )


__all__ = ["StoreWriteResult", "write_store"]
