"""Reading a sharded columnar store: mmap columns, lazy record views.

:class:`DatasetStore` opens a store directory, checks the manifest
digest chain and every column file's size up front (cheap stats -- no
column bytes are read), and then serves three progressively heavier
views:

* **columns** -- zero-copy ``numpy.memmap`` views per shard, the input
  of the store-backed analysis index
  (:class:`~repro.store.index.StoreBackedIndex`);
* **metadata** -- per-country landing counts, depth histograms,
  unresolved hostnames and hostname tables, enough for the full paper
  report without touching a single record;
* **records** -- materialized :class:`~repro.core.dataset.UrlRecord`
  lists per country, the lazy compatibility view behind
  ``CountryDataset.records`` / ``iter_records()``.  Nothing in the
  analysis path needs them; they exist for exports and legacy callers.

:meth:`DatasetStore.dataset` assembles a
:class:`~repro.core.dataset.GovernmentHostingDataset` whose country
views defer record assembly to their shard and whose analysis index is
the store-backed zero-copy one, pre-attached under the same cache
attribute :meth:`AnalysisIndex.ensure` uses -- so every existing
analysis entry point transparently runs off the mmapped columns.

Resource lifetime
-----------------
Every mapped column holds an open file descriptor and a live mapping
until explicitly released (``numpy.memmap`` keeps the file open for the
array's lifetime), so a long-running process that opens stores must
close them: :meth:`DatasetStore.close` -- or the context-manager form
``with DatasetStore(path) as store:`` -- cascades to every shard and
releases all memoized mappings.  Closing is not final: a later
:meth:`ShardReader.column` call simply remaps on demand, so ``close``
doubles as a "drop all mappings" pressure valve.  Column memoization is
lock-guarded, making concurrent reads from a shared store safe.
"""

from __future__ import annotations

import json
import pathlib
import threading
from typing import Iterator, Optional, Union

import numpy as np

from repro.core.dataset import CountryDataset, GovernmentHostingDataset, UrlRecord
from repro.core.geolocation import ValidationStats
from repro.faults.report import FaultReport
from repro.store import codec
from repro.store.format import (
    CATEGORY_CODES,
    COLUMN_FILES,
    MANIFEST_NAME,
    SHARD_MANIFEST_NAME,
    STORE_FORMAT_VERSION,
    STRTAB_FILES,
    VALIDATION_CODES,
    VIA_CODES,
    StoreError,
)

PathLike = Union[str, pathlib.Path]

#: Filenames every shard must carry.
_SHARD_FILES = tuple(COLUMN_FILES) + tuple(
    name for pair in STRTAB_FILES for name in pair
)


def is_store_path(path: PathLike) -> bool:
    """Whether ``path`` looks like a store directory (has a root manifest)."""
    path = pathlib.Path(path)
    return path.is_dir() and (path / MANIFEST_NAME).is_file()


def _close_mapping(mapped) -> None:
    """Close one ``mmap`` object, tolerating still-exported buffers.

    ``mmap.close`` refuses to pull pages out from under a live buffer
    export (it raises ``BufferError``); in that case the mapping -- and
    its file descriptor -- is released when the last view is
    garbage-collected instead, so swallowing the error trades promptness,
    never correctness.
    """
    if mapped is None:
        return
    try:
        mapped.close()
    except BufferError:
        pass


def _load_json(path: pathlib.Path) -> tuple[dict, bytes]:
    try:
        payload = path.read_bytes()
    except OSError as exc:
        raise StoreError(f"{path}: unreadable manifest ({exc})") from exc
    try:
        manifest = json.loads(payload)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise StoreError(f"{path}: corrupt manifest ({exc})") from exc
    if not isinstance(manifest, dict):
        raise StoreError(f"{path}: manifest is not an object")
    return manifest, payload


class ShardReader:
    """One country's shard: lazily mapped columns and decoded tables."""

    def __init__(self, store: "DatasetStore", code: str,
                 shard_dir: pathlib.Path, manifest: dict) -> None:
        self.store = store
        self.code = code
        self.shard_dir = shard_dir
        self.manifest = manifest
        self.record_count: int = manifest["records"]
        self.landing_count: int = manifest["landing_count"]
        self.discarded_url_count: int = manifest["discarded_url_count"]
        self.unresolved_hostnames: list[str] = list(
            manifest["unresolved_hostnames"]
        )
        self.depth_histogram: dict[int, int] = {
            int(depth): count for depth, count in manifest["depth_histogram"]
        }
        self.total_bytes: int = manifest["total_bytes"]
        self._lock = threading.Lock()
        self._columns: dict[str, np.ndarray] = {}
        self._hostname_table: Optional[list[str]] = None

    # ------------------------------------------------------------ files

    def _map_file(self, name: str, kind: Optional[str]) -> np.ndarray:
        """mmap one column file read-only (empty files map to empty
        arrays: ``mmap`` cannot map zero bytes)."""
        path = self.shard_dir / name
        expected = self.manifest["files"][name]["bytes"]
        if expected == 0:
            return np.zeros(0, dtype=codec.KINDS[kind or "u8"])
        try:
            mapped = np.memmap(path, dtype=codec.KINDS[kind or "u8"], mode="r")
        except (OSError, ValueError) as exc:
            raise StoreError(f"{path}: cannot map column ({exc})") from exc
        return mapped

    def column(self, name: str) -> np.ndarray:
        """Zero-copy view of one typed column (memoized per shard).

        Memoization double-checks under the shard lock so concurrent
        first readers share one mapping instead of each mapping the
        file (and leaking the losers' descriptors until GC).
        """
        view = self._columns.get(name)
        if view is None:
            with self._lock:
                view = self._columns.get(name)
                if view is None:
                    view = self._map_file(name, COLUMN_FILES.get(name, "u8"))
                    self._columns[name] = view
        return view

    def _strtab(self, idx_name: str, blob_name: str) -> list[str]:
        idx = self._map_file(idx_name, "i64")
        blob = self._map_file(blob_name, "u8")
        mappings = (getattr(idx, "_mmap", None), getattr(blob, "_mmap", None))
        try:
            return codec.strtab_decode(idx, blob)
        finally:
            # Drop the transient views before closing so the mappings
            # (and their descriptors) release now, not at the next GC.
            del idx, blob
            for mapped in mappings:
                _close_mapping(mapped)

    def close(self) -> None:
        """Release every memoized mapping (descriptors included).

        Safe to call any number of times and while other threads read:
        a reader that raced past the memo keeps a valid view (its
        mapping is then released when the view is garbage-collected --
        ``mmap.close`` refuses to pull pages out from under an exported
        buffer), and later :meth:`column` calls simply remap.
        """
        with self._lock:
            views = list(self._columns.values())
            self._columns.clear()
            self._hostname_table = None
        maps = [getattr(view, "_mmap", None) for view in views]
        views.clear()  # drop the array refs so the buffer exports die
        for mapped in maps:
            _close_mapping(mapped)

    # --------------------------------------------------------- metadata

    def hostname_table(self) -> list[str]:
        """The shard's interned hostnames, first-seen order (memoized)."""
        table = self._hostname_table
        if table is None:
            with self._lock:
                if self._hostname_table is None:
                    self._hostname_table = self._strtab(
                        "hostnames.idx", "hostnames.blob"
                    )
                table = self._hostname_table
        return table

    def hostname_set(self) -> set[str]:
        """Unique hostnames of this country (no record materialization)."""
        return set(self.hostname_table())

    # ---------------------------------------------------------- records

    def materialize_records(self) -> list[UrlRecord]:
        """Rebuild the country's ``UrlRecord`` list from the columns.

        This is the *compatibility* path (exports, legacy record
        consumers); analyses never call it.  All ints come back as
        Python ints, so round-tripped records compare equal to -- and
        JSON-serialize identically to -- pipeline-built ones.
        """
        if self.record_count == 0:
            return []
        store = self.store
        country_table = store.country_table
        organization_table = store.organization_table
        hostname_table = self.hostname_table()
        urls = self._strtab("urls.idx", "urls.blob")
        hostnames = [hostname_table[hid]
                     for hid in self.column("hostname.u32").tolist()]
        code = self.code
        rows = zip(
            urls,
            hostnames,
            [code] * self.record_count,
            self.column("sizes.i64").tolist(),
            [VIA_CODES[v] for v in self.column("via.u8").tolist()],
            self.column("depth.i64").tolist(),
            self.column("addresses.i64").tolist(),
            self.column("asns.i64").tolist(),
            [organization_table[o]
             for o in self.column("organization.i32").tolist()],
            [country_table[r] for r in self.column("registered.i32").tolist()],
            [bool(g) for g in self.column("gov.u8").tolist()],
            [CATEGORY_CODES[c] for c in self.column("category.u8").tolist()],
            [None if s < 0 else country_table[s]
             for s in self.column("server.i32").tolist()],
            [bool(a) for a in self.column("anycast.u8").tolist()],
            [VALIDATION_CODES[v] for v in self.column("validation.u8").tolist()],
        )
        return list(map(UrlRecord._make, rows))

    # --------------------------------------------------------- checking

    def check_sizes(self) -> None:
        """Every listed file must exist with its recorded size."""
        for name in _SHARD_FILES:
            entry = self.manifest["files"].get(name)
            if entry is None:
                raise StoreError(
                    f"{self.shard_dir}: shard manifest misses {name!r}"
                )
            path = self.shard_dir / name
            try:
                actual = path.stat().st_size
            except OSError as exc:
                raise StoreError(f"{path}: missing column file") from exc
            if actual != entry["bytes"]:
                raise StoreError(
                    f"{path}: size {actual} != recorded {entry['bytes']}"
                )

    def verify(self) -> None:
        """Re-hash every column file against its recorded digest."""
        self.check_sizes()
        for name in _SHARD_FILES:
            entry = self.manifest["files"][name]
            payload = (self.shard_dir / name).read_bytes()
            if codec.digest(payload) != entry["digest"]:
                raise StoreError(f"{self.shard_dir / name}: digest mismatch")


class DatasetStore:
    """An opened store directory (manifests parsed, sizes checked)."""

    def __init__(self, store_dir: PathLike) -> None:
        self.store_dir = pathlib.Path(store_dir)
        manifest_path = self.store_dir / MANIFEST_NAME
        if not manifest_path.is_file():
            raise StoreError(f"{self.store_dir}: not a dataset store "
                             f"(no {MANIFEST_NAME})")
        self.manifest, _ = _load_json(manifest_path)
        if self.manifest.get("format") != STORE_FORMAT_VERSION:
            raise StoreError(
                f"{self.store_dir}: unsupported store format "
                f"{self.manifest.get('format')!r}"
            )
        self.record_count: int = self.manifest["record_count"]
        self.countries: list[str] = list(self.manifest["countries"])
        self.country_table: list[str] = list(self.manifest["country_table"])
        self.organization_table: list[str] = list(
            self.manifest["organization_table"]
        )
        known = set(self.country_table)
        missing = [code for code in self.countries if code not in known]
        if missing:
            raise StoreError(
                f"{self.store_dir}: countries absent from the country "
                f"table: {missing}"
            )
        self._shards: dict[str, ShardReader] = {}
        total = 0
        for code in self.countries:
            shard = self._open_shard(code)
            self._shards[code] = shard
            total += shard.record_count
        if total != self.record_count:
            raise StoreError(
                f"{self.store_dir}: shard records sum to {total}, manifest "
                f"says {self.record_count}"
            )

    def _open_shard(self, code: str) -> ShardReader:
        entry = self.manifest["shards"].get(code)
        if entry is None:
            raise StoreError(f"{self.store_dir}: no shard entry for {code}")
        shard_dir = self.store_dir / code
        manifest, payload = _load_json(shard_dir / SHARD_MANIFEST_NAME)
        if (
            len(payload) != entry["manifest_bytes"]
            or codec.digest(payload) != entry["manifest_digest"]
        ):
            raise StoreError(
                f"{shard_dir / SHARD_MANIFEST_NAME}: digest mismatch against "
                f"the root manifest"
            )
        if manifest.get("country") != code or \
                manifest.get("records") != entry["records"]:
            raise StoreError(
                f"{shard_dir / SHARD_MANIFEST_NAME}: shard manifest "
                f"contradicts the root manifest"
            )
        shard = ShardReader(self, code, shard_dir, manifest)
        shard.check_sizes()
        return shard

    # ----------------------------------------------------------- access

    def shard(self, code: str) -> ShardReader:
        """The shard of one country; KeyError when unknown."""
        return self._shards[code]

    def shards(self) -> Iterator[ShardReader]:
        """All shards, store (dataset) order."""
        return iter(self._shards.values())

    @property
    def validation(self) -> ValidationStats:
        return ValidationStats(**self.manifest["validation"])

    @property
    def faults(self) -> FaultReport:
        return FaultReport.from_dict(self.manifest.get("faults", {}))

    def verify(self) -> None:
        """Full integrity pass: re-hash every column file of every shard."""
        for shard in self.shards():
            shard.verify()

    # --------------------------------------------------------- lifetime

    def close(self) -> None:
        """Release every shard's mappings and file descriptors.

        Idempotent, and not final: the store object stays usable --
        any later column access remaps on demand.  Long-running
        processes (the query service, repeated ``convert`` calls in
        one interpreter) must close stores they are done with, or every
        mapped column keeps a descriptor open for the process lifetime.
        """
        for shard in self._shards.values():
            shard.close()

    def __enter__(self) -> "DatasetStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ---------------------------------------------------------- dataset

    def dataset(self) -> GovernmentHostingDataset:
        """A store-backed dataset: lazy country views + zero-copy index.

        The returned dataset answers every metadata question (counts,
        hostnames, landing pages, summaries) and every analysis --
        including the full paper report -- without materializing a
        single record; ``records`` / ``iter_records()`` stay available
        and assemble lazily per country from the shard columns.
        """
        from repro.analysis.engine.index import _CACHE_ATTRIBUTE
        from repro.store.index import StoreBackedIndex

        countries: dict[str, CountryDataset] = {}
        for code in self.countries:
            shard = self._shards[code]
            countries[code] = CountryDataset(
                country=code,
                landing_count=shard.landing_count,
                records=shard.materialize_records,
                discarded_url_count=shard.discarded_url_count,
                unresolved_hostnames=list(shard.unresolved_hostnames),
                depth_histogram=dict(shard.depth_histogram),
                record_count=shard.record_count,
                hostname_loader=shard.hostname_set,
                total_bytes=shard.total_bytes,
            )
        dataset = GovernmentHostingDataset(
            countries=countries,
            validation=self.validation,
            faults=self.faults,
        )
        setattr(dataset, _CACHE_ATTRIBUTE, StoreBackedIndex(self, dataset))
        return dataset

    def iter_records(self) -> Iterator[UrlRecord]:
        """Stream every record, one shard resident at a time.

        Unlike ``dataset().iter_records()`` this never caches the
        materialized lists, so whole-dataset passes (exports, audits)
        run in bounded memory no matter how many countries the store
        holds.
        """
        for shard in self.shards():
            yield from shard.materialize_records()


def load_store_dataset(store_dir: PathLike) -> GovernmentHostingDataset:
    """Open ``store_dir`` and return its store-backed dataset.

    The opened store stays reachable as ``dataset``'s index backing; a
    caller that owns the lifetime (the query service, the CLI) should
    open the :class:`DatasetStore` itself and ``close()`` it when done.
    """
    return DatasetStore(store_dir).dataset()


__all__ = [
    "DatasetStore",
    "ShardReader",
    "is_store_path",
    "load_store_dataset",
]
