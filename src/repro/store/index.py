"""Zero-copy analysis index over an opened dataset store.

:class:`StoreBackedIndex` is an :class:`~repro.analysis.engine.AnalysisIndex`
whose columns are ``numpy.memmap`` views of the shard files instead of
buffers filled by a record scan -- construction touches only manifests,
never a record, and costs micro- not milliseconds.  Every aggregate
table is then computed by the *base class's own methods* over
bit-identical column values, identical interner tables (persisted in
the store manifest in first-seen scan order) and identical spans, so
all results -- and the rendered paper report -- are byte-for-byte equal
to a scan-built index (held by the engine equivalence suite).

Columns are *chunked*: one chunk per country shard, contiguous over the
global record index space.  The base index only ever slices columns at
country-span boundaries, which a chunked column serves as the shard's
own mmap view (zero-copy); the few whole-column reductions (the Table 3
summary) are overridden here as streaming per-shard unions, so a
whole-dataset pass keeps at most one shard's uniques resident.
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_right
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.analysis.engine.index import (
    AnalysisIndex,
    _Interner,
    locked_cached_property,
)
from repro.core.dataset import DatasetSummary, GovernmentHostingDataset

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.store.reader import DatasetStore


class _ChunkedColumn:
    """A virtual column over per-shard chunks, sliceable like an ndarray.

    ``chunks`` load lazily (a chunk is an mmap view, opened on first
    touch) and stay cached -- the underlying pages remain reclaimable by
    the OS.  Span-aligned slices (the only slices the analysis index
    takes) return the chunk's own view without copying; slices crossing
    shard boundaries concatenate, which no index code path does.
    """

    __slots__ = ("_starts", "_bounds", "_loaders", "_chunks", "_length",
                 "dtype")

    def __init__(
        self,
        bounds: list[tuple[int, int]],
        loaders: list[Callable[[], np.ndarray]],
        length: int,
        dtype,
    ) -> None:
        self._bounds = bounds
        self._starts = [start for start, _ in bounds]
        self._loaders = loaders
        self._chunks: list = [None] * len(bounds)
        self._length = length
        self.dtype = np.dtype(dtype)

    def __len__(self) -> int:
        return self._length

    def _chunk(self, i: int) -> np.ndarray:
        chunk = self._chunks[i]
        if chunk is None:
            chunk = self._loaders[i]()
            self._chunks[i] = chunk
        return chunk

    def _locate(self, position: int) -> int:
        return bisect_right(self._starts, position) - 1

    def iter_chunks(self):
        """(start, stop, array) per non-empty shard, store order."""
        for i, (start, stop) in enumerate(self._bounds):
            yield start, stop, self._chunk(i)

    def __getitem__(self, key):
        if isinstance(key, slice):
            if key.step not in (None, 1):
                raise ValueError("chunked columns support unit-stride slices")
            start = 0 if key.start is None else key.start
            stop = self._length if key.stop is None else key.stop
            start = max(0, start + self._length if start < 0 else start)
            stop = min(self._length,
                       stop + self._length if stop < 0 else stop)
            if stop <= start:
                return np.zeros(0, dtype=self.dtype)
            i = self._locate(start)
            chunk_start, chunk_stop = self._bounds[i]
            if stop <= chunk_stop:
                return self._chunk(i)[start - chunk_start:stop - chunk_start]
            parts = []
            while start < stop:
                i = self._locate(start)
                chunk_start, chunk_stop = self._bounds[i]
                take = min(stop, chunk_stop)
                parts.append(
                    self._chunk(i)[start - chunk_start:take - chunk_start]
                )
                start = take
            return np.concatenate(parts)
        index = int(key)
        if index < 0:
            index += self._length
        if not 0 <= index < self._length:
            raise IndexError(index)
        i = self._locate(index)
        return self._chunk(i)[index - self._bounds[i][0]]


class _StoreColumns:
    """The store-backed twin of ``engine.index._Columns``."""

    __slots__ = (
        "sizes", "addresses", "asns", "categories",
        "gov", "anycast", "countries", "registered", "server",
        "organizations",
    )

    _FILES = {
        "sizes": ("sizes.i64", np.int64),
        "addresses": ("addresses.i64", np.int64),
        "asns": ("asns.i64", np.int64),
        "categories": ("category.u8", np.uint8),
        "gov": ("gov.u8", np.uint8),
        "anycast": ("anycast.u8", np.uint8),
        "registered": ("registered.i32", np.intc),
        "server": ("server.i32", np.intc),
        "organizations": ("organization.i32", np.intc),
    }

    def __init__(self, store: "DatasetStore",
                 spans: list[tuple[str, int, int, int]]) -> None:
        populated = [(code, country_id, start, stop)
                     for code, country_id, start, stop in spans
                     if stop > start]
        length = spans[-1][3] if spans else 0
        for attribute, (filename, dtype) in self._FILES.items():
            setattr(self, attribute, _ChunkedColumn(
                bounds=[(start, stop) for _, _, start, stop in populated],
                loaders=[
                    self._loader(store, code, filename)
                    for code, _, _, _ in populated
                ],
                length=length,
                dtype=dtype,
            ))
        # The per-record country-id column is constant per shard, so it
        # is synthesized rather than stored.
        self.countries = _ChunkedColumn(
            bounds=[(start, stop) for _, _, start, stop in populated],
            loaders=[
                (lambda n=stop - start, cid=country_id:
                 np.full(n, cid, dtype=np.intc))
                for _, country_id, start, stop in populated
            ],
            length=length,
            dtype=np.intc,
        )

    @staticmethod
    def _loader(store: "DatasetStore", code: str,
                filename: str) -> Callable[[], np.ndarray]:
        return lambda: store.shard(code).column(filename)


class StoreBackedIndex(AnalysisIndex):
    """An ``AnalysisIndex`` served zero-copy from a store's shards."""

    # Deliberately does NOT call AnalysisIndex.__init__: there is no
    # scan.  Every attribute the base class's aggregate methods read is
    # restored here from the store's manifests instead.
    def __init__(self, store: "DatasetStore",
                 dataset: GovernmentHostingDataset) -> None:
        build_start = time.perf_counter()
        self._dataset = dataset
        self._store = store
        self._memo_lock = threading.RLock()
        self._countries = _restore_interner(
            store.country_table, excluded_id=True
        )
        self._organizations = _restore_interner(store.organization_table)
        self._spans = []
        self._span_by_code = {}
        self._crossborder_tables = {}
        self._crossborder_flow_tables = {}
        self._crossborder_flow_slices = {}
        cursor = 0
        for code in store.countries:
            count = store.shard(code).record_count
            country_id = dict.__getitem__(self._countries, code)
            span = (code, country_id, cursor, cursor + count)
            self._spans.append(span)
            self._span_by_code[code] = (country_id, cursor, cursor + count)
            cursor += count
        self._total_records = cursor
        # Pre-seed the base class's lazy ``_cols`` with chunked views.
        self.__dict__["_cols"] = _StoreColumns(store, self._spans)
        self.build_seconds = time.perf_counter() - build_start

    @property
    def store(self) -> "DatasetStore":
        """The store this index reads from."""
        return self._store

    @property
    def record_count(self) -> int:
        return self._total_records

    # The only base-class computations over *whole* columns are the
    # Table 3 uniques; stream them per shard so no concatenated column
    # ever materializes.  Unique-of-union-of-uniques is exact.
    @locked_cached_property
    def _summary(self) -> DatasetSummary:
        cols = self._cols
        dataset = self._dataset
        landing = sum(cd.landing_count for cd in dataset.countries.values())
        hostnames: set[str] = set()
        for country_dataset in dataset.countries.values():
            hostnames |= country_dataset.hostnames
        address_uniques = []
        anycast_uniques = []
        server_uniques = []
        for (start, stop, addresses), (_, _, anycast), (_, _, server) in zip(
            cols.addresses.iter_chunks(),
            cols.anycast.iter_chunks(),
            cols.server.iter_chunks(),
        ):
            address_uniques.append(np.unique(addresses))
            anycast_uniques.append(np.unique(addresses[anycast != 0]))
            server_uniques.append(np.unique(server))
        return DatasetSummary(
            landing_urls=landing,
            internal_urls=max(0, self.record_count - landing),
            total_unique_urls=self.record_count,
            unique_hostnames=len(hostnames),
            ases=len(self.organization_by_asn()),
            government_ases=len(self.gov_asns()),
            unique_addresses=_union_size(address_uniques, np.int64),
            anycast_addresses=_union_size(anycast_uniques, np.int64),
            countries_with_servers=int(np.count_nonzero(
                _union(server_uniques, np.intc) >= 0
            )),
        )


def _restore_interner(table: list, excluded_id: bool = False) -> _Interner:
    """Rebuild a first-seen interner from its persisted table."""
    interner = _Interner()
    if excluded_id:
        interner[None] = -1  # excluded server locations
    for position, key in enumerate(table):
        interner[key] = position
    interner.table = list(table)
    return interner


def _union(uniques: list[np.ndarray], dtype) -> np.ndarray:
    if not uniques:
        return np.zeros(0, dtype=dtype)
    return np.unique(np.concatenate(uniques))


def _union_size(uniques: list[np.ndarray], dtype) -> int:
    return int(_union(uniques, dtype).size)


__all__ = ["StoreBackedIndex"]
