"""Lossless conversions between the jsonl export and the columnar store.

Both directions preserve bytes exactly:

* ``jsonl -> store -> jsonl`` writes exactly the bytes
  ``save_dataset(load_dataset(jsonl))`` would (header key order,
  depth-histogram insertion order, records grouped by sorted country --
  the canonical form every loaded dataset takes; files already in it,
  i.e. anything ``save_dataset`` wrote from a loaded or store-backed
  dataset, round-trip identically);
* a report rendered over the store equals the report rendered over the
  jsonl it was converted from, byte for byte (the store-backed index
  reproduces the scan-built index exactly).

``store_to_jsonl`` streams: one country's records are materialized,
written and dropped before the next shard is touched, so converting an
arbitrarily large store runs in bounded memory.
"""

from __future__ import annotations

import json
import pathlib
from typing import Union

from repro.store.format import StoreError
from repro.store.reader import DatasetStore
from repro.store.writer import StoreWriteResult, write_store

PathLike = Union[str, pathlib.Path]


def jsonl_to_store(
    jsonl_path: PathLike,
    store_dir: PathLike,
    *,
    overwrite: bool = False,
) -> StoreWriteResult:
    """Convert a :func:`repro.io.save_dataset` file into a store."""
    from repro.io import load_dataset

    dataset = load_dataset(jsonl_path)
    return write_store(dataset, store_dir, overwrite=overwrite)


def store_to_jsonl(
    store: Union[DatasetStore, PathLike],
    jsonl_path: PathLike,
) -> int:
    """Write a store back out as jsonl; returns the record count.

    The header is built by the same code :func:`repro.io.save_dataset`
    uses (over the store-backed dataset's metadata -- no records are
    materialized for it), and records stream one shard at a time.
    """
    from repro.io import dataset_header, record_to_dict

    owns_store = not isinstance(store, DatasetStore)
    if owns_store:
        store = DatasetStore(store)
    try:
        jsonl_path = pathlib.Path(jsonl_path)
        header = dataset_header(store.dataset())
        count = 0
        with jsonl_path.open("w", encoding="utf-8") as handle:
            handle.write(json.dumps(header) + "\n")
            for shard in store.shards():
                for record in shard.materialize_records():
                    handle.write(json.dumps(record_to_dict(record)) + "\n")
                    count += 1
    finally:
        if owns_store:
            store.close()
    if count != store.record_count:
        raise StoreError(
            f"{store.store_dir}: streamed {count} records, manifest "
            f"says {store.record_count}"
        )
    return count


__all__ = ["jsonl_to_store", "store_to_jsonl"]
