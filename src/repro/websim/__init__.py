"""Web substrate: synthetic government sites, serving fabric and browser.

Site trees mirror the structure the paper measured (Section 4.2): 84%
of unique URLs sit on landing pages and 95% within one level below,
with trees reaching up to seven levels.  The browser produces HAR-like
records exactly as the Selenium harness of Section 3.2 did.
"""

from repro.websim.sites import Resource, Page, GovernmentSite
from repro.websim.webserver import WebFabric, GeoBlockedError, PageNotFoundError
from repro.websim.browser import Browser, PageLoad
from repro.websim.topsites import TopSite, TopsiteHosting

__all__ = [
    "Resource",
    "Page",
    "GovernmentSite",
    "WebFabric",
    "GeoBlockedError",
    "PageNotFoundError",
    "Browser",
    "PageLoad",
    "TopSite",
    "TopsiteHosting",
]
