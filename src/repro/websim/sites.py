"""Data model of synthetic government websites.

A :class:`GovernmentSite` owns a tree of :class:`Page` objects rooted
at a landing page.  Pages embed :class:`Resource` objects (the unique
URLs the study counts) and link to deeper internal pages, up to the
seven levels the crawler explores.  Resources may live on the site's
own hostname, on sibling government hostnames (e.g. a ``static.``
asset host), on SAN-verified affiliated hostnames, or on external
contractor domains that the URL filter must discard.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Iterator, Optional


class SiteKind(enum.Enum):
    """Organizational flavour of a government site."""

    MINISTRY = "ministry"
    AGENCY = "agency"
    SOE = "state-owned enterprise"


@dataclasses.dataclass(frozen=True)
class Resource:
    """One fetchable object (the unit the paper counts as a unique URL)."""

    url: str
    hostname: str
    size_bytes: int
    content_type: str = "text/html"

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ValueError("resource size must be non-negative")


@dataclasses.dataclass(frozen=True)
class Page:
    """A crawlable page: its own resource plus embedded content and links."""

    url: str
    hostname: str
    depth: int
    #: Objects fetched when rendering the page (images, scripts, ...).
    resources: tuple[Resource, ...]
    #: URLs of internal pages linked from this page.
    links: tuple[str, ...]
    #: Page size in bytes (the page document itself).
    size_bytes: int = 15_000

    def all_resource_urls(self) -> list[str]:
        """URLs of every object loaded by this page, page itself included."""
        return [self.url] + [resource.url for resource in self.resources]


@dataclasses.dataclass
class GovernmentSite:
    """A government web property rooted at one landing page."""

    country: str
    hostname: str
    landing_url: str
    kind: SiteKind
    pages: dict[str, Page]
    #: Whether the site refuses requests from outside its country
    #: (footnote 1 of the paper: e.g. www.prodecon.gob.mx).
    geo_restricted: bool = False

    def landing_page(self) -> Page:
        """The landing page object."""
        return self.pages[self.landing_url]

    def page(self, url: str) -> Optional[Page]:
        """The page at ``url`` if it belongs to this site."""
        return self.pages.get(url)

    def iter_pages(self) -> Iterator[Page]:
        """All pages of the site."""
        return iter(self.pages.values())

    @property
    def max_depth(self) -> int:
        """Deepest page level present in the tree."""
        return max(page.depth for page in self.pages.values())

    def unique_urls(self) -> set[str]:
        """Every unique URL reachable by fully crawling the site."""
        urls: set[str] = set()
        for page in self.pages.values():
            urls.update(page.all_resource_urls())
        return urls


__all__ = ["SiteKind", "Resource", "Page", "GovernmentSite"]
