"""Selenium-equivalent page loader producing HAR-like records.

Section 3.2 of the paper drives Selenium to load each page and captures
the URL of every constituent resource into an HTTP Archive (HAR) file.
:class:`Browser` performs the same job against the synthetic web: load
a page from a given vantage, record one HAR entry per fetched object
and surface the internal links used for recursive crawling.
"""

from __future__ import annotations

import dataclasses

from repro.har import HarEntry
from repro.measure.vpn import VantagePoint
from repro.websim.webserver import WebFabric


@dataclasses.dataclass(frozen=True)
class PageLoad:
    """Result of rendering one page."""

    url: str
    entries: tuple[HarEntry, ...]
    links: tuple[str, ...]


class Browser:
    """Loads pages through a vantage point and emits HAR entries."""

    def __init__(self, web: WebFabric) -> None:
        self._web = web

    def load(self, url: str, vantage: VantagePoint) -> PageLoad:
        """Render ``url`` as seen from ``vantage``.

        Propagates :class:`~repro.websim.webserver.PageNotFoundError` and
        :class:`~repro.websim.webserver.GeoBlockedError` to the caller;
        the crawler decides how to handle them.
        """
        page = self._web.fetch(url, vantage.country)
        entries = (
            HarEntry(page.url, page.hostname, page.size_bytes, "text/html"),
        ) + tuple(
            HarEntry(r.url, r.hostname, r.size_bytes, r.content_type)
            for r in page.resources
        )
        return PageLoad(url=url, entries=entries, links=page.links)


__all__ = ["PageLoad", "Browser"]
