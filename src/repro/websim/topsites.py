"""Popular ("top") websites used for the government-vs-topsites comparison.

Appendix D of the paper compares government hosting against the popular
sites of 14 selected countries (two per region, Table 6), compiled from
Google's Chrome User Experience Report (CrUX).  Topsites are scraped
only one level past the landing page and classified with a
CNAME/SAN-based self-hosting heuristic into: (1) self-hosting,
(2) global, (3) local and (4) foreign providers.
"""

from __future__ import annotations

import dataclasses
import enum


class TopsiteHosting(enum.Enum):
    """Hosting categories of the topsites comparison (Appendix D)."""

    SELF_HOSTING = "Self-Hosting"
    GLOBAL = "3P Global"
    LOCAL = "3P Local"
    FOREIGN = "3P Regional"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclasses.dataclass(frozen=True)
class TopSite:
    """One popular website from a country's CrUX-style ranking."""

    country: str
    hostname: str
    landing_url: str
    rank: int
    #: Ground-truth hosting category (generator/tests only; the analysis
    #: re-derives the category via the CNAME/SAN heuristic).
    truth_hosting: TopsiteHosting

    def __post_init__(self) -> None:
        if self.rank < 1:
            raise ValueError("rank is 1-based")


#: The 14 comparison countries (Table 6): two per region with differing
#: digital-development strata.
COMPARISON_COUNTRIES: tuple[str, ...] = (
    "CA", "US",        # North America
    "MX", "BR",        # Latin America and the Caribbean
    "FR", "BA",        # Europe and Central Asia
    "AE", "IL",        # Middle East and North Africa
    "ZA", "EG",        # Sub-Saharan Africa / North Africa (per Table 6)
    "IN", "PK",        # South Asia
    "JP", "NZ",        # East Asia and Pacific
)


__all__ = ["TopsiteHosting", "TopSite", "COMPARISON_COUNTRIES"]
