"""The serving side of the synthetic web.

:class:`WebFabric` indexes every generated page by URL and answers
fetches, enforcing geo-restrictions (some government sites only answer
requests from domestic clients -- the reason the study uses in-country
VPN vantage points).
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.websim.sites import GovernmentSite, Page


class WebError(Exception):
    """Base class for fetch failures."""


class PageNotFoundError(WebError):
    """No page exists at the requested URL."""


class GeoBlockedError(WebError):
    """The site refuses requests from the client's country."""


class WebFabric:
    """Global index of all pages served by the synthetic web."""

    def __init__(self) -> None:
        self._pages: dict[str, Page] = {}
        self._sites_by_host: dict[str, GovernmentSite] = {}

    def register_site(self, site: GovernmentSite) -> None:
        """Publish every page of a site."""
        if site.hostname in self._sites_by_host:
            raise ValueError(f"duplicate site for hostname {site.hostname!r}")
        self._sites_by_host[site.hostname] = site
        for url, page in site.pages.items():
            if url in self._pages:
                raise ValueError(f"duplicate page URL {url!r}")
            self._pages[url] = page

    def site_of(self, hostname: str) -> Optional[GovernmentSite]:
        """The site rooted at ``hostname`` (None when unknown)."""
        return self._sites_by_host.get(hostname.lower())

    def fetch(self, url: str, client_country: str) -> Page:
        """Fetch the page at ``url`` from a client in ``client_country``.

        Raises :class:`PageNotFoundError` for unknown URLs and
        :class:`GeoBlockedError` when the owning site is geo-restricted
        and the client is foreign.
        """
        page = self._pages.get(url)
        if page is None:
            raise PageNotFoundError(url)
        site = self._sites_by_host.get(page.hostname)
        if site is not None and site.geo_restricted and client_country != site.country:
            raise GeoBlockedError(url)
        return page

    def iter_sites(self) -> Iterator[GovernmentSite]:
        """Every registered site."""
        return iter(self._sites_by_host.values())

    @property
    def page_count(self) -> int:
        """Total number of registered pages."""
        return len(self._pages)


__all__ = ["WebError", "PageNotFoundError", "GeoBlockedError", "WebFabric"]
