"""The paper's methodology pipeline (Section 3).

Gathering government sites, crawling them seven levels deep through
in-country vantage points, filtering internal government URLs,
identifying the serving infrastructure, classifying network ownership,
geolocating servers and assembling the final dataset.
"""

from repro.core.har import HarEntry, HarArchive
from repro.core.gathering import GovernmentDirectory, compile_directory
from repro.core.crawler import Crawler, CrawlResult
from repro.core.urlfilter import GovernmentUrlFilter, FilterOutcome, FilterVia
from repro.core.infrastructure import InfrastructureMapper, HostInfrastructure
from repro.core.asclassify import GovernmentASClassifier, Evidence
from repro.core.geolocation import Geolocator, GeoVerdict, ValidationMethod, ValidationStats
from repro.core.classification import CategoryClassifier
from repro.core.dataset import UrlRecord, CountryDataset, GovernmentHostingDataset
from repro.core.pipeline import Pipeline

__all__ = [
    "HarEntry",
    "HarArchive",
    "GovernmentDirectory",
    "compile_directory",
    "Crawler",
    "CrawlResult",
    "GovernmentUrlFilter",
    "FilterOutcome",
    "FilterVia",
    "InfrastructureMapper",
    "HostInfrastructure",
    "GovernmentASClassifier",
    "Evidence",
    "Geolocator",
    "GeoVerdict",
    "ValidationMethod",
    "ValidationStats",
    "CategoryClassifier",
    "UrlRecord",
    "CountryDataset",
    "GovernmentHostingDataset",
    "Pipeline",
]
