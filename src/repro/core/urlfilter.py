"""Identifying internal government URLs (Section 3.3, Table 1).

Crawling seven levels deep inevitably leaves the government domain
(e.g. into an external contractor's site), so collected URLs are
filtered through three cascaded heuristics:

1. **Government TLDs** -- any DNS label of the hostname matches one of
   the government tokens (``gov``, ``gouv``, ``gob``, ``go``, ...)
   following the pattern rules of Singanamalla et al.
2. **Domain matching** -- the hostname appears in the curated directory
   of government landing pages (Section 3.1).
3. **SAN matching** -- the hostname is listed among the Subject
   Alternative Names of a landing page's TLS certificate, followed by a
   manual verification step (simulated here by a pluggable verifier
   that rejects provider-infrastructure names, mirroring the paper's
   human check that discards unverifiable hostnames).
"""

from __future__ import annotations

import collections
import dataclasses
import enum
from typing import Callable, Optional

from repro.core.gathering import GovernmentDirectory
from repro.core.har import HarArchive
from repro.netsim.tls import CertificateStore
from repro.urltools import labels_of

#: Government TLD tokens from Table 1 of the paper.
GOV_TLD_TOKENS = frozenset({
    "gov", "govern", "government", "govt", "mil", "fed", "admin",
    "gouv", "gob", "go", "gub", "guv",
})

#: Patterns a human verifier recognizes as provider infrastructure rather
#: than government resources (used by :func:`default_san_verifier`).
_INFRA_MARKERS = ("cdn", "cloud", "ssl", "edge", "analytics", "widgets",
                  "static-hosting", "fastly", "akamai", "sni")


class FilterVia(enum.Enum):
    """Which heuristic accepted a hostname."""

    TLD = "tld"
    DOMAIN = "domain"
    SAN = "san"


def matches_gov_tld(hostname: str) -> bool:
    """Whether any DNS label of ``hostname`` is a government token."""
    return any(label in GOV_TLD_TOKENS for label in labels_of(hostname))


def default_san_verifier(hostname: str) -> bool:
    """Manual-verification stand-in for SAN-matched hostnames.

    The paper manually verifies that SAN-matched hostnames correspond to
    government resources and discards the rest; this heuristic rejects
    hostnames that look like shared provider infrastructure.
    """
    lowered = hostname.lower()
    return not any(marker in lowered for marker in _INFRA_MARKERS)


@dataclasses.dataclass
class FilterOutcome:
    """Result of filtering one country's crawl."""

    country: str
    #: Accepted URL -> heuristic that accepted its hostname.
    accepted: dict[str, FilterVia]
    #: URLs whose hostnames could not be verified as government resources.
    discarded: list[str]
    #: Heuristic per accepted hostname.
    via_by_hostname: dict[str, FilterVia]

    def counts_by_via(self) -> dict[FilterVia, int]:
        """Accepted URL counts per heuristic (the Section 4.2 breakdown)."""
        tallies = collections.Counter(self.accepted.values())
        return {via: tallies.get(via, 0) for via in FilterVia}

    def fractions_by_via(self) -> dict[FilterVia, float]:
        """Accepted URL fractions per heuristic."""
        counts = self.counts_by_via()
        total = sum(counts.values())
        if total == 0:
            return {via: 0.0 for via in FilterVia}
        return {via: count / total for via, count in counts.items()}

    @property
    def government_hostnames(self) -> set[str]:
        """All hostnames confirmed as government resources."""
        return set(self.via_by_hostname)


class GovernmentUrlFilter:
    """Applies the Table 1 cascade to a crawled HAR archive."""

    def __init__(
        self,
        directory: GovernmentDirectory,
        certificates: CertificateStore,
        san_verifier: Optional[Callable[[str], bool]] = None,
    ) -> None:
        self._directory = directory
        self._certificates = certificates
        self._verify = san_verifier or default_san_verifier

    def _san_candidates(self) -> set[str]:
        """SANs of all landing-page certificates."""
        sans: set[str] = set()
        for hostname in self._directory.hostnames:
            sans.update(name.lower() for name in self._certificates.sans_of(hostname))
        return sans

    def run(self, archive: HarArchive) -> FilterOutcome:
        """Filter every URL of ``archive``."""
        directory_hosts = self._directory.hostnames
        san_set = self._san_candidates()
        via_by_hostname: dict[str, FilterVia] = {}
        rejected_hosts: set[str] = set()

        for hostname in sorted(archive.hostnames()):
            if matches_gov_tld(hostname):
                via_by_hostname[hostname] = FilterVia.TLD
            elif hostname in directory_hosts:
                via_by_hostname[hostname] = FilterVia.DOMAIN
            elif hostname in san_set and self._verify(hostname):
                via_by_hostname[hostname] = FilterVia.SAN
            else:
                rejected_hosts.add(hostname)

        accepted: dict[str, FilterVia] = {}
        discarded: list[str] = []
        for entry in archive:
            via = via_by_hostname.get(entry.hostname)
            if via is None:
                discarded.append(entry.url)
            else:
                accepted[entry.url] = via
        return FilterOutcome(
            country=archive.country,
            accepted=accepted,
            discarded=discarded,
            via_by_hostname=via_by_hostname,
        )


__all__ = [
    "GOV_TLD_TOKENS",
    "FilterVia",
    "matches_gov_tld",
    "default_san_verifier",
    "FilterOutcome",
    "GovernmentUrlFilter",
]
