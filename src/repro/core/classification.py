"""Hosting-category classification (Section 5.1).

Combines government-ownership verdicts with provider footprints to sort
every (government, serving AS) pair into the four categories:

* ``Govt&SOE`` -- the operator is government-owned;
* ``3P Global`` -- a network serving governments across multiple
  continents;
* ``3P Local`` -- registered in the same country as the government it
  serves;
* ``3P Regional`` -- registered elsewhere, footprint within one
  continent.

The Global test uses the *observed* footprint -- the set of continents
of the governments an AS serves in the collected dataset -- mirroring
the paper's operational definition.
"""

from __future__ import annotations

from typing import Iterable

from repro.categories import HostingCategory
from repro.core.asclassify import GovernmentASClassifier
from repro.world.countries import COUNTRIES
from repro.world.regions import Continent


class CategoryClassifier:
    """Categorizes serving infrastructure once footprints are known."""

    def __init__(self, ownership: GovernmentASClassifier) -> None:
        self._ownership = ownership
        self._continents_by_asn: dict[int, set[Continent]] = {}

    def observe(self, asn: int, government_country: str) -> None:
        """Record that ``asn`` serves the government of a country."""
        country = COUNTRIES.get(government_country.upper())
        if country is None:
            return
        self._continents_by_asn.setdefault(asn, set()).add(country.continent)

    def observe_all(self, pairs: Iterable[tuple[int, str]]) -> None:
        """Bulk version of :meth:`observe`."""
        for asn, government_country in pairs:
            self.observe(asn, government_country)

    def footprint(self, asn: int) -> frozenset[Continent]:
        """Continents of the governments ``asn`` serves in the dataset."""
        return frozenset(self._continents_by_asn.get(asn, set()))

    def is_global_provider(self, asn: int) -> bool:
        """Whether ``asn`` meets the paper's Global definition."""
        return len(self._continents_by_asn.get(asn, ())) >= 2

    def categorize(
        self,
        asn: int,
        registered_country: str,
        government_country: str,
    ) -> HostingCategory:
        """Category of one (government, serving AS) pair."""
        if self._ownership.is_government(asn):
            return HostingCategory.GOVT_SOE
        if self.is_global_provider(asn):
            return HostingCategory.P3_GLOBAL
        if registered_country.upper() == government_country.upper():
            return HostingCategory.P3_LOCAL
        return HostingCategory.P3_REGIONAL

    def global_provider_asns(self) -> list[int]:
        """All ASNs classified Global by footprint (and not government)."""
        return sorted(
            asn
            for asn, continents in self._continents_by_asn.items()
            if len(continents) >= 2 and not self._ownership.is_government(asn)
        )


__all__ = ["CategoryClassifier"]
