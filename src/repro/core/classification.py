"""Hosting-category classification (Section 5.1).

Combines government-ownership verdicts with provider footprints to sort
every (government, serving AS) pair into the four categories:

* ``Govt&SOE`` -- the operator is government-owned;
* ``3P Global`` -- a network serving governments across multiple
  continents;
* ``3P Local`` -- registered in the same country as the government it
  serves;
* ``3P Regional`` -- registered elsewhere, footprint within one
  continent.

The Global test uses the *observed* footprint -- the set of continents
of the governments an AS serves in the collected dataset -- mirroring
the paper's operational definition.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable

from repro.categories import HostingCategory
from repro.core.asclassify import GovernmentASClassifier
from repro.world.countries import COUNTRIES
from repro.world.regions import Continent


@dataclasses.dataclass
class ProviderFootprint:
    """Observed continental footprint of every serving AS.

    A plain set-union monoid (identity: ``ProviderFootprint()``), so
    per-country footprints collected by parallel pipeline shards merge
    into the global footprint in any grouping or order.  Picklable, so
    process workers can ship their shard's footprint back to the driver.
    """

    continents_by_asn: dict[int, set[Continent]] = dataclasses.field(
        default_factory=dict
    )

    def observe(self, asn: int, government_country: str) -> None:
        """Record that ``asn`` serves the government of a country."""
        country = COUNTRIES.get(government_country.upper())
        if country is None:
            return
        self.continents_by_asn.setdefault(asn, set()).add(country.continent)

    def continents(self, asn: int) -> frozenset[Continent]:
        """Continents of the governments ``asn`` serves."""
        return frozenset(self.continents_by_asn.get(asn, ()))

    def merge(self, other: "ProviderFootprint") -> "ProviderFootprint":
        """Union of two footprints (leaves both operands untouched)."""
        merged = {asn: set(continents)
                  for asn, continents in self.continents_by_asn.items()}
        for asn, continents in other.continents_by_asn.items():
            merged.setdefault(asn, set()).update(continents)
        return ProviderFootprint(continents_by_asn=merged)

    def __add__(self, other: "ProviderFootprint") -> "ProviderFootprint":
        if not isinstance(other, ProviderFootprint):
            return NotImplemented
        return self.merge(other)

    def __len__(self) -> int:
        return len(self.continents_by_asn)


class CategoryClassifier:
    """Categorizes serving infrastructure once footprints are known."""

    def __init__(self, ownership: GovernmentASClassifier) -> None:
        self._ownership = ownership
        self._footprint = ProviderFootprint()

    def observe(self, asn: int, government_country: str) -> None:
        """Record that ``asn`` serves the government of a country."""
        self._footprint.observe(asn, government_country)

    def observe_all(self, pairs: Iterable[tuple[int, str]]) -> None:
        """Bulk version of :meth:`observe`."""
        for asn, government_country in pairs:
            self.observe(asn, government_country)

    def ingest(self, footprint: ProviderFootprint) -> None:
        """Merge an externally collected footprint (parallel reduction)."""
        self._footprint = self._footprint.merge(footprint)

    def snapshot(self) -> "CategoryClassifier":
        """A classifier frozen at the current footprint.

        The clone owns a private copy of the footprint, so deferred
        record assemblers that capture it categorize against exactly
        the footprint that existed at the barrier — even if this
        classifier later observes or ingests more countries.
        """
        clone = CategoryClassifier(self._ownership)
        clone._footprint = ProviderFootprint().merge(self._footprint)
        return clone

    def footprint(self, asn: int) -> frozenset[Continent]:
        """Continents of the governments ``asn`` serves in the dataset."""
        return self._footprint.continents(asn)

    def is_global_provider(self, asn: int) -> bool:
        """Whether ``asn`` meets the paper's Global definition."""
        return len(self._footprint.continents_by_asn.get(asn, ())) >= 2

    def categorize(
        self,
        asn: int,
        registered_country: str,
        government_country: str,
    ) -> HostingCategory:
        """Category of one (government, serving AS) pair."""
        if self._ownership.is_government(asn):
            return HostingCategory.GOVT_SOE
        if self.is_global_provider(asn):
            return HostingCategory.P3_GLOBAL
        if registered_country.upper() == government_country.upper():
            return HostingCategory.P3_LOCAL
        return HostingCategory.P3_REGIONAL

    def global_provider_asns(self) -> list[int]:
        """All ASNs classified Global by footprint (and not government)."""
        return sorted(
            asn
            for asn, continents in self._footprint.continents_by_asn.items()
            if len(continents) >= 2 and not self._ownership.is_government(asn)
        )


__all__ = ["ProviderFootprint", "CategoryClassifier"]
