"""Identifying the serving infrastructure (Section 3.4).

For every confirmed government hostname, resolve it to an IP address
from the in-country VPN vantage, then query WHOIS for the AS number,
organization and country of registration -- the Table 2 record.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Optional

from repro.measure.vpn import VantagePoint
from repro.netsim.dns import DnsError, Resolver
from repro.netsim.whois import WhoisService

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.session import FaultSession


@dataclasses.dataclass(frozen=True)
class HostInfrastructure:
    """The Table 2 information for one government hostname."""

    hostname: str
    address: int
    asn: int
    organization: str
    registered_country: str
    #: CNAME chain observed during resolution (informational).
    cname_chain: tuple[str, ...]


class InfrastructureMapper:
    """Resolves hostnames and annotates them with WHOIS registration data."""

    def __init__(self, resolver: Resolver, whois: WhoisService) -> None:
        self._resolver = resolver
        self._whois = whois

    def map_host(
        self,
        hostname: str,
        vantage: VantagePoint,
        faults: Optional["FaultSession"] = None,
    ) -> Optional[HostInfrastructure]:
        """Infrastructure record for one hostname (None if unresolvable).

        Injected DNS or WHOIS failures that exhaust their retries return
        None like a genuine resolution failure, so the hostname degrades
        into the country's unresolved tally instead of crashing the scan.
        """
        if faults is not None and faults.operation_fails("dns", hostname):
            return None
        try:
            resolution = self._resolver.resolve(hostname, vantage.lat, vantage.lon)
        except DnsError:
            return None
        if faults is not None and faults.operation_fails(
            "whois", resolution.address
        ):
            return None
        try:
            whois_record = self._whois.query_ip(resolution.address)
        except KeyError:
            return None
        return HostInfrastructure(
            hostname=hostname,
            address=resolution.address,
            asn=whois_record.asn,
            organization=whois_record.organization,
            registered_country=whois_record.registration_country,
            cname_chain=resolution.cname_chain,
        )

    def map_hosts(
        self,
        hostnames: set[str],
        vantage: VantagePoint,
        faults: Optional["FaultSession"] = None,
    ) -> dict[str, HostInfrastructure]:
        """Infrastructure records for a set of hostnames, skipping failures."""
        result: dict[str, HostInfrastructure] = {}
        for hostname in sorted(hostnames):
            record = self.map_host(hostname, vantage, faults=faults)
            if record is not None:
                result[hostname] = record
        return result


__all__ = ["HostInfrastructure", "InfrastructureMapper"]
