"""Gathering government websites (Section 3.1).

The paper compiles per-country lists of federal-level landing pages
from official digital directories (ministries, decentralized agencies,
and SOEs with >50% federal ownership).  In the simulator those
directories are the ones the synthetic governments publish
(``truth.directories``); this module wraps them behind the interface
the rest of the pipeline uses and derives the hostname whitelist used
by the domain-matching filter step.
"""

from __future__ import annotations

import dataclasses
import functools

from repro.urltools import hostname_of


@dataclasses.dataclass(frozen=True)
class GovernmentDirectory:
    """The curated list of landing URLs for one country."""

    country: str
    landing_urls: tuple[str, ...]

    @functools.cached_property
    def hostnames(self) -> frozenset[str]:
        """Hostnames appearing in the directory (for domain matching).

        Computed once per directory; the URL filter consults it for
        every crawled hostname, so re-parsing the landing URLs on each
        access was a measurable hot path.
        """
        return frozenset(hostname_of(url) for url in self.landing_urls)

    @property
    def landing_count(self) -> int:
        """Number of landing URLs (the Table 8 'Landing URLs' column)."""
        return len(self.landing_urls)

    def __len__(self) -> int:
        return len(self.landing_urls)


def compile_directory(world, country_code: str) -> GovernmentDirectory:
    """Compile the directory for one country from its published sources.

    ``world`` is a :class:`~repro.datagen.generator.SyntheticWorld`; the
    directory corresponds to the self-reported government listings the
    paper collects (and shares their main limitation: inclusion criteria
    vary by country).
    """
    urls = world.truth.directories.get(country_code.upper(), [])
    return GovernmentDirectory(
        country=country_code.upper(),
        landing_urls=tuple(urls),
    )


__all__ = ["GovernmentDirectory", "compile_directory"]
