"""The assembled government hosting dataset (Section 4).

One :class:`UrlRecord` per unique government URL, annotated with the
full Table 2 information (address, AS, organization, registration) plus
the hosting category, the validated server location and the validation
method -- everything the Section 5-7 analyses consume.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, NamedTuple, Optional

from repro.categories import HostingCategory
from repro.core.geolocation import ValidationMethod, ValidationStats
from repro.core.urlfilter import FilterVia
from repro.faults.report import FaultReport


class UrlRecord(NamedTuple):
    """One unique government URL with its serving-infrastructure annotations.

    A ``NamedTuple`` rather than a frozen dataclass: assembling the
    dataset creates one record per unique URL (~1M at full scale), and
    tuple construction avoids fifteen ``object.__setattr__`` calls per
    record — the single largest cost of the assembly phase.
    """

    url: str
    hostname: str
    country: str
    size_bytes: int
    via: FilterVia
    depth: int
    address: int
    asn: int
    organization: str
    registered_country: str
    gov_operated: bool
    category: HostingCategory
    #: Validated server country; None when geolocation excluded the address.
    server_country: Optional[str]
    anycast: bool
    validation: ValidationMethod

    @property
    def excluded(self) -> bool:
        """Whether the record is dropped from location-based analyses."""
        return self.server_country is None

    @property
    def registration_domestic(self) -> bool:
        """Registered in the same country as the government (Figure 6)."""
        return self.registered_country == self.country

    @property
    def server_domestic(self) -> Optional[bool]:
        """Server located in the government's country (None if excluded)."""
        if self.server_country is None:
            return None
        return self.server_country == self.country


class CountryDataset:
    """All records collected for one country, plus crawl bookkeeping.

    ``records`` accepts either the materialized list or a zero-argument
    assembler callable.  The pipeline passes the latter: per-URL record
    assembly is the dominant non-scan cost at scale (~1M records at
    ``scale=1.0``), so it runs only when something actually reads the
    records — an export, an analysis, a summary.  Deferred assembly is
    pure and idempotent (the assembler closes over an immutable
    category snapshot), so it materializes the same records no matter
    when — or from which thread — it first runs, and a warm-started
    pipeline run that never touches the records skips the cost
    entirely.

    Deferred views can additionally carry what the metadata layer
    already knows — ``record_count``, a ``hostname_loader`` and
    ``total_bytes`` — so :attr:`url_count`, :attr:`hostnames` and
    :attr:`total_bytes` answer without triggering record assembly.
    The columnar dataset store (:mod:`repro.store`) passes all three,
    which is what keeps whole-report runs record-free.
    """

    __slots__ = ("country", "landing_count", "discarded_url_count",
                 "unresolved_hostnames", "depth_histogram",
                 "_records", "_assemble", "_hostnames", "_total_bytes",
                 "_record_count", "_hostname_loader")

    def __init__(
        self,
        country: str,
        landing_count: int,
        records,
        discarded_url_count: int,
        unresolved_hostnames: list[str],
        depth_histogram: dict[int, int],
        *,
        record_count: Optional[int] = None,
        hostname_loader=None,
        total_bytes: Optional[int] = None,
    ) -> None:
        self.country = country
        self.landing_count = landing_count
        self.discarded_url_count = discarded_url_count
        self.unresolved_hostnames = unresolved_hostnames
        self.depth_histogram = depth_histogram
        self._hostnames: Optional[set[str]] = None
        self._total_bytes: Optional[int] = total_bytes
        self._record_count = record_count
        self._hostname_loader = hostname_loader
        if callable(records):
            self._records: Optional[list[UrlRecord]] = None
            self._assemble = records
        else:
            self._records = records
            self._assemble = None

    @property
    def records(self) -> list[UrlRecord]:
        """The per-URL records (assembled on first access if deferred)."""
        records = self._records
        if records is None:
            records = self._assemble()
            self._records = records
            self._assemble = None
        return records

    @property
    def materialized(self) -> bool:
        """Whether the records have been assembled yet."""
        return self._records is not None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CountryDataset):
            return NotImplemented
        return (
            self.country == other.country
            and self.landing_count == other.landing_count
            and self.discarded_url_count == other.discarded_url_count
            and self.unresolved_hostnames == other.unresolved_hostnames
            and self.depth_histogram == other.depth_histogram
            and self.records == other.records
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        records = (
            f"{len(self._records)} records" if self.materialized
            else "records deferred"
        )
        return f"<CountryDataset {self.country}: {records}>"

    @property
    def url_count(self) -> int:
        """Unique government URLs (landing + internal)."""
        if self._records is None and self._record_count is not None:
            return self._record_count
        return len(self.records)

    @property
    def internal_count(self) -> int:
        """Internal URLs: everything beyond the landing pages."""
        return max(0, self.url_count - self.landing_count)

    @property
    def hostnames(self) -> set[str]:
        """Unique government hostnames observed (memoized: records are
        immutable once materialized, so the set never changes)."""
        hostnames = self._hostnames
        if hostnames is None:
            if self._hostname_loader is not None:
                hostnames = set(self._hostname_loader())
            else:
                hostnames = {record.hostname for record in self.records}
            self._hostnames = hostnames
        return hostnames

    @property
    def total_bytes(self) -> int:
        total = self._total_bytes
        if total is None:
            total = sum(record.size_bytes for record in self.records)
            self._total_bytes = total
        return total

    def included_records(self) -> list[UrlRecord]:
        """Records whose server location was validated (analysis input)."""
        return [record for record in self.records if not record.excluded]

    def category_url_fractions(self) -> dict[HostingCategory, float]:
        """Fraction of URLs per hosting category."""
        return _fractions(self.records, by_bytes=False)

    def category_byte_fractions(self) -> dict[HostingCategory, float]:
        """Fraction of bytes per hosting category."""
        return _fractions(self.records, by_bytes=True)


def _fractions(
    records: list[UrlRecord], by_bytes: bool
) -> dict[HostingCategory, float]:
    totals = {category: 0.0 for category in HostingCategory}
    for record in records:
        totals[record.category] += record.size_bytes if by_bytes else 1.0
    grand_total = sum(totals.values())
    if grand_total == 0:
        return totals
    return {category: value / grand_total for category, value in totals.items()}


@dataclasses.dataclass(frozen=True)
class DatasetSummary:
    """The Table 3 headline numbers."""

    landing_urls: int
    internal_urls: int
    total_unique_urls: int
    unique_hostnames: int
    ases: int
    government_ases: int
    unique_addresses: int
    anycast_addresses: int
    countries_with_servers: int


@dataclasses.dataclass
class GovernmentHostingDataset:
    """The full multi-country dataset produced by the pipeline."""

    countries: dict[str, CountryDataset]
    validation: ValidationStats
    #: Fault-injection accounting for the run that produced the dataset
    #: (empty for unfaulted runs — the overwhelmingly common case).
    faults: FaultReport = dataclasses.field(default_factory=FaultReport)

    def iter_records(self) -> Iterator[UrlRecord]:
        """Every record across all countries."""
        for dataset in self.countries.values():
            yield from dataset.records

    def iter_included(self) -> Iterator[UrlRecord]:
        """Every record with a validated server location."""
        for record in self.iter_records():
            if not record.excluded:
                yield record

    def country(self, code: str) -> CountryDataset:
        """Dataset of one country."""
        return self.countries[code.upper()]

    def summarize(self) -> DatasetSummary:
        """Compute the Table 3 headline numbers from the records."""
        landing = sum(ds.landing_count for ds in self.countries.values())
        total = sum(ds.url_count for ds in self.countries.values())
        hostnames: set[str] = set()
        asns: set[int] = set()
        gov_asns: set[int] = set()
        addresses: set[int] = set()
        anycast_addresses: set[int] = set()
        server_countries: set[str] = set()
        for record in self.iter_records():
            hostnames.add(record.hostname)
            asns.add(record.asn)
            if record.gov_operated:
                gov_asns.add(record.asn)
            addresses.add(record.address)
            if record.anycast:
                anycast_addresses.add(record.address)
            if record.server_country is not None:
                server_countries.add(record.server_country)
        return DatasetSummary(
            landing_urls=landing,
            internal_urls=max(0, total - landing),
            total_unique_urls=total,
            unique_hostnames=len(hostnames),
            ases=len(asns),
            government_ases=len(gov_asns),
            unique_addresses=len(addresses),
            anycast_addresses=len(anycast_addresses),
            countries_with_servers=len(server_countries),
        )

    def per_country_stats(self) -> dict[str, dict[str, int]]:
        """Per-country landing/internal/hostname counts (Table 8)."""
        stats: dict[str, dict[str, int]] = {}
        for code, dataset in sorted(self.countries.items()):
            stats[code] = {
                "landing_urls": dataset.landing_count,
                "internal_urls": dataset.internal_count,
                "hostnames": len(dataset.hostnames),
            }
        return stats


__all__ = [
    "UrlRecord",
    "CountryDataset",
    "DatasetSummary",
    "GovernmentHostingDataset",
]
