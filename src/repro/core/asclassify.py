"""Government ownership classification of autonomous systems (Section 3.4).

There is no dataset annotating government networks, so the paper
manually examines every observed AS, cascading through:

1. **PeeringDB** -- indicators in the network name, organization or
   notes (e.g. AS26810 -> "U.S. Dept. of Health and Human Services");
2. the **website** reported on the PeeringDB record;
3. **WHOIS** -- organization names referring to the government, or
   contact e-mail domains under a government domain (".gov" and
   friends);
4. **web search** -- looking up the operator's site to catch
   state-owned enterprises whose names carry no government hint
   (e.g. AS27655, Yacimientos Petroliferos Fiscales).

This module mechanizes that cascade with multilingual keyword matching
over the same fields.
"""

from __future__ import annotations

import dataclasses
import enum
import re
from typing import TYPE_CHECKING, Mapping, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.session import FaultSession

from repro.core.urlfilter import GOV_TLD_TOKENS
from repro.measure.peeringdb import PeeringDb
from repro.netsim.whois import WhoisService
from repro.urltools import labels_of

#: Multilingual keywords revealing government or state ownership; matched on
#: word boundaries to avoid substrings (e.g. "international" != "nation").
_GOV_KEYWORDS = (
    "ministry", "ministerio", "ministere", "government", "governmental",
    "federal", "presidency", "parliament", "secretaria", "bundesamt",
    "national", "state-owned", "dept", "department", "administration",
    "directorate", "municipality",
)

_KEYWORD_RE = re.compile(
    r"\b(" + "|".join(re.escape(keyword) for keyword in _GOV_KEYWORDS) + r")\b",
    re.IGNORECASE,
)

_WEBSEARCH_RE = re.compile(
    r"\b(state-owned|government|federal|ministry|majority stake)\b",
    re.IGNORECASE,
)


class Evidence(enum.Enum):
    """Which source established government ownership."""

    PEERINGDB_TEXT = "peeringdb text"
    PEERINGDB_WEBSITE = "peeringdb website"
    WHOIS_ORG = "whois organization"
    WHOIS_EMAIL = "whois e-mail domain"
    WEB_SEARCH = "web search"


@dataclasses.dataclass(frozen=True)
class OwnershipVerdict:
    """Classification result for one AS."""

    asn: int
    is_government: bool
    evidence: Optional[Evidence] = None


def _text_has_gov_keyword(text: str) -> bool:
    return bool(_KEYWORD_RE.search(text))


def _domain_is_governmental(domain: str) -> bool:
    """Whether a domain carries a government token label (e.g. gov.br)."""
    return any(label in GOV_TLD_TOKENS for label in labels_of(domain))


class GovernmentASClassifier:
    """Implements the ownership cascade over the measurement substrate."""

    def __init__(
        self,
        peeringdb: PeeringDb,
        whois: WhoisService,
        websearch: Mapping[str, str],
    ) -> None:
        self._peeringdb = peeringdb
        self._whois = whois
        self._websearch = websearch
        self._cache: dict[int, OwnershipVerdict] = {}

    def classify(
        self, asn: int, faults: Optional["FaultSession"] = None
    ) -> OwnershipVerdict:
        """Classify one AS; results are memoized.

        Under fault injection the PeeringDB fetch can fail, making the
        verdict specific to the scanning country's session — those
        verdicts are memoized on the session, never in the shared cache.
        """
        if faults is not None:
            cached = faults.ownership_memo.get(asn)
            if cached is None:
                cached = self._classify_uncached(asn, faults)
                faults.ownership_memo[asn] = cached
            return cached
        cached = self._cache.get(asn)
        if cached is not None:
            return cached
        verdict = self._classify_uncached(asn)
        self._cache[asn] = verdict
        return verdict

    def is_government(
        self, asn: int, faults: Optional["FaultSession"] = None
    ) -> bool:
        """Convenience wrapper over :meth:`classify`."""
        return self.classify(asn, faults=faults).is_government

    def _classify_uncached(
        self, asn: int, faults: Optional["FaultSession"] = None
    ) -> OwnershipVerdict:
        # Step 1: PeeringDB text fields.
        record = self._peeringdb.lookup(asn, faults=faults)
        websites: list[str] = []
        if record is not None:
            if any(_text_has_gov_keyword(field) for field in record.text_fields()):
                return OwnershipVerdict(asn, True, Evidence.PEERINGDB_TEXT)
            if record.website:
                websites.append(record.website)
                if self._website_reveals_government(record.website):
                    return OwnershipVerdict(asn, True, Evidence.PEERINGDB_WEBSITE)

        # Step 2: WHOIS organization and contact e-mail.
        whois_attrs = self._whois.query_asn(asn)
        organization = whois_attrs.get("org") or ""
        if _text_has_gov_keyword(organization) and not self._looks_commercial(organization):
            return OwnershipVerdict(asn, True, Evidence.WHOIS_ORG)
        email = whois_attrs.get("email") or ""
        if "@" in email and _domain_is_governmental(email.split("@", 1)[1]):
            return OwnershipVerdict(asn, True, Evidence.WHOIS_EMAIL)

        # Step 3: web search via the WHOIS-reported website.
        website = whois_attrs.get("website")
        if website:
            websites.append(website)
        for site in websites:
            if self._website_reveals_government(site):
                return OwnershipVerdict(asn, True, Evidence.WEB_SEARCH)
        return OwnershipVerdict(asn, False)

    def _website_reveals_government(self, website: str) -> bool:
        """Look the website up in the search corpus and scan the snippet."""
        description = self._websearch.get(website)
        if description is None:
            # The website URL itself may sit under a government domain.
            host = website.split("//", 1)[-1].split("/", 1)[0]
            return _domain_is_governmental(host)
        return bool(_WEBSEARCH_RE.search(description))

    @staticmethod
    def _looks_commercial(organization: str) -> bool:
        """Guard against 'national'-style keywords in commercial names."""
        lowered = organization.lower()
        return any(marker in lowered for marker in ("hosting", "cloud", "cdn",
                                                    "colocation", "telecom inc"))


__all__ = ["Evidence", "OwnershipVerdict", "GovernmentASClassifier"]
