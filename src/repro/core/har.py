"""HTTP Archive records (re-export).

The HAR data structures live in :mod:`repro.har` so the browser substrate
can produce them without importing the pipeline package; they are
re-exported here to keep the pipeline's public surface in one place.
"""

from repro.har import HarEntry, HarArchive

__all__ = ["HarEntry", "HarArchive"]
