"""Recursive crawling of government sites (Section 3.2).

Starting from each landing URL, the crawler renders pages through the
in-country VPN vantage and follows internal links breadth-first up to
seven levels deep (the threshold Singanamalla et al. established),
consolidating every fetched object into a per-country HAR archive.
"""

from __future__ import annotations

import collections
import dataclasses

from repro.core.har import HarArchive
from repro.measure.vpn import VantagePoint
from repro.websim.browser import Browser
from repro.websim.webserver import GeoBlockedError, PageNotFoundError

#: Crawl depth used by the study.
DEFAULT_MAX_DEPTH = 7


@dataclasses.dataclass
class CrawlResult:
    """Everything collected while crawling one country."""

    country: str
    archive: HarArchive
    #: Depth at which each unique URL was first observed.
    depth_of: dict[str, int]
    #: URLs that could not be fetched (missing page, geo-block).
    failed_urls: list[str]
    #: Number of page loads performed.
    page_loads: int

    def urls_at_depth(self, depth: int) -> int:
        """Number of unique URLs first seen at ``depth``."""
        return sum(1 for d in self.depth_of.values() if d == depth)

    def depth_histogram(self) -> dict[int, int]:
        """URL counts per discovery depth."""
        return dict(sorted(collections.Counter(self.depth_of.values()).items()))


class Crawler:
    """Breadth-first site crawler driving the Selenium-equivalent browser."""

    def __init__(self, browser: Browser, max_depth: int = DEFAULT_MAX_DEPTH) -> None:
        if max_depth < 0:
            raise ValueError("max_depth must be non-negative")
        self._browser = browser
        self._max_depth = max_depth

    @property
    def max_depth(self) -> int:
        return self._max_depth

    def crawl(self, seeds: list[str], vantage: VantagePoint) -> CrawlResult:
        """Crawl every seed URL and its internal pages from ``vantage``."""
        archive = HarArchive(country=vantage.country)
        depth_of: dict[str, int] = {}
        failed: list[str] = []
        #: URLs ever admitted to the frontier.  Deduplicating at enqueue
        #: time (rather than at dequeue) keeps the BFS queue bounded by
        #: the number of unique pages instead of the number of links:
        #: each URL still gets loaded exactly once, at the depth of its
        #: first referring page, so the crawl result is unchanged.
        enqueued: set[str] = set()
        page_loads = 0

        queue: collections.deque[tuple[str, int]] = collections.deque()
        for seed in seeds:
            if seed not in enqueued:
                enqueued.add(seed)
                queue.append((seed, 0))
        while queue:
            url, depth = queue.popleft()
            try:
                load = self._browser.load(url, vantage)
            except (PageNotFoundError, GeoBlockedError):
                failed.append(url)
                continue
            page_loads += 1
            for entry in load.entries:
                if archive.add(entry):
                    depth_of[entry.url] = depth
            if depth < self._max_depth:
                for link in load.links:
                    if link not in enqueued:
                        enqueued.add(link)
                        queue.append((link, depth + 1))

        return CrawlResult(
            country=vantage.country,
            archive=archive,
            depth_of=depth_of,
            failed_urls=failed,
            page_loads=page_loads,
        )


__all__ = ["DEFAULT_MAX_DEPTH", "CrawlResult", "Crawler"]
