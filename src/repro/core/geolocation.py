"""Server geolocation (Section 3.5).

The four-step process of the paper:

1. query the IPInfo database for every address;
2. identify anycast addresses using the MAnycast2 snapshot;
3. verify country-level geolocation by active probing: up to five
   RIPE-Atlas probes in the relevant country send three pings each and
   the minimum RTT is compared against a per-country threshold derived
   from the road distance between the country's two furthest cities;
4. for unicast addresses failing step 3, fall back to a multistage
   process -- HOIHO PTR geohints, RIPE IPmap's cache, then
   single-radius probing -- and *exclude* addresses whose multistage
   location conflicts with IPInfo, or that remain unresolved.

Anycast addresses are validated per vantage country: if the minimum
in-country latency beats the country threshold, the anycast service has
sites within the country; otherwise the address is excluded.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import TYPE_CHECKING, Optional

from repro.measure.atlas import AtlasClient

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.session import FaultSession
from repro.measure.hoiho import HoihoExtractor
from repro.measure.ipinfo import IpInfoDatabase
from repro.measure.ipmap import IpMapCache
from repro.measure.manycast import MAnycastSnapshot
from repro.netsim.latency import country_threshold_ms
from repro.world.geography import road_span_km

#: Acceptance radius for the single-radius fallback: the target must be
#: within a few hundred kilometres of some probe.
DEFAULT_SINGLE_RADIUS_MS = 10.0


class ValidationMethod(enum.Enum):
    """How a location was (or was not) validated -- the Table 4 columns."""

    ACTIVE_PROBING = "AP"
    MULTISTAGE = "MG"
    UNRESOLVED = "UR"


@dataclasses.dataclass(frozen=True)
class GeoVerdict:
    """Geolocation outcome for one address (for one country, if anycast)."""

    address: int
    #: Validated country, or None when the address is excluded.
    country: Optional[str]
    method: ValidationMethod
    anycast: bool
    #: IPInfo's claim (step 1), informational.
    claimed_country: Optional[str]
    #: Whether multistage geolocation contradicted IPInfo (exclusion cause).
    conflict: bool = False
    #: Which Section 3.5 step produced the location: ``"active_probing"``,
    #: ``"hoiho"``, ``"ipmap"``, ``"single_radius"``, or None when every
    #: step came up empty.  A pure function of the world (like the rest
    #: of the verdict), so the observability layer's funnel metrics can
    #: be replayed deterministically on the driver no matter which shard
    #: computed the verdict.
    source: Optional[str] = None

    @property
    def excluded(self) -> bool:
        """Addresses without a validated location are dropped from analysis."""
        return self.country is None


@dataclasses.dataclass
class ValidationStats:
    """Tallies reproducing Table 4 of the paper.

    Stats form a commutative monoid under :meth:`merge` (identity:
    ``ValidationStats()``), so per-shard tallies from parallel pipeline
    executions can be reduced in any grouping without changing the
    result.
    """

    unicast_ap: int = 0
    unicast_mg: int = 0
    unicast_unresolved: int = 0
    unicast_conflicts: int = 0
    anycast_ap: int = 0
    anycast_unresolved: int = 0

    @property
    def unicast_total(self) -> int:
        return self.unicast_ap + self.unicast_mg + self.unicast_unresolved

    @property
    def anycast_total(self) -> int:
        return self.anycast_ap + self.anycast_unresolved

    def merge(self, other: "ValidationStats") -> "ValidationStats":
        """Component-wise sum of two disjoint tallies."""
        return ValidationStats(
            unicast_ap=self.unicast_ap + other.unicast_ap,
            unicast_mg=self.unicast_mg + other.unicast_mg,
            unicast_unresolved=self.unicast_unresolved + other.unicast_unresolved,
            unicast_conflicts=self.unicast_conflicts + other.unicast_conflicts,
            anycast_ap=self.anycast_ap + other.anycast_ap,
            anycast_unresolved=self.anycast_unresolved + other.anycast_unresolved,
        )

    def __add__(self, other: "ValidationStats") -> "ValidationStats":
        if not isinstance(other, ValidationStats):
            return NotImplemented
        return self.merge(other)

    def tally(self, verdict: "GeoVerdict") -> None:
        """Count one *newly observed address* into the Table 4 columns.

        Callers are responsible for the count-each-address-once rule;
        this method only encodes how a verdict maps onto the columns
        (shared by the serial geolocator and the parallel replay).
        """
        if verdict.anycast:
            if verdict.method is ValidationMethod.ACTIVE_PROBING:
                self.anycast_ap += 1
            else:
                self.anycast_unresolved += 1
        elif verdict.method is ValidationMethod.ACTIVE_PROBING:
            self.unicast_ap += 1
        elif verdict.method is ValidationMethod.MULTISTAGE and not verdict.conflict:
            self.unicast_mg += 1
        elif verdict.conflict:
            self.unicast_conflicts += 1
            self.unicast_unresolved += 1
        else:
            self.unicast_unresolved += 1

    def table4(self) -> dict[str, dict[str, float]]:
        """Fractions of addresses validated by AP and MG, or unresolved."""
        def fractions(ap: int, mg: int, unresolved: int) -> dict[str, float]:
            total = ap + mg + unresolved
            if total == 0:
                return {"AP": 0.0, "MG": 0.0, "UR": 0.0}
            return {"AP": ap / total, "MG": mg / total, "UR": unresolved / total}

        return {
            "unicast": fractions(self.unicast_ap, self.unicast_mg,
                                 self.unicast_unresolved),
            "anycast": fractions(self.anycast_ap, 0, self.anycast_unresolved),
        }


class Geolocator:
    """Runs the four-step geolocation process over the measurement tools."""

    def __init__(
        self,
        ipinfo: IpInfoDatabase,
        manycast: MAnycastSnapshot,
        atlas: AtlasClient,
        hoiho: HoihoExtractor,
        ipmap: IpMapCache,
        single_radius_ms: float = DEFAULT_SINGLE_RADIUS_MS,
        threshold_slack_ms: float = 10.0,
        #: Ablation switches (see benchmarks/bench_ablation_geolocation.py).
        enable_active_probing: bool = True,
        enable_hoiho: bool = True,
        enable_ipmap: bool = True,
        enable_single_radius: bool = True,
        #: Ablation: replace the per-country road-distance thresholds of
        #: Section 3.5 with one fixed global threshold (milliseconds).
        fixed_threshold_ms: Optional[float] = None,
    ) -> None:
        self._ipinfo = ipinfo
        self._manycast = manycast
        self._atlas = atlas
        self._hoiho = hoiho
        self._ipmap = ipmap
        self._single_radius_ms = single_radius_ms
        self._slack_ms = threshold_slack_ms
        self._enable_ap = enable_active_probing
        self._enable_hoiho = enable_hoiho
        self._enable_ipmap = enable_ipmap
        self._enable_single_radius = enable_single_radius
        self._fixed_threshold_ms = fixed_threshold_ms
        self._thresholds: dict[str, float] = {}
        self._unicast_cache: dict[int, GeoVerdict] = {}
        self._anycast_cache: dict[tuple[int, str], GeoVerdict] = {}
        self._counted: set[int] = set()
        self.stats = ValidationStats()

    # ------------------------------------------------------------------ API

    def is_anycast(self, address: int) -> bool:
        """Step 2: whether the MAnycast2 snapshot flags the address."""
        return self._manycast.is_anycast(address)

    def locate(
        self,
        address: int,
        vantage_country: str,
        faults: Optional["FaultSession"] = None,
    ) -> GeoVerdict:
        """Geolocate an address observed by ``vantage_country``'s crawl.

        With a fault session, every measurement feeding the process —
        IPInfo queries, Atlas pings, the single-radius fallback — is
        subject to injected failures; unrecoverable ones degrade into
        the existing :attr:`ValidationMethod.UNRESOLVED` / exclusion
        paths.  Faulted verdicts are country-scoped (each national crawl
        does its own lookups), so they are memoized on the session and
        never written to the shared caches or the serial stats tally:
        Table 4 accounting happens exclusively in the driver's replay.
        """
        if faults is not None:
            cached = faults.verdict_memo.get(address)
            if cached is not None:
                return cached
            if self.is_anycast(address):
                verdict = self._anycast_verdict(
                    address, vantage_country, faults=faults
                )
            else:
                verdict = self._locate_unicast_uncached(address, faults=faults)
            faults.verdict_memo[address] = verdict
            return verdict
        if self.is_anycast(address):
            return self.locate_anycast(address, vantage_country)
        return self.locate_unicast(address)

    def locate_unicast(self, address: int) -> GeoVerdict:
        """Steps 1, 3 and 4 for a unicast address (memoized)."""
        cached = self._unicast_cache.get(address)
        if cached is not None:
            return cached
        verdict = self._locate_unicast_uncached(address)
        self._unicast_cache[address] = verdict
        self._tally_unicast(verdict)
        return verdict

    def locate_anycast(self, address: int, country: str) -> GeoVerdict:
        """Step 3 for an anycast address as seen from ``country``."""
        key = (address, country)
        cached = self._anycast_cache.get(key)
        if cached is not None:
            return cached
        verdict = self._anycast_verdict(address, country)
        self._anycast_cache[key] = verdict
        if address not in self._counted:
            self._counted.add(address)
            self.stats.tally(verdict)
        return verdict

    def _anycast_verdict(
        self,
        address: int,
        country: str,
        faults: Optional["FaultSession"] = None,
    ) -> GeoVerdict:
        """In-country probing of an anycast address (no caching/tallying)."""
        rtt = self._atlas.min_rtt_from_country(country, address, faults=faults)
        within = rtt is not None and rtt < self._threshold(country)
        claimed = self._ipinfo.country_of(address, faults=faults)
        if within:
            return GeoVerdict(
                address=address, country=country,
                method=ValidationMethod.ACTIVE_PROBING, anycast=True,
                claimed_country=claimed, source="active_probing",
            )
        return GeoVerdict(
            address=address, country=None,
            method=ValidationMethod.UNRESOLVED, anycast=True,
            claimed_country=claimed,
        )

    # ------------------------------------------------------------- internals

    def _threshold(self, country: str) -> float:
        if self._fixed_threshold_ms is not None:
            return self._fixed_threshold_ms
        threshold = self._thresholds.get(country)
        if threshold is None:
            threshold = country_threshold_ms(
                road_span_km(country), slack_ms=self._slack_ms
            )
            self._thresholds[country] = threshold
        return threshold

    def _locate_unicast_uncached(
        self, address: int, faults: Optional["FaultSession"] = None
    ) -> GeoVerdict:
        claimed = self._ipinfo.country_of(address, faults=faults)
        if claimed is not None and self._enable_ap:
            rtt = self._atlas.min_rtt_from_country(claimed, address,
                                                   faults=faults)
            if rtt is not None and rtt < self._threshold(claimed):
                return GeoVerdict(
                    address=address, country=claimed,
                    method=ValidationMethod.ACTIVE_PROBING, anycast=False,
                    claimed_country=claimed, source="active_probing",
                )
        hint, stage = self._multistage_hint(address, faults=faults)
        if hint is None:
            return GeoVerdict(
                address=address, country=None,
                method=ValidationMethod.UNRESOLVED, anycast=False,
                claimed_country=claimed,
            )
        if claimed is not None and hint != claimed:
            # Conservative exclusion: multistage contradicts IPInfo.
            return GeoVerdict(
                address=address, country=None,
                method=ValidationMethod.MULTISTAGE, anycast=False,
                claimed_country=claimed, conflict=True, source=stage,
            )
        return GeoVerdict(
            address=address, country=hint,
            method=ValidationMethod.MULTISTAGE, anycast=False,
            claimed_country=claimed, source=stage,
        )

    def _multistage_hint(
        self, address: int, faults: Optional["FaultSession"] = None
    ) -> tuple[Optional[str], Optional[str]]:
        """Step 4: HOIHO, then IPmap, then single-radius probing.

        Returns ``(country hint, stage name)`` so the verdict records
        which fallback resolved the address.
        """
        if self._enable_hoiho:
            hint = self._hoiho.country_hint(address)
            if hint is not None:
                return hint, "hoiho"
        if self._enable_ipmap:
            hint = self._ipmap.lookup(address)
            if hint is not None:
                return hint, "ipmap"
        if self._enable_single_radius:
            best = self._atlas.nearest_probe_rtt(address, faults=faults)
            if best is not None and best.min_rtt_ms is not None:
                if best.min_rtt_ms < self._single_radius_ms:
                    return best.probe.country, "single_radius"
        return None, None

    def _tally_unicast(self, verdict: GeoVerdict) -> None:
        self.stats.tally(verdict)


__all__ = [
    "DEFAULT_SINGLE_RADIUS_MS",
    "ValidationMethod",
    "GeoVerdict",
    "ValidationStats",
    "Geolocator",
]
