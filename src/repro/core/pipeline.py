"""End-to-end measurement pipeline (Section 3).

Runs the full methodology over a synthetic world:

1. compile the per-country government directory (Section 3.1);
2. crawl landing pages seven levels deep through in-country VPN
   vantages, producing HAR archives (Section 3.2);
3. filter internal government URLs via TLD/domain/SAN heuristics
   (Section 3.3);
4. resolve hostnames and annotate with WHOIS data; classify network
   ownership (Section 3.4);
5. geolocate and validate every server address (Section 3.5);
6. classify hosting categories and assemble the dataset (Sections 4-5).
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.core.asclassify import GovernmentASClassifier
from repro.core.classification import CategoryClassifier
from repro.core.crawler import DEFAULT_MAX_DEPTH, Crawler, CrawlResult
from repro.core.dataset import CountryDataset, GovernmentHostingDataset, UrlRecord
from repro.core.gathering import compile_directory
from repro.core.geolocation import Geolocator
from repro.core.infrastructure import HostInfrastructure, InfrastructureMapper
from repro.core.urlfilter import FilterOutcome, GovernmentUrlFilter
from repro.datagen.generator import SyntheticWorld
from repro.datagen.seeds import derive_rng
from repro.measure.atlas import AtlasClient
from repro.netsim.latency import LatencyModel
from repro.websim.browser import Browser
from repro.world.cities import all_location_codes


@dataclasses.dataclass
class _CountryScan:
    """Intermediate per-country artifacts from the crawl+filter+map phase."""

    country: str
    crawl: CrawlResult
    outcome: FilterOutcome
    infrastructure: dict[str, HostInfrastructure]
    landing_count: int


class Pipeline:
    """Drives the full methodology over one synthetic world."""

    def __init__(
        self,
        world: SyntheticWorld,
        max_depth: int = DEFAULT_MAX_DEPTH,
        geolocator: Optional[Geolocator] = None,
    ) -> None:
        self.world = world
        self.browser = Browser(world.web)
        self.crawler = Crawler(self.browser, max_depth=max_depth)
        self.mapper = InfrastructureMapper(world.resolver, world.whois)
        self.ownership = GovernmentASClassifier(
            world.peeringdb, world.whois, world.websearch
        )
        self.categories = CategoryClassifier(self.ownership)
        self.atlas = self._make_atlas(world)
        self.geolocator = geolocator or Geolocator(
            ipinfo=world.ipinfo,
            manycast=world.manycast,
            atlas=self.atlas,
            hoiho=world.hoiho,
            ipmap=world.ipmap,
        )

    @staticmethod
    def _make_atlas(world: SyntheticWorld) -> AtlasClient:
        """Build the probe mesh against the world's serving fabric."""
        latency = LatencyModel(derive_rng(world.config.seed, "pipeline", "latency"))
        return AtlasClient(
            fabric=world.fabric,
            latency=latency,
            country_codes=all_location_codes(),
            rng=derive_rng(world.config.seed, "pipeline", "atlas"),
        )

    # ------------------------------------------------------------------ runs

    def scan_country(self, code: str) -> _CountryScan:
        """Crawl, filter and map one country (phases 1-4)."""
        code = code.upper()
        directory = compile_directory(self.world, code)
        vantage = self.world.vpn.vantage_for(code)
        crawl = self.crawler.crawl(list(directory.landing_urls), vantage)
        url_filter = GovernmentUrlFilter(directory, self.world.certificates)
        outcome = url_filter.run(crawl.archive)
        infrastructure = self.mapper.map_hosts(
            outcome.government_hostnames, vantage
        )
        return _CountryScan(
            country=code,
            crawl=crawl,
            outcome=outcome,
            infrastructure=infrastructure,
            landing_count=directory.landing_count,
        )

    def run(self, countries: Optional[list[str]] = None) -> GovernmentHostingDataset:
        """Run the full pipeline and assemble the dataset."""
        codes = [c.upper() for c in countries] if countries else self.world.country_codes()

        scans = [self.scan_country(code) for code in codes]

        # The Global-provider definition needs the cross-country footprint
        # of every AS before categories can be assigned.
        for scan in scans:
            for info in scan.infrastructure.values():
                self.categories.observe(info.asn, scan.country)

        country_datasets: dict[str, CountryDataset] = {}
        for scan in scans:
            country_datasets[scan.country] = self._assemble_country(scan)
        return GovernmentHostingDataset(
            countries=country_datasets,
            validation=self.geolocator.stats,
        )

    # ------------------------------------------------------------- internals

    def _assemble_country(self, scan: _CountryScan) -> CountryDataset:
        records: list[UrlRecord] = []
        unresolved = sorted(
            scan.outcome.government_hostnames - set(scan.infrastructure)
        )
        verdict_by_host: dict[str, object] = {}
        category_by_host: dict[str, object] = {}
        gov_by_host: dict[str, bool] = {}
        for hostname, info in scan.infrastructure.items():
            verdict = self.geolocator.locate(info.address, scan.country)
            verdict_by_host[hostname] = verdict
            gov_by_host[hostname] = self.ownership.is_government(info.asn)
            category_by_host[hostname] = self.categories.categorize(
                info.asn, info.registered_country, scan.country
            )

        for url, via in scan.outcome.accepted.items():
            entry = scan.crawl.archive.get(url)
            info = scan.infrastructure.get(entry.hostname)
            if info is None:
                continue
            verdict = verdict_by_host[entry.hostname]
            records.append(UrlRecord(
                url=url,
                hostname=entry.hostname,
                country=scan.country,
                size_bytes=entry.size_bytes,
                via=via,
                depth=scan.crawl.depth_of.get(url, 0),
                address=info.address,
                asn=info.asn,
                organization=info.organization,
                registered_country=info.registered_country,
                gov_operated=gov_by_host[entry.hostname],
                category=category_by_host[entry.hostname],
                server_country=verdict.country,
                anycast=verdict.anycast,
                validation=verdict.method,
            ))
        return CountryDataset(
            country=scan.country,
            landing_count=scan.landing_count,
            records=records,
            discarded_url_count=len(scan.outcome.discarded),
            unresolved_hostnames=unresolved,
            depth_histogram=scan.crawl.depth_histogram(),
        )


__all__ = ["Pipeline"]
