"""End-to-end measurement pipeline (Section 3).

Runs the full methodology over a synthetic world:

1. compile the per-country government directory (Section 3.1);
2. crawl landing pages seven levels deep through in-country VPN
   vantages, producing HAR archives (Section 3.2);
3. filter internal government URLs via TLD/domain/SAN heuristics
   (Section 3.3);
4. resolve hostnames and annotate with WHOIS data; classify network
   ownership (Section 3.4);
5. geolocate and validate every server address (Section 3.5);
6. classify hosting categories and assemble the dataset (Sections 4-5).

Execution is split into a per-country **phase 1** (steps 1-5, no
cross-country data dependency) and a cheap **phase 2** (step 6, which
needs every AS's cross-country footprint).  Phase 1 fans out over any
:class:`~repro.exec.ExecutionStrategy`; the two cross-country
reductions — provider footprints and Table 4 validation stats — are
merged deterministically on the driver, so parallel runs are
bit-identical to serial ones.
"""

from __future__ import annotations

import dataclasses
import functools
import logging
import time
from contextlib import nullcontext
from typing import TYPE_CHECKING, Optional, Sequence

from repro.core.asclassify import GovernmentASClassifier
from repro.core.classification import CategoryClassifier, ProviderFootprint
from repro.core.crawler import DEFAULT_MAX_DEPTH, Crawler, CrawlResult
from repro.core.dataset import CountryDataset, GovernmentHostingDataset, UrlRecord
from repro.core.gathering import compile_directory
from repro.core.geolocation import GeoVerdict, Geolocator
from repro.core.infrastructure import HostInfrastructure, InfrastructureMapper
from repro.core.urlfilter import FilterOutcome, GovernmentUrlFilter
from repro.datagen.generator import SyntheticWorld
from repro.datagen.seeds import derive_rng
from repro.exec import (
    ExecutionStrategy,
    SerialExecutor,
    merge_faults,
    merge_footprints,
    merge_validation,
)
from repro.exec.partials import CountryPartial, HostAnnotation, UrlObservation
from repro.faults import FaultPlan, FaultReport, FaultSession
from repro.measure.atlas import AtlasClient
from repro.netsim.latency import LatencyModel
from repro.websim.browser import Browser
from repro.world.cities import all_location_codes

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cache import ScanCache
    from repro.obs import Observability
    from repro.obs.scan import ScanObs

logger = logging.getLogger(__name__)


def _null_span(name: str, **tags) -> nullcontext:
    """Span stand-in for uninstrumented scans (no scope allocated)."""
    return nullcontext()


@dataclasses.dataclass
class _CountryScan:
    """Intermediate per-country artifacts from the crawl+filter+map phase."""

    country: str
    crawl: CrawlResult
    outcome: FilterOutcome
    infrastructure: dict[str, HostInfrastructure]
    landing_count: int


def _assemble_records(
    partial: CountryPartial, categories: CategoryClassifier
) -> list[UrlRecord]:
    """Build one country's URL records from its phase-1 partial.

    The per-host suffix (everything after the per-URL columns) is
    computed once per hostname, and records are built through
    ``tuple.__new__`` — per-record attribute lookups and the generated
    NamedTuple constructor otherwise dominate assembly, which creates
    ~1M records at full scale.
    """
    country = partial.country
    categorize = categories.categorize
    new = tuple.__new__
    suffix = {
        hostname: (
            note.address, note.asn, note.organization,
            note.registered_country, note.gov_operated,
            categorize(note.asn, note.registered_country, country),
            note.server_country, note.anycast, note.validation,
        )
        for hostname, note in partial.hosts.items()
    }
    return [
        new(UrlRecord, (url, hostname, country, size_bytes, via, depth)
            + suffix[hostname])
        for url, hostname, size_bytes, via, depth in partial.urls
    ]


class Pipeline:
    """Drives the full methodology over one synthetic world."""

    def __init__(
        self,
        world: SyntheticWorld,
        max_depth: int = DEFAULT_MAX_DEPTH,
        geolocator: Optional[Geolocator] = None,
        faults: Optional[FaultPlan] = None,
        obs: Optional["Observability"] = None,
    ) -> None:
        self.world = world
        #: Observability sink (None: no tracing/metrics).  Purely
        #: read-side instrumentation — a run with ``obs`` set produces a
        #: byte-identical dataset to one without (tested per executor).
        self.obs = obs
        #: Wall seconds of the most recent phase-1 scan per country,
        #: recorded by every executor (process shards ship theirs back).
        #: Feeds the cache's per-entry cost accounting and the progress
        #: heartbeat; never serialized into datasets.
        self.scan_seconds: dict[str, float] = {}
        self.browser = Browser(world.web)
        self.crawler = Crawler(self.browser, max_depth=max_depth)
        self.mapper = InfrastructureMapper(world.resolver, world.whois)
        self.ownership = GovernmentASClassifier(
            world.peeringdb, world.whois, world.websearch
        )
        self.categories = CategoryClassifier(self.ownership)
        self.atlas = self._make_atlas(world)
        #: The fault-injection plan (default: whatever the world's config
        #: asks for, which is "no faults" unless ``fault_rate`` is set).
        self.fault_plan = faults if faults is not None else FaultPlan.from_config(
            world.config
        )
        #: Whether worker processes can rebuild an equivalent pipeline
        #: from the world's config alone (False once a custom geolocator
        #: or fault plan is injected; their configuration cannot be
        #: shipped to workers).
        self.supports_process_execution = geolocator is None and faults is None
        #: Whether scan results may be served from a persistent cache.
        #: A custom fault plan is fine — the frozen plan fingerprints
        #: exactly — but a custom geolocator's behavior is opaque, so
        #: its partials must not be memoized under a config-derived key.
        self.supports_caching = geolocator is None
        self.geolocator = geolocator or Geolocator(
            ipinfo=world.ipinfo,
            manycast=world.manycast,
            atlas=self.atlas,
            hoiho=world.hoiho,
            ipmap=world.ipmap,
        )
        #: Geolocation verdict per (hostname, vantage country), shared
        #: across shards and repeated runs.  Sound because verdicts are
        #: pure functions of the world (ping jitter is keyed per
        #: probe/address pair, not drawn from a shared stream).
        self._host_verdicts: dict[tuple[str, str], GeoVerdict] = {}

    @staticmethod
    def _make_atlas(world: SyntheticWorld) -> AtlasClient:
        """Build the probe mesh against the world's serving fabric."""
        latency = LatencyModel(derive_rng(world.config.seed, "pipeline", "latency"))
        return AtlasClient(
            fabric=world.fabric,
            latency=latency,
            country_codes=all_location_codes(),
            rng=derive_rng(world.config.seed, "pipeline", "atlas"),
        )

    # ------------------------------------------------------------------ runs

    def scan_country(
        self,
        code: str,
        faults: Optional[FaultSession] = None,
        obs: Optional["ScanObs"] = None,
    ) -> _CountryScan:
        """Crawl, filter and map one country (phases 1-4).

        A fault session makes the scan run over an unreliable substrate:
        the VPN exit may flap (retried, then re-selected to an alternate
        in-country exit) and DNS/WHOIS lookups may fail (hostnames
        degrade into the unresolved tally).

        An observability scope records per-stage spans and counters;
        it reads results the scan computed anyway, so instrumented and
        bare scans are identical.
        """
        code = code.upper()
        span = obs.span if obs is not None else _null_span
        with span("directory"):
            directory = compile_directory(self.world, code)
        # The exit rank is part of the country's config slice, so a
        # vantage-shifted scenario re-keys (and re-scans) only the
        # countries it moves.
        rank = self.world.config.vantage_rank_for(code)
        if faults is not None:
            vantage = faults.select_vantage(self.world.vpn, code, rank)
        elif rank:
            vantage = self.world.vpn.vantage_at(code, rank)
        else:
            vantage = self.world.vpn.vantage_for(code)
        with span("crawl") as crawl_span:
            crawl = self.crawler.crawl(list(directory.landing_urls), vantage)
        with span("filter") as filter_span:
            url_filter = GovernmentUrlFilter(directory, self.world.certificates)
            outcome = url_filter.run(crawl.archive)
        with span("resolve") as resolve_span:
            infrastructure = self.mapper.map_hosts(
                outcome.government_hostnames, vantage, faults=faults
            )
        if obs is not None:
            metrics = obs.metrics
            crawl_span.tags.update(pages=crawl.page_loads,
                                   urls=len(crawl.depth_of),
                                   failed=len(crawl.failed_urls))
            metrics.count("crawl.page_loads", crawl.page_loads)
            metrics.count("crawl.fetched_urls", len(crawl.depth_of))
            metrics.count("crawl.failed_urls", len(crawl.failed_urls))
            accepted = len(outcome.accepted)
            filter_span.tags.update(accepted=accepted,
                                    discarded=len(outcome.discarded))
            metrics.count("filter.accepted_urls", accepted)
            for via, count in outcome.counts_by_via().items():
                metrics.count(f"filter.via.{via.value}", count)
            unresolved = len(outcome.government_hostnames) - len(infrastructure)
            resolve_span.tags.update(hosts=len(infrastructure),
                                     unresolved=unresolved)
            metrics.count("resolve.resolved_hosts", len(infrastructure))
        return _CountryScan(
            country=code,
            crawl=crawl,
            outcome=outcome,
            infrastructure=infrastructure,
            landing_count=directory.landing_count,
        )

    def scan_partial(self, code: str) -> CountryPartial:
        """Phase 1 for one country: scan, geolocate, annotate.

        Returns a picklable :class:`CountryPartial` holding everything
        except hosting categories, which need the cross-country
        footprint barrier (phase 2).
        """
        code = code.upper()
        started = time.perf_counter()
        session = (
            FaultSession(self.fault_plan, code)
            if self.fault_plan.enabled
            else None
        )
        obs = self.obs
        scope = obs.scan_scope(code) if obs is not None else None
        scan = self.scan_country(code, faults=session, obs=scope)
        country = scan.country
        footprint = ProviderFootprint()
        hosts: dict[str, HostAnnotation] = {}
        verdicts: list[GeoVerdict] = []
        host_verdicts = self._host_verdicts
        is_government = self.ownership.is_government
        locate = self.geolocator.locate
        geolocate_cm = (scope.span("geolocate", hosts=len(scan.infrastructure))
                        if scope is not None else nullcontext())
        #: Wall seconds and address counts per Section 3.5 step, keyed
        #: by the verdict's ``source`` (observability only).
        step_seconds: dict[str, float] = {}
        step_counts: dict[str, int] = {}
        with geolocate_cm:
            for hostname, info in scan.infrastructure.items():
                if scope is not None:
                    lookup_started = time.perf_counter()
                if session is not None:
                    # Faulted verdicts are scoped to this country's session
                    # (its own memo dedupes repeat addresses); the shared
                    # cross-run cache only ever holds fault-free verdicts.
                    verdict = locate(info.address, country, faults=session)
                else:
                    key = (hostname, country)
                    verdict = host_verdicts.get(key)
                    if verdict is None:
                        verdict = locate(info.address, country)
                        host_verdicts[key] = verdict
                if scope is not None:
                    step = verdict.source or "unresolved"
                    step_seconds[step] = (step_seconds.get(step, 0.0)
                                          + time.perf_counter() - lookup_started)
                    step_counts[step] = step_counts.get(step, 0) + 1
                verdicts.append(verdict)
                footprint.observe(info.asn, country)
                hosts[hostname] = HostAnnotation(
                    address=info.address,
                    asn=info.asn,
                    organization=info.organization,
                    registered_country=info.registered_country,
                    gov_operated=is_government(info.asn, faults=session),
                    server_country=verdict.country,
                    anycast=verdict.anycast,
                    validation=verdict.method,
                )
            if scope is not None:
                scope.geolocation_steps(step_seconds, step_counts)
                scope.metrics.count("geo.lookups", len(scan.infrastructure))

        urls: list[UrlObservation] = []
        append = urls.append
        archive_get = scan.crawl.archive.get
        depth_get = scan.crawl.depth_of.get
        for url, via in scan.outcome.accepted.items():
            entry = archive_get(url)
            if entry.hostname in hosts:
                append((url, entry.hostname, entry.size_bytes, via,
                        depth_get(url, 0)))

        self.scan_seconds[country] = time.perf_counter() - started
        if scope is not None:
            if session is not None:
                scope.metrics.count("faults.operations",
                                    session.episodes_evaluated)
            obs.absorb_scan(scope)

        return CountryPartial(
            country=country,
            landing_count=scan.landing_count,
            discarded_url_count=len(scan.outcome.discarded),
            unresolved_hostnames=sorted(
                scan.outcome.government_hostnames - set(scan.infrastructure)
            ),
            depth_histogram=scan.crawl.depth_histogram(),
            hosts=hosts,
            urls=urls,
            verdicts=tuple(verdicts),
            footprint=footprint,
            faults=session.report if session is not None else FaultReport(),
        )

    def finalize_country(
        self,
        partial: CountryPartial,
        categories: Optional[CategoryClassifier] = None,
    ) -> CountryDataset:
        """Phase 2 for one country: snapshot categories, defer assembly.

        Requires :meth:`CategoryClassifier.ingest` (or ``observe``) to
        have absorbed the *global* footprint first — the Global-provider
        definition spans countries.  The returned dataset holds a
        deferred record assembler over a frozen snapshot of the
        classifier, so the dominant per-URL construction cost is paid
        only when the records are actually read, and the assembly is
        identical no matter when it runs (even if this pipeline later
        ingests further footprints).  ``categories`` lets a driver that
        finalizes many countries take that snapshot once and share it.
        """
        if categories is None:
            categories = self.categories.snapshot()
        return CountryDataset(
            country=partial.country,
            landing_count=partial.landing_count,
            records=functools.partial(_assemble_records, partial, categories),
            discarded_url_count=partial.discarded_url_count,
            unresolved_hostnames=partial.unresolved_hostnames,
            depth_histogram=partial.depth_histogram,
        )

    def run(
        self,
        countries: Optional[Sequence[str]] = None,
        executor: Optional[ExecutionStrategy] = None,
        cache: Optional["ScanCache"] = None,
    ) -> GovernmentHostingDataset:
        """Run the full pipeline and assemble the dataset.

        ``executor`` selects the execution strategy for the per-country
        work (default: :class:`~repro.exec.SerialExecutor`).  Every
        strategy yields an identical dataset; callers that pass their
        own executor also own its lifetime (call ``close()`` when done,
        the pool is reusable across runs).

        ``cache`` enables warm starts: phase-1 partials are served from
        the :class:`~repro.cache.ScanCache` where valid and only the
        misses are scanned (then stored back).  Warm runs are
        byte-identical to cold ones under every executor; the cache's
        ``stats`` record what the run hit, missed and saved.
        """
        codes = [c.upper() for c in countries] if countries else self.world.country_codes()
        strategy = executor or SerialExecutor()
        obs = self.obs
        logger.info("pipeline run: %d countries via %s", len(codes),
                    strategy.name)

        run_cm = (obs.run_scope(strategy.name, len(codes))
                  if obs is not None else nullcontext())
        phase = obs.phase if obs is not None else _null_span
        with run_cm:
            # Phase 1: independent per-country scans, fanned out
            # (warm-started from the cache when one is given).
            with phase("scan", cached=cache is not None):
                if cache is not None:
                    if not self.supports_caching:
                        raise ValueError(
                            "caching requires the pipeline's default "
                            "geolocator; a custom geolocator's results "
                            "cannot be keyed by the world config — run "
                            "without cache="
                        )
                    partials = strategy.scan_cached(self, codes, cache)
                else:
                    partials = strategy.scan(self, codes)

            dataset = self._assemble(partials, strategy, phase)

        if obs is not None:
            # Driver-side metrics: replayed from the partials in
            # canonical order (covers cache hits, executor-independent).
            obs.record_partials(partials)
            obs.record_faults(dataset.faults)
            if cache is not None:
                obs.record_cache(cache)
        logger.info("pipeline run finished: %d countries", len(codes))
        return dataset

    def _assemble(self, partials, strategy, phase) -> GovernmentHostingDataset:
        """The merge barrier and phase 2, shared by :meth:`run`/:meth:`assemble`."""
        # Barrier: cross-country reductions, merged deterministically.
        with phase("merge"):
            self.categories.ingest(merge_footprints(partials))
            validation = merge_validation(partials)
            faults = merge_faults(partials)

        # Phase 2: categorize + record assembly, parallelizable again.
        # One classifier snapshot serves every country's deferred
        # assembler; per-country snapshots would each copy the footprint.
        with phase("finalize"):
            finalize_one = functools.partial(
                self.finalize_country, categories=self.categories.snapshot()
            )
            finalized = strategy.finalize(self, partials, finalize_one)
        return GovernmentHostingDataset(
            countries={dataset.country: dataset for dataset in finalized},
            validation=validation,
            faults=faults,
        )

    def assemble(
        self,
        partials: Sequence[CountryPartial],
        executor: Optional[ExecutionStrategy] = None,
    ) -> GovernmentHostingDataset:
        """Merge + finalize externally supplied phase-1 partials.

        The scenario sweep scans each unique ``(global, country-slice)``
        key once and fans the partials back out per scenario; this is
        the entry point it assembles each scenario's dataset through.
        Produces exactly what :meth:`run` would for the same partials:
        the same merge barrier, one classifier snapshot, the same
        executor-driven finalize.  Like :meth:`run`, it ingests the
        merged footprint into this pipeline's classifier — assemble a
        given pipeline's partials once, not repeatedly.
        """
        strategy = executor or SerialExecutor()
        obs = self.obs
        phase = obs.phase if obs is not None else _null_span
        dataset = self._assemble(partials, strategy, phase)
        if obs is not None:
            obs.record_partials(partials)
            obs.record_faults(dataset.faults)
        return dataset


__all__ = ["Pipeline"]
