"""Concurrent analysis query service.

The batch path (``repro-gov report``) re-opens and re-indexes a
dataset per invocation; this package is the long-running twin: load a
dataset once (jsonl export or columnar store directory), keep its
:class:`~repro.analysis.engine.AnalysisIndex` /
:class:`~repro.store.index.StoreBackedIndex` warm, and answer
parameterized queries from many concurrent clients.

Split gateway/service style:

* :class:`DatasetService` (``service.py``) -- the query engine: typed
  request/response dataclasses (``schemas.py``), structured validation
  errors (``errors.py``), per-query counters/latency histograms/
  in-flight gauge on a thread-safe :mod:`repro.obs` registry
  (``metrics.py``);
* :func:`create_server` (``gateway.py``) -- a stdlib
  ``ThreadingHTTPServer`` JSON gateway over a bounded worker pool,
  exposing each query plus ``/healthz`` and ``/metrics``;
* :func:`open_any_dataset` (``loader.py``) -- one loader for both
  on-disk dataset forms, shared with the CLI.

Consistency guarantee: every response is computed from the same index
tables and formatting helpers as the batch report path, so report
fragments are byte-identical to ``repro-gov report`` output and all
numeric answers equal their ``repro.analysis`` counterparts -- under
any number of concurrent clients (the index memoizes under locks; see
the engine's concurrency contract).
"""

from repro.serve.errors import RequestError, ServeError
from repro.serve.gateway import DatasetHTTPServer, create_server
from repro.serve.loader import LoadedDataset, open_any_dataset
from repro.serve.metrics import ServiceMetrics
from repro.serve.schemas import (
    CategoryMixRequest,
    CrossborderRequest,
    ProvidersRequest,
    QUERY_ENDPOINTS,
    ReportRequest,
    SummaryRequest,
)
from repro.serve.service import DatasetService
from repro.serve.tracing import (
    DEFAULT_SLOW_MS,
    DEFAULT_TRACE_RING,
    RequestTraceLog,
)

__all__ = [
    "CategoryMixRequest",
    "CrossborderRequest",
    "DEFAULT_SLOW_MS",
    "DEFAULT_TRACE_RING",
    "DatasetHTTPServer",
    "DatasetService",
    "LoadedDataset",
    "ProvidersRequest",
    "QUERY_ENDPOINTS",
    "ReportRequest",
    "RequestError",
    "RequestTraceLog",
    "ServeError",
    "ServiceMetrics",
    "SummaryRequest",
    "create_server",
    "open_any_dataset",
]
