"""Per-query metrics over one thread-safe :mod:`repro.obs` registry.

The serve layer has many request threads hitting one registry, so
:class:`ServiceMetrics` records straight into a
:class:`~repro.obs.ThreadSafeMetricsRegistry` — the locking lives in
the registry itself (one implementation, shared with anything else
that needs a fenced registry), not in a wrapper re-implementing every
mutator behind a second lock.  The only state the tracker still guards
itself is the in-flight counter, which is not a monoid value.

:meth:`ServiceMetrics.track` records everything a query produces:

* ``serve.requests`` and ``serve.requests.<endpoint>`` counters;
* ``serve.errors`` and ``serve.errors.<code>`` counters on failure;
* ``serve.latency_ms.<endpoint>`` histograms, bucketed to power-of-two
  millisecond upper bounds (1, 2, 4, ... ms) so they merge as monoids
  like every other histogram in the codebase;
* ``serve.latency_sum_ms.<endpoint>`` counters — exact millisecond
  sums that become the ``_sum`` series of the Prometheus histogram
  families (see :mod:`repro.obs.exposition`);
* ``serve.inflight.peak`` gauge — the high-water mark of concurrent
  in-flight queries (gauges merge by max, so a peak is the only
  faithful choice).

Latency is measured with :func:`time.perf_counter_ns`: monotonic, so a
wall-clock step (NTP, DST, a VM migration) can never produce a
negative or wildly inflated latency sample.  ``time.time()`` must not
appear in this module — durations are always differences of monotonic
readings.
"""

from __future__ import annotations

import contextlib
import threading
import time

from repro.obs import ThreadSafeMetricsRegistry


def latency_bucket(milliseconds: float) -> int:
    """Power-of-two upper bound in ms: 0.7ms -> 1, 3ms -> 4, 9ms -> 16."""
    bucket = 1
    while bucket < milliseconds:
        bucket *= 2
    return bucket


class ServiceMetrics:
    """Request-thread metrics over one shared thread-safe registry."""

    def __init__(self) -> None:
        self.registry = ThreadSafeMetricsRegistry()
        self._inflight = 0
        self._inflight_lock = threading.Lock()

    @contextlib.contextmanager
    def track(self, endpoint: str):
        """Record one query: count, latency bucket, errors, inflight peak.

        Exceptions propagate after being counted, so the gateway still
        maps them to responses.
        """
        start_ns = time.perf_counter_ns()
        with self._inflight_lock:
            self._inflight += 1
            inflight = self._inflight
        self.registry.gauge("serve.inflight.peak", inflight)
        try:
            yield
        except Exception as exc:
            code = getattr(exc, "code", exc.__class__.__name__)
            self.registry.count("serve.errors")
            self.registry.count(f"serve.errors.{code}")
            raise
        finally:
            # max(0, ...) is belt and braces: perf_counter_ns is
            # monotonic by contract, so the guard only matters if a
            # platform clock is broken — and then we record 0, not a
            # negative latency.
            elapsed_ms = max(0, time.perf_counter_ns() - start_ns) / 1e6
            with self._inflight_lock:
                self._inflight -= 1
            self.registry.count("serve.requests")
            self.registry.count(f"serve.requests.{endpoint}")
            self.registry.observe(f"serve.latency_ms.{endpoint}",
                                  latency_bucket(elapsed_ms))
            self.registry.count(f"serve.latency_sum_ms.{endpoint}",
                                round(elapsed_ms, 6))

    def inflight(self) -> int:
        """Queries currently executing (for ``/healthz``)."""
        with self._inflight_lock:
            return self._inflight

    def snapshot(self) -> dict:
        """Point-in-time JSON-ready copy (the ``/metrics`` body)."""
        return self.registry.to_dict()


__all__ = ["ServiceMetrics", "latency_bucket"]
