"""Thread-safe per-query metrics over a :mod:`repro.obs` registry.

:class:`~repro.obs.MetricsRegistry` mutators are plain dict operations
with no locking -- fine for the pipeline, where each shard owns its
registry and merging happens after the fact, but the serve layer has
many request threads hitting one registry.  :class:`ServiceMetrics`
wraps one registry behind a lock and exposes a single
:meth:`ServiceMetrics.track` context manager that records everything a
query produces:

* ``serve.requests`` and ``serve.requests.<endpoint>`` counters;
* ``serve.errors`` and ``serve.errors.<code>`` counters on failure;
* ``serve.latency_ms.<endpoint>`` histograms, bucketed to power-of-two
  millisecond upper bounds (1, 2, 4, ... ms) so they merge as monoids
  like every other histogram in the codebase;
* ``serve.inflight.peak`` gauge -- the high-water mark of concurrent
  in-flight queries (gauges merge by max, so a peak is the only
  faithful choice).
"""

from __future__ import annotations

import contextlib
import threading
import time

from repro.obs import MetricsRegistry


def latency_bucket(milliseconds: float) -> int:
    """Power-of-two upper bound in ms: 0.7ms -> 1, 3ms -> 4, 9ms -> 16."""
    bucket = 1
    while bucket < milliseconds:
        bucket *= 2
    return bucket


class ServiceMetrics:
    """Lock-protected metrics shared by every request thread."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._registry = MetricsRegistry()
        self._inflight = 0

    @contextlib.contextmanager
    def track(self, endpoint: str):
        """Record one query: count, latency bucket, errors, inflight peak.

        Exceptions propagate after being counted, so the gateway still
        maps them to responses.
        """
        start = time.perf_counter()
        with self._lock:
            self._inflight += 1
            self._registry.gauge("serve.inflight.peak", self._inflight)
        try:
            yield
        except Exception as exc:
            code = getattr(exc, "code", exc.__class__.__name__)
            with self._lock:
                self._registry.count("serve.errors")
                self._registry.count(f"serve.errors.{code}")
            raise
        finally:
            elapsed_ms = (time.perf_counter() - start) * 1000.0
            with self._lock:
                self._inflight -= 1
                self._registry.count("serve.requests")
                self._registry.count(f"serve.requests.{endpoint}")
                self._registry.observe(f"serve.latency_ms.{endpoint}",
                                       latency_bucket(elapsed_ms))

    def inflight(self) -> int:
        """Queries currently executing (for ``/healthz``)."""
        with self._lock:
            return self._inflight

    def snapshot(self) -> dict:
        """Point-in-time JSON-ready copy (the ``/metrics`` body)."""
        with self._lock:
            return self._registry.to_dict()


__all__ = ["ServiceMetrics", "latency_bucket"]
