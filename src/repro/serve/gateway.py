"""Stdlib HTTP gateway over a :class:`~repro.serve.service.DatasetService`.

Endpoints::

    GET  /healthz                     liveness + dataset identity (JSON)
    GET  /metrics                     per-query counters/latency/inflight
                                      (JSON by default; Prometheus text
                                      via ?format=prometheus or an
                                      Accept: text/plain header)
    GET  /v1/<endpoint>?a=b&c=d       query-string parameters (JSON)
    POST /v1/<endpoint>  {...}        JSON-body parameters (JSON)

``<endpoint>`` is one of the :data:`~repro.serve.schemas.QUERY_ENDPOINTS`
names.  GET and POST validate identically (the schemas coerce
query-string forms), so ``curl`` one-liners and programmatic clients
see the same behavior.  Every client error is a structured body
``{"error": {"code", "message"[, "field"]}}`` with a 4xx status;
unexpected server failures answer 500 with code ``internal`` and no
traceback leakage.

Concurrency: ``ThreadingHTTPServer`` spawns unboundedly by default, so
:class:`DatasetHTTPServer` routes connections through a bounded
``ThreadPoolExecutor`` -- ``--workers N`` is a real cap on concurrent
request threads, and excess connections queue instead of piling up
threads.  Responses carry accurate ``Content-Length`` so HTTP/1.1
keep-alive works for closed-loop load generators.
"""

from __future__ import annotations

import json
import time
import urllib.parse
from concurrent.futures import ThreadPoolExecutor
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Mapping, Optional

from repro.obs import Tracer
from repro.obs.exposition import PROMETHEUS_CONTENT_TYPE, render_prometheus
from repro.serve.errors import RequestError
from repro.serve.schemas import QUERY_ENDPOINTS
from repro.serve.service import DatasetService
from repro.serve.tracing import RequestTraceLog, measure_ms

#: Largest accepted request body; queries are tiny, anything bigger is
#: a client bug or abuse.
MAX_BODY_BYTES = 1 << 20


class DatasetHTTPServer(ThreadingHTTPServer):
    """A ``ThreadingHTTPServer`` with a bounded request-thread pool."""

    daemon_threads = True

    def __init__(self, address, handler_class, service: DatasetService,
                 *, workers: int = 8,
                 trace_log: Optional[RequestTraceLog] = None) -> None:
        super().__init__(address, handler_class)
        self.service = service
        #: When set, every /v1 request runs under its own Tracer and
        #: lands in the bounded on-disk trace ring (plus the slow-query
        #: log past its threshold).  None means requests run untraced.
        self.trace_log = trace_log
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="serve"
        )

    def process_request(self, request, client_address) -> None:
        # Submit to the bounded pool instead of one-thread-per-request.
        self._pool.submit(self.process_request_thread,
                          request, client_address)

    def server_close(self) -> None:
        super().server_close()
        self._pool.shutdown(wait=False)

    def close(self) -> None:
        """Stop accepting, drop the pool, release the dataset."""
        self.server_close()
        self.service.close()


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server: DatasetHTTPServer

    # --------------------------------------------------------- plumbing

    def log_message(self, format: str, *args) -> None:
        # Per-request stderr chatter off; /metrics is the signal.
        pass

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, error: RequestError) -> None:
        self._send_json(error.status, {"error": error.to_dict()})

    def _send_text(self, status: int, body: str, content_type: str) -> None:
        data = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _read_body(self) -> Mapping:
        length = self.headers.get("Content-Length")
        if length is None:
            return {}
        try:
            size = int(length)
        except ValueError:
            raise RequestError("bad-request", "invalid Content-Length")
        if size > MAX_BODY_BYTES:
            raise RequestError("too-large", "request body too large",
                               status=413)
        raw = self.rfile.read(size)
        if not raw:
            return {}
        try:
            payload = json.loads(raw)
        except ValueError:
            raise RequestError("bad-json", "request body is not valid JSON")
        if not isinstance(payload, dict):
            raise RequestError("bad-type", "request body must be an object")
        return payload

    def _query_params(self) -> dict:
        parsed = urllib.parse.urlsplit(self.path)
        return {
            key: values[-1]
            for key, values in urllib.parse.parse_qs(
                parsed.query, keep_blank_values=True
            ).items()
        }

    def _endpoint(self) -> Optional[str]:
        path = urllib.parse.urlsplit(self.path).path
        if path.startswith("/v1/"):
            return path[len("/v1/"):]
        return None

    # ---------------------------------------------------------- methods

    def do_GET(self) -> None:
        path = urllib.parse.urlsplit(self.path).path
        if path == "/healthz":
            self._send_json(200, self.server.service.healthz())
            return
        if path == "/metrics":
            self._send_metrics()
            return
        endpoint = self._endpoint()
        if endpoint is None:
            self._send_error_json(RequestError(
                "not-found", f"no such path {path!r}; queries live under "
                f"/v1/<endpoint>", status=404))
            return
        self._answer(endpoint, self._query_params())

    def do_POST(self) -> None:
        endpoint = self._endpoint()
        if endpoint is None:
            self._send_error_json(RequestError(
                "not-found",
                "POST queries live under /v1/<endpoint>", status=404))
            return
        try:
            payload = self._read_body()
        except RequestError as exc:
            self._send_error_json(exc)
            return
        self._answer(endpoint, payload)

    def _send_metrics(self) -> None:
        """Answer /metrics with content negotiation.

        Explicit ``?format=json|prometheus`` wins; otherwise an
        ``Accept`` header asking for ``text/plain`` (a Prometheus
        scraper) gets exposition text, and everything else keeps the
        original JSON body for backward compatibility.
        """
        requested = self._query_params().get("format")
        if requested is None:
            accept = self.headers.get("Accept", "")
            requested = ("prometheus"
                         if "text/plain" in accept
                         and "application/json" not in accept
                         else "json")
        if requested == "json":
            self._send_json(200, self.server.service.metrics_snapshot())
        elif requested == "prometheus":
            self._send_text(
                200,
                render_prometheus(self.server.service.metrics_snapshot()),
                PROMETHEUS_CONTENT_TYPE,
            )
        else:
            self._send_error_json(RequestError(
                "bad-format",
                f"unknown metrics format {requested!r}; expected "
                f"'json' or 'prometheus'", field="format"))

    def _answer(self, endpoint: str, payload: Mapping) -> None:
        trace_log = self.server.trace_log
        if trace_log is None:
            try:
                result = self.server.service.query(endpoint, payload)
            except RequestError as exc:
                self._send_error_json(exc)
                return
            except Exception:
                self._send_error_json(RequestError(
                    "internal", "internal server error", status=500))
                return
            self._send_json(200, result)
            return
        # Traced twin of the same flow: identical service call and
        # response bytes; the trace is written only after the answer
        # has been sent, so tracing adds no latency before the bytes.
        tracer = Tracer()
        start_ns = time.perf_counter_ns()
        status, error = 200, None
        try:
            result = self.server.service.query(endpoint, payload,
                                               tracer=tracer)
        except RequestError as exc:
            status, error = exc.status, exc.to_dict()
            self._send_error_json(exc)
        except Exception:
            internal = RequestError(
                "internal", "internal server error", status=500)
            status, error = internal.status, internal.to_dict()
            self._send_error_json(internal)
        else:
            self._send_json(200, result)
        trace_log.record(endpoint, payload=dict(payload), tracer=tracer,
                         duration_ms=measure_ms(start_ns), status=status,
                         error=error)


def create_server(service: DatasetService, *, host: str = "127.0.0.1",
                  port: int = 0, workers: int = 8,
                  trace_log: Optional[RequestTraceLog] = None
                  ) -> DatasetHTTPServer:
    """Bind a gateway for ``service``; ``port=0`` picks a free port.

    The caller runs ``serve_forever()`` (typically on a thread) and
    ``close()`` when done -- closing the server also closes the
    service's backing store.  Pass a :class:`RequestTraceLog` to trace
    every request into its bounded on-disk ring.
    """
    return DatasetHTTPServer((host, port), _Handler, service,
                             workers=workers, trace_log=trace_log)


__all__ = ["DatasetHTTPServer", "MAX_BODY_BYTES", "create_server"]
