"""One loader for both on-disk dataset forms.

``repro-gov report``, ``repro-gov serve`` and the service constructors
all accept "a dataset path" that may be a jsonl export or a columnar
store directory.  :func:`open_any_dataset` resolves which one it is,
opens it, and returns a :class:`LoadedDataset` that owns the resource
lifetime: for a store it holds the :class:`~repro.store.DatasetStore`
so ``close()`` releases every mmap and file descriptor; for jsonl
there is nothing to release and ``close()`` is a no-op.

Error surface is normalized so callers map one set of exceptions:
``FileNotFoundError`` for missing paths, ``StoreError``/``ValueError``
for corrupt data -- exactly the pairs ``repro-gov convert`` already
translates to exit codes.
"""

from __future__ import annotations

import pathlib
from typing import Union

from repro.core.dataset import GovernmentHostingDataset

PathLike = Union[str, pathlib.Path]


class LoadedDataset:
    """A dataset plus whatever on-disk resource backs it.

    Context-manager friendly; ``close()`` is idempotent.  ``kind`` is
    ``"store"`` or ``"jsonl"`` (surfaced by ``/healthz``).
    """

    def __init__(self, dataset: GovernmentHostingDataset, *,
                 path: pathlib.Path, kind: str, store=None) -> None:
        self.dataset = dataset
        self.path = path
        self.kind = kind
        self._store = store

    def close(self) -> None:
        """Release the backing store's mappings (no-op for jsonl)."""
        if self._store is not None:
            self._store.close()

    def __enter__(self) -> "LoadedDataset":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<LoadedDataset {self.kind} {self.path}>"


def open_any_dataset(path: PathLike) -> LoadedDataset:
    """Open a jsonl export or a store directory, whichever ``path`` is.

    Raises ``FileNotFoundError`` when the path does not exist,
    :class:`~repro.store.StoreError` / ``ValueError`` when it exists
    but cannot be read as a dataset.
    """
    from repro.store import DatasetStore, is_store_path

    path = pathlib.Path(path)
    if is_store_path(path):
        store = DatasetStore(path)
        return LoadedDataset(store.dataset(), path=path, kind="store",
                             store=store)
    if path.is_dir():
        # A directory that is not a store: surface what is missing
        # rather than letting open() raise IsADirectoryError.
        raise FileNotFoundError(
            f"{path} is a directory but not a dataset store "
            "(no manifest.json)"
        )
    if not path.exists():
        raise FileNotFoundError(f"no such dataset: {path}")
    from repro.io import load_dataset

    return LoadedDataset(load_dataset(path), path=path, kind="jsonl")


__all__ = ["LoadedDataset", "open_any_dataset"]
