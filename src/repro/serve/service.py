"""The query engine behind the gateway.

:class:`DatasetService` loads a dataset once (or adopts an
already-loaded one), forces the analysis index warm, and answers typed
queries from any number of threads.  Every answer is computed by the
same :mod:`repro.analysis` functions and :mod:`repro.reporting`
renderers as the batch path, which is what makes service responses
byte-identical to ``repro-gov report`` output -- concurrency safety
comes from the index's locked memoization (see the engine's
concurrency contract), not from copies.

Validation layering: the schemas reject structurally bad requests
before the service sees them; the service adds the semantic checks
that need the dataset (is this country in the sample?) and raises the
same :class:`~repro.serve.errors.RequestError` with ``status=404``.
"""

from __future__ import annotations

import dataclasses
import threading
from typing import Mapping, Optional, Sequence, Union

from repro.analysis.engine import ensure_index
from repro.core.dataset import GovernmentHostingDataset
from repro.obs import events as obs_events
from repro.obs.trace import Tracer
from repro.serve.errors import RequestError
from repro.serve.loader import LoadedDataset, open_any_dataset
from repro.serve.metrics import ServiceMetrics
from repro.serve.schemas import (
    QUERY_ENDPOINTS,
    CategoryMixRequest,
    CategoryMixResponse,
    CrossborderRequest,
    CrossborderResponse,
    FlowEntry,
    ProviderEntry,
    ProvidersRequest,
    ProvidersResponse,
    ReportRequest,
    ReportResponse,
    SummaryRequest,
    SummaryResponse,
    TrendsRequest,
    TrendsResponse,
)


class DatasetService:
    """Thread-safe queries over one warm dataset.

    Construct from an in-memory dataset, a :class:`LoadedDataset`, or
    via :meth:`open` from a path.  The constructor eagerly builds the
    analysis index and its summary table, so the first client request
    never pays the build cost and concurrent first requests cannot
    race an unbuilt index.
    """

    def __init__(self, source: Union[GovernmentHostingDataset,
                                     LoadedDataset], *,
                 history: Sequence[Union[GovernmentHostingDataset,
                                         LoadedDataset]] = (),
                 metrics: Optional[ServiceMetrics] = None) -> None:
        if isinstance(source, LoadedDataset):
            self._loaded: Optional[LoadedDataset] = source
            dataset = source.dataset
        else:
            self._loaded = None
            dataset = source
        self._dataset = dataset
        #: Earlier snapshots of the same series, oldest first; the
        #: served dataset is the latest.  The ``trends`` endpoint
        #: computes its curves over ``history + [dataset]`` (a single
        #: snapshot yields the degenerate one-point report).
        self._history: tuple[LoadedDataset, ...] = tuple(
            item for item in history if isinstance(item, LoadedDataset)
        )
        self._history_datasets: tuple[GovernmentHostingDataset, ...] = tuple(
            item.dataset if isinstance(item, LoadedDataset) else item
            for item in history
        )
        self._trend_report = None
        self._trend_lock = threading.Lock()
        self._index = ensure_index(dataset)
        self._index.summary()  # warm the hot table up front
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        #: Per-basis FlowEntry renderings of the index's sorted flow
        #: table, built once under the lock -- the /v1/crossborder tail
        #: came from every first-hit-per-thread re-sorting and
        #: re-wrapping the whole table.
        self._flow_entries: dict[str, tuple[FlowEntry, ...]] = {}
        self._flow_lock = threading.Lock()
        self._closed = False
        self._close_lock = threading.Lock()

    @classmethod
    def open(cls, path, *, metrics: Optional[ServiceMetrics] = None
             ) -> "DatasetService":
        """Load a jsonl export or store directory and serve it."""
        return cls(open_any_dataset(path), metrics=metrics)

    # ----------------------------------------------------------- queries

    def query(self, endpoint: str, payload: Mapping, *,
              tracer: Optional[Tracer] = None) -> dict:
        """Validate ``payload`` against ``endpoint``'s schema and answer.

        The single entry point used by the gateway and the benchmark
        harness; raises :class:`RequestError` for anything the client
        got wrong.  With ``tracer`` the same parse -> dispatch -> render
        sequence runs under a ``serve.request`` span tree; tracing is
        measurement only and never changes the answer bytes (the
        zero-perturbation contract, held by ``tests/serve``).
        """
        try:
            schema = QUERY_ENDPOINTS[endpoint]
        except KeyError:
            raise RequestError(
                "unknown-endpoint",
                f"unknown endpoint {endpoint!r}; expected one of "
                f"{', '.join(sorted(QUERY_ENDPOINTS))}",
                status=404,
            ) from None
        if not isinstance(payload, Mapping):
            raise RequestError("bad-type", "request body must be an object")
        with self.metrics.track(endpoint):
            if tracer is None:
                request = schema.from_mapping(payload)
                return self._dispatch(request).to_dict()
            return self._traced_query(endpoint, schema, payload, tracer)

    def _traced_query(self, endpoint: str, schema, payload: Mapping,
                      tracer: Tracer) -> dict:
        """The traced twin of the :meth:`query` body.

        The dispatch span collects the memo events the analysis layer
        emits (index-table builds, flow/trend memo hits) into its tags:
        an empty ``memo_builds`` list means the request was served
        entirely from warm tables.
        """
        with tracer.span("serve.request", endpoint=endpoint):
            with tracer.span("parse"):
                request = schema.from_mapping(payload)
            with tracer.span("dispatch") as dispatch_span:
                with obs_events.collecting() as collected:
                    response = self._dispatch(request)
                dispatch_span.tags["memo_builds"] = sorted(
                    event.payload.get("table", "?") for event in collected
                    if event.kind == "memo.build"
                )
                dispatch_span.tags["memo_hits"] = sum(
                    1 for event in collected if event.kind == "memo.hit"
                )
            with tracer.span("render"):
                return response.to_dict()

    def _dispatch(self, request):
        if isinstance(request, SummaryRequest):
            return self.summary(request)
        if isinstance(request, CategoryMixRequest):
            return self.category_mix(request)
        if isinstance(request, CrossborderRequest):
            return self.crossborder(request)
        if isinstance(request, ProvidersRequest):
            return self.providers(request)
        if isinstance(request, ReportRequest):
            return self.report(request)
        if isinstance(request, TrendsRequest):
            return self.trends(request)
        raise AssertionError(f"unhandled request {request!r}")

    def summary(self, request: SummaryRequest) -> SummaryResponse:
        return SummaryResponse(
            summary=dataclasses.asdict(self._index.summary())
        )

    def category_mix(self, request: CategoryMixRequest
                     ) -> CategoryMixResponse:
        from repro.analysis.hosting import fractions_of_counts

        country = self._known_country(request.country)
        counts = self._index.category_counts().get(country)
        if counts is None:
            # In the sample but produced no records (fully faulted):
            # an all-zero mix, same as fractions over empty tallies.
            from repro.categories import CATEGORY_ORDER

            counts = ((0,) * len(CATEGORY_ORDER),) * 2
        url_counts, byte_sums = counts
        tallies = byte_sums if request.weighting == "bytes" else url_counts
        mix = fractions_of_counts(tallies)
        return CategoryMixResponse(
            country=country,
            weighting=request.weighting,
            mix={str(category): fraction
                 for category, fraction in mix.items()},
            url_count=int(sum(url_counts)),
            byte_count=int(sum(byte_sums)),
        )

    def crossborder(self, request: CrossborderRequest
                    ) -> CrossborderResponse:
        sources = tuple(self._known_country(code, field="sources")
                        for code in request.sources)
        entries = self._flow_table(request.basis)
        if sources:
            # The table is sorted by source, so a source set is a
            # concatenation of contiguous slices -- walking unique
            # sources in order preserves the full-table ordering the
            # filtering path produced.
            slices = self._index.crossborder_flow_slices(request.basis)
            parts = []
            for source in sorted(set(sources)):
                span = slices.get(source)
                if span is not None:
                    parts.append(entries[span[0]:span[1]])
            entries = tuple(entry for part in parts for entry in part)
        return CrossborderResponse(basis=request.basis, sources=sources,
                                   flows=entries)

    def _flow_table(self, basis: str) -> tuple[FlowEntry, ...]:
        """The full FlowEntry rendering of ``basis``, built at most once."""
        entries = self._flow_entries.get(basis)
        if entries is None:
            with self._flow_lock:
                entries = self._flow_entries.get(basis)
                if entries is None:
                    obs_events.emit("memo.build", table="flow_entries",
                                    basis=basis)
                    entries = tuple(
                        FlowEntry(source=s, destination=d,
                                  url_count=u, byte_count=b)
                        for s, d, u, b
                        in self._index.crossborder_flow_table(basis)
                    )
                    self._flow_entries[basis] = entries
                    return entries
        obs_events.emit("memo.hit", table="flow_entries", basis=basis)
        return entries

    def providers(self, request: ProvidersRequest) -> ProvidersResponse:
        from repro.analysis.providers import global_provider_footprints

        entries = tuple(
            ProviderEntry(asn=fp.asn, name=fp.name,
                          country_count=fp.country_count,
                          countries=fp.countries)
            for fp in global_provider_footprints(self._index)[:request.top]
        )
        return ProvidersResponse(top=request.top, providers=entries)

    def report(self, request: ReportRequest) -> ReportResponse:
        from repro.reporting import render_report_section

        return ReportResponse(
            section=request.section,
            text=render_report_section(self._index, request.section),
        )

    def trends(self, request: TrendsRequest) -> TrendsResponse:
        report = self._trends()
        payload = report.to_dict()
        country = None
        if request.country is not None:
            country = request.country.upper()
            if country not in report.third_party_series:
                raise RequestError(
                    "unknown-country",
                    f"country {request.country!r} has no measurements "
                    "in this series",
                    field="country", status=404,
                )
            payload["hhi_series"] = {
                country: payload["hhi_series"][country]
            }
            payload["third_party_series"] = {
                country: payload["third_party_series"][country]
            }
            payload["migrations"] = [
                migration for migration in payload["migrations"]
                if migration["country"] == country
            ]
        return TrendsResponse(
            snapshot_count=report.snapshot_count,
            country=country,
            report=payload,
        )

    def _trends(self):
        """The series' TrendReport, computed at most once."""
        report = self._trend_report
        if report is None:
            with self._trend_lock:
                report = self._trend_report
                if report is None:
                    from repro.analysis.longitudinal import compute_trends

                    obs_events.emit("memo.build", table="trend_report")
                    snapshots = list(self._history_datasets)
                    snapshots.append(self._index)
                    report = compute_trends(snapshots)
                    self._trend_report = report
                    return report
        obs_events.emit("memo.hit", table="trend_report")
        return report

    # ------------------------------------------------------------ health

    def healthz(self) -> dict:
        """Liveness payload: dataset identity plus load."""
        payload = {
            "status": "ok",
            "countries": len(self._dataset.countries),
            "records": self._index.record_count,
            "inflight": self.metrics.inflight(),
        }
        if self._history_datasets:
            payload["snapshots"] = len(self._history_datasets) + 1
        if self._loaded is not None:
            payload["dataset"] = str(self._loaded.path)
            payload["kind"] = self._loaded.kind
        return payload

    def metrics_snapshot(self) -> dict:
        return self.metrics.snapshot()

    def close(self) -> None:
        """Release the backing store, if the service owns one."""
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
            if self._loaded is not None:
                self._loaded.close()
            for loaded in self._history:
                loaded.close()

    def __enter__(self) -> "DatasetService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ----------------------------------------------------------- helpers

    def _known_country(self, code: str, *, field: str = "country") -> str:
        normalized = code.upper()
        if normalized not in self._dataset.countries:
            raise RequestError(
                "unknown-country",
                f"country {code!r} is not in this dataset",
                field=field, status=404,
            )
        return normalized


__all__ = ["DatasetService"]
