"""Request-scoped tracing for the serve layer.

When the gateway is started with a trace directory, every HTTP query
is executed under its own :class:`~repro.obs.Tracer` and the finished
span tree — ``serve.request`` wrapping ``parse`` / ``dispatch`` /
``render``, with the dispatch span tagged by the index-table memo
builds and hits it triggered — is written to a **bounded on-disk
ring**: slot files ``request-NNNN.json`` reused modulo the ring size,
so an always-on server traces every request with a hard cap on disk.

Requests slower than the slow threshold are additionally appended to
``slow-queries.jsonl`` (append-only, one JSON object per line — the
file a human greps first when p99 moves).

Zero-perturbation contract: the tracer wraps the same ``parse ->
dispatch -> render`` calls the untraced path runs, measures with
monotonic clocks only, and nothing it records feeds back into the
response — traced responses are byte-identical to untraced ones
(``tests/serve/test_tracing.py`` holds the gateway to this).
"""

from __future__ import annotations

import json
import pathlib
import threading
import time
from typing import Any, Optional, Union

from repro.obs import Tracer

PathLike = Union[str, pathlib.Path]

#: Version marker written into every per-request trace document.
REQUEST_TRACE_FORMAT_VERSION = 1

#: Default number of slot files in the on-disk ring.
DEFAULT_TRACE_RING = 128

#: Default slow-query threshold in milliseconds.
DEFAULT_SLOW_MS = 250.0

#: Name of the append-only slow-query log inside the trace directory.
SLOW_LOG_NAME = "slow-queries.jsonl"


def _slot_name(slot: int) -> str:
    return f"request-{slot:04d}.json"


class RequestTraceLog:
    """Bounded ring of per-request traces plus a slow-query log.

    Thread-safe: request threads finish at arbitrary times, so slot
    assignment, slot writes and slow-log appends all run under one
    lock.  Writes happen strictly *after* the response is computed
    (the gateway records once the answer bytes exist), so even a slow
    disk cannot perturb answers — only delay the connection close.
    """

    def __init__(self, directory: PathLike, *,
                 ring_size: int = DEFAULT_TRACE_RING,
                 slow_ms: float = DEFAULT_SLOW_MS) -> None:
        if ring_size < 1:
            raise ValueError(f"ring_size must be >= 1, got {ring_size}")
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.ring_size = ring_size
        self.slow_ms = slow_ms
        self.slow_log_path = self.directory / SLOW_LOG_NAME
        self._lock = threading.Lock()
        self._next_seq = 0

    # ----------------------------------------------------------- writing

    def record(self, endpoint: str, *, payload: Any, tracer: Tracer,
               duration_ms: float, status: int,
               error: Optional[dict] = None) -> pathlib.Path:
        """Persist one finished request trace; returns the slot path."""
        with self._lock:
            seq = self._next_seq
            self._next_seq += 1
        document = {
            "format": REQUEST_TRACE_FORMAT_VERSION,
            "seq": seq,
            "endpoint": endpoint,
            "payload": payload,
            "status": status,
            "duration_ms": round(duration_ms, 4),
            "error": error,
            "trace": tracer.to_dict(),
        }
        path = self.directory / _slot_name(seq % self.ring_size)
        body = json.dumps(document, sort_keys=True) + "\n"
        with self._lock:
            path.write_text(body, encoding="utf-8")
            if duration_ms >= self.slow_ms:
                summary = {
                    "seq": seq,
                    "endpoint": endpoint,
                    "payload": payload,
                    "status": status,
                    "duration_ms": round(duration_ms, 4),
                    "slot": path.name,
                }
                with open(self.slow_log_path, "a",
                          encoding="utf-8") as handle:
                    handle.write(json.dumps(summary, sort_keys=True) + "\n")
        return path

    # ----------------------------------------------------------- reading

    @property
    def recorded(self) -> int:
        """Total requests recorded since this log was opened."""
        with self._lock:
            return self._next_seq

    def traces(self) -> list[dict]:
        """Every trace currently in the ring, oldest first by seq."""
        documents = []
        for path in sorted(self.directory.glob("request-*.json")):
            documents.append(
                json.loads(path.read_text(encoding="utf-8")))
        documents.sort(key=lambda doc: doc["seq"])
        return documents

    def slow_queries(self) -> list[dict]:
        """Parsed slow-query log entries, in append order."""
        if not self.slow_log_path.exists():
            return []
        entries = []
        for line in self.slow_log_path.read_text(
                encoding="utf-8").splitlines():
            if line.strip():
                entries.append(json.loads(line))
        return entries


def measure_ms(start_ns: int) -> float:
    """Monotonic milliseconds elapsed since a perf_counter_ns reading."""
    return max(0, time.perf_counter_ns() - start_ns) / 1e6


__all__ = [
    "DEFAULT_SLOW_MS",
    "DEFAULT_TRACE_RING",
    "REQUEST_TRACE_FORMAT_VERSION",
    "SLOW_LOG_NAME",
    "RequestTraceLog",
    "measure_ms",
]
