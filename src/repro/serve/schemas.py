"""Typed request/response schemas of the query service.

Requests are frozen dataclasses built from untrusted JSON via
``from_mapping``: unknown fields, wrong types, out-of-range values and
bad enum choices all raise :class:`~repro.serve.errors.RequestError`
with the offending field named, so the gateway can answer a structured
4xx without ever touching the index.  Semantic checks that need the
dataset (is this country in the sample?) live in the service.

Responses are dataclasses with ``to_dict`` -- built deterministically
from the request and the (immutable, memoized) index tables, which is
what makes concurrent responses byte-identical to serial ones.

Query-string friendliness: integers accept decimal strings and list
fields accept comma-separated strings, so ``GET /v1/providers?top=5``
and ``POST {"top": 5}`` validate identically.
"""

from __future__ import annotations

import dataclasses
from typing import Mapping, Optional, Sequence, Union

from repro.reporting.sections import SECTION_NAMES
from repro.serve.errors import RequestError

#: Destination bases of the cross-border flow table.
BASIS_CHOICES = ("server", "registration")

#: Weightings of the per-country category mix.
WEIGHTING_CHOICES = ("urls", "bytes")

#: Hard cap on ``providers.top`` -- far above the 28 modeled Global
#: providers; rejects absurd requests, never real ones.
MAX_TOP = 1000


def _reject_unknown_fields(data: Mapping, allowed: Sequence[str]) -> None:
    for key in data:
        if key not in allowed:
            raise RequestError(
                "unknown-field",
                f"unknown request field {key!r}; expected "
                f"{', '.join(allowed) if allowed else 'an empty request'}",
                field=str(key),
            )


def _string(data: Mapping, field: str, *, default: Optional[str] = None,
            required: bool = False,
            choices: Optional[Sequence[str]] = None) -> Optional[str]:
    if field not in data:
        if required:
            raise RequestError("missing-field",
                               f"required field {field!r} is missing",
                               field=field)
        return default
    value = data[field]
    if not isinstance(value, str):
        raise RequestError("bad-type",
                           f"field {field!r} must be a string",
                           field=field)
    if choices is not None and value not in choices:
        raise RequestError(
            "bad-choice",
            f"field {field!r} must be one of {', '.join(choices)} "
            f"(got {value!r})",
            field=field,
        )
    return value


def _integer(data: Mapping, field: str, *, default: int,
             minimum: int, maximum: int) -> int:
    if field not in data:
        return default
    value = data[field]
    if isinstance(value, str) and value.lstrip("-").isdigit():
        value = int(value)  # query-string form
    if isinstance(value, bool) or not isinstance(value, int):
        raise RequestError("bad-type",
                           f"field {field!r} must be an integer",
                           field=field)
    if not minimum <= value <= maximum:
        raise RequestError(
            "out-of-range",
            f"field {field!r} must be between {minimum} and {maximum} "
            f"(got {value})",
            field=field,
        )
    return value


def _string_list(data: Mapping, field: str) -> tuple[str, ...]:
    if field not in data:
        return ()
    value = data[field]
    if isinstance(value, str):
        value = [part for part in value.split(",") if part]  # query-string
    if not isinstance(value, (list, tuple)) or \
            not all(isinstance(item, str) for item in value):
        raise RequestError("bad-type",
                           f"field {field!r} must be a list of strings",
                           field=field)
    return tuple(value)


# ------------------------------------------------------------- requests

@dataclasses.dataclass(frozen=True)
class SummaryRequest:
    """Table 3 headline numbers; takes no parameters."""

    @classmethod
    def from_mapping(cls, data: Mapping) -> "SummaryRequest":
        _reject_unknown_fields(data, ())
        return cls()


@dataclasses.dataclass(frozen=True)
class CategoryMixRequest:
    """Per-country category mix (the country's Figure 2 slice)."""

    country: str
    weighting: str = "urls"

    @classmethod
    def from_mapping(cls, data: Mapping) -> "CategoryMixRequest":
        _reject_unknown_fields(data, ("country", "weighting"))
        return cls(
            country=_string(data, "country", required=True),
            weighting=_string(data, "weighting", default="urls",
                              choices=WEIGHTING_CHOICES),
        )


@dataclasses.dataclass(frozen=True)
class CrossborderRequest:
    """Cross-border flows of a source-country set (Figure 9 slice).

    An empty ``sources`` means every country in the dataset.
    """

    sources: tuple[str, ...] = ()
    basis: str = "server"

    @classmethod
    def from_mapping(cls, data: Mapping) -> "CrossborderRequest":
        _reject_unknown_fields(data, ("sources", "basis"))
        return cls(
            sources=_string_list(data, "sources"),
            basis=_string(data, "basis", default="server",
                          choices=BASIS_CHOICES),
        )


@dataclasses.dataclass(frozen=True)
class ProvidersRequest:
    """Top-N Global provider footprints (Figure 10 slice)."""

    top: int = 10

    @classmethod
    def from_mapping(cls, data: Mapping) -> "ProvidersRequest":
        _reject_unknown_fields(data, ("top",))
        return cls(top=_integer(data, "top", default=10,
                                minimum=1, maximum=MAX_TOP))


@dataclasses.dataclass(frozen=True)
class TrendsRequest:
    """Longitudinal trend curves over the service's snapshot series.

    ``country`` (optional) restricts the per-country series to one
    country; the aggregate curves are always included.
    """

    country: Optional[str] = None

    @classmethod
    def from_mapping(cls, data: Mapping) -> "TrendsRequest":
        _reject_unknown_fields(data, ("country",))
        return cls(country=_string(data, "country"))


@dataclasses.dataclass(frozen=True)
class ReportRequest:
    """One named report fragment, byte-identical to the batch path."""

    section: str

    @classmethod
    def from_mapping(cls, data: Mapping) -> "ReportRequest":
        _reject_unknown_fields(data, ("section",))
        return cls(section=_string(data, "section", required=True,
                                   choices=SECTION_NAMES))


# ------------------------------------------------------------ responses

@dataclasses.dataclass(frozen=True)
class SummaryResponse:
    summary: Mapping[str, int]

    def to_dict(self) -> dict:
        return {"summary": dict(self.summary)}


@dataclasses.dataclass(frozen=True)
class CategoryMixResponse:
    country: str
    weighting: str
    mix: Mapping[str, float]
    url_count: int
    byte_count: int

    def to_dict(self) -> dict:
        return {
            "country": self.country,
            "weighting": self.weighting,
            "mix": dict(self.mix),
            "url_count": self.url_count,
            "byte_count": self.byte_count,
        }


@dataclasses.dataclass(frozen=True)
class FlowEntry:
    source: str
    destination: str
    url_count: int
    byte_count: int

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class CrossborderResponse:
    basis: str
    sources: tuple[str, ...]
    flows: tuple[FlowEntry, ...]

    def to_dict(self) -> dict:
        return {
            "basis": self.basis,
            "sources": list(self.sources),
            "flows": [flow.to_dict() for flow in self.flows],
        }


@dataclasses.dataclass(frozen=True)
class ProviderEntry:
    asn: int
    name: str
    country_count: int
    countries: tuple[str, ...]

    def to_dict(self) -> dict:
        return {
            "asn": self.asn,
            "name": self.name,
            "country_count": self.country_count,
            "countries": list(self.countries),
        }


@dataclasses.dataclass(frozen=True)
class ProvidersResponse:
    top: int
    providers: tuple[ProviderEntry, ...]

    def to_dict(self) -> dict:
        return {
            "top": self.top,
            "providers": [provider.to_dict() for provider in self.providers],
        }


@dataclasses.dataclass(frozen=True)
class ReportResponse:
    section: str
    text: str

    def to_dict(self) -> dict:
        return {"section": self.section, "text": self.text}


@dataclasses.dataclass(frozen=True)
class TrendsResponse:
    """The trend report, optionally filtered to one country's series."""

    snapshot_count: int
    country: Optional[str]
    report: Mapping

    def to_dict(self) -> dict:
        payload = {
            "snapshot_count": self.snapshot_count,
            "report": dict(self.report),
        }
        if self.country is not None:
            payload["country"] = self.country
        return payload


Request = Union[SummaryRequest, CategoryMixRequest, CrossborderRequest,
                ProvidersRequest, ReportRequest, TrendsRequest]

#: Endpoint name -> request schema, the service/gateway dispatch table.
QUERY_ENDPOINTS: dict[str, type] = {
    "summary": SummaryRequest,
    "categories": CategoryMixRequest,
    "crossborder": CrossborderRequest,
    "providers": ProvidersRequest,
    "report": ReportRequest,
    "trends": TrendsRequest,
}


__all__ = [
    "BASIS_CHOICES",
    "CategoryMixRequest",
    "CategoryMixResponse",
    "CrossborderRequest",
    "CrossborderResponse",
    "FlowEntry",
    "MAX_TOP",
    "ProviderEntry",
    "ProvidersRequest",
    "ProvidersResponse",
    "QUERY_ENDPOINTS",
    "ReportRequest",
    "ReportResponse",
    "Request",
    "SummaryRequest",
    "SummaryResponse",
    "TrendsRequest",
    "TrendsResponse",
    "WEIGHTING_CHOICES",
]
