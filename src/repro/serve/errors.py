"""Structured errors of the query service.

Every client-caused failure is a :class:`RequestError`: a stable
machine-readable ``code``, an optional offending ``field``, a human
message and the HTTP status the gateway should answer with.  The
gateway serializes it as ``{"error": {...}}`` so clients can branch on
``code``/``field`` instead of parsing prose.
"""

from __future__ import annotations

from typing import Optional


class ServeError(Exception):
    """Base class of everything the serve layer raises on purpose."""


class RequestError(ServeError):
    """A request the service refuses, with a structured payload."""

    def __init__(self, code: str, message: str, *,
                 field: Optional[str] = None, status: int = 400) -> None:
        super().__init__(message)
        self.code = code
        self.message = message
        self.field = field
        self.status = status

    def to_dict(self) -> dict:
        """The ``error`` object of the gateway's JSON error body."""
        payload: dict = {"code": self.code, "message": self.message}
        if self.field is not None:
            payload["field"] = self.field
        return payload

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"RequestError(code={self.code!r}, field={self.field!r}, "
                f"status={self.status})")


__all__ = ["RequestError", "ServeError"]
