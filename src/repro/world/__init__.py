"""Synthetic world model: countries, regions, geography, and hosting profiles.

This subpackage encodes the *published* constants the paper builds on --
the 61-country sample with its development indices (Table 9), the
per-country dataset sizes (Table 8), World Bank regions, country
geography -- plus the per-country hosting profiles that drive the
synthetic Internet generator.
"""

from repro.world.regions import Region, Continent
from repro.world.countries import Country, COUNTRIES, get_country, iter_countries
from repro.world.geography import haversine_km, country_distance_km
from repro.world.profiles import HostingProfile, get_profile

__all__ = [
    "Region",
    "Continent",
    "Country",
    "COUNTRIES",
    "get_country",
    "iter_countries",
    "haversine_km",
    "country_distance_km",
    "HostingProfile",
    "get_profile",
]
