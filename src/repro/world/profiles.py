"""Per-country hosting profiles that calibrate the synthetic world.

The generator needs to decide, for every synthetic government hostname,
which category of network serves it, where the serving infrastructure is
located and how concentrated the provider market is.  These decisions
are drawn from a :class:`HostingProfile` per country.

Profiles are calibrated from numbers the paper itself reports:

* regional category mixes for URLs and bytes (Figure 4a/4b),
* regional domestic/international server-location splits (Figure 8b),
* explicit country findings (e.g. Argentina ~90% third party, Uruguay
  98% Govt&SOE bytes, Italy 93% 3P Local, Mexico 79% of URLs served
  from the US, China 26% from Japan, New Zealand 40% from Australia,
  Morocco 30% from France, France 18% from New Caledonia, Hetzner
  serving 57% of a Scandinavian country's bytes, ...).

The measurement pipeline never reads these profiles -- it re-derives all
statistics from the generated Internet via the same steps the paper
describes, so profile-vs-measured comparisons are meaningful.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.categories import HostingCategory
from repro.world.countries import COUNTRIES, get_country
from repro.world.regions import Region

_G = HostingCategory.GOVT_SOE
_L = HostingCategory.P3_LOCAL
_R = HostingCategory.P3_REGIONAL
_GL = HostingCategory.P3_GLOBAL

Mix = dict[HostingCategory, float]


def _mix(g: float, local: float, glob: float, regional: float) -> Mix:
    """Build a normalized category mix from the four shares."""
    total = g + local + glob + regional
    if total <= 0:
        raise ValueError("mix must have positive mass")
    return {_G: g / total, _L: local / total, _GL: glob / total, _R: regional / total}


#: Regional URL category mixes (Figure 4a).
REGION_URL_MIX: dict[Region, Mix] = {
    Region.SSA: _mix(0.01, 0.46, 0.39, 0.14),
    Region.ECA: _mix(0.24, 0.46, 0.28, 0.02),
    Region.NA: _mix(0.25, 0.17, 0.58, 0.00),
    Region.LAC: _mix(0.41, 0.25, 0.30, 0.03),
    Region.MENA: _mix(0.43, 0.10, 0.47, 0.00),
    Region.EAP: _mix(0.48, 0.35, 0.14, 0.02),
    Region.SA: _mix(0.80, 0.09, 0.11, 0.01),
}

#: Regional byte category mixes (Figure 4b).
REGION_BYTE_MIX: dict[Region, Mix] = {
    Region.SSA: _mix(0.005, 0.48, 0.34, 0.17),
    Region.ECA: _mix(0.18, 0.61, 0.19, 0.02),
    Region.NA: _mix(0.22, 0.10, 0.68, 0.00),
    Region.LAC: _mix(0.27, 0.30, 0.41, 0.01),
    Region.EAP: _mix(0.50, 0.26, 0.22, 0.02),
    Region.MENA: _mix(0.71, 0.03, 0.26, 0.00),
    Region.SA: _mix(0.95, 0.02, 0.03, 0.00),
}

#: Regional fraction of URLs served from abroad (1 - domestic of Figure 8b).
REGION_INTL_SERVER_FRAC: dict[Region, float] = {
    Region.SSA: 0.48,
    Region.MENA: 0.26,
    Region.LAC: 0.20,
    Region.ECA: 0.15,
    Region.SA: 0.06,
    Region.EAP: 0.04,
    Region.NA: 0.02,
}

#: Default foreign-hosting partner weights per region, shaped to reproduce
#: Table 5 (share of cross-border dependencies remaining in-region) and the
#: regional-affinity findings of Section 6.3.
REGION_PARTNERS: dict[Region, dict[str, float]] = {
    # NA: 59.89% in-region; cross-border NA traffic flows mostly US<->CA.
    Region.NA: {"US": 0.45, "CA": 0.15, "DE": 0.15, "IE": 0.15, "GB": 0.10},
    # LAC: only 3.41% in-region; the US dominates (Mexico, Costa Rica).
    Region.LAC: {"US": 0.88, "BR": 0.03, "DE": 0.05, "FR": 0.04},
    # ECA: 94.87% in-region; Germany hosts 36% of the in-region share.
    Region.ECA: {
        "DE": 0.34, "FR": 0.12, "NL": 0.12, "GB": 0.09, "IE": 0.08,
        "AT": 0.06, "SK": 0.04, "FI": 0.04, "CZ": 0.03, "PL": 0.03, "US": 0.05,
    },
    # MENA: 0% in-region; relies on Western Europe.
    Region.MENA: {"FR": 0.45, "DE": 0.25, "GB": 0.15, "US": 0.15},
    # SSA: 2.95% in-region, all of it hosted by South Africa.
    Region.SSA: {"DE": 0.30, "FR": 0.20, "GB": 0.15, "US": 0.32, "ZA": 0.03},
    # SA: 0% in-region; US and Europe.
    Region.SA: {"US": 0.60, "DE": 0.20, "SG": 0.0, "GB": 0.20},
    # EAP: 80.79% in-region; Japan hosts ~60% of the in-region share.
    Region.EAP: {"JP": 0.48, "SG": 0.18, "AU": 0.10, "HK": 0.05, "US": 0.19},
}


@dataclasses.dataclass(frozen=True)
class HostingProfile:
    """Calibration knobs for one country's synthetic hosting landscape."""

    country: str
    #: Target category mix by URL count.
    url_mix: Mix
    #: Target category mix by bytes.
    byte_mix: Mix
    #: Target fraction of URLs served from servers located abroad.
    intl_server_frac: float
    #: Weights over foreign country codes for offshore server locations.
    partners: dict[str, float]
    #: Optional hard preference for specific global providers
    #: (provider key -> weight); merged with seeded defaults.
    provider_overrides: dict[str, float] = dataclasses.field(default_factory=dict)
    #: Number of distinct government/SOE networks.
    gov_network_count: int = 2
    #: Number of distinct local commercial hosting networks.
    local_provider_count: int = 3
    #: Zipf-like skew across networks within a category; larger values mean
    #: a single network dominates (drives the HHI analysis of Section 7.2).
    concentration: float = 1.2
    #: Fraction of third-party *global* deployments served via IP anycast.
    anycast_frac: float = 0.35
    #: Size multiplier applied to objects of foreign-served sites (lets a
    #: country's offshore bytes exceed its offshore URL share, as with
    #: Hetzner serving 57% of a Scandinavian government's bytes).
    foreign_byte_boost: float = 1.0

    def category_share(self, category: HostingCategory) -> float:
        """URL share of one category."""
        return self.url_mix[category]

    def dominant_category(self, by_bytes: bool = True) -> HostingCategory:
        """The category serving the largest share (bytes by default)."""
        mix = self.byte_mix if by_bytes else self.url_mix
        return max(mix, key=lambda cat: mix[cat])


def _derive_byte_mix(url_mix: Mix, region: Region) -> Mix:
    """Shift a URL mix toward the regional byte tendency.

    Bytes and URLs differ because average object sizes differ per
    category; we reuse the regional URL->byte ratio as the default
    distortion, then normalize.
    """
    url_region = REGION_URL_MIX[region]
    byte_region = REGION_BYTE_MIX[region]
    raw = {}
    for cat, share in url_mix.items():
        ratio = byte_region[cat] / url_region[cat] if url_region[cat] > 0 else 1.0
        raw[cat] = share * ratio
    total = sum(raw.values())
    return {cat: val / total for cat, val in raw.items()}


@dataclasses.dataclass(frozen=True)
class _Override:
    """Country-specific calibration values (paper-reported findings)."""

    url_mix: Optional[Mix] = None
    byte_mix: Optional[Mix] = None
    intl: Optional[float] = None
    partners: Optional[dict[str, float]] = None
    providers: Optional[dict[str, float]] = None
    gov_networks: Optional[int] = None
    local_providers: Optional[int] = None
    concentration: Optional[float] = None
    anycast_frac: Optional[float] = None
    foreign_byte_boost: Optional[float] = None


_OVERRIDES: dict[str, _Override] = {
    # --- North America ---------------------------------------------------
    "US": _Override(url_mix=_mix(0.27, 0.18, 0.55, 0.00),
                    byte_mix=_mix(0.24, 0.11, 0.65, 0.00),
                    intl=0.02, gov_networks=14, local_providers=10,
                    concentration=0.9),
    # Canada relies on Global Providers for 79% of its bytes (Section 5.3).
    "CA": _Override(url_mix=_mix(0.16, 0.12, 0.72, 0.00),
                    byte_mix=_mix(0.13, 0.08, 0.79, 0.00),
                    intl=0.05, partners={"US": 0.95, "DE": 0.05},
                    gov_networks=4, concentration=0.9),
    # --- Latin America ----------------------------------------------------
    # Argentina relies ~90% on third parties, predominantly global (S1, S5.3).
    "AR": _Override(url_mix=_mix(0.10, 0.16, 0.71, 0.03),
                    byte_mix=_mix(0.11, 0.14, 0.72, 0.03),
                    intl=0.22, partners={"US": 0.90, "BR": 0.10},
                    concentration=0.8,
                    providers={"cloudflare": 4.0, "amazon": 1.5}),
    # Uruguay: 98% of bytes from Govt&SOE (ANTEL; Section 5.3 and Table 2).
    "UY": _Override(url_mix=_mix(0.94, 0.03, 0.03, 0.00),
                    byte_mix=_mix(0.98, 0.01, 0.01, 0.00),
                    intl=0.02, gov_networks=1, concentration=2.5),
    # Brazil: Govt&SOE-dominant, only 1.78% of URLs served from the US (S6.3).
    "BR": _Override(url_mix=_mix(0.62, 0.22, 0.14, 0.02),
                    byte_mix=_mix(0.68, 0.18, 0.13, 0.01),
                    intl=0.022, partners={"US": 0.85, "DE": 0.15},
                    gov_networks=5, concentration=1.6),
    # Chile: 3P Local dominant (Section 5.3).
    "CL": _Override(url_mix=_mix(0.14, 0.60, 0.23, 0.03),
                    byte_mix=_mix(0.12, 0.58, 0.27, 0.03),
                    intl=0.12, concentration=1.0, local_providers=6),
    # Mexico: 79.22% of government URLs served from the US (Section 6.3).
    "MX": _Override(url_mix=_mix(0.12, 0.08, 0.78, 0.02),
                    byte_mix=_mix(0.14, 0.08, 0.76, 0.02),
                    intl=0.7922, partners={"US": 0.985, "DE": 0.015},
                    concentration=0.9),
    # Costa Rica: 49.70% of URLs served from the US (Section 6.3).
    "CR": _Override(url_mix=_mix(0.20, 0.22, 0.56, 0.02),
                    byte_mix=_mix(0.18, 0.20, 0.60, 0.02),
                    intl=0.497, partners={"US": 0.97, "DE": 0.03}),
    "BO": _Override(url_mix=_mix(0.18, 0.22, 0.57, 0.03),
                    byte_mix=_mix(0.15, 0.20, 0.62, 0.03),
                    intl=0.25, partners={"US": 0.83, "DE": 0.07, "FR": 0.05,
                                         "CO": 0.05},
                    providers={"cloudflare": 5.0},
                    concentration=1.0),
    "PY": _Override(url_mix=_mix(0.35, 0.42, 0.21, 0.02),
                    intl=0.15, partners={"US": 0.85, "BR": 0.05, "CO": 0.05,
                                         "DE": 0.05}),
    # --- Europe and Central Asia ------------------------------------------
    # Spain: 64% Govt&SOE (Section 5.3).
    "ES": _Override(url_mix=_mix(0.64, 0.21, 0.14, 0.01),
                    byte_mix=_mix(0.66, 0.21, 0.12, 0.01),
                    intl=0.08, gov_networks=4),
    # Italy: 93% 3P Local (Section 5.3).
    "IT": _Override(url_mix=_mix(0.04, 0.93, 0.03, 0.00),
                    byte_mix=_mix(0.04, 0.93, 0.03, 0.00),
                    intl=0.03, local_providers=5, concentration=1.5),
    # Netherlands: 41% 3P Global (Section 5.3).
    "NL": _Override(url_mix=_mix(0.29, 0.29, 0.41, 0.01),
                    byte_mix=_mix(0.30, 0.28, 0.41, 0.01),
                    intl=0.09, partners={"DE": 0.45, "IE": 0.25, "US": 0.15,
                                         "BR": 0.08, "KR": 0.07},
                    gov_networks=5, local_providers=8, concentration=0.9),
    # France: 42% of bytes from Global providers; 18.03% of URLs served from
    # New Caledonia by the state-owned OPT (Section 6.3).
    "FR": _Override(url_mix=_mix(0.30, 0.38, 0.30, 0.02),
                    byte_mix=_mix(0.31, 0.25, 0.42, 0.02),
                    intl=0.1803, partners={"NC": 1.0},
                    gov_networks=4, concentration=1.0),
    "DE": _Override(url_mix=_mix(0.30, 0.45, 0.23, 0.02),
                    byte_mix=_mix(0.24, 0.55, 0.19, 0.02),
                    intl=0.07, gov_networks=6, local_providers=8,
                    providers={"hetzner": 2.0}, concentration=0.9),
    "GB": _Override(url_mix=_mix(0.18, 0.22, 0.58, 0.02),
                    byte_mix=_mix(0.15, 0.20, 0.63, 0.02),
                    intl=0.12, partners={"IE": 0.55, "DE": 0.20, "NL": 0.15,
                                         "US": 0.10},
                    concentration=0.85),
    # Russia: Govt&SOE dominant; ~70% hosted within Russia pre-conflict and
    # increasingly domestic (Jonker et al., confirmed by this paper).
    "RU": _Override(url_mix=_mix(0.62, 0.30, 0.07, 0.01),
                    byte_mix=_mix(0.66, 0.28, 0.05, 0.01),
                    intl=0.10, gov_networks=4, concentration=1.6),
    "SE": _Override(url_mix=_mix(0.52, 0.30, 0.17, 0.01),
                    intl=0.08),
    "RO": _Override(url_mix=_mix(0.55, 0.30, 0.14, 0.01),
                    intl=0.09),
    "RS": _Override(url_mix=_mix(0.58, 0.28, 0.13, 0.01),
                    intl=0.10),
    # Hetzner delivers 57% of a Scandinavian government's bytes (Section
    # 7.1); Hetzner operates no Norwegian region, so that share is served
    # from its German/Finnish data centers.
    "NO": _Override(url_mix=_mix(0.16, 0.22, 0.60, 0.02),
                    byte_mix=_mix(0.12, 0.18, 0.68, 0.02),
                    intl=0.24, partners={"DE": 0.80, "FI": 0.20},
                    providers={"hetzner": 12.0, "cloudflare": 1.0},
                    concentration=1.4, anycast_frac=0.08,
                    foreign_byte_boost=5.0),
    # Moldova: Cloudflare serves 72% of bytes of an Eastern European country.
    "MD": _Override(url_mix=_mix(0.12, 0.18, 0.68, 0.02),
                    byte_mix=_mix(0.10, 0.16, 0.72, 0.02),
                    intl=0.22, providers={"cloudflare": 9.0},
                    concentration=1.3),
    "CH": _Override(url_mix=_mix(0.25, 0.25, 0.48, 0.02), intl=0.10,
                    gov_networks=3),
    "GE": _Override(url_mix=_mix(0.15, 0.25, 0.58, 0.02),
                    byte_mix=_mix(0.14, 0.26, 0.58, 0.02),
                    intl=0.20, providers={"cloudflare": 8.0},
                    concentration=1.2),
    "GR": _Override(url_mix=_mix(0.22, 0.26, 0.50, 0.02), intl=0.12),
    "AL": _Override(url_mix=_mix(0.18, 0.28, 0.52, 0.02), intl=0.18),
    "BA": _Override(url_mix=_mix(0.20, 0.26, 0.52, 0.02), intl=0.16),
    "DK": _Override(url_mix=_mix(0.20, 0.22, 0.56, 0.02), intl=0.10),
    "TR": _Override(url_mix=_mix(0.30, 0.52, 0.17, 0.01), intl=0.08,
                    gov_networks=4),
    "UA": _Override(url_mix=_mix(0.22, 0.52, 0.24, 0.02), intl=0.14),
    "PL": _Override(url_mix=_mix(0.24, 0.52, 0.22, 0.02), intl=0.08),
    "KZ": _Override(url_mix=_mix(0.34, 0.50, 0.15, 0.01), intl=0.07,
                    gov_networks=2),
    # Belgium and Hungary contribute ~40% of all URLs in the dataset
    # (Table 8); their Govt&SOE-leaning mixes pull the global URL-weighted
    # aggregate toward the paper's Figure 2 (39% Govt&SOE).
    "HU": _Override(url_mix=_mix(0.50, 0.32, 0.16, 0.02),
                    byte_mix=_mix(0.56, 0.30, 0.12, 0.02),
                    intl=0.08, gov_networks=3, concentration=1.4),
    "CZ": _Override(url_mix=_mix(0.22, 0.56, 0.20, 0.02), intl=0.09),
    "PT": _Override(url_mix=_mix(0.24, 0.52, 0.22, 0.02), intl=0.10),
    "BE": _Override(url_mix=_mix(0.48, 0.32, 0.18, 0.02),
                    byte_mix=_mix(0.54, 0.31, 0.13, 0.02),
                    intl=0.11, gov_networks=4, concentration=1.3),
    "BG": _Override(url_mix=_mix(0.22, 0.54, 0.22, 0.02), intl=0.12),
    "EE": _Override(url_mix=_mix(0.24, 0.52, 0.22, 0.02), intl=0.08),
    "LV": _Override(url_mix=_mix(0.20, 0.56, 0.22, 0.02), intl=0.10),
    # --- Middle East and North Africa --------------------------------------
    # Morocco: 48.38% of URLs on foreign servers, 29.82% in France (S6.3).
    "MA": _Override(url_mix=_mix(0.28, 0.10, 0.61, 0.01),
                    byte_mix=_mix(0.42, 0.05, 0.52, 0.01),
                    intl=0.4838, partners={"FR": 0.62, "DE": 0.20, "GB": 0.10,
                                           "US": 0.08}),
    # Egypt: 21.1% foreign (Section 6.3); Govt&SOE dominant.
    "EG": _Override(url_mix=_mix(0.56, 0.10, 0.33, 0.01),
                    byte_mix=_mix(0.76, 0.03, 0.21, 0.00),
                    intl=0.211, gov_networks=3, concentration=1.8),
    # Algeria: 18.62% foreign (Section 6.3); Govt&SOE dominant.
    "DZ": _Override(url_mix=_mix(0.58, 0.10, 0.31, 0.01),
                    byte_mix=_mix(0.78, 0.03, 0.19, 0.00),
                    intl=0.1862, gov_networks=2, concentration=2.0),
    "AE": _Override(url_mix=_mix(0.52, 0.10, 0.38, 0.00),
                    byte_mix=_mix(0.72, 0.03, 0.25, 0.00),
                    intl=0.12, gov_networks=3, concentration=1.7),
    "IL": _Override(url_mix=_mix(0.45, 0.12, 0.43, 0.00),
                    byte_mix=_mix(0.60, 0.05, 0.35, 0.00),
                    intl=0.14),
    # --- Sub-Saharan Africa -------------------------------------------------
    "NG": _Override(url_mix=_mix(0.01, 0.40, 0.45, 0.14),
                    byte_mix=_mix(0.005, 0.44, 0.38, 0.175),
                    intl=0.52, partners={"DE": 0.28, "FR": 0.18, "GB": 0.16,
                                         "US": 0.32, "ZA": 0.06},
                    gov_networks=1, concentration=0.9),
    "ZA": _Override(url_mix=_mix(0.01, 0.52, 0.33, 0.14),
                    byte_mix=_mix(0.005, 0.52, 0.30, 0.175),
                    intl=0.44, partners={"DE": 0.32, "FR": 0.22, "GB": 0.14,
                                         "US": 0.32},
                    gov_networks=1, concentration=0.9),
    # --- South Asia ----------------------------------------------------------
    # India: 99.3% of URLs served domestically (Section 6.3); NIC hosting.
    "IN": _Override(url_mix=_mix(0.86, 0.06, 0.08, 0.00),
                    byte_mix=_mix(0.97, 0.01, 0.02, 0.00),
                    intl=0.007, gov_networks=3, concentration=2.2),
    "BD": _Override(url_mix=_mix(0.76, 0.12, 0.11, 0.01),
                    byte_mix=_mix(0.93, 0.03, 0.04, 0.00),
                    intl=0.09, partners={"US": 0.57, "DE": 0.20, "GB": 0.20,
                                         "NP": 0.03},
                    gov_networks=2, concentration=2.0),
    "PK": _Override(url_mix=_mix(0.70, 0.12, 0.17, 0.01),
                    byte_mix=_mix(0.90, 0.04, 0.06, 0.00),
                    intl=0.12, gov_networks=2, concentration=1.9),
    # --- East Asia and Pacific ------------------------------------------------
    # China: 26.4% of URLs hosted by third-party providers in Japan (S6.3);
    # domestic-registered providers with offshore (Japanese) serving sites
    # carry most of that mass.
    "CN": _Override(url_mix=_mix(0.50, 0.33, 0.13, 0.04),
                    byte_mix=_mix(0.58, 0.27, 0.12, 0.03),
                    intl=0.264, partners={"JP": 0.97, "SG": 0.03},
                    gov_networks=5, concentration=1.5),
    # Indonesia: Govt&SOE-dominant with 58% of bytes (Section 5.3).
    "ID": _Override(url_mix=_mix(0.55, 0.28, 0.15, 0.02),
                    byte_mix=_mix(0.58, 0.26, 0.14, 0.02),
                    intl=0.05, gov_networks=3, concentration=1.4),
    "VN": _Override(url_mix=_mix(0.62, 0.26, 0.11, 0.01),
                    byte_mix=_mix(0.68, 0.22, 0.09, 0.01),
                    intl=0.04, gov_networks=3, concentration=1.7),
    # Malaysia: 3P Global dominant (Section 5.3).
    "MY": _Override(url_mix=_mix(0.34, 0.33, 0.31, 0.02),
                    byte_mix=_mix(0.26, 0.28, 0.44, 0.02),
                    intl=0.06, partners={"SG": 0.75, "JP": 0.15, "US": 0.10}),
    # New Zealand: 40% of URLs served from Australia (Section 6.3).
    "NZ": _Override(url_mix=_mix(0.22, 0.32, 0.44, 0.02),
                    byte_mix=_mix(0.18, 0.26, 0.54, 0.02),
                    intl=0.40, partners={"AU": 0.97, "US": 0.03}),
    "JP": _Override(url_mix=_mix(0.44, 0.34, 0.20, 0.02),
                    byte_mix=_mix(0.44, 0.30, 0.24, 0.02),
                    intl=0.03, gov_networks=4),
    "TH": _Override(url_mix=_mix(0.44, 0.32, 0.22, 0.02),
                    intl=0.05, partners={"SG": 0.60, "JP": 0.40}),
    "AU": _Override(url_mix=_mix(0.52, 0.26, 0.21, 0.01),
                    byte_mix=_mix(0.46, 0.22, 0.31, 0.01),
                    intl=0.04, partners={"US": 0.50, "SG": 0.30, "JP": 0.20},
                    gov_networks=6, concentration=1.0),
    "TW": _Override(url_mix=_mix(0.38, 0.38, 0.22, 0.02),
                    intl=0.08, partners={"JP": 0.55, "SG": 0.45}),
    # Hong Kong: Amazon serves ~97% of an East Asian government's bytes
    # (Section 7.1); AWS operates a local region there.
    "HK": _Override(url_mix=_mix(0.08, 0.06, 0.85, 0.01),
                    byte_mix=_mix(0.02, 0.01, 0.97, 0.00),
                    intl=0.06, partners={"SG": 0.55, "JP": 0.45},
                    providers={"amazon": 25.0}, concentration=2.0,
                    anycast_frac=0.05),
    # Singapore: Cloudflare serves 56% of a small Asian country's bytes.
    "SG": _Override(url_mix=_mix(0.28, 0.32, 0.38, 0.02),
                    byte_mix=_mix(0.22, 0.20, 0.56, 0.02),
                    intl=0.05, partners={"JP": 0.70, "HK": 0.30},
                    providers={"cloudflare": 8.0}, concentration=1.3),
    "KR": _Override(url_mix=_mix(0.55, 0.30, 0.14, 0.01), intl=0.03),
}


def _scaled_network_counts(code: str) -> tuple[int, int]:
    """Default government/local network counts scaled by country size."""
    country = get_country(code)
    hosts = max(country.hostnames, 1)
    gov = max(1, min(8, hosts // 60 + 1))
    local = max(2, min(10, hosts // 45 + 2))
    return gov, local


def _development_stats() -> tuple[tuple[float, float], ...]:
    """Mean/std of (log users, NRI, log GDP) over the sample (cached)."""
    global _DEV_STATS
    if _DEV_STATS is None:
        import math
        import statistics

        log_users = [math.log(c.internet_users_m) for c in COUNTRIES.values()]
        nris = [float(c.nri) for c in COUNTRIES.values()]
        log_gdps = [math.log(c.gdp_per_capita_kusd) for c in COUNTRIES.values()]
        _DEV_STATS = tuple(
            (statistics.mean(values), statistics.pstdev(values) or 1.0)
            for values in (log_users, nris, log_gdps)
        )
    return _DEV_STATS


_DEV_STATS = None


def _development_residuals() -> dict[str, tuple[float, float, float]]:
    """Per-country residual components of (users, NRI, GDP).

    Each feature column (standardized) is regressed on the other five
    Appendix E features; the residual is the part of the feature not
    explained by the rest.  Steering the offshore-hosting ground truth
    by these residuals is what lets an OLS over the heavily collinear
    development indices attribute the effect to the *right* features,
    as the paper's data evidently did.
    """
    global _DEV_RESIDUALS
    if _DEV_RESIDUALS is not None:
        return _DEV_RESIDUALS
    import numpy as np

    codes = list(COUNTRIES)
    raw = np.array([
        [c.idi, c.efi, c.gdp_per_capita_kusd, (c.hdi if c.hdi is not None else 0.8),
         c.nri, c.internet_users_m]
        for c in COUNTRIES.values()
    ])
    std = (raw - raw.mean(axis=0)) / raw.std(axis=0)
    residuals = {}
    for name, column in (("users", 5), ("nri", 4), ("gdp", 2)):
        target = std[:, column]
        others = np.delete(std, column, axis=1)
        design = np.column_stack([np.ones(len(codes)), others])
        beta, _, _, _ = np.linalg.lstsq(design, target, rcond=None)
        residuals[name] = target - design @ beta
    _DEV_RESIDUALS = {
        code: (
            float(residuals["users"][index]),
            float(residuals["nri"][index]),
            float(residuals["gdp"][index]),
        )
        for index, code in enumerate(codes)
    }
    return _DEV_RESIDUALS


_DEV_RESIDUALS = None


def _adjusted_default_intl(code: str, region_default: float) -> float:
    """Shape region-default international hosting by development drivers.

    Appendix E finds countries with more Internet users host more
    services abroad, while network readiness and GDP pull the other
    way; countries without a paper-reported value get their regional
    default modulated accordingly (by the residual feature components,
    see :func:`_development_residuals`).
    """
    import math

    r_users, r_nri, r_gdp = _development_residuals()[get_country(code).code]
    factor = math.exp(1.2 * r_users - 1.4 * r_nri - 1.1 * r_gdp)
    factor = min(max(factor, 1.0 / 4.0), 4.0)
    return min(max(region_default * factor, 0.01), 0.85)


def development_z(code: str) -> tuple[float, float, float]:
    """Sample z-scores of (log Internet users, NRI, log GDP) for a country."""
    import math

    country = get_country(code)
    (mu_u, sd_u), (mu_n, sd_n), (mu_g, sd_g) = _development_stats()
    return (
        (math.log(country.internet_users_m) - mu_u) / sd_u,
        (country.nri - mu_n) / sd_n,
        (math.log(country.gdp_per_capita_kusd) - mu_g) / sd_g,
    )


#: Countries whose offshore share the paper reports explicitly (Section
#: 6.3 and Figure 8b extremes); all other overrides provide only a *base*
#: that the development drivers modulate.
_INTL_PINNED = frozenset({
    "US", "CA", "MX", "CR", "BR", "FR", "NO", "NZ", "CN", "IN",
    "EG", "DZ", "MA", "NG", "ZA", "UY",
})


def get_profile(code: str) -> HostingProfile:
    """Build the calibrated :class:`HostingProfile` for a country."""
    country = get_country(code)
    override = _OVERRIDES.get(country.code, _Override())
    url_mix = override.url_mix or dict(REGION_URL_MIX[country.region])
    if override.byte_mix is not None:
        byte_mix = override.byte_mix
    else:
        byte_mix = _derive_byte_mix(url_mix, country.region)
    if override.intl is not None and country.code in _INTL_PINNED:
        intl = override.intl
    else:
        base = (
            override.intl
            if override.intl is not None
            else REGION_INTL_SERVER_FRAC[country.region]
        )
        intl = _adjusted_default_intl(code, base)
    partners = dict(override.partners or REGION_PARTNERS[country.region])
    # A country never appears in its own partner map.
    partners.pop(country.code, None)
    default_gov, default_local = _scaled_network_counts(code)
    return HostingProfile(
        country=country.code,
        url_mix=url_mix,
        byte_mix=byte_mix,
        intl_server_frac=intl,
        partners=partners,
        provider_overrides=dict(override.providers or {}),
        gov_network_count=override.gov_networks or default_gov,
        local_provider_count=override.local_providers or default_local,
        concentration=override.concentration if override.concentration is not None else 1.2,
        anycast_frac=override.anycast_frac if override.anycast_frac is not None else 0.35,
        foreign_byte_boost=override.foreign_byte_boost or 1.0,
    )


def drift_profile(profile: HostingProfile, drift: float) -> HostingProfile:
    """Advance a profile along the global third-party trend.

    Moves ``drift`` of the Govt&SOE mass (URLs and bytes) to 3P Global
    and nudges the offshore share upward -- the direction the paper's
    longitudinal predecessor (Kumar et al. 2023) measured year over
    year.  ``drift=0`` returns the profile unchanged.
    """
    if not 0.0 <= drift <= 0.5:
        raise ValueError("drift must be within [0, 0.5]")
    if drift == 0.0:
        return profile

    def shift(mix: Mix) -> Mix:
        moved = mix[_G] * drift
        out = dict(mix)
        out[_G] = mix[_G] - moved
        out[_GL] = mix[_GL] + moved
        return out

    return dataclasses.replace(
        profile,
        url_mix=shift(profile.url_mix),
        byte_mix=shift(profile.byte_mix),
        intl_server_frac=min(0.85, profile.intl_server_frac * (1 + drift)),
    )


def all_profiles() -> dict[str, HostingProfile]:
    """Profiles for every country in the sample."""
    return {code: get_profile(code) for code in COUNTRIES}


__all__ = [
    "HostingProfile",
    "Mix",
    "REGION_URL_MIX",
    "REGION_BYTE_MIX",
    "REGION_INTL_SERVER_FRAC",
    "REGION_PARTNERS",
    "get_profile",
    "all_profiles",
]
