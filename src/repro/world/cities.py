"""City coordinates used for probes, PoPs and road-distance thresholds.

Each sample country gets its capital plus up to three further large
cities.  RIPE-Atlas-like probes (:mod:`repro.measure.atlas`) are placed
in these cities, provider PoPs are anchored to them, and the
per-country latency threshold of Section 3.5 is derived from the
intercity road distance between the two furthest cities.

A handful of *hosting-only* territories (places where government
content of sample countries is served from, but which are not part of
the sample themselves -- e.g. New Caledonia for France) are also
listed; the paper found servers in 68 countries for its 61-country
sample (Table 3).
"""

from __future__ import annotations

import dataclasses

from repro.world.regions import Continent, Region


@dataclasses.dataclass(frozen=True)
class City:
    """A named location within a country."""

    name: str
    lat: float
    lon: float


#: Capital first; order matters (probes prefer earlier cities).
CITIES: dict[str, tuple[City, ...]] = {
    "US": (City("Washington", 38.9, -77.0), City("New York", 40.7, -74.0),
           City("Los Angeles", 34.1, -118.2), City("Chicago", 41.9, -87.6)),
    "CA": (City("Ottawa", 45.4, -75.7), City("Toronto", 43.7, -79.4),
           City("Vancouver", 49.3, -123.1)),
    "RU": (City("Moscow", 55.8, 37.6), City("Saint Petersburg", 59.9, 30.3),
           City("Novosibirsk", 55.0, 82.9)),
    "DE": (City("Berlin", 52.5, 13.4), City("Frankfurt", 50.1, 8.7),
           City("Munich", 48.1, 11.6)),
    "TR": (City("Ankara", 39.9, 32.9), City("Istanbul", 41.0, 28.9),
           City("Izmir", 38.4, 27.1)),
    "GB": (City("London", 51.5, -0.1), City("Manchester", 53.5, -2.2),
           City("Edinburgh", 55.9, -3.2)),
    "FR": (City("Paris", 48.9, 2.3), City("Lyon", 45.8, 4.8),
           City("Marseille", 43.3, 5.4)),
    "IT": (City("Rome", 41.9, 12.5), City("Milan", 45.5, 9.2),
           City("Naples", 40.8, 14.3)),
    "ES": (City("Madrid", 40.4, -3.7), City("Barcelona", 41.4, 2.2),
           City("Seville", 37.4, -6.0)),
    "UA": (City("Kyiv", 50.5, 30.5), City("Lviv", 49.8, 24.0),
           City("Odesa", 46.5, 30.7)),
    "PL": (City("Warsaw", 52.2, 21.0), City("Krakow", 50.1, 19.9),
           City("Gdansk", 54.4, 18.6)),
    "KZ": (City("Astana", 51.2, 71.4), City("Almaty", 43.2, 76.9)),
    "NL": (City("Amsterdam", 52.4, 4.9), City("Rotterdam", 51.9, 4.5),
           City("Groningen", 53.2, 6.6)),
    "RO": (City("Bucharest", 44.4, 26.1), City("Cluj-Napoca", 46.8, 23.6)),
    "BE": (City("Brussels", 50.9, 4.4), City("Antwerp", 51.2, 4.4),
           City("Liege", 50.6, 5.6)),
    "SE": (City("Stockholm", 59.3, 18.1), City("Gothenburg", 57.7, 12.0),
           City("Malmo", 55.6, 13.0)),
    "CZ": (City("Prague", 50.1, 14.4), City("Brno", 49.2, 16.6)),
    "PT": (City("Lisbon", 38.7, -9.1), City("Porto", 41.1, -8.6)),
    "HU": (City("Budapest", 47.5, 19.0), City("Debrecen", 47.5, 21.6)),
    "CH": (City("Bern", 46.9, 7.4), City("Zurich", 47.4, 8.5),
           City("Geneva", 46.2, 6.1)),
    "GR": (City("Athens", 38.0, 23.7), City("Thessaloniki", 40.6, 23.0)),
    "RS": (City("Belgrade", 44.8, 20.5), City("Novi Sad", 45.3, 19.8)),
    "DK": (City("Copenhagen", 55.7, 12.6), City("Aarhus", 56.2, 10.2)),
    "NO": (City("Oslo", 59.9, 10.8), City("Bergen", 60.4, 5.3),
           City("Trondheim", 63.4, 10.4)),
    "BG": (City("Sofia", 42.7, 23.3), City("Varna", 43.2, 27.9)),
    "GE": (City("Tbilisi", 41.7, 44.8), City("Batumi", 41.6, 41.6)),
    "MD": (City("Chisinau", 47.0, 28.9), City("Balti", 47.8, 27.9)),
    "BA": (City("Sarajevo", 43.9, 18.4), City("Banja Luka", 44.8, 17.2)),
    "AL": (City("Tirana", 41.3, 19.8), City("Durres", 41.3, 19.4)),
    "LV": (City("Riga", 56.9, 24.1), City("Daugavpils", 55.9, 26.5)),
    "EE": (City("Tallinn", 59.4, 24.8), City("Tartu", 58.4, 26.7)),
    "CN": (City("Beijing", 39.9, 116.4), City("Shanghai", 31.2, 121.5),
           City("Guangzhou", 23.1, 113.3), City("Chengdu", 30.7, 104.1)),
    "ID": (City("Jakarta", -6.2, 106.8), City("Surabaya", -7.3, 112.7),
           City("Medan", 3.6, 98.7)),
    "JP": (City("Tokyo", 35.7, 139.7), City("Osaka", 34.7, 135.5),
           City("Sapporo", 43.1, 141.4)),
    "VN": (City("Hanoi", 21.0, 105.8), City("Ho Chi Minh City", 10.8, 106.7)),
    "TH": (City("Bangkok", 13.8, 100.5), City("Chiang Mai", 18.8, 99.0)),
    "KR": (City("Seoul", 37.6, 127.0), City("Busan", 35.2, 129.1)),
    "MY": (City("Kuala Lumpur", 3.1, 101.7), City("Penang", 5.4, 100.3),
           City("Johor Bahru", 1.5, 103.7)),
    "AU": (City("Canberra", -35.3, 149.1), City("Sydney", -33.9, 151.2),
           City("Melbourne", -37.8, 145.0), City("Perth", -31.9, 115.9)),
    "TW": (City("Taipei", 25.0, 121.6), City("Kaohsiung", 22.6, 120.3)),
    "HK": (City("Hong Kong", 22.3, 114.2),),
    "SG": (City("Singapore", 1.3, 103.8),),
    "NZ": (City("Wellington", -41.3, 174.8), City("Auckland", -36.8, 174.8),
           City("Christchurch", -43.5, 172.6)),
    "IN": (City("New Delhi", 28.6, 77.2), City("Mumbai", 19.1, 72.9),
           City("Chennai", 13.1, 80.3), City("Kolkata", 22.6, 88.4)),
    "BD": (City("Dhaka", 23.8, 90.4), City("Chattogram", 22.4, 91.8)),
    "PK": (City("Islamabad", 33.7, 73.1), City("Karachi", 24.9, 67.0),
           City("Lahore", 31.5, 74.3)),
    "EG": (City("Cairo", 30.0, 31.2), City("Alexandria", 31.2, 29.9),
           City("Aswan", 24.1, 32.9)),
    "DZ": (City("Algiers", 36.8, 3.1), City("Oran", 35.7, -0.6)),
    "MA": (City("Rabat", 34.0, -6.8), City("Casablanca", 33.6, -7.6),
           City("Marrakesh", 31.6, -8.0)),
    "AE": (City("Abu Dhabi", 24.5, 54.4), City("Dubai", 25.2, 55.3)),
    "IL": (City("Jerusalem", 31.8, 35.2), City("Tel Aviv", 32.1, 34.8),
           City("Haifa", 32.8, 35.0)),
    "NG": (City("Abuja", 9.1, 7.4), City("Lagos", 6.5, 3.4),
           City("Kano", 12.0, 8.5)),
    "ZA": (City("Pretoria", -25.7, 28.2), City("Johannesburg", -26.2, 28.0),
           City("Cape Town", -33.9, 18.4), City("Durban", -29.9, 31.0)),
    "BR": (City("Brasilia", -15.8, -47.9), City("Sao Paulo", -23.6, -46.6),
           City("Rio de Janeiro", -22.9, -43.2), City("Manaus", -3.1, -60.0)),
    "MX": (City("Mexico City", 19.4, -99.1), City("Guadalajara", 20.7, -103.3),
           City("Monterrey", 25.7, -100.3)),
    "AR": (City("Buenos Aires", -34.6, -58.4), City("Cordoba", -31.4, -64.2),
           City("Mendoza", -32.9, -68.8)),
    "CL": (City("Santiago", -33.5, -70.7), City("Valparaiso", -33.0, -71.6),
           City("Punta Arenas", -53.2, -70.9)),
    "BO": (City("La Paz", -16.5, -68.1), City("Santa Cruz", -17.8, -63.2)),
    "PY": (City("Asuncion", -25.3, -57.6), City("Ciudad del Este", -25.5, -54.6)),
    "CR": (City("San Jose", 9.9, -84.1), City("Limon", 10.0, -83.0)),
    "UY": (City("Montevideo", -34.9, -56.2), City("Salto", -31.4, -57.9)),
}

#: Hosting-only territories: places where content of sample governments is
#: served from without being part of the sample (brings the total number of
#: countries with servers to 68, as in Table 3).
EXTRA_TERRITORIES: dict[str, tuple[str, Region, Continent, City]] = {
    "NC": ("New Caledonia", Region.EAP, Continent.OCEANIA, City("Noumea", -22.3, 166.4)),
    "CO": ("Colombia", Region.LAC, Continent.SOUTH_AMERICA, City("Bogota", 4.7, -74.1)),
    "NP": ("Nepal", Region.SA, Continent.ASIA, City("Kathmandu", 27.7, 85.3)),
    "AT": ("Austria", Region.ECA, Continent.EUROPE, City("Vienna", 48.2, 16.4)),
    "SK": ("Slovakia", Region.ECA, Continent.EUROPE, City("Bratislava", 48.1, 17.1)),
    "FI": ("Finland", Region.ECA, Continent.EUROPE, City("Helsinki", 60.2, 24.9)),
    "IE": ("Ireland", Region.ECA, Continent.EUROPE, City("Dublin", 53.3, -6.3)),
}


def cities_of(code: str) -> tuple[City, ...]:
    """Cities of a sample country or hosting-only territory."""
    code = code.upper()
    if code in CITIES:
        return CITIES[code]
    if code in EXTRA_TERRITORIES:
        return (EXTRA_TERRITORIES[code][3],)
    raise KeyError(f"no city data for country code {code!r}")


def capital_of(code: str) -> City:
    """The anchor (capital) city of a country."""
    return cities_of(code)[0]


def all_location_codes() -> list[str]:
    """Codes of every place a server may be located in (sample + extras)."""
    return list(CITIES) + list(EXTRA_TERRITORIES)


__all__ = [
    "City",
    "CITIES",
    "EXTRA_TERRITORIES",
    "cities_of",
    "capital_of",
    "all_location_codes",
]
