"""Mobile-data prices for the affordability analysis (extension).

Approximate 2023 median prices of one gigabyte of mobile data in USD,
from public price-comparison compilations (the kind Habib et al.'s
affordability study of public-service websites builds on).  Values are
coarse but preserve the ordering that matters: data is cheapest in
India/Italy-style markets and most expensive in small or low-income
markets.
"""

from __future__ import annotations

from repro.world.countries import COUNTRIES, get_country

#: USD per GB of mobile data (approximate medians).
DATA_PRICE_USD_PER_GB: dict[str, float] = {
    "US": 5.62, "CA": 5.94, "RU": 0.46, "DE": 2.67, "TR": 0.58, "GB": 0.79,
    "FR": 0.23, "IT": 0.12, "ES": 0.60, "UA": 0.46, "PL": 0.66, "KZ": 0.44,
    "NL": 3.40, "RO": 0.38, "BE": 2.93, "SE": 1.98, "CZ": 2.94, "PT": 0.82,
    "HU": 1.85, "CH": 4.08, "GR": 1.87, "RS": 1.16, "DK": 1.32, "NO": 2.19,
    "BG": 0.81, "GE": 1.29, "MD": 0.61, "BA": 1.10, "AL": 1.05, "LV": 0.87,
    "EE": 1.09, "CN": 0.41, "ID": 0.28, "JP": 3.85, "VN": 0.28, "TH": 0.41,
    "KR": 3.77, "MY": 0.29, "AU": 0.36, "TW": 0.82, "HK": 0.61, "SG": 0.35,
    "NZ": 2.78, "IN": 0.16, "BD": 0.32, "PK": 0.36, "EG": 0.56, "DZ": 0.49,
    "MA": 0.62, "AE": 3.01, "IL": 0.11, "NG": 0.38, "ZA": 1.77, "BR": 0.89,
    "MX": 1.82, "AR": 0.55, "CL": 0.39, "BO": 1.51, "PY": 0.44, "CR": 1.95,
    "UY": 0.84,
}


def data_price_usd_per_gb(code: str) -> float:
    """Mobile-data price for a sample country."""
    return DATA_PRICE_USD_PER_GB[code.upper()]


def daily_income_usd(code: str) -> float:
    """A coarse daily-income proxy: GDP per capita spread over the year."""
    return get_country(code).gdp_per_capita_kusd * 1000.0 / 365.0


def _validate() -> None:
    missing = set(COUNTRIES) - set(DATA_PRICE_USD_PER_GB)
    if missing:  # pragma: no cover - guarded by tests
        raise RuntimeError(f"missing data prices for {sorted(missing)}")


_validate()

__all__ = ["DATA_PRICE_USD_PER_GB", "data_price_usd_per_gb",
           "daily_income_usd"]
