"""Geographic primitives: great-circle distances and road thresholds.

Section 3.5 of the paper derives a *per-country* latency threshold from
the intercity road distance between the two furthest cities of the
country.  We approximate road distance as great-circle distance times a
road-circuity factor, a standard approximation in Internet geolocation
work (iGDB uses road infrastructure data directly).
"""

from __future__ import annotations

import math

from repro.world.cities import City, cities_of

EARTH_RADIUS_KM = 6371.0

#: Road networks are not straight lines; empirically intercity road distance
#: is roughly 1.2-1.4x the great-circle distance.
ROAD_CIRCUITY_FACTOR = 1.3


def haversine_km(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Great-circle distance in kilometres between two (lat, lon) points."""
    phi1, phi2 = math.radians(lat1), math.radians(lat2)
    dphi = phi2 - phi1
    dlmb = math.radians(lon2 - lon1)
    a = math.sin(dphi / 2) ** 2 + math.cos(phi1) * math.cos(phi2) * math.sin(dlmb / 2) ** 2
    return 2 * EARTH_RADIUS_KM * math.asin(min(1.0, math.sqrt(a)))


def city_distance_km(a: City, b: City) -> float:
    """Great-circle distance between two cities."""
    return haversine_km(a.lat, a.lon, b.lat, b.lon)


def country_distance_km(code_a: str, code_b: str) -> float:
    """Distance between the anchor cities of two countries."""
    a = cities_of(code_a)[0]
    b = cities_of(code_b)[0]
    return city_distance_km(a, b)


def country_span_km(code: str) -> float:
    """Great-circle distance between the two furthest cities of a country.

    Countries with a single listed city (city-states such as Singapore or
    Hong Kong) are assigned a nominal 50 km span.
    """
    cities = cities_of(code)
    if len(cities) < 2:
        return 50.0
    return max(
        city_distance_km(a, b)
        for i, a in enumerate(cities)
        for b in cities[i + 1:]
    )


def road_span_km(code: str) -> float:
    """Approximate intercity road distance between the two furthest cities."""
    return country_span_km(code) * ROAD_CIRCUITY_FACTOR


__all__ = [
    "EARTH_RADIUS_KM",
    "ROAD_CIRCUITY_FACTOR",
    "haversine_km",
    "city_distance_km",
    "country_distance_km",
    "country_span_km",
    "road_span_km",
]
