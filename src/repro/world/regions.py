"""World Bank regional division and physical continents.

The paper slices the world using the World Bank's seven-region division
(Section 4.1) for all regional analyses, while the definition of a
*Global* third-party provider ("networks that serve governments across
multiple continents", Section 5.1) relies on physical continents.  Both
taxonomies are defined here.
"""

from __future__ import annotations

import enum


class Region(enum.Enum):
    """World Bank region (Section 4.1 of the paper)."""

    NA = "North America"
    LAC = "Latin America and the Caribbean"
    ECA = "Europe and Central Asia"
    MENA = "Middle East and North Africa"
    SSA = "Sub-Saharan Africa"
    SA = "South Asia"
    EAP = "East Asia and Pacific"

    @property
    def code(self) -> str:
        """Short region code used in the paper's figures (e.g. ``"ECA"``)."""
        return self.name

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


class Continent(enum.Enum):
    """Physical continent, used to distinguish Regional from Global providers."""

    NORTH_AMERICA = "North America"
    SOUTH_AMERICA = "South America"
    EUROPE = "Europe"
    AFRICA = "Africa"
    ASIA = "Asia"
    OCEANIA = "Oceania"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Region ordering used when rendering figures, matching the paper's plots.
REGION_ORDER = [
    Region.SSA,
    Region.ECA,
    Region.NA,
    Region.LAC,
    Region.MENA,
    Region.EAP,
    Region.SA,
]

__all__ = ["Region", "Continent", "REGION_ORDER"]
