"""The 61-country sample of the study with its published attributes.

This module hard-codes the constants the paper reports:

* Table 9: region, E-Government Development Index (EGDI), Human
  Development Index (HDI), Internet Usage Index (IUI, i.e. Internet
  penetration), share of the world's Internet population, and the VPN
  provider used to reach each country.
* Table 8: per-country dataset sizes (landing URLs, internal URLs and
  unique government hostnames) which the synthetic generator scales.
* Appendix E features: GDP per capita, Network Readiness Index (NRI),
  Economic Freedom Index (EFI) and ICT Development Index (IDI)
  approximations from the public sources the paper cites.

Country geography (centroid, largest cities) lives in
:mod:`repro.world.cities`; the two are joined by ISO alpha-2 code.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, Optional

from repro.world.regions import Continent, Region

#: Total world Internet users assumed when converting a country's share of
#: the world's Internet population into an absolute user count (millions).
WORLD_INTERNET_USERS_M = 5300.0


@dataclasses.dataclass(frozen=True)
class Country:
    """A country in the study sample with its published attributes."""

    code: str
    name: str
    region: Region
    continent: Continent
    cctld: str
    #: Government domain suffixes conventionally used by this country
    #: (e.g. ``("gov.uk",)``).  Empty for countries such as Germany or the
    #: Netherlands that follow no convention (Section 8).
    gov_suffixes: tuple[str, ...]
    egdi: Optional[float]
    hdi: Optional[float]
    iui: Optional[float]
    #: Share (percent) of the world's Internet population (Table 9).
    internet_pop_share: float
    vpn_provider: str
    #: Table 8 statistics at full (paper) scale.
    landing_urls: int
    internal_urls: int
    hostnames: int
    #: Appendix E explanatory features (public-source approximations).
    gdp_per_capita_kusd: float
    nri: float
    efi: float
    idi: float
    eu_member: bool = False

    @property
    def internet_users_m(self) -> float:
        """Absolute Internet users in millions, derived from the share."""
        return self.internet_pop_share / 100.0 * WORLD_INTERNET_USERS_M

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name} ({self.code})"


def _c(
    code: str,
    name: str,
    region: Region,
    continent: Continent,
    cctld: str,
    gov_suffixes: tuple[str, ...],
    egdi: Optional[float],
    hdi: Optional[float],
    iui: Optional[float],
    share: float,
    vpn: str,
    landing: int,
    internal: int,
    hostnames: int,
    gdp: float,
    nri: float,
    efi: float,
    idi: float,
    eu: bool = False,
) -> Country:
    return Country(
        code=code,
        name=name,
        region=region,
        continent=continent,
        cctld=cctld,
        gov_suffixes=gov_suffixes,
        egdi=egdi,
        hdi=hdi,
        iui=iui,
        internet_pop_share=share,
        vpn_provider=vpn,
        landing_urls=landing,
        internal_urls=internal,
        hostnames=hostnames,
        gdp_per_capita_kusd=gdp,
        nri=nri,
        efi=efi,
        idi=idi,
        eu_member=eu,
    )


_NA = Region.NA
_LAC = Region.LAC
_ECA = Region.ECA
_MENA = Region.MENA
_SSA = Region.SSA
_SA = Region.SA
_EAP = Region.EAP

_NAM = Continent.NORTH_AMERICA
_SAM = Continent.SOUTH_AMERICA
_EUR = Continent.EUROPE
_AFR = Continent.AFRICA
_ASI = Continent.ASIA
_OCE = Continent.OCEANIA

_NORD = "NordVPN"
_SURF = "Surfshark"
_HSS = "Hotspot Shield"

#: All 61 countries of the study (Table 9 + Table 8 + Appendix E features).
COUNTRIES: dict[str, Country] = {
    c.code: c
    for c in [
        # --- North America -------------------------------------------------
        _c("US", "United States", _NA, _NAM, "us", ("gov", "mil", "fed.us"),
           0.915, 0.921, 92, 5.760, _NORD, 1340, 38702, 2343, 76.0, 84, 70, 9.0),
        _c("CA", "Canada", _NA, _NAM, "ca", ("gc.ca", "canada.ca"),
           0.851, 0.936, 93, 0.685, _NORD, 216, 6626, 127, 55.0, 82, 73, 9.2),
        # --- Europe and Central Asia ---------------------------------------
        _c("RU", "Russia", _ECA, _EUR, "ru", ("gov.ru",),
           0.816, 0.822, 90, 2.299, _HSS, 106, 5813, 46, 12.0, 57, 53, 6.1),
        _c("DE", "Germany", _ECA, _EUR, "de", (),
           0.877, 0.942, 92, 1.459, _NORD, 777, 28841, 451, 48.0, 78, 73, 8.3, eu=True),
        _c("TR", "Turkey", _ECA, _ASI, "tr", ("gov.tr",),
           0.798, 0.838, 83, 1.3371, _NORD, 226, 14817, 228, 10.6, 55, 56, 5.4),
        _c("GB", "United Kingdom", _ECA, _EUR, "uk", ("gov.uk", "mod.uk"),
           0.914, 0.929, 97, 1.200, _NORD, 373, 9005, 320, 46.0, 73, 69, 8.0),
        _c("FR", "France", _ECA, _EUR, "fr", ("gouv.fr",),
           0.883, 0.903, 85, 1.114, _NORD, 669, 9705, 238, 41.0, 74, 62, 8.7, eu=True),
        _c("IT", "Italy", _ECA, _EUR, "it", ("gov.it", "governo.it"),
           0.838, 0.895, 85, 1.011, _NORD, 129, 8518, 123, 34.0, 66, 69, 5.8, eu=True),
        _c("ES", "Spain", _ECA, _EUR, "es", ("gob.es",),
           0.884, 0.905, 94, 0.802, _NORD, 251, 14602, 175, 30.0, 72, 65, 6.7, eu=True),
        _c("UA", "Ukraine", _ECA, _EUR, "ua", ("gov.ua",),
           0.803, 0.773, 79, 0.7545, _NORD, 93, 3928, 98, 4.5, 51, 50, 5.4),
        _c("PL", "Poland", _ECA, _EUR, "pl", ("gov.pl",),
           0.844, 0.876, 87, 0.640, _NORD, 594, 29699, 470, 18.0, 53, 67, 7.0, eu=True),
        _c("KZ", "Kazakhstan", _ECA, _ASI, "kz", ("gov.kz",),
           0.863, 0.811, 92, 0.304, _SURF, 52, 648, 16, 11.0, 45, 62, 6.7),
        _c("NL", "Netherlands", _ECA, _EUR, "nl", (),
           0.938, 0.941, 93, 0.302, _NORD, 1293, 39026, 966, 57.0, 77, 78, 7.7, eu=True),
        _c("RO", "Romania", _ECA, _EUR, "ro", ("gov.ro",),
           0.762, 0.821, 86, 0.2738, _NORD, 65, 3427, 49, 15.8, 53, 64, 6.1, eu=True),
        _c("BE", "Belgium", _ECA, _EUR, "be", ("fgov.be", "belgium.be"),
           0.827, 0.937, 94, 0.198, _NORD, 994, 217598, 637, 50.0, 70, 67, 8.4, eu=True),
        _c("SE", "Sweden", _ECA, _EUR, "se", (),
           0.941, 0.947, 95, 0.183, _NORD, 335, 9110, 285, 56.0, 81, 77, 8.5, eu=True),
        _c("CZ", "Czechia", _ECA, _EUR, "cz", ("gov.cz",),
           0.809, 0.889, 85, 0.1719, _NORD, 49, 2153, 46, 27.0, 66, 71, 7.8, eu=True),
        _c("PT", "Portugal", _ECA, _EUR, "pt", ("gov.pt",),
           0.827, 0.866, 84, 0.165, _NORD, 295, 15809, 253, 24.5, 70, 65, 6.2, eu=True),
        _c("HU", "Hungary", _ECA, _EUR, "hu", (),
           0.783, 0.846, 90, 0.1584, _NORD, 109, 204042, 70, 18.5, 62, 64, 6.0, eu=True),
        _c("CH", "Switzerland", _ECA, _EUR, "ch", ("admin.ch",),
           0.875, 0.962, 96, 0.155, _NORD, 83, 3225, 25, 92.0, 83, 83, 9.0),
        _c("GR", "Greece", _ECA, _EUR, "gr", ("gov.gr",),
           0.846, 0.887, 83, 0.150, _NORD, 91, 6025, 88, 20.9, 57, 56, 7.3, eu=True),
        _c("RS", "Serbia", _ECA, _EUR, "rs", ("gov.rs",),
           0.824, 0.802, 84, 0.125, _NORD, 66, 3295, 67, 9.5, 55, 62, 7.0),
        _c("DK", "Denmark", _ECA, _EUR, "dk", (),
           0.972, 0.948, 98, 0.105, _NORD, 110, 2922, 110, 67.0, 85, 78, 9.3, eu=True),
        _c("NO", "Norway", _ECA, _EUR, "no", (),
           0.888, 0.961, 99, 0.099, _NORD, 162, 4382, 158, 106.0, 81, 76, 9.2),
        _c("BG", "Bulgaria", _ECA, _EUR, "bg", ("government.bg",),
           0.777, 0.795, 79, 0.0886, _NORD, 144, 5798, 75, 13.3, 49, 65, 6.1, eu=True),
        _c("GE", "Georgia", _ECA, _ASI, "ge", ("gov.ge",),
           0.750, 0.802, 79, 0.0669, _NORD, 73, 2226, 61, 6.6, 58, 68, 5.9),
        _c("MD", "Moldova", _ECA, _EUR, "md", ("gov.md",),
           0.725, 0.767, 60, 0.0566, _NORD, 50, 3464, 24, 5.7, 48, 58, 5.5),
        _c("BA", "Bosnia and Herzegovina", _ECA, _EUR, "ba", ("gov.ba",),
           0.626, 0.780, 79, 0.0522, _NORD, 59, 2929, 58, 7.3, 45, 60, 4.6),
        _c("AL", "Albania", _ECA, _EUR, "al", ("gov.al",),
           0.741, 0.796, 83, 0.0404, _NORD, 80, 5536, 79, 6.8, 39, 65, 5.5),
        _c("LV", "Latvia", _ECA, _EUR, "lv", ("gov.lv",),
           0.860, 0.863, 91, 0.031, _NORD, 291, 13263, 239, 21.8, 67, 72, 6.2, eu=True),
        _c("EE", "Estonia", _ECA, _EUR, "ee", (),
           0.939, 0.890, 91, 0.024, _NORD, 118, 9871, 119, 28.0, 64, 78, 7.4, eu=True),
        # --- East Asia and Pacific ------------------------------------------
        _c("CN", "China", _EAP, _ASI, "cn", ("gov.cn",),
           0.812, 0.768, 76, 18.6404, _HSS, 193, 6195, 190, 12.7, 63, 48, 6.1),
        _c("ID", "Indonesia", _EAP, _ASI, "id", ("go.id",),
           0.716, 0.705, 66, 3.9163, _NORD, 76, 3690, 79, 4.8, 44, 63, 6.2),
        _c("JP", "Japan", _EAP, _ASI, "jp", ("go.jp",),
           0.900, 0.925, 83, 2.1878, _NORD, 93, 3635, 75, 33.8, 75, 69, 8.8),
        _c("VN", "Vietnam", _EAP, _ASI, "vn", ("gov.vn",),
           0.679, 0.703, 79, 1.5661, _NORD, 56, 1642, 54, 4.2, 52, 61, 6.5),
        _c("TH", "Thailand", _EAP, _ASI, "th", ("go.th",),
           0.766, 0.800, 88, 1.1416, _NORD, 81, 3267, 82, 7.6, 49, 63, 7.1),
        _c("KR", "South Korea", _EAP, _ASI, "kr", ("go.kr",),
           0.953, 0.925, 97, 0.9184, _NORD, 0, 0, 0, 32.4, 83, 73, 8.3),
        _c("MY", "Malaysia", _EAP, _ASI, "my", ("gov.my",),
           0.774, 0.803, 97, 0.5715, _NORD, 261, 20206, 247, 11.9, 54, 67, 6.0),
        _c("AU", "Australia", _EAP, _OCE, "au", ("gov.au",),
           0.941, 0.951, 96, 0.4314, _NORD, 708, 6883, 440, 64.0, 84, 74, 9.3),
        _c("TW", "Taiwan", _EAP, _ASI, "tw", ("gov.tw",),
           None, None, None, 0.4175, _NORD, 58, 2996, 54, 32.7, 76, 80, 8.8),
        _c("HK", "Hong Kong", _EAP, _ASI, "hk", ("gov.hk",),
           None, 0.952, 96, 0.1234, _NORD, 108, 6857, 92, 49.8, 74, 83, 7.8),
        _c("SG", "Singapore", _EAP, _ASI, "sg", ("gov.sg",),
           0.913, 0.939, 96, 0.1005, _NORD, 87, 4368, 90, 82.8, 84, 83, 9.3),
        _c("NZ", "New Zealand", _EAP, _OCE, "nz", ("govt.nz",),
           0.943, 0.937, 96, 0.0841, _NORD, 251, 7358, 233, 48.0, 71, 78, 9.3),
        # --- South Asia ------------------------------------------------------
        _c("IN", "India", _SA, _ASI, "in", ("gov.in", "nic.in"),
           0.588, 0.633, 46, 15.376, _NORD, 207, 13612, 213, 2.4, 45, 52, 4.7),
        _c("BD", "Bangladesh", _SA, _ASI, "bd", ("gov.bd",),
           0.563, 0.661, 39, 2.3824, _SURF, 333, 15757, 329, 2.5, 39, 55, 4.4),
        _c("PK", "Pakistan", _SA, _ASI, "pk", ("gov.pk",),
           0.424, 0.544, 21, 2.1393, _SURF, 118, 3133, 108, 1.5, 34, 49, 2.6),
        # --- Middle East and North Africa ------------------------------------
        _c("EG", "Egypt", _MENA, _AFR, "eg", ("gov.eg",),
           0.590, 0.731, 72, 1.0096, _SURF, 69, 4683, 66, 3.7, 52, 49, 6.1),
        _c("DZ", "Algeria", _MENA, _AFR, "dz", ("gov.dz",),
           0.561, 0.745, 71, 0.698, _SURF, 202, 2231, 184, 4.3, 40, 44, 4.0),
        _c("MA", "Morocco", _MENA, _AFR, "ma", ("gouv.ma", "gov.ma"),
           0.592, 0.683, 88, 0.4719, _SURF, 144, 8440, 137, 3.7, 47, 59, 5.5),
        _c("AE", "United Arab Emirates", _MENA, _ASI, "ae", ("gov.ae",),
           0.901, 0.911, 100, 0.2246, _NORD, 49, 5277, 50, 53.0, 69, 71, 7.6),
        _c("IL", "Israel", _MENA, _ASI, "il", ("gov.il",),
           0.889, 0.919, 90, 0.1474, _NORD, 101, 2994, 98, 55.0, 62, 68, 7.6),
        # --- Sub-Saharan Africa ----------------------------------------------
        _c("NG", "Nigeria", _SSA, _AFR, "ng", ("gov.ng",),
           0.453, 0.535, 55, 2.846, _SURF, 189, 11332, 187, 2.2, 31, 53, 4.5),
        _c("ZA", "South Africa", _SSA, _AFR, "za", ("gov.za",),
           0.736, 0.713, 72, 0.6371, _NORD, 189, 11332, 187, 6.8, 51, 55, 5.1),
        # --- Latin America and the Caribbean ---------------------------------
        _c("BR", "Brazil", _LAC, _SAM, "br", ("gov.br",),
           0.791, 0.754, 81, 3.285, _NORD, 272, 15711, 212, 8.9, 57, 53, 6.6),
        _c("MX", "Mexico", _LAC, _NAM, "mx", ("gob.mx",),
           0.747, 0.758, 76, 2.036, _NORD, 317, 9418, 140, 11.5, 54, 63, 6.6),
        _c("AR", "Argentina", _LAC, _SAM, "ar", ("gob.ar", "gov.ar"),
           0.820, 0.842, 88, 0.775, _NORD, 201, 6238, 100, 13.6, 53, 50, 7.8),
        _c("CL", "Chile", _LAC, _SAM, "cl", ("gob.cl",),
           0.838, 0.855, 90, 0.347, _NORD, 448, 24571, 434, 15.4, 66, 71, 6.3),
        _c("BO", "Bolivia", _LAC, _SAM, "bo", ("gob.bo",),
           0.617, 0.692, 66, 0.164, _SURF, 194, 12842, 189, 3.6, 38, 43, 4.3),
        _c("PY", "Paraguay", _LAC, _SAM, "py", ("gov.py",),
           0.633, 0.717, 76, 0.1139, _SURF, 146, 6744, 133, 6.2, 35, 62, 6.4),
        _c("CR", "Costa Rica", _LAC, _NAM, "cr", ("go.cr",),
           0.766, 0.809, 83, 0.082, _NORD, 196, 12231, 176, 13.2, 54, 64, 6.1),
        _c("UY", "Uruguay", _LAC, _SAM, "uy", ("gub.uy",),
           0.839, 0.809, 90, 0.0602, _SURF, 67, 4322, 27, 20.8, 58, 70, 7.8),
    ]
}


def get_country(code: str) -> Country:
    """Return the :class:`Country` for an ISO alpha-2 ``code``.

    Raises :class:`KeyError` for countries outside the study sample.
    """
    return COUNTRIES[code.upper()]


def iter_countries() -> Iterator[Country]:
    """Iterate over the sample in a stable (insertion) order."""
    return iter(COUNTRIES.values())


def countries_in_region(region: Region) -> list[Country]:
    """All sample countries belonging to a World Bank ``region``."""
    return [c for c in COUNTRIES.values() if c.region is region]


def eu_members() -> list[Country]:
    """The EU member states within the sample (used for GDPR analysis)."""
    return [c for c in COUNTRIES.values() if c.eu_member]


__all__ = [
    "Country",
    "COUNTRIES",
    "WORLD_INTERNET_USERS_M",
    "get_country",
    "iter_countries",
    "countries_in_region",
    "eu_members",
]
