"""Reproduction of "Of Choices and Control: A Comparative Analysis of
Government Hosting" (IMC 2024).

Quickstart::

    from repro import SyntheticWorld, WorldConfig, Pipeline

    world = SyntheticWorld.generate(WorldConfig(seed=42, scale=0.02))
    dataset = Pipeline(world).run()
    print(dataset.summarize())

See :mod:`repro.analysis` for the Section 5-7 analyses and the
``benchmarks/`` directory for one regeneration target per paper table
and figure.
"""

import logging

from repro.categories import HostingCategory, CATEGORY_ORDER
from repro.datagen.config import WorldConfig
from repro.datagen.generator import SyntheticWorld, GroundTruth, HostTruth
from repro.core.pipeline import Pipeline
from repro.core.dataset import (
    UrlRecord,
    CountryDataset,
    DatasetSummary,
    GovernmentHostingDataset,
)
from repro.exec import ProcessExecutor, SerialExecutor, ThreadExecutor

__version__ = "1.0.0"

# Library logging: silent unless the application configures handlers
# (the CLI's -v/-q flags do; see repro.cli).
logging.getLogger("repro").addHandler(logging.NullHandler())

__all__ = [
    "HostingCategory",
    "CATEGORY_ORDER",
    "WorldConfig",
    "SyntheticWorld",
    "GroundTruth",
    "HostTruth",
    "Pipeline",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "UrlRecord",
    "CountryDataset",
    "DatasetSummary",
    "GovernmentHostingDataset",
    "__version__",
]
