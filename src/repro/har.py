"""HTTP Archive (HAR) records.

The study consolidates each page load into a HAR file (Section 3.2).
We keep only the fields the analysis consumes: the resource URL, its
hostname, and the transferred size in bytes (Figure 2 and friends
aggregate bytes as well as URL counts).
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Iterator, NamedTuple


class HarEntry(NamedTuple):
    """One fetched object within a page load.

    A ``NamedTuple`` rather than a dataclass: crawls create hundreds of
    thousands of entries per run and tuple construction is ~5x cheaper
    than frozen-dataclass ``__init__``.
    """

    url: str
    hostname: str
    size_bytes: int
    content_type: str = "application/octet-stream"


@dataclasses.dataclass
class HarArchive:
    """All HAR entries collected while crawling one country.

    Entries are de-duplicated by URL, as the paper counts *unique* URLs;
    the first observation of a URL wins.
    """

    country: str
    _entries: dict[str, HarEntry] = dataclasses.field(default_factory=dict)

    def add(self, entry: HarEntry) -> bool:
        """Record an entry; returns False if the URL was already present."""
        if entry.url in self._entries:
            return False
        self._entries[entry.url] = entry
        return True

    def extend(self, entries: Iterable[HarEntry]) -> int:
        """Add many entries; returns how many were new."""
        return sum(1 for entry in entries if self.add(entry))

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[HarEntry]:
        return iter(self._entries.values())

    def __contains__(self, url: str) -> bool:
        return url in self._entries

    def get(self, url: str) -> HarEntry:
        """The entry recorded for ``url``."""
        return self._entries[url]

    def hostnames(self) -> set[str]:
        """Unique hostnames across all entries."""
        return {entry.hostname for entry in self._entries.values()}

    def total_bytes(self) -> int:
        """Sum of transferred sizes over all unique URLs."""
        return sum(entry.size_bytes for entry in self._entries.values())


__all__ = ["HarEntry", "HarArchive"]
