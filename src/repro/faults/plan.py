"""Fault plans: what can fail, how often, and how recovery behaves.

A :class:`FaultPlan` is a frozen, picklable description of the failures
injected into the measurement plane — probe timeouts, VPN-exit
failures, lookup failures, congestion spikes — plus the retry policy
governing recovery.  Every individual decision ("does attempt ``k`` of
operation ``K`` fail?") is a pure function of the plan seed, the fault
domain and the operation key, derived with the same BLAKE2 scheme the
world generator uses.  Nothing depends on call order, thread
interleaving or process sharding, which is what keeps faulted runs
bit-identical across execution strategies.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Mapping

from repro.datagen.seeds import derive_seed

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.datagen.config import WorldConfig

#: Everything the injector knows how to break.
FAULT_DOMAINS = (
    "vpn",         # the in-country VPN exit refuses the connection
    "probe",       # an Atlas probe's ping train times out
    "congestion",  # a ping sample traverses a congested path (no retry)
    "dns",         # resolving a hostname from the vantage fails
    "whois",       # the WHOIS lookup for an address fails
    "ipinfo",      # the IPInfo query for an address fails
    "peeringdb",   # the PeeringDB record fetch for an AS fails
)

#: Fault domains that fail whole ping samples rather than operations;
#: they are never retried and count straight into ``degraded``.
UNRETRYABLE_DOMAINS = frozenset({"congestion"})

#: Named profiles: per-domain multipliers applied to the base rate.
FAULT_PROFILES: Mapping[str, Mapping[str, float]] = {
    # Everything degrades a little — the realistic default.
    "mixed": {
        "vpn": 1.0, "probe": 1.0, "congestion": 0.5, "dns": 1.0,
        "whois": 1.0, "ipinfo": 1.0, "peeringdb": 1.0,
    },
    # Only the active-probing substrate is unreliable (Atlas brownout).
    "probes": {"probe": 1.0, "congestion": 1.0},
    # Only the VPN exits flap (the "Not All Roads Lead to Rome" regime).
    "vpn": {"vpn": 1.0},
    # Only the lookup services fail (API quota exhaustion / outages).
    "lookups": {"dns": 1.0, "whois": 1.0, "ipinfo": 1.0, "peeringdb": 1.0},
    # Only resolution fails (the authoritative-DNS stress regime of
    # "Assessing Resilience in Authoritative DNS Infrastructure").
    "dns": {"dns": 1.0},
}

#: CLI names of the available profiles.
FAULT_PROFILE_NAMES = tuple(sorted(FAULT_PROFILES))


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """Deterministic description of injected measurement-plane faults."""

    #: Base per-attempt failure probability (0 disables injection).
    rate: float = 0.0
    #: Named profile scaling the base rate per fault domain.
    profile: str = "mixed"
    #: Seed of the fault decision streams, independent of the world seed.
    seed: int = 0
    #: Failed retryable operations are retried up to this many times.
    max_retries: int = 2
    #: Simulated exponential backoff: ``base * 2**attempt`` milliseconds.
    backoff_base_ms: float = 100.0
    #: Extra latency a congested ping sample suffers.
    congestion_ms: float = 400.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"fault rate must be a probability, got {self.rate}")
        if self.profile not in FAULT_PROFILES:
            raise ValueError(
                f"unknown fault profile {self.profile!r}; expected one of "
                f"{', '.join(FAULT_PROFILE_NAMES)}"
            )
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.backoff_base_ms < 0 or self.congestion_ms < 0:
            raise ValueError("backoff and congestion times must be non-negative")

    @classmethod
    def from_config(cls, config: "WorldConfig") -> "FaultPlan":
        """The plan a world's configuration asks for.

        The fault seed defaults to a stream derived from the master seed,
        so ``--fault-seed`` can vary failures while the world stays fixed.
        """
        seed = config.fault_seed
        if seed is None:
            seed = derive_seed(config.seed, "faults")
        return cls(rate=config.fault_rate, profile=config.fault_profile,
                   seed=seed)

    @property
    def enabled(self) -> bool:
        """Whether the plan injects anything at all."""
        return self.rate > 0.0

    def fingerprint_components(self) -> dict:
        """JSON-stable contribution to the scan-cache key.

        Covers every field of the plan — the plan fully determines which
        faults a scan suffers, so cache entries keyed on it stay valid
        exactly as long as the injected failures would be identical.
        Because :meth:`from_config` resolves a ``None`` ``fault_seed``
        before the plan is built, the *resolved* seed is fingerprinted:
        a config spelling the derived seed explicitly hits the same
        entries as one leaving it to default.
        """
        return dataclasses.asdict(self)

    def rate_for(self, domain: str) -> float:
        """Effective per-attempt failure probability of one domain."""
        return self.rate * FAULT_PROFILES[self.profile].get(domain, 0.0)

    def attempt_fails(self, domain: str, key: tuple, attempt: int) -> bool:
        """Pure decision: does attempt ``attempt`` of operation ``key`` fail?

        Independent of call order and of every other decision, so cached
        or re-executed operations (thread races, per-process rebuilds)
        always observe the same outcome.
        """
        rate = self.rate_for(domain)
        if rate <= 0.0:
            return False
        draw = derive_seed(self.seed, "fault", domain, *key, attempt)
        return draw / 2.0 ** 64 < rate


__all__ = [
    "FAULT_DOMAINS",
    "FAULT_PROFILES",
    "FAULT_PROFILE_NAMES",
    "UNRETRYABLE_DOMAINS",
    "FaultPlan",
]
