"""Fault accounting: per-country, per-domain tallies.

Every injected fault, retry and degradation in a faulted pipeline run is
counted here.  Like :class:`~repro.core.classification.ProviderFootprint`
and :class:`~repro.core.geolocation.ValidationStats`, the report forms a
commutative monoid under :meth:`FaultReport.merge` (identity: the empty
report), so per-shard reports from parallel executions can be reduced in
any grouping without changing the result.

The bookkeeping invariant, per tally::

    injected == retried + degraded

holds because a recovered episode retried once per injected fault, while
a degraded episode exhausted its retries with one final unretried
failure (non-retryable domains count every fault as degraded directly).
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, Mapping


@dataclasses.dataclass
class DomainTally:
    """Counts for one fault domain (probe timeouts, VPN exits, ...)."""

    #: Individual faults injected (failed attempts).
    injected: int = 0
    #: Retry attempts issued after a failed attempt.
    retried: int = 0
    #: Episodes that succeeded on a retry.
    recovered: int = 0
    #: Episodes (or unretryable faults) that exhausted recovery and fell
    #: back to a degraded path (unresolved address, fallback vantage, ...).
    degraded: int = 0
    #: Simulated backoff time spent on retries (no wall-clock sleeps).
    backoff_ms: float = 0.0

    def merge(self, other: "DomainTally") -> "DomainTally":
        """Component-wise sum of two disjoint tallies."""
        return DomainTally(
            injected=self.injected + other.injected,
            retried=self.retried + other.retried,
            recovered=self.recovered + other.recovered,
            degraded=self.degraded + other.degraded,
            backoff_ms=self.backoff_ms + other.backoff_ms,
        )

    def __add__(self, other: "DomainTally") -> "DomainTally":
        if not isinstance(other, DomainTally):
            return NotImplemented
        return self.merge(other)

    @property
    def consistent(self) -> bool:
        """The accounting invariant every tally must satisfy."""
        return (
            min(self.injected, self.retried, self.recovered,
                self.degraded) >= 0
            and self.injected == self.retried + self.degraded
            and self.backoff_ms >= 0.0
        )


@dataclasses.dataclass
class FaultReport:
    """Fault tallies per country and fault domain.

    ``FaultReport()`` is the merge identity; a rate-0 (or fault-free)
    run produces exactly that.
    """

    countries: dict[str, dict[str, DomainTally]] = dataclasses.field(
        default_factory=dict
    )

    def __bool__(self) -> bool:
        return bool(self.countries)

    def tally(self, country: str, domain: str) -> DomainTally:
        """The (auto-created) tally for one country and fault domain."""
        return self.countries.setdefault(country, {}).setdefault(
            domain, DomainTally()
        )

    def merge(self, other: "FaultReport") -> "FaultReport":
        """Component-wise sum; commutative and associative."""
        merged = FaultReport()
        for report in (self, other):
            for country, domains in report.countries.items():
                for domain, tally in domains.items():
                    target = merged.countries.setdefault(country, {})
                    existing = target.get(domain)
                    target[domain] = (
                        tally if existing is None else existing.merge(tally)
                    )
        return merged

    def __add__(self, other: "FaultReport") -> "FaultReport":
        if not isinstance(other, FaultReport):
            return NotImplemented
        return self.merge(other)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FaultReport):
            return NotImplemented
        return self._canonical() == other._canonical()

    def _canonical(self) -> dict:
        """Comparable form: empty tallies dropped, keys sorted."""
        return {
            country: {
                domain: dataclasses.astuple(tally)
                for domain, tally in sorted(domains.items())
                if tally != DomainTally()
            }
            for country, domains in sorted(self.countries.items())
            if any(tally != DomainTally() for tally in domains.values())
        }

    def iter_tallies(self) -> Iterator[tuple[str, str, DomainTally]]:
        """(country, domain, tally) triples in canonical order."""
        for country, domains in sorted(self.countries.items()):
            for domain, tally in sorted(domains.items()):
                yield country, domain, tally

    def total(self) -> DomainTally:
        """All tallies collapsed into one."""
        collapsed = DomainTally()
        for _, _, tally in self.iter_tallies():
            collapsed = collapsed.merge(tally)
        return collapsed

    def domain_totals(self) -> dict[str, DomainTally]:
        """Tallies collapsed over countries, per fault domain."""
        totals: dict[str, DomainTally] = {}
        for _, domain, tally in self.iter_tallies():
            existing = totals.get(domain)
            totals[domain] = tally if existing is None else existing.merge(tally)
        return totals

    @property
    def consistent(self) -> bool:
        """Whether every tally satisfies the accounting invariant."""
        return all(tally.consistent for _, _, tally in self.iter_tallies())

    def to_dict(self) -> dict:
        """JSON-serializable form (inverse of :meth:`from_dict`)."""
        return {
            country: {
                domain: dataclasses.asdict(tally)
                for domain, tally in sorted(domains.items())
            }
            for country, domains in sorted(self.countries.items())
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "FaultReport":
        """Rebuild a report from :meth:`to_dict` output."""
        report = cls()
        for country, domains in data.items():
            report.countries[country] = {
                domain: DomainTally(**fields)
                for domain, fields in domains.items()
            }
        return report


def merge_fault_reports(reports) -> FaultReport:
    """Reduce any iterable of reports with the monoid merge."""
    merged = FaultReport()
    for report in reports:
        merged = merged.merge(report)
    return merged


__all__ = ["DomainTally", "FaultReport", "merge_fault_reports"]
