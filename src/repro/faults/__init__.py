"""Deterministic fault injection for the measurement plane.

The paper's pipeline runs against an unreliable substrate: VPN exits
drop, RIPE Atlas probes time out, IPInfo/WHOIS/PeeringDB lookups fail.
This package models that unreliability first-class:

* :class:`FaultPlan` — frozen, seed-derived description of what fails
  and how often (``--fault-rate`` / ``--fault-profile`` /
  ``--fault-seed``), with a retry-with-backoff recovery policy on a
  simulated clock;
* :class:`FaultSession` — per-country injector threaded through the
  measurement clients during a scan;
* :class:`FaultReport` — commutative-monoid accounting of every
  injected fault, retry and degradation, merged deterministically on
  the pipeline driver.

Unrecoverable failures degrade into the methodology's existing
fallbacks (``ValidationMethod.UNRESOLVED``, unresolved hostnames,
fallback vantages) rather than crashing, so a faulted run quantifies
how the Table 2/Table 4 numbers shift under measurement loss.  A run
at rate 0 is byte-identical to an unfaulted run.
"""

from repro.faults.plan import (
    FAULT_DOMAINS,
    FAULT_PROFILE_NAMES,
    FAULT_PROFILES,
    FaultPlan,
)
from repro.faults.report import DomainTally, FaultReport, merge_fault_reports
from repro.faults.session import Episode, FaultSession, SimClock

__all__ = [
    "FAULT_DOMAINS",
    "FAULT_PROFILES",
    "FAULT_PROFILE_NAMES",
    "FaultPlan",
    "DomainTally",
    "FaultReport",
    "merge_fault_reports",
    "Episode",
    "FaultSession",
    "SimClock",
]
