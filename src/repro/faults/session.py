"""Per-country fault-injection sessions.

One :class:`FaultSession` accompanies one country through phase 1 of the
pipeline.  It evaluates the plan's pure fault decisions, simulates the
retry-with-backoff policy on a virtual clock (no wall-time sleeps) and
accounts every injected fault, retry and degradation into a per-country
:class:`~repro.faults.report.FaultReport`.

Sessions are intentionally *not* shared between countries: each scan
mutates only its own session, so thread- and process-parallel shards
never contend, and the per-country report is a pure function of
``(plan, country, the country's measurement workload)`` — the property
that makes faulted parallel runs bit-identical to serial ones.

Operation keys deliberately include the scanning country: each national
crawl performs its own lookups against the external services, so two
countries observing the same address can fail independently — which is
also what keeps per-country attribution executor-independent.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Any

from repro.faults.plan import FaultPlan, UNRETRYABLE_DOMAINS
from repro.faults.report import FaultReport

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.measure.vpn import VantagePoint, VpnCatalog


class SimClock:
    """Virtual milliseconds elapsed on retries; never sleeps."""

    def __init__(self) -> None:
        self.now_ms = 0.0

    def advance(self, ms: float) -> float:
        """Advance the clock and return the new time."""
        self.now_ms += ms
        return self.now_ms


@dataclasses.dataclass(frozen=True)
class Episode:
    """Outcome of one fault-eligible operation."""

    #: Failed attempts (0 = the operation was never faulted).
    injected: int
    #: Retries issued (attempts after the first).
    retried: int
    #: A retry succeeded after at least one failure.
    recovered: bool
    #: Every attempt failed; the caller must degrade gracefully.
    degraded: bool
    #: Simulated backoff spent between the attempts.
    backoff_ms: float

    @property
    def faulted(self) -> bool:
        return self.injected > 0


_CLEAN = Episode(injected=0, retried=0, recovered=False, degraded=False,
                 backoff_ms=0.0)


class FaultSession:
    """Fault decisions, retry simulation and accounting for one country."""

    def __init__(self, plan: FaultPlan, country: str) -> None:
        if not plan.enabled:
            raise ValueError("FaultSession requires an enabled FaultPlan")
        self.plan = plan
        self.country = country.upper()
        self.clock = SimClock()
        self.report = FaultReport()
        #: Operation key -> Episode; an operation repeated within one
        #: country (e.g. the WHOIS lookup of an address shared by two
        #: hostnames) fails once and is counted once.
        self._episodes: dict[tuple, Episode] = {}
        #: Scratch memos for the faulted measurement paths, which bypass
        #: the cross-country caches (fault outcomes are country-scoped).
        self.ping_memo: dict[tuple, Any] = {}
        self.verdict_memo: dict[int, Any] = {}
        self.ownership_memo: dict[int, Any] = {}

    # ------------------------------------------------------------ episodes

    def episode(self, domain: str, *key: object) -> Episode:
        """Run (or recall) the fault episode of one operation.

        Retryable domains attempt up to ``1 + max_retries`` times with
        exponential backoff on the virtual clock; unretryable domains
        fail outright.  The episode is memoized per operation key and
        tallied into the per-country report exactly once.
        """
        memo_key = (domain, *key)
        cached = self._episodes.get(memo_key)
        if cached is not None:
            return cached
        episode = self._run_episode(domain, (self.country, *key))
        self._episodes[memo_key] = episode
        if episode.faulted:
            tally = self.report.tally(self.country, domain)
            tally.injected += episode.injected
            tally.retried += episode.retried
            tally.recovered += 1 if episode.recovered else 0
            tally.degraded += 1 if episode.degraded else 0
            tally.backoff_ms += episode.backoff_ms
        return episode

    def _run_episode(self, domain: str, key: tuple) -> Episode:
        plan = self.plan
        retries = 0 if domain in UNRETRYABLE_DOMAINS else plan.max_retries
        injected = 0
        backoff_ms = 0.0
        for attempt in range(retries + 1):
            if not plan.attempt_fails(domain, key, attempt):
                if injected == 0:
                    return _CLEAN
                return Episode(injected=injected, retried=attempt,
                               recovered=True, degraded=False,
                               backoff_ms=backoff_ms)
            injected += 1
            if attempt < retries:
                delay = plan.backoff_base_ms * 2.0 ** attempt
                self.clock.advance(delay)
                backoff_ms += delay
        return Episode(injected=injected, retried=retries, recovered=False,
                       degraded=True, backoff_ms=backoff_ms)

    @property
    def episodes_evaluated(self) -> int:
        """Distinct fault-eligible operations this session has decided.

        A pure function of ``(plan, country, workload)`` like the report
        itself, so the observability layer may count it per shard and
        still merge deterministically.  Reading it never advances the
        simulated clock or any fault decision stream.
        """
        return len(self._episodes)

    def operation_fails(self, domain: str, *key: object) -> bool:
        """True when an operation exhausts every retry and must degrade."""
        return self.episode(domain, *key).degraded

    def congestion_ms(self, *key: object) -> float:
        """Extra latency for one ping sample (0.0 when uncongested)."""
        if self.episode("congestion", *key).degraded:
            return self.plan.congestion_ms
        return 0.0

    # ------------------------------------------------------------- vantage

    def select_vantage(
        self, catalog: "VpnCatalog", code: str, rank: int = 0
    ) -> "VantagePoint":
        """Connect to the country's VPN exit, re-selecting on failure.

        A recovered episode keeps the selected exit (a reconnect
        succeeded); a degraded one falls back to the catalog's next
        alternate exit in another city of the same country — the
        measurement continues from a different vantage instead of
        crashing.  ``rank`` picks which exit the scenario connects to in
        the first place (0 = the primary capital exit).
        """
        if self.operation_fails("vpn", code.upper()):
            return catalog.fallback_vantage(code, rank)
        return catalog.vantage_at(code, rank)


__all__ = ["SimClock", "Episode", "FaultSession"]
