"""Command-line interface.

``repro-gov`` drives the whole reproduction from a shell::

    repro-gov run --scale 0.05 --out dataset.jsonl   # generate + measure + save
    repro-gov run --scale 0.05 --cache-dir .scan     # warm-start on re-runs
    repro-gov run --scale 0.05 --out d.jsonl --manifest --trace-out trace.json
    repro-gov run --scale 0.05 --store-dir world.store  # columnar store
    repro-gov evolve --snapshots 4 --cache-dir .scan  # longitudinal series
    repro-gov sweep --demo --cache-dir .scan         # deduplicated scenarios
    repro-gov cache stats --cache-dir .scan          # what the cache holds
    repro-gov cache prune --cache-dir .scan --older-than 7d --max-bytes 500M
    repro-gov report dataset.jsonl                   # analyses over a saved run
    repro-gov report world.store --section full      # same, zero-copy store
    repro-gov convert dataset.jsonl world.store      # jsonl <-> store
    repro-gov serve --store-dir world.store --port 8321  # HTTP query service
    repro-gov serve --store-dir world.store --trace-dir traces  # + request traces
    repro-gov inspect --hostname www.gub.uy          # one hostname end to end
    repro-gov run --scale 0.05 --registry .runs      # record into run registry
    repro-gov obs runs --registry .runs              # list registered runs
    repro-gov obs diff 0 1 --registry .runs          # what changed between runs
    repro-gov obs bench --check BENCH_*.json         # bench-regression sentinel

Every command is deterministic given ``--seed``; the observability
flags (``--trace-out``/``--metrics-out``/``--manifest``/``--progress``/
``--registry``) never change what a run computes, only what it reports.
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
from typing import Optional, Sequence

from repro import Pipeline, SyntheticWorld, WorldConfig
from repro.exec import EXECUTOR_NAMES, make_executor
from repro.faults import FAULT_PROFILE_NAMES
from repro.reporting.sections import SECTION_NAMES
from repro.reporting.tables import render_table


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-gov",
        description="Reproduction of 'Of Choices and Control' (IMC 2024)",
    )
    verbosity = parser.add_mutually_exclusive_group()
    verbosity.add_argument("-v", "--verbose", action="count", default=0,
                           help="log pipeline progress to stderr "
                                "(-v: info, -vv: debug)")
    verbosity.add_argument("-q", "--quiet", action="store_true",
                           help="suppress warnings (errors only)")
    subparsers = parser.add_subparsers(dest="command", required=True)

    run = subparsers.add_parser(
        "run", help="generate a synthetic world, measure it, save the dataset"
    )
    run.add_argument("--seed", type=int, default=42)
    run.add_argument("--scale", type=float, default=0.05,
                     help="fraction of the paper's dataset size")
    run.add_argument("--countries", nargs="*", metavar="CC",
                     help="restrict to these country codes")
    run.add_argument("--out", metavar="PATH",
                     help="write the dataset as JSON lines")
    run.add_argument("--csv", metavar="PATH",
                     help="also export a flat CSV")
    run.add_argument("--store-dir", metavar="PATH",
                     help="write the dataset as a sharded columnar store "
                          "(mmap-backed analyses; see `repro-gov convert`)")
    run.add_argument("--executor", choices=EXECUTOR_NAMES, default=None,
                     help="execution strategy for the per-country scans "
                          "(default: serial; --workers alone implies "
                          "processes, the scan phase is GIL-bound)")
    run.add_argument("--workers", type=int, default=None, metavar="N",
                     help="worker count for parallel executors "
                          "(default: the machine's CPU count)")
    run.add_argument("--fault-rate", type=float, default=0.0, metavar="R",
                     help="probability in [0, 1] that a measurement "
                          "operation fails and must be retried or degraded "
                          "(default: 0, no fault injection)")
    run.add_argument("--fault-profile", choices=FAULT_PROFILE_NAMES,
                     default="mixed",
                     help="which fault domains the rate applies to "
                          "(default: mixed)")
    run.add_argument("--fault-seed", type=int, default=None, metavar="SEED",
                     help="seed for fault decisions (default: derived "
                          "from --seed, so faulted runs stay reproducible)")
    run.add_argument("--cache-dir", metavar="PATH", default=None,
                     help="persistent scan cache: per-country phase-1 "
                          "results are stored here and re-served on "
                          "matching re-runs (default: no caching)")
    run.add_argument("--no-cache", action="store_true",
                     help="ignore --cache-dir for this run (neither read "
                          "nor write the cache)")
    run.add_argument("--cache-clear", action="store_true",
                     help="empty the cache under --cache-dir before "
                          "running")
    run.add_argument("--trace-out", metavar="PATH", default=None,
                     help="write the run's span tree as JSON; a .chrome.json "
                          "sibling in Chrome trace_event format is written "
                          "too (load it in about://tracing or Perfetto)")
    run.add_argument("--metrics-out", metavar="PATH", default=None,
                     help="write the run's merged metrics registry as JSON")
    run.add_argument("--manifest", action="store_true",
                     help="write a provenance manifest next to --out "
                          "(<out>.manifest.json; requires --out)")
    run.add_argument("--progress", action="store_true",
                     help="print a per-country heartbeat to stderr as "
                          "scans complete")
    run.add_argument("--registry", metavar="DIR", default=None,
                     help="append this run's provenance manifest to the "
                          "cross-run registry journal under DIR (query it "
                          "with `repro-gov obs runs`/`obs diff`)")

    evolve = subparsers.add_parser(
        "evolve", help="run a longitudinal snapshot series: evolve the "
                       "world per snapshot and re-scan only what changed"
    )
    evolve.add_argument("--seed", type=int, default=42)
    evolve.add_argument("--scale", type=float, default=0.05,
                        help="fraction of the paper's dataset size")
    evolve.add_argument("--countries", nargs="*", metavar="CC",
                        help="restrict to these country codes")
    evolve.add_argument("--snapshots", type=int, default=3, metavar="N",
                        help="series length including the base snapshot "
                             "(default: 3)")
    evolve.add_argument("--evolve-seed", type=int, default=1, metavar="SEED",
                        help="seed of the mutation model (default: 1)")
    evolve.add_argument("--cache-dir", metavar="PATH", default=None,
                        help="shared scan cache; unchanged countries of "
                             "each snapshot are served from it instead of "
                             "re-scanned (default: no caching, every "
                             "snapshot runs cold)")
    evolve.add_argument("--out-dir", metavar="PATH", default=None,
                        help="write each snapshot as "
                             "<out-dir>/snapshot-N.jsonl")
    evolve.add_argument("--manifest", action="store_true",
                        help="write a provenance manifest per snapshot, "
                             "chained to its parent (requires --out-dir)")
    evolve.add_argument("--executor", choices=EXECUTOR_NAMES,
                        default="serial",
                        help="execution strategy for the per-country "
                             "scans (default: serial)")
    evolve.add_argument("--workers", type=int, default=None, metavar="N",
                        help="worker count for parallel executors")
    evolve.add_argument("--registry", metavar="DIR", default=None,
                        help="append every snapshot's manifest to the "
                             "cross-run registry journal under DIR")

    sweep = subparsers.add_parser(
        "sweep", help="run a scenario matrix as one deduplicated scan "
                      "wave and compare every scenario to the baseline"
    )
    sweep.add_argument("--seed", type=int, default=42)
    sweep.add_argument("--scale", type=float, default=0.05,
                       help="fraction of the paper's dataset size")
    sweep.add_argument("--countries", nargs="*", metavar="CC",
                       help="restrict to these country codes")
    matrix_source = sweep.add_mutually_exclusive_group(required=True)
    matrix_source.add_argument("--matrix", metavar="PATH",
                               help="JSON scenario matrix (schema: see "
                                    "API.md, `repro.scenarios`)")
    matrix_source.add_argument("--demo", action="store_true",
                               help="use a built-in matrix exercising all "
                                    "four axes (vantage, dns faults, "
                                    "provider outage, evolution)")
    sweep.add_argument("--cache-dir", metavar="PATH", default=None,
                       help="persistent scan cache shared across the "
                            "whole sweep (and with `repro-gov run`)")
    sweep.add_argument("--executor", choices=EXECUTOR_NAMES,
                       default="serial",
                       help="execution strategy for the deduplicated "
                            "scan wave (default: serial)")
    sweep.add_argument("--workers", type=int, default=None, metavar="N",
                       help="worker count for parallel executors")
    sweep.add_argument("--out-dir", metavar="PATH", default=None,
                       help="write each scenario's dataset as "
                            "<out-dir>/<scenario>.jsonl")
    sweep.add_argument("--json", dest="json_out", metavar="PATH",
                       default=None,
                       help="write the accounting and per-scenario "
                            "divergences as JSON")
    sweep.add_argument("--registry", metavar="DIR", default=None,
                       help="append one manifest per distinct swept "
                            "config to the cross-run registry under DIR")

    cache = subparsers.add_parser(
        "cache", help="inspect or prune a persistent scan cache"
    )
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    cache_stats = cache_sub.add_parser(
        "stats", help="entry/byte totals, per-country counts, age bounds"
    )
    cache_stats.add_argument("--cache-dir", required=True, metavar="PATH")
    cache_stats.add_argument("--json", dest="json_out", action="store_true",
                             help="print the stats as JSON instead of a "
                                  "table")
    cache_prune = cache_sub.add_parser(
        "prune", help="LRU-by-mtime eviction: age out entries and/or "
                      "shrink the cache to a byte budget"
    )
    cache_prune.add_argument("--cache-dir", required=True, metavar="PATH")
    cache_prune.add_argument("--max-bytes", metavar="SIZE", default=None,
                             help="keep at most this many bytes, evicting "
                                  "oldest-first (suffixes K/M/G, e.g. "
                                  "500M)")
    cache_prune.add_argument("--older-than", metavar="AGE", default=None,
                             help="drop entries older than this "
                                  "(suffixes s/m/h/d, e.g. 7d)")
    cache_prune.add_argument("--dry-run", action="store_true",
                             help="report what would be removed without "
                                  "deleting anything")

    report = subparsers.add_parser(
        "report", help="print analyses over a saved dataset "
                       "(a jsonl file or a columnar store directory)"
    )
    report.add_argument("dataset", metavar="PATH")
    report.add_argument("--section", choices=SECTION_NAMES, default="summary")

    convert = subparsers.add_parser(
        "convert", help="convert between the jsonl export and the "
                        "columnar store (direction inferred from SRC)"
    )
    convert.add_argument("src", metavar="SRC",
                         help="a jsonl dataset file or a store directory")
    convert.add_argument("dst", metavar="DST",
                         help="the store directory (from jsonl) or jsonl "
                              "file (from a store) to write")
    convert.add_argument("--overwrite", action="store_true",
                         help="replace DST if it already exists")
    convert.add_argument("--verify", action="store_true",
                         help="re-hash every column of the store side "
                              "against its manifest digests")

    serve = subparsers.add_parser(
        "serve", help="run the HTTP query service over a saved dataset"
    )
    dataset_source = serve.add_mutually_exclusive_group(required=True)
    dataset_source.add_argument("--dataset", metavar="PATH",
                                help="a jsonl dataset file to serve")
    dataset_source.add_argument("--store-dir", metavar="PATH",
                                help="a columnar store directory to serve "
                                     "(zero-copy, preferred at scale)")
    serve.add_argument("--history", action="append", default=[],
                       metavar="PATH",
                       help="an earlier snapshot of the same series "
                            "(repeatable, oldest first); enables real "
                            "multi-snapshot curves on /v1/trends")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8321,
                       help="bind port; 0 picks a free one (default: 8321)")
    serve.add_argument("--workers", type=int, default=8, metavar="N",
                       help="max concurrent request threads (default: 8)")
    serve.add_argument("--trace-dir", metavar="DIR", default=None,
                       help="trace every request into a bounded on-disk "
                            "ring under DIR (request-NNNN.json slot files "
                            "plus slow-queries.jsonl); responses stay "
                            "byte-identical to untraced serving")
    serve.add_argument("--trace-ring", type=int, default=128, metavar="N",
                       help="slot files in the request-trace ring "
                            "(default: 128; requires --trace-dir)")
    serve.add_argument("--slow-ms", type=float, default=250.0, metavar="MS",
                       help="append requests at or above this latency to "
                            "slow-queries.jsonl (default: 250)")

    obs = subparsers.add_parser(
        "obs", help="cross-run observability: query the run registry, "
                    "diff runs, gate benchmark results"
    )
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    obs_runs = obs_sub.add_parser(
        "runs", help="list every run recorded in a registry journal"
    )
    obs_runs.add_argument("--registry", required=True, metavar="DIR")
    obs_runs.add_argument("--json", dest="json_out", action="store_true",
                          help="print the runs as JSON instead of a table")
    obs_diff = obs_sub.add_parser(
        "diff", help="structured diff of two registered runs "
                     "(config, countries, dataset shape, timings, "
                     "cache, versions)"
    )
    obs_diff.add_argument("a", metavar="RUN_A",
                          help="sequence number, run id, or id prefix")
    obs_diff.add_argument("b", metavar="RUN_B",
                          help="sequence number, run id, or id prefix")
    obs_diff.add_argument("--registry", required=True, metavar="DIR")
    obs_diff.add_argument("--json", dest="json_out", action="store_true",
                          help="print the diff as JSON instead of tables")
    obs_bench = obs_sub.add_parser(
        "bench", help="evaluate the declarative regression gates over "
                      "BENCH_<kind>.json documents"
    )
    obs_bench.add_argument("benches", nargs="+", metavar="BENCH_JSON",
                           help="one or more BENCH_<kind>.json files")
    obs_bench.add_argument("--check", action="store_true",
                           help="exit non-zero if any gate fails "
                                "(naming the culprit metric)")
    obs_bench.add_argument("--tolerance", type=float, default=0.0,
                           metavar="T",
                           help="relax numeric min/max thresholds by this "
                                "fraction (default: 0; exactness gates "
                                "are never relaxed)")
    obs_bench.add_argument("--json", dest="json_out", action="store_true",
                           help="print gate results as JSON")
    obs_bench.add_argument("--registry", metavar="DIR", default=None,
                           help="also compare each fingerprint's latest "
                                "registered run against its own history "
                                "(wall time, cache hit rate)")

    inspect = subparsers.add_parser(
        "inspect", help="trace one hostname through the pipeline"
    )
    inspect.add_argument("--hostname", required=True)
    inspect.add_argument("--seed", type=int, default=42)
    inspect.add_argument("--scale", type=float, default=0.04)
    return parser


def _progress_printer(country: str, seconds: float, completed: int,
                      expected: Optional[int]) -> None:
    """Per-country heartbeat for ``run --progress`` (stderr, flushed)."""
    total = f"/{expected}" if expected is not None else ""
    print(f"[{completed}{total}] scanned {country} in {seconds:.2f}s",
          file=sys.stderr, flush=True)


def _write_json(path: str, payload: dict) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=False)
        handle.write("\n")


def _cmd_run(args: argparse.Namespace) -> int:
    config = WorldConfig(
        seed=args.seed, scale=args.scale,
        countries=args.countries or None,
        fault_rate=args.fault_rate,
        fault_profile=args.fault_profile,
        fault_seed=args.fault_seed,
    )
    if args.manifest and not args.out:
        print("error: --manifest requires --out", file=sys.stderr)
        return 2
    world = SyntheticWorld.generate(config)
    executor_name = args.executor
    if executor_name is None:
        executor_name = "processes" if args.workers else "serial"
    cache = None
    if args.cache_clear and not args.cache_dir:
        print("error: --cache-clear requires --cache-dir", file=sys.stderr)
        return 2
    if args.cache_dir:
        from repro.cache import ScanCache

        cache = ScanCache(args.cache_dir)
        if args.cache_clear:
            removed = cache.clear()
            print(f"cache: cleared {removed} entries from {args.cache_dir}")
        if args.no_cache:
            cache = None
    obs = None
    observed = (args.trace_out or args.metrics_out or args.manifest
                or args.progress or args.registry)
    if observed:
        from repro.obs import Observability

        obs = Observability(
            progress=_progress_printer if args.progress else None
        )
    executor = make_executor(executor_name, workers=args.workers)
    pipeline = Pipeline(world, obs=obs)
    try:
        dataset = pipeline.run(executor=executor, cache=cache)
    finally:
        executor.close()
    summary = dataset.summarize()
    print(f"measured {summary.total_unique_urls:,} URLs over "
          f"{summary.unique_hostnames:,} hostnames "
          f"({summary.ases} ASes, {summary.unique_addresses} addresses)")
    if obs is not None:
        from repro.reporting.obs import render_run_summary

        print(render_run_summary(
            obs, cache_line=cache.stats.summary() if cache else None
        ))
    elif cache is not None:
        print(f"cache: {cache.stats.summary()}")
    if dataset.faults.countries:
        from repro.reporting.faults import render_fault_report

        print(render_fault_report(dataset.faults))
    if args.out:
        from repro.io import save_dataset

        written = save_dataset(dataset, args.out)
        print(f"wrote {written:,} records to {args.out}")
    if args.csv:
        from repro.io import export_csv

        written = export_csv(dataset, args.csv)
        print(f"wrote {written:,} rows to {args.csv}")
    if args.store_dir:
        from repro.store import write_store

        result = write_store(dataset, args.store_dir, overwrite=True)
        print(f"wrote {result.record_count:,} records over "
              f"{result.shard_count} shards to {args.store_dir}")
    if obs is not None:
        if args.trace_out:
            _write_json(args.trace_out, obs.tracer.to_dict())
            chrome_path = _chrome_trace_path(args.trace_out)
            _write_json(chrome_path, obs.tracer.to_chrome())
            print(f"wrote trace to {args.trace_out} (+ {chrome_path})")
        if args.metrics_out:
            _write_json(args.metrics_out, obs.metrics.to_dict())
            print(f"wrote metrics to {args.metrics_out}")
        if args.manifest or args.registry:
            from repro.obs import RunManifest, manifest_path_for

            manifest = RunManifest.collect(
                pipeline, dataset, executor=executor, cache=cache, obs=obs
            )
            if args.manifest:
                path = manifest.write(manifest_path_for(args.out))
                print(f"wrote manifest to {path}")
            if args.registry:
                from repro.obs import RunRegistry

                run, created = RunRegistry(args.registry).record(manifest)
                verb = "recorded" if created else "already recorded as"
                print(f"registry: {verb} run #{run.seq} {run.id[:12]} "
                      f"in {args.registry}")
    return 0


#: Multipliers for the ``cache prune --older-than`` suffixes.
_DURATION_UNITS = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0}

#: Multipliers for the ``cache prune --max-bytes`` suffixes (binary).
_SIZE_UNITS = {"k": 1024, "m": 1024 ** 2, "g": 1024 ** 3}


def _parse_duration(text: str) -> float:
    """``"90"``/``"90s"``/``"15m"``/``"6h"``/``"7d"`` -> seconds."""
    text = text.strip().lower()
    multiplier = 1.0
    if text and text[-1] in _DURATION_UNITS:
        multiplier = _DURATION_UNITS[text[-1]]
        text = text[:-1]
    try:
        value = float(text)
    except ValueError:
        raise ValueError(
            f"invalid duration {text!r} (expected a number with an "
            f"optional s/m/h/d suffix, e.g. 7d)"
        ) from None
    if value < 0:
        raise ValueError("durations must be non-negative")
    return value * multiplier


def _parse_size(text: str) -> int:
    """``"1048576"``/``"512K"``/``"500M"``/``"2G"`` -> bytes."""
    text = text.strip().lower()
    multiplier = 1
    if text and text[-1] in _SIZE_UNITS:
        multiplier = _SIZE_UNITS[text[-1]]
        text = text[:-1]
    try:
        value = float(text)
    except ValueError:
        raise ValueError(
            f"invalid size {text!r} (expected a number with an optional "
            f"K/M/G suffix, e.g. 500M)"
        ) from None
    if value < 0:
        raise ValueError("sizes must be non-negative")
    return int(value * multiplier)


def _demo_matrix(config: WorldConfig):
    """The built-in ``sweep --demo`` matrix: one scenario per axis."""
    from repro.scenarios import ScenarioMatrix

    matrix = ScenarioMatrix(config)
    matrix.add_vantage("alt-vantage", countries="all", rank=1)
    matrix.add_faults("dns-stress", rate=0.3, profile="dns")
    matrix.add_outage("cloudflare-outage", provider="cloudflare")
    matrix.add_evolution("evolved-1", steps=1)
    return matrix


def _cmd_sweep(args: argparse.Namespace) -> int:
    import pathlib

    from repro.reporting.scenarios import render_sweep_report
    from repro.scenarios import (
        MatrixError,
        ScenarioMatrix,
        SweepRunner,
        compare_sweep,
    )

    config = WorldConfig(
        seed=args.seed, scale=args.scale,
        countries=args.countries or None,
    )
    try:
        if args.matrix:
            with open(args.matrix, "r", encoding="utf-8") as handle:
                matrix = ScenarioMatrix.from_json(handle.read(), base=config)
        else:
            matrix = _demo_matrix(config)
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except MatrixError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    cache = None
    if args.cache_dir:
        from repro.cache import ScanCache

        cache = ScanCache(args.cache_dir)
    registry = None
    if args.registry:
        from repro.obs import RunRegistry

        registry = RunRegistry(args.registry)
    executor = make_executor(args.executor, workers=args.workers)
    try:
        runner = SweepRunner(matrix, cache=cache, executor=executor,
                             registry=registry)
        sweep = runner.run()
    except MatrixError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        executor.close()
    divergences = compare_sweep(sweep)
    print(render_sweep_report(sweep, divergences))
    if cache is not None:
        print(f"cache: {cache.stats.summary()}")
    if registry is not None:
        print(f"registry: {len(registry)} runs in {args.registry}")
    if args.out_dir:
        from repro.io import save_dataset

        out_dir = pathlib.Path(args.out_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        for result in sweep.results:
            path = out_dir / f"{result.name}.jsonl"
            written = save_dataset(result.dataset, path)
            print(f"wrote {written:,} records to {path}")
    if args.json_out:
        _write_json(args.json_out, {
            "accounting": sweep.accounting.to_dict(),
            "scenarios": [
                {
                    "name": result.name,
                    "kind": result.scenario.kind,
                    "run_fp": result.run_fp,
                    "changed_countries": list(result.changed_countries),
                    "shares_baseline_dataset":
                        result.shares_baseline_dataset,
                }
                for result in sweep.results
            ],
            "divergences": [d.to_dict() for d in divergences],
        })
        print(f"wrote sweep summary to {args.json_out}")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.cache import ScanCache

    cache = ScanCache(args.cache_dir)
    if args.cache_command == "stats":
        usage = cache.usage()
        if args.json_out:
            json.dump(usage, sys.stdout, indent=2)
            print()
            return 0
        rows = [
            ["cache dir", usage["cache_dir"]],
            ["entries", f"{usage['entries']:,}"],
            ["total bytes", f"{usage['total_bytes']:,}"],
            ["countries", str(len(usage["countries"]))],
            ["recorded scan time", f"{usage['recorded_scan_s']:.1f}s"],
        ]
        print(render_table(["field", "value"], rows, title="Scan cache"))
        if usage["countries"]:
            per_country = ", ".join(
                f"{code}:{count}"
                for code, count in usage["countries"].items()
            )
            print(f"entries per country: {per_country}")
        return 0
    if args.cache_command == "prune":
        if args.max_bytes is None and args.older_than is None:
            print("error: prune needs --max-bytes and/or --older-than",
                  file=sys.stderr)
            return 2
        try:
            max_bytes = (
                _parse_size(args.max_bytes)
                if args.max_bytes is not None else None
            )
            older_than_s = (
                _parse_duration(args.older_than)
                if args.older_than is not None else None
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        result = cache.prune(
            max_bytes=max_bytes, older_than_s=older_than_s,
            dry_run=args.dry_run,
        )
        print(f"cache prune: {result.summary()}")
        return 0
    raise AssertionError(f"unhandled cache command {args.cache_command!r}")


def _cmd_evolve(args: argparse.Namespace) -> int:
    import pathlib

    from repro.analysis.longitudinal import compute_trends
    from repro.evolve import SnapshotSeries
    from repro.reporting.sections import render_trend_report

    if args.snapshots < 1:
        print("error: --snapshots must be at least 1", file=sys.stderr)
        return 2
    if args.manifest and not args.out_dir:
        print("error: --manifest requires --out-dir", file=sys.stderr)
        return 2
    config = WorldConfig(
        seed=args.seed, scale=args.scale,
        countries=args.countries or None,
    )
    registry = None
    if args.registry:
        from repro.obs import RunRegistry

        registry = RunRegistry(args.registry)
    executor = make_executor(args.executor, workers=args.workers)
    series = SnapshotSeries(
        config, args.snapshots,
        evolution_seed=args.evolve_seed,
        cache=args.cache_dir,
        executor=executor,
        collect_manifests=args.manifest,
        registry=registry,
    )
    try:
        records = series.run()
    finally:
        executor.close()
    for record in records:
        changed = ", ".join(record.changed_countries) or "none"
        if record.cache_stats is not None:
            print(f"{record.label}: {record.cache_stats.summary()} "
                  f"(changed: {changed})")
        else:
            summary = record.dataset.summarize()
            print(f"{record.label}: {summary.total_unique_urls:,} URLs "
                  f"(changed: {changed})")
    if args.cache_dir:
        print(f"series total: {series.total_stats.summary()}")
    if registry is not None:
        print(f"registry: {len(registry)} runs in {args.registry}")
    if args.out_dir:
        from repro.io import save_dataset
        from repro.obs import manifest_path_for

        out_dir = pathlib.Path(args.out_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        for record in records:
            path = out_dir / f"snapshot-{record.step}.jsonl"
            written = save_dataset(record.dataset, path)
            print(f"wrote {written:,} records to {path}")
            if record.manifest is not None:
                record.manifest.write(manifest_path_for(path))
    print()
    print(render_trend_report(compute_trends(
        [record.dataset for record in records],
        labels=[record.label for record in records],
    )))
    return 0


def _chrome_trace_path(trace_out: str) -> str:
    """``trace.json`` -> ``trace.chrome.json`` (suffix-preserving)."""
    if trace_out.endswith(".json"):
        return trace_out[:-len(".json")] + ".chrome.json"
    return trace_out + ".chrome.json"


def _load_any_dataset(path: str):
    """Open a jsonl export or store directory for a read-only command.

    Returns a ``repro.serve.loader.LoadedDataset`` (close it when
    done), or ``None`` after printing a one-line error -- the same
    ``FileNotFoundError``/``StoreError``/``ValueError`` mapping
    ``repro-gov convert`` uses, so every command that reads a dataset
    fails with exit 1 and a message instead of a traceback.
    """
    from repro.serve.loader import open_any_dataset
    from repro.store import StoreError

    try:
        return open_any_dataset(path)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return None
    except (StoreError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return None


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.reporting.sections import render_report_section

    loaded = _load_any_dataset(args.dataset)
    if loaded is None:
        return 1
    with loaded:
        print(render_report_section(loaded.dataset, args.section))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import QUERY_ENDPOINTS, DatasetService, create_server

    if args.workers < 1:
        print("error: --workers must be at least 1", file=sys.stderr)
        return 2
    loaded = _load_any_dataset(args.dataset or args.store_dir)
    if loaded is None:
        return 1
    history = []
    for path in args.history:
        earlier = _load_any_dataset(path)
        if earlier is None:
            loaded.close()
            for item in history:
                item.close()
            return 1
        history.append(earlier)
    trace_log = None
    if args.trace_dir:
        from repro.serve import RequestTraceLog

        if args.trace_ring < 1:
            print("error: --trace-ring must be at least 1",
                  file=sys.stderr)
            loaded.close()
            for item in history:
                item.close()
            return 2
        trace_log = RequestTraceLog(args.trace_dir,
                                    ring_size=args.trace_ring,
                                    slow_ms=args.slow_ms)
    service = DatasetService(loaded, history=history)
    server = create_server(service, host=args.host, port=args.port,
                           workers=args.workers, trace_log=trace_log)
    host, port = server.server_address[:2]
    print(f"serving {loaded.kind} dataset {loaded.path} "
          f"on http://{host}:{port} ({args.workers} workers)")
    print("endpoints: /healthz /metrics "
          + " ".join(f"/v1/{name}" for name in sorted(QUERY_ENDPOINTS)))
    if trace_log is not None:
        print(f"tracing requests into {trace_log.directory} "
              f"(ring {trace_log.ring_size}, slow >= "
              f"{trace_log.slow_ms:g}ms)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    finally:
        server.close()
    return 0


def _cmd_convert(args: argparse.Namespace) -> int:
    import pathlib

    from repro.store import (
        DatasetStore,
        StoreError,
        is_store_path,
        jsonl_to_store,
        store_to_jsonl,
    )

    src = pathlib.Path(args.src)
    dst = pathlib.Path(args.dst)
    try:
        if is_store_path(src):
            with DatasetStore(src) as store:
                if args.verify:
                    store.verify()
                    print(f"verified {store.record_count:,} records over "
                          f"{len(store.countries)} shards in {src}")
                if dst.exists() and not args.overwrite:
                    print(f"error: {dst} exists (pass --overwrite)",
                          file=sys.stderr)
                    return 2
                written = store_to_jsonl(store, dst)
            print(f"wrote {written:,} records to {dst}")
        else:
            result = jsonl_to_store(src, dst, overwrite=args.overwrite)
            print(f"wrote {result.record_count:,} records over "
                  f"{result.shard_count} shards to {dst}")
            if args.verify:
                with DatasetStore(dst) as store:
                    store.verify()
                print(f"verified {dst} against its manifest digests")
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except (StoreError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    from repro.obs import RegistryError, RunRegistry

    if args.obs_command == "runs":
        try:
            registry = RunRegistry(args.registry)
        except RegistryError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        runs = registry.runs()
        if args.json_out:
            json.dump([run.to_dict() for run in runs], sys.stdout,
                      indent=2)
            print()
            return 0
        from repro.reporting.obs import render_run_listing

        print(render_run_listing(runs))
        return 0

    if args.obs_command == "diff":
        from repro.obs import diff_runs

        try:
            registry = RunRegistry(args.registry)
            run_a = registry.get(args.a)
            run_b = registry.get(args.b)
        except RegistryError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        diff = diff_runs(run_a, run_b)
        if args.json_out:
            json.dump(diff.to_dict(), sys.stdout, indent=2)
            print()
            return 0
        from repro.reporting.obs import render_run_diff

        print(f"diff of run #{run_a.seq} ({run_a.id[:12]}) vs "
              f"run #{run_b.seq} ({run_b.id[:12]})")
        print(render_run_diff(diff))
        return 0

    if args.obs_command == "bench":
        from repro.obs.sentinel import SentinelError, check, trajectory

        try:
            checks = check(args.benches, tolerance=args.tolerance)
        except SentinelError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        findings = ()
        if args.registry:
            try:
                findings = trajectory(RunRegistry(args.registry))
            except RegistryError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 1
        if args.json_out:
            json.dump({
                "checks": [item.to_dict() for item in checks],
                "trajectory": [f.to_dict() for f in findings],
            }, sys.stdout, indent=2)
            print()
        else:
            for item in checks:
                for result in item.results:
                    mark = "ok  " if result.ok else "FAIL"
                    print(f"{mark} [{item.kind}] {result.message}")
            for finding in findings:
                print(f"WARN trajectory: {finding.metric} of fingerprint "
                      f"{finding.fingerprint[:12]} moved "
                      f"{finding.baseline} -> {finding.latest} "
                      f"({finding.ratio}x, run {finding.run_id[:12]})")
        failures = [(item, result) for item in checks
                    for result in item.results if not result.ok]
        if failures:
            culprits = ", ".join(
                f"{item.path}: {result.metric}"
                for item, result in failures
            )
            print(f"bench gates FAILED ({len(failures)}): {culprits}",
                  file=sys.stderr)
            if args.check:
                return 1
        elif not args.json_out:
            total = sum(len(item.results) for item in checks)
            print(f"bench gates passed ({total} gates over "
                  f"{len(checks)} files)")
        return 0

    raise AssertionError(f"unhandled obs command {args.obs_command!r}")


def _cmd_inspect(args: argparse.Namespace) -> int:
    world = SyntheticWorld.generate(
        WorldConfig(seed=args.seed, scale=args.scale)
    )
    pipeline = Pipeline(world)
    hostname = args.hostname.lower()
    truth = world.truth.hosts.get(hostname)
    if truth is None:
        print(f"error: unknown hostname {hostname!r}", file=sys.stderr)
        return 1
    vantage = world.vpn.vantage_for(truth.country)
    info = pipeline.mapper.map_host(hostname, vantage)
    verdict = pipeline.geolocator.locate(info.address, truth.country)
    ownership = pipeline.ownership.classify(info.asn)
    from repro.netsim.ipaddr import format_ip

    rows = [
        ["hostname", hostname],
        ["government", truth.country],
        ["address", format_ip(info.address)],
        ["asn", info.asn],
        ["organization", info.organization],
        ["registration", info.registered_country],
        ["government-operated", ownership.is_government],
        ["server location", verdict.country or "excluded"],
        ["validation", verdict.method.value],
    ]
    print(render_table(["field", "value"], rows))
    return 0


#: The stderr handler installed by the last ``main()`` call, so repeated
#: in-process invocations (tests, notebooks) reconfigure instead of
#: stacking handlers.
_log_handler: Optional[logging.Handler] = None


def _configure_logging(verbose: int, quiet: bool) -> None:
    """Map -v/-q onto the ``repro`` logger hierarchy (stderr handler).

    The library itself only attaches a ``NullHandler``; this is the
    application-side configuration, so importing :mod:`repro` never
    prints anything on its own.
    """
    global _log_handler
    if quiet:
        level = logging.ERROR
    elif verbose >= 2:
        level = logging.DEBUG
    elif verbose == 1:
        level = logging.INFO
    else:
        level = logging.WARNING
    root = logging.getLogger("repro")
    if _log_handler is not None:
        root.removeHandler(_log_handler)
    _log_handler = logging.StreamHandler(sys.stderr)
    _log_handler.setFormatter(
        logging.Formatter("%(levelname)s %(name)s: %(message)s")
    )
    root.setLevel(level)
    root.addHandler(_log_handler)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for the ``repro-gov`` console script."""
    args = _build_parser().parse_args(argv)
    _configure_logging(args.verbose, args.quiet)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "cache":
        return _cmd_cache(args)
    if args.command == "evolve":
        return _cmd_evolve(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "convert":
        return _cmd_convert(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "obs":
        return _cmd_obs(args)
    if args.command == "inspect":
        return _cmd_inspect(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
