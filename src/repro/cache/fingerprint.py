"""Canonical cache-key derivation.

A cache entry is valid only for the exact scan inputs it was computed
from.  The key is therefore a BLAKE2 digest over a canonical JSON
rendering of

* every :class:`~repro.datagen.config.WorldConfig` field (via
  :meth:`~repro.datagen.config.WorldConfig.canonical_dict`, which
  normalizes spelling so equal worlds fingerprint equally),
* the resolved :class:`~repro.faults.FaultPlan` (via
  :meth:`~repro.faults.FaultPlan.fingerprint_components` — the plan,
  not the raw config fields, is what the pipeline actually executes),
* the country code and crawl ``max_depth``, and
* :data:`CACHE_FORMAT_VERSION`, so a change to the entry layout or to
  the meaning of any fingerprinted field retires every older entry.

Keys are content addresses: two pipelines with identical inputs share
entries, and changing one field (a fault rate, the scale, the seed)
misses only the entries that field affects.
"""

from __future__ import annotations

import hashlib
import json
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.datagen.config import WorldConfig
    from repro.faults.plan import FaultPlan

#: Version of the on-disk entry format *and* of the fingerprint scheme.
#: Bump whenever :class:`~repro.exec.partials.CountryPartial` or the
#: key derivation changes; every older entry then misses harmlessly.
#: v2: GeoVerdict grew a ``source`` field (geolocation funnel step),
#: changing the pickled layout of the meta segment's verdicts.
CACHE_FORMAT_VERSION = 2


def run_fingerprint(
    config: "WorldConfig", max_depth: int, plan: "FaultPlan"
) -> str:
    """Fingerprint of everything a scan depends on except the country.

    Canonicalizing the config is the expensive part of key derivation,
    so callers derive this once per run and fan per-country keys out
    with :func:`country_key`.
    """
    payload = {
        "format": CACHE_FORMAT_VERSION,
        "world": config.canonical_dict(),
        "faults": plan.fingerprint_components(),
        "max_depth": int(max_depth),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.blake2b(blob.encode("utf-8"), digest_size=16).hexdigest()


def country_key(run_fp: str, country: str) -> str:
    """Entry key of one country's scan under a run fingerprint."""
    hasher = hashlib.blake2b(digest_size=16)
    hasher.update(run_fp.encode("ascii"))
    hasher.update(b"\x1f")
    hasher.update(country.upper().encode("utf-8"))
    return hasher.hexdigest()


def scan_key(
    config: "WorldConfig",
    country: str,
    max_depth: int,
    plan: "FaultPlan",
) -> str:
    """Content address of one country's phase-1 scan result."""
    return country_key(run_fingerprint(config, max_depth, plan), country)


__all__ = [
    "CACHE_FORMAT_VERSION",
    "country_key",
    "run_fingerprint",
    "scan_key",
]
