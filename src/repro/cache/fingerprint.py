"""Canonical cache-key derivation.

A cache entry is valid only for the exact scan inputs it was computed
from.  Since the generator is *per-country hermetic* (one country's
world slice is a pure function of the global knobs plus that country's
own override slice), the key splits the same way:

* :func:`global_fingerprint` digests every country-independent input —
  the :class:`~repro.datagen.config.WorldConfig` global fields (via
  :meth:`~repro.datagen.config.WorldConfig.canonical_global_dict`), the
  resolved :class:`~repro.faults.FaultPlan` (via
  :meth:`~repro.faults.FaultPlan.fingerprint_components`), the crawl
  ``max_depth`` and :data:`CACHE_FORMAT_VERSION`;
* :func:`country_slice_fingerprint` digests one country's slice of the
  config (its :class:`~repro.datagen.config.CountryOverride`, if any);
* :func:`country_key` combines both with the country code.

Neither the country *selection* nor any other country's override enters
a key, which is the incremental-snapshot guarantee: evolving one
country re-keys exactly that country, and every other country's entry
still hits.  Changing a global field (a fault rate, the scale, the
seed) still retires every entry, as before.

:func:`run_fingerprint` digests the *whole* config including selection
and overrides — it identifies a run (manifests, provenance chains), not
a cache entry.
"""

from __future__ import annotations

import hashlib
import json
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.datagen.config import WorldConfig
    from repro.faults.plan import FaultPlan

#: Version of the on-disk entry format *and* of the fingerprint scheme.
#: Bump whenever :class:`~repro.exec.partials.CountryPartial` or the
#: key derivation changes; every older entry then misses harmlessly.
#: v2: GeoVerdict grew a ``source`` field (geolocation funnel step),
#: changing the pickled layout of the meta segment's verdicts.
#: v3: keys split into global + per-country-slice fingerprints (the
#: incremental snapshot scheme) and the generator's numbering plan
#: became per-country hermetic, changing every generated world.
CACHE_FORMAT_VERSION = 3


def _digest_payload(payload: object) -> str:
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.blake2b(blob.encode("utf-8"), digest_size=16).hexdigest()


def run_fingerprint(
    config: "WorldConfig", max_depth: int, plan: "FaultPlan"
) -> str:
    """Fingerprint of the complete run (config, faults, depth).

    Identifies a run in manifests and snapshot provenance chains; the
    scan cache keys entries by the global/slice split below instead.
    """
    return _digest_payload({
        "format": CACHE_FORMAT_VERSION,
        "world": config.canonical_dict(),
        "faults": plan.fingerprint_components(),
        "max_depth": int(max_depth),
    })


def global_fingerprint(
    config: "WorldConfig", max_depth: int, plan: "FaultPlan"
) -> str:
    """Fingerprint of everything a scan depends on except the country.

    Canonicalizing the config is the expensive part of key derivation,
    so callers derive this once per run and fan per-country keys out
    with :func:`country_key`.
    """
    return _digest_payload({
        "format": CACHE_FORMAT_VERSION,
        "world": config.canonical_global_dict(),
        "faults": plan.fingerprint_components(),
        "max_depth": int(max_depth),
    })


def country_slice_fingerprint(config: "WorldConfig", country: str) -> str:
    """Fingerprint of one country's slice of the config."""
    return _digest_payload(config.country_slice_dict(country))


def country_key(global_fp: str, country: str, slice_fp: str = "") -> str:
    """Entry key of one country's scan under a global fingerprint."""
    hasher = hashlib.blake2b(digest_size=16)
    hasher.update(global_fp.encode("ascii"))
    hasher.update(b"\x1f")
    hasher.update(country.upper().encode("utf-8"))
    hasher.update(b"\x1f")
    hasher.update(slice_fp.encode("ascii"))
    return hasher.hexdigest()


def scan_key(
    config: "WorldConfig",
    country: str,
    max_depth: int,
    plan: "FaultPlan",
) -> str:
    """Content address of one country's phase-1 scan result."""
    return country_key(
        global_fingerprint(config, max_depth, plan),
        country,
        country_slice_fingerprint(config, country),
    )


__all__ = [
    "CACHE_FORMAT_VERSION",
    "country_key",
    "country_slice_fingerprint",
    "global_fingerprint",
    "run_fingerprint",
    "scan_key",
]
