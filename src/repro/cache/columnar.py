"""Columnar encoding of the scan cache's bulk segment.

A cache entry's bulk is ``(hosts, urls)``: per-hostname
:class:`~repro.exec.partials.HostAnnotation` facts plus compact per-URL
observation tuples.  Pickling those builds one Python object per host
and per URL on *every* warm start that touches records.  This codec
stores the same data as typed columns and string tables (the
:mod:`repro.store.codec` building blocks) behind a
:func:`~repro.store.codec.pack_sections` directory:

* one shared hostname string table, interned first-seen (host keys
  first -- so host ``i``'s key is simply table entry ``i`` -- then any
  URL hostname not already present);
* host columns (address/asn ``i64``, interned organization, registered
  and server country ids ``i32`` with ``-1`` for an excluded server,
  gov/anycast/validation ``u8``);
* URL columns (url string table in archive order, hostname id ``i32``,
  size and depth ``i64``, via ``u8``).

Decoding rebuilds the exact dict/list/tuple structures pickle would
have -- same key order, same tuple layout, equal values -- so a
columnar entry is indistinguishable from a pickled one downstream
(held by ``tests/cache/test_columnar.py``).  Enum values ride as codes
into the declaration-order tuples of :mod:`repro.store.format`, the
same code spaces the dataset store uses.
"""

from __future__ import annotations

import json

from repro.exec.partials import HostAnnotation, UrlObservation
from repro.store import codec
from repro.store.format import (
    VALIDATION_CODE,
    VALIDATION_CODES,
    VIA_CODE,
    VIA_CODES,
)

#: Bulk codec names carried in the cache entry header.
BULK_COLUMNAR = "columnar"
BULK_PICKLE = "pickle"


def encode_bulk(
    hosts: dict[str, HostAnnotation], urls: list[UrlObservation]
) -> bytes:
    """Encode one bulk pair as a section pack.

    Raises (``KeyError``/``TypeError``/...) on anything that does not
    fit the columnar model -- e.g. an out-of-enum via -- and the cache
    then falls back to pickle, so the codec never has to be total.
    """
    hostname_ids: dict[str, int] = {}
    for hostname in hosts:
        hostname_ids[hostname] = len(hostname_ids)
    annotations = list(hosts.values())

    organizations: dict[str, int] = {}
    countries: dict[str, int] = {}
    org_ids = [
        organizations.setdefault(a.organization, len(organizations))
        for a in annotations
    ]
    registered_ids = [
        countries.setdefault(a.registered_country, len(countries))
        for a in annotations
    ]
    server_ids = [
        -1 if a.server_country is None
        else countries.setdefault(a.server_country, len(countries))
        for a in annotations
    ]

    url_host_ids = []
    for _, hostname, _, _, _ in urls:
        url_id = hostname_ids.get(hostname)
        if url_id is None:
            url_id = hostname_ids[hostname] = len(hostname_ids)
        url_host_ids.append(url_id)

    meta = {
        "hosts": len(hosts),
        "urls": len(urls),
        "organizations": list(organizations),
        "countries": list(countries),
    }
    hostnames_idx, hostnames_blob = codec.strtab_bytes(hostname_ids)
    urls_idx, urls_blob = codec.strtab_bytes(url for url, *_ in urls)
    sections = [
        ("meta.json", json.dumps(meta, sort_keys=True).encode("utf-8")),
        ("hostnames.idx", hostnames_idx),
        ("hostnames.blob", hostnames_blob),
        ("host.address.i64",
         codec.column_bytes([a.address for a in annotations], "i64")),
        ("host.asn.i64",
         codec.column_bytes([a.asn for a in annotations], "i64")),
        ("host.organization.i32", codec.column_bytes(org_ids, "i32")),
        ("host.registered.i32", codec.column_bytes(registered_ids, "i32")),
        ("host.server.i32", codec.column_bytes(server_ids, "i32")),
        ("host.gov.u8",
         codec.column_bytes([1 if a.gov_operated else 0
                             for a in annotations], "u8")),
        ("host.anycast.u8",
         codec.column_bytes([1 if a.anycast else 0
                             for a in annotations], "u8")),
        ("host.validation.u8",
         codec.column_bytes([VALIDATION_CODE[a.validation]
                             for a in annotations], "u8")),
        ("urls.idx", urls_idx),
        ("urls.blob", urls_blob),
        ("url.hostname.i32", codec.column_bytes(url_host_ids, "i32")),
        ("url.size.i64",
         codec.column_bytes([size for _, _, size, _, _ in urls], "i64")),
        ("url.via.u8",
         codec.column_bytes([VIA_CODE[via] for _, _, _, via, _ in urls],
                            "u8")),
        ("url.depth.i64",
         codec.column_bytes([depth for *_, depth in urls], "i64")),
    ]
    return codec.pack_sections(sections)


def decode_bulk(blob: bytes) -> tuple[dict[str, HostAnnotation],
                                      list[UrlObservation]]:
    """Inverse of :func:`encode_bulk`.

    Raises ``ValueError`` (or a decode error) on malformed input; the
    cache treats that like any other integrity failure and evicts.
    """
    sections = codec.unpack_sections(blob)
    meta = json.loads(sections["meta.json"])
    n_hosts = meta["hosts"]
    n_urls = meta["urls"]
    organizations = meta["organizations"]
    countries = meta["countries"]

    hostname_table = codec.strtab_decode(
        sections["hostnames.idx"], sections["hostnames.blob"]
    )
    addresses = codec.column_view(sections["host.address.i64"], "i64").tolist()
    asns = codec.column_view(sections["host.asn.i64"], "i64").tolist()
    org_ids = codec.column_view(sections["host.organization.i32"], "i32")
    registered_ids = codec.column_view(sections["host.registered.i32"], "i32")
    server_ids = codec.column_view(sections["host.server.i32"], "i32")
    gov = codec.column_view(sections["host.gov.u8"], "u8")
    anycast = codec.column_view(sections["host.anycast.u8"], "u8")
    validation = codec.column_view(sections["host.validation.u8"], "u8")
    if not (len(addresses) == len(asns) == len(org_ids) == n_hosts
            and len(hostname_table) >= n_hosts):
        raise ValueError("bulk pack host columns are inconsistent")

    hosts: dict[str, HostAnnotation] = {}
    for i in range(n_hosts):
        server = int(server_ids[i])
        hosts[hostname_table[i]] = HostAnnotation(
            address=addresses[i],
            asn=asns[i],
            organization=organizations[int(org_ids[i])],
            registered_country=countries[int(registered_ids[i])],
            gov_operated=bool(gov[i]),
            server_country=None if server < 0 else countries[server],
            anycast=bool(anycast[i]),
            validation=VALIDATION_CODES[int(validation[i])],
        )

    url_table = codec.strtab_decode(sections["urls.idx"], sections["urls.blob"])
    url_host_ids = codec.column_view(sections["url.hostname.i32"], "i32")
    sizes = codec.column_view(sections["url.size.i64"], "i64").tolist()
    vias = codec.column_view(sections["url.via.u8"], "u8")
    depths = codec.column_view(sections["url.depth.i64"], "i64").tolist()
    if not (len(url_table) == len(url_host_ids) == len(sizes)
            == len(vias) == len(depths) == n_urls):
        raise ValueError("bulk pack url columns are inconsistent")

    observed_urls: list[UrlObservation] = [
        (url_table[i], hostname_table[int(url_host_ids[i])], sizes[i],
         VIA_CODES[int(vias[i])], depths[i])
        for i in range(n_urls)
    ]
    return hosts, observed_urls


__all__ = ["BULK_COLUMNAR", "BULK_PICKLE", "encode_bulk", "decode_bulk"]
