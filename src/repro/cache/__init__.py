"""Persistent content-addressed cache for per-country scan results.

A :class:`~repro.exec.partials.CountryPartial` is a pure function of
``(WorldConfig, country, max_depth, FaultPlan)`` — the whole phase-1
scan (crawl, filter, DNS/WHOIS mapping, geolocation) is deterministic
given those inputs.  :class:`ScanCache` memoizes that function on disk:
each partial is pickled under a key derived from a canonical fingerprint
of every input (see :func:`scan_key`), so *any* parameter change
invalidates exactly the affected entries and nothing silently goes
stale.  Entries carry an integrity digest; corrupt, truncated or
mismatched entries are evicted and recomputed, never trusted.

Warm starts are wired through the execution layer
(:meth:`~repro.exec.base.ExecutionStrategy.scan_cached`): cache hits are
loaded in canonical country order, misses fan out through whichever
serial/thread/process executor the caller picked, and the merged dataset
is byte-identical cold vs. warm and across executors.
"""

from repro.cache.fingerprint import (
    CACHE_FORMAT_VERSION,
    country_key,
    country_slice_fingerprint,
    global_fingerprint,
    run_fingerprint,
    scan_key,
)
from repro.cache.store import (
    CacheEntryInfo,
    CacheStats,
    PruneResult,
    ScanCache,
)

__all__ = [
    "CACHE_FORMAT_VERSION",
    "CacheEntryInfo",
    "CacheStats",
    "PruneResult",
    "ScanCache",
    "country_key",
    "country_slice_fingerprint",
    "global_fingerprint",
    "run_fingerprint",
    "scan_key",
]
