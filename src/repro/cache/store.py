"""The on-disk scan cache: load, store, verify, recover.

Entry layout (one file per key, sharded by the key's first two hex
digits to keep directories small)::

    <cache_dir>/<key[:2]>/<key>.partial
    ┌──────────────────────────────────────────────┐
    │ header JSON line (format, key, country,      │
    │   meta_bytes, bulk_bytes, bulk codec,        │
    │   digest, scan_s)                            │
    │ meta pickle (merge inputs: counts, verdicts, │
    │   footprint, faults)                         │
    │ bulk segment ((hosts, urls) — record         │
    │   assembly's inputs; columnar section pack   │
    │   by default, pickle as fallback)            │
    └──────────────────────────────────────────────┘

The payload is split so a warm start pays only for what the driver's
merges touch: the meta segment is unpickled eagerly, while the much
larger bulk segment (per-host annotations and per-URL rows) stays raw
bytes behind the returned partial's deferred ``bulk`` loader until the
country's records are actually materialized.

Loads trust nothing: the header must parse, carry the current format
version and the expected key, the payload must match its recorded
segment sizes and BLAKE2 digest (covering *both* segments, checked
up front — a deferred bulk never skips verification), and the meta
must decode to the expected country's merge inputs.  Any failed check
evicts the entry and reports a miss, so the pipeline recomputes — a
corrupt cache can cost time, never correctness.  Stores are atomic
(write-to-temp + ``os.replace``), so a crashed or concurrent writer
can't leave a torn entry behind.
"""

from __future__ import annotations

import dataclasses
import functools
import hashlib
import json
import logging
import os
import pathlib
import pickle
import weakref
from typing import TYPE_CHECKING, Optional, Union

from repro.cache import columnar
from repro.cache.fingerprint import (
    CACHE_FORMAT_VERSION,
    country_key,
    country_slice_fingerprint,
    global_fingerprint,
)
from repro.exec.partials import CountryPartial

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.pipeline import Pipeline

logger = logging.getLogger(__name__)

PathLike = Union[str, pathlib.Path]

#: Filename suffix of cache entries.
ENTRY_SUFFIX = ".partial"


def _digest(payload: bytes) -> str:
    return hashlib.blake2b(payload, digest_size=16).hexdigest()


def _format_bytes(count: int) -> str:
    size = float(count)
    for unit in ("B", "KiB", "MiB"):
        if size < 1024.0:
            return f"{count} B" if unit == "B" else f"{size:.1f} {unit}"
        size /= 1024.0
    return f"{size:.1f} GiB"


@dataclasses.dataclass
class CacheStats:
    """Accounting for one :class:`ScanCache` instance."""

    #: Entries served from disk.
    hits: int = 0
    #: Lookups that had to recompute (absent, corrupt or mismatched).
    misses: int = 0
    #: Fresh entries written.
    stores: int = 0
    #: Entries evicted because a load-time check failed.
    evicted: int = 0
    #: Bytes read for hits / written for stores.
    bytes_read: int = 0
    bytes_written: int = 0
    #: Estimated scan time the hits avoided, from the per-entry scan
    #: cost recorded at store time (wall clock of the miss batch spread
    #: over its countries, so parallel fan-outs make this conservative).
    time_saved_s: float = 0.0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits per lookup in [0, 1] (0 when nothing was looked up)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def summary(self) -> str:
        """One-line render for run reports."""
        return (
            f"{self.hits} hits, {self.misses} misses "
            f"({self.hit_rate:.0%} hit rate), "
            f"{_format_bytes(self.bytes_read)} read, "
            f"{_format_bytes(self.bytes_written)} written, "
            f"~{self.time_saved_s:.1f}s scan time saved"
        )

    def to_dict(self) -> dict:
        """JSON-ready rendering (run manifests, metrics exports)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evicted": self.evicted,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
            "time_saved_s": round(self.time_saved_s, 6),
            "hit_rate": round(self.hit_rate, 6),
        }


class ScanCache:
    """Persistent store of per-country phase-1 scan results."""

    def __init__(self, cache_dir: PathLike) -> None:
        self.cache_dir = pathlib.Path(cache_dir)
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        self.stats = CacheStats()
        #: Global fingerprints memoized per pipeline (config
        #: canonicalization costs more than the per-country key).
        self._global_fps: "weakref.WeakKeyDictionary" = \
            weakref.WeakKeyDictionary()

    # ------------------------------------------------------------- keys

    def key_for(self, pipeline: "Pipeline", country: str) -> str:
        """The content address of one country's scan under ``pipeline``.

        Composed from the run's global fingerprint plus the country's
        own config slice, so an evolved snapshot re-keys exactly the
        mutated countries and hits on everything else.
        """
        global_fp = self._global_fps.get(pipeline)
        if global_fp is None:
            global_fp = global_fingerprint(
                pipeline.world.config,
                pipeline.crawler.max_depth,
                pipeline.fault_plan,
            )
            self._global_fps[pipeline] = global_fp
        slice_fp = country_slice_fingerprint(pipeline.world.config, country)
        return country_key(global_fp, country, slice_fp)

    def _entry_path(self, key: str) -> pathlib.Path:
        return self.cache_dir / key[:2] / f"{key}{ENTRY_SUFFIX}"

    # ---------------------------------------------------------- load/store

    def load(self, key: str, country: str) -> Optional[CountryPartial]:
        """The cached partial for ``key``, or None (then recompute).

        Never raises on bad entries: a failed integrity or fingerprint
        check evicts the file and counts as a miss.
        """
        path = self._entry_path(key)
        try:
            blob = path.read_bytes()
        except OSError:
            self.stats.misses += 1
            return None
        decoded = self._decode(blob, key, country)
        if decoded is None:
            logger.warning(
                "evicting cache entry %s (%s): failed integrity or "
                "fingerprint check", key, country.upper(),
            )
            self.stats.evicted += 1
            self.stats.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        header, partial = decoded
        self.stats.hits += 1
        self.stats.bytes_read += len(blob)
        self.stats.time_saved_s += float(header.get("scan_s", 0.0) or 0.0)
        return partial

    @staticmethod
    def _decode(
        blob: bytes, key: str, country: str
    ) -> Optional[tuple[dict, CountryPartial]]:
        """Verify one entry and build a lazy-bulk partial from it.

        Integrity is checked in full here (sizes and digest cover both
        pickle segments); only the *unpickling* of the bulk segment is
        deferred.  Returns None on any inconsistency.
        """
        newline = blob.find(b"\n")
        if newline < 0:
            return None
        try:
            header = json.loads(blob[:newline])
        except (json.JSONDecodeError, UnicodeDecodeError):
            return None
        if not isinstance(header, dict):
            return None
        payload = blob[newline + 1:]
        meta_bytes = header.get("meta_bytes")
        bulk_bytes = header.get("bulk_bytes")
        if (
            header.get("format") != CACHE_FORMAT_VERSION
            or header.get("key") != key
            or not isinstance(meta_bytes, int)
            or not isinstance(bulk_bytes, int)
            or meta_bytes + bulk_bytes != len(payload)
            or header.get("digest") != _digest(payload)
        ):
            return None
        bulk_codec = header.get("bulk", columnar.BULK_PICKLE)
        if bulk_codec == columnar.BULK_COLUMNAR:
            load_bulk = functools.partial(columnar.decode_bulk,
                                          payload[meta_bytes:])
        elif bulk_codec == columnar.BULK_PICKLE:
            load_bulk = functools.partial(pickle.loads, payload[meta_bytes:])
        else:
            return None
        try:
            meta = pickle.loads(payload[:meta_bytes])
            (country_field, landing_count, discarded_url_count,
             unresolved_hostnames, depth_histogram, verdicts,
             footprint, faults) = meta
        except Exception:
            return None
        if country_field != country.upper():
            return None
        partial = CountryPartial(
            country=country_field,
            landing_count=landing_count,
            discarded_url_count=discarded_url_count,
            unresolved_hostnames=unresolved_hostnames,
            depth_histogram=depth_histogram,
            verdicts=verdicts,
            footprint=footprint,
            faults=faults,
            bulk=load_bulk,
        )
        return header, partial

    def store(
        self, key: str, partial: CountryPartial, scan_s: float = 0.0
    ) -> None:
        """Persist one partial under ``key`` (atomically).

        ``scan_s`` records what the scan cost, so future hits can report
        the time they saved.
        """
        meta = pickle.dumps(
            (partial.country, partial.landing_count,
             partial.discarded_url_count, partial.unresolved_hostnames,
             partial.depth_histogram, partial.verdicts,
             partial.footprint, partial.faults),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        # Bulk goes columnar (typed columns decode without building a
        # pickle object graph); anything the columnar model can't carry
        # falls back to pickle, flagged in the header.
        try:
            bulk = columnar.encode_bulk(partial.hosts, partial.urls)
            bulk_codec = columnar.BULK_COLUMNAR
        except Exception:
            bulk = pickle.dumps(
                (partial.hosts, partial.urls),
                protocol=pickle.HIGHEST_PROTOCOL,
            )
            bulk_codec = columnar.BULK_PICKLE
        payload = meta + bulk
        header = {
            "format": CACHE_FORMAT_VERSION,
            "key": key,
            "country": partial.country,
            "meta_bytes": len(meta),
            "bulk_bytes": len(bulk),
            "bulk": bulk_codec,
            "digest": _digest(payload),
            "scan_s": round(scan_s, 6),
        }
        blob = json.dumps(header, sort_keys=True).encode("ascii") + b"\n" + payload
        path = self._entry_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
        tmp.write_bytes(blob)
        os.replace(tmp, path)
        self.stats.stores += 1
        self.stats.bytes_written += len(blob)

    # ------------------------------------------------------------ maintenance

    def entry_count(self) -> int:
        """Number of entries currently on disk."""
        return sum(1 for _ in self.cache_dir.glob(f"*/*{ENTRY_SUFFIX}"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for entry in self.cache_dir.glob(f"*/*{ENTRY_SUFFIX}"):
            try:
                entry.unlink()
            except OSError:
                continue
            removed += 1
        return removed


__all__ = ["CacheStats", "ScanCache", "ENTRY_SUFFIX"]
