"""The on-disk scan cache: load, store, verify, recover.

Entry layout (one file per key, sharded by the key's first two hex
digits to keep directories small)::

    <cache_dir>/<key[:2]>/<key>.partial
    ┌──────────────────────────────────────────────┐
    │ header JSON line (format, key, country,      │
    │   meta_bytes, bulk_bytes, bulk codec,        │
    │   digest, scan_s)                            │
    │ meta pickle (merge inputs: counts, verdicts, │
    │   footprint, faults)                         │
    │ bulk segment ((hosts, urls) — record         │
    │   assembly's inputs; columnar section pack   │
    │   by default, pickle as fallback)            │
    └──────────────────────────────────────────────┘

The payload is split so a warm start pays only for what the driver's
merges touch: the meta segment is unpickled eagerly, while the much
larger bulk segment (per-host annotations and per-URL rows) stays raw
bytes behind the returned partial's deferred ``bulk`` loader until the
country's records are actually materialized.

Loads trust nothing: the header must parse, carry the current format
version and the expected key, the payload must match its recorded
segment sizes and BLAKE2 digest (covering *both* segments, checked
up front — a deferred bulk never skips verification), and the meta
must decode to the expected country's merge inputs.  Any failed check
evicts the entry and reports a miss, so the pipeline recomputes — a
corrupt cache can cost time, never correctness.  Stores are atomic
(write-to-temp + ``os.replace``), so a crashed or concurrent writer
can't leave a torn entry behind.
"""

from __future__ import annotations

import dataclasses
import functools
import hashlib
import json
import logging
import os
import pathlib
import pickle
import time
import weakref
from typing import TYPE_CHECKING, Optional, Union

from repro.cache import columnar
from repro.cache.fingerprint import (
    CACHE_FORMAT_VERSION,
    country_key,
    country_slice_fingerprint,
    global_fingerprint,
)
from repro.exec.partials import CountryPartial

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.pipeline import Pipeline

logger = logging.getLogger(__name__)

PathLike = Union[str, pathlib.Path]

#: Filename suffix of cache entries.
ENTRY_SUFFIX = ".partial"


def _digest(payload: bytes) -> str:
    return hashlib.blake2b(payload, digest_size=16).hexdigest()


def _format_bytes(count: int) -> str:
    size = float(count)
    for unit in ("B", "KiB", "MiB"):
        if size < 1024.0:
            return f"{count} B" if unit == "B" else f"{size:.1f} {unit}"
        size /= 1024.0
    return f"{size:.1f} GiB"


@dataclasses.dataclass
class CacheStats:
    """Accounting for one :class:`ScanCache` instance."""

    #: Entries served from disk.
    hits: int = 0
    #: Lookups that had to recompute (absent, corrupt or mismatched).
    misses: int = 0
    #: Fresh entries written.
    stores: int = 0
    #: Entries evicted because a load-time check failed.
    evicted: int = 0
    #: Bytes read for hits / written for stores.
    bytes_read: int = 0
    bytes_written: int = 0
    #: Estimated scan time the hits avoided, from the per-entry scan
    #: cost recorded at store time (wall clock of the miss batch spread
    #: over its countries, so parallel fan-outs make this conservative).
    time_saved_s: float = 0.0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits per lookup in [0, 1] (0 when nothing was looked up)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def summary(self) -> str:
        """One-line render for run reports."""
        return (
            f"{self.hits} hits, {self.misses} misses "
            f"({self.hit_rate:.0%} hit rate), "
            f"{_format_bytes(self.bytes_read)} read, "
            f"{_format_bytes(self.bytes_written)} written, "
            f"~{self.time_saved_s:.1f}s scan time saved"
        )

    def to_dict(self) -> dict:
        """JSON-ready rendering (run manifests, metrics exports)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evicted": self.evicted,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
            "time_saved_s": round(self.time_saved_s, 6),
            "hit_rate": round(self.hit_rate, 6),
        }


@dataclasses.dataclass(frozen=True)
class CacheEntryInfo:
    """On-disk facts about one cache entry (for stats and pruning)."""

    key: str
    country: str
    size_bytes: int
    mtime: float
    #: Scan cost the entry recorded at store time (0 when unreadable).
    scan_s: float
    path: pathlib.Path


@dataclasses.dataclass(frozen=True)
class PruneResult:
    """What one :meth:`ScanCache.prune` pass did (or would do)."""

    examined: int
    removed: int
    removed_bytes: int
    kept: int
    kept_bytes: int
    dry_run: bool

    def summary(self) -> str:
        """One-line render for the CLI."""
        verb = "would remove" if self.dry_run else "removed"
        return (
            f"{verb} {self.removed} of {self.examined} entries "
            f"({_format_bytes(self.removed_bytes)}), keeping {self.kept} "
            f"({_format_bytes(self.kept_bytes)})"
        )

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


class ScanCache:
    """Persistent store of per-country phase-1 scan results."""

    def __init__(self, cache_dir: PathLike) -> None:
        self.cache_dir = pathlib.Path(cache_dir)
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        self.stats = CacheStats()
        #: Global fingerprints memoized per pipeline (config
        #: canonicalization costs more than the per-country key).
        self._global_fps: "weakref.WeakKeyDictionary" = \
            weakref.WeakKeyDictionary()

    # ------------------------------------------------------------- keys

    def key_for(self, pipeline: "Pipeline", country: str) -> str:
        """The content address of one country's scan under ``pipeline``.

        Composed from the run's global fingerprint plus the country's
        own config slice, so an evolved snapshot re-keys exactly the
        mutated countries and hits on everything else.
        """
        global_fp = self._global_fps.get(pipeline)
        if global_fp is None:
            global_fp = global_fingerprint(
                pipeline.world.config,
                pipeline.crawler.max_depth,
                pipeline.fault_plan,
            )
            self._global_fps[pipeline] = global_fp
        slice_fp = country_slice_fingerprint(pipeline.world.config, country)
        return country_key(global_fp, country, slice_fp)

    def _entry_path(self, key: str) -> pathlib.Path:
        return self.cache_dir / key[:2] / f"{key}{ENTRY_SUFFIX}"

    # ---------------------------------------------------------- load/store

    def load(self, key: str, country: str) -> Optional[CountryPartial]:
        """The cached partial for ``key``, or None (then recompute).

        Never raises on bad entries: a failed integrity or fingerprint
        check evicts the file and counts as a miss.
        """
        path = self._entry_path(key)
        try:
            blob = path.read_bytes()
        except OSError:
            self.stats.misses += 1
            return None
        decoded = self._decode(blob, key, country)
        if decoded is None:
            logger.warning(
                "evicting cache entry %s (%s): failed integrity or "
                "fingerprint check", key, country.upper(),
            )
            self.stats.evicted += 1
            self.stats.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        header, partial = decoded
        self.stats.hits += 1
        self.stats.bytes_read += len(blob)
        self.stats.time_saved_s += float(header.get("scan_s", 0.0) or 0.0)
        return partial

    @staticmethod
    def _decode(
        blob: bytes, key: str, country: str
    ) -> Optional[tuple[dict, CountryPartial]]:
        """Verify one entry and build a lazy-bulk partial from it.

        Integrity is checked in full here (sizes and digest cover both
        pickle segments); only the *unpickling* of the bulk segment is
        deferred.  Returns None on any inconsistency.
        """
        newline = blob.find(b"\n")
        if newline < 0:
            return None
        try:
            header = json.loads(blob[:newline])
        except (json.JSONDecodeError, UnicodeDecodeError):
            return None
        if not isinstance(header, dict):
            return None
        payload = blob[newline + 1:]
        meta_bytes = header.get("meta_bytes")
        bulk_bytes = header.get("bulk_bytes")
        if (
            header.get("format") != CACHE_FORMAT_VERSION
            or header.get("key") != key
            or not isinstance(meta_bytes, int)
            or not isinstance(bulk_bytes, int)
            or meta_bytes + bulk_bytes != len(payload)
            or header.get("digest") != _digest(payload)
        ):
            return None
        bulk_codec = header.get("bulk", columnar.BULK_PICKLE)
        if bulk_codec == columnar.BULK_COLUMNAR:
            load_bulk = functools.partial(columnar.decode_bulk,
                                          payload[meta_bytes:])
        elif bulk_codec == columnar.BULK_PICKLE:
            load_bulk = functools.partial(pickle.loads, payload[meta_bytes:])
        else:
            return None
        try:
            meta = pickle.loads(payload[:meta_bytes])
            (country_field, landing_count, discarded_url_count,
             unresolved_hostnames, depth_histogram, verdicts,
             footprint, faults) = meta
        except Exception:
            return None
        if country_field != country.upper():
            return None
        partial = CountryPartial(
            country=country_field,
            landing_count=landing_count,
            discarded_url_count=discarded_url_count,
            unresolved_hostnames=unresolved_hostnames,
            depth_histogram=depth_histogram,
            verdicts=verdicts,
            footprint=footprint,
            faults=faults,
            bulk=load_bulk,
        )
        return header, partial

    def store(
        self, key: str, partial: CountryPartial, scan_s: float = 0.0
    ) -> None:
        """Persist one partial under ``key`` (atomically).

        ``scan_s`` records what the scan cost, so future hits can report
        the time they saved.
        """
        meta = pickle.dumps(
            (partial.country, partial.landing_count,
             partial.discarded_url_count, partial.unresolved_hostnames,
             partial.depth_histogram, partial.verdicts,
             partial.footprint, partial.faults),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        # Bulk goes columnar (typed columns decode without building a
        # pickle object graph); anything the columnar model can't carry
        # falls back to pickle, flagged in the header.
        try:
            bulk = columnar.encode_bulk(partial.hosts, partial.urls)
            bulk_codec = columnar.BULK_COLUMNAR
        except Exception:
            bulk = pickle.dumps(
                (partial.hosts, partial.urls),
                protocol=pickle.HIGHEST_PROTOCOL,
            )
            bulk_codec = columnar.BULK_PICKLE
        payload = meta + bulk
        header = {
            "format": CACHE_FORMAT_VERSION,
            "key": key,
            "country": partial.country,
            "meta_bytes": len(meta),
            "bulk_bytes": len(bulk),
            "bulk": bulk_codec,
            "digest": _digest(payload),
            "scan_s": round(scan_s, 6),
        }
        blob = json.dumps(header, sort_keys=True).encode("ascii") + b"\n" + payload
        path = self._entry_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
        tmp.write_bytes(blob)
        os.replace(tmp, path)
        self.stats.stores += 1
        self.stats.bytes_written += len(blob)

    # ------------------------------------------------------------ maintenance

    def entry_count(self) -> int:
        """Number of entries currently on disk."""
        return sum(1 for _ in self.cache_dir.glob(f"*/*{ENTRY_SUFFIX}"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for entry in self.cache_dir.glob(f"*/*{ENTRY_SUFFIX}"):
            try:
                entry.unlink()
            except OSError:
                continue
            removed += 1
        return removed

    def inventory(self) -> list[CacheEntryInfo]:
        """Every entry on disk, sorted oldest-first (then by key).

        Reads only each entry's stat and header line — never the
        payload — so inventorying a multi-gigabyte cache stays cheap.
        Entries whose header no longer parses are still listed (with an
        unknown country) so pruning can get rid of them.
        """
        entries = []
        for path in self.cache_dir.glob(f"*/*{ENTRY_SUFFIX}"):
            try:
                stat = path.stat()
            except OSError:
                continue
            key = path.name[:-len(ENTRY_SUFFIX)]
            country, scan_s = "??", 0.0
            try:
                with path.open("rb") as handle:
                    header = json.loads(handle.readline())
                country = str(header.get("country", "??"))
                scan_s = float(header.get("scan_s", 0.0) or 0.0)
            except (OSError, ValueError, TypeError, UnicodeDecodeError):
                pass
            entries.append(CacheEntryInfo(
                key=key, country=country, size_bytes=stat.st_size,
                mtime=stat.st_mtime, scan_s=scan_s, path=path,
            ))
        entries.sort(key=lambda entry: (entry.mtime, entry.key))
        return entries

    def usage(self) -> dict:
        """Aggregate view over :meth:`inventory` (the ``cache stats`` CLI).

        JSON-ready: entry/byte totals, per-country entry counts, age
        bounds and the total recorded scan time the entries would save.
        """
        entries = self.inventory()
        by_country: dict[str, int] = {}
        for entry in entries:
            by_country[entry.country] = by_country.get(entry.country, 0) + 1
        return {
            "cache_dir": str(self.cache_dir),
            "entries": len(entries),
            "total_bytes": sum(entry.size_bytes for entry in entries),
            "countries": dict(sorted(by_country.items())),
            "oldest_mtime": entries[0].mtime if entries else None,
            "newest_mtime": entries[-1].mtime if entries else None,
            "recorded_scan_s": round(
                sum(entry.scan_s for entry in entries), 6
            ),
        }

    def prune(
        self,
        max_bytes: Optional[int] = None,
        older_than_s: Optional[float] = None,
        now: Optional[float] = None,
        dry_run: bool = False,
    ) -> PruneResult:
        """LRU-by-mtime eviction: age out, then shrink to a byte budget.

        ``older_than_s`` drops entries whose mtime lags ``now`` by more
        than that many seconds; ``max_bytes`` then removes oldest-first
        until the survivors fit the budget.  mtime approximates
        recency-of-use well enough here because stores rewrite the file;
        ties break on the key, so a prune is deterministic given the
        same on-disk state.  ``dry_run`` reports what would go without
        unlinking anything.
        """
        if max_bytes is None and older_than_s is None:
            raise ValueError("prune needs max_bytes and/or older_than_s")
        if max_bytes is not None and max_bytes < 0:
            raise ValueError("max_bytes must be non-negative")
        if older_than_s is not None and older_than_s < 0:
            raise ValueError("older_than_s must be non-negative")
        entries = self.inventory()
        reference = time.time() if now is None else now
        doomed: list[CacheEntryInfo] = []
        kept: list[CacheEntryInfo] = []
        for entry in entries:
            if older_than_s is not None and \
                    reference - entry.mtime > older_than_s:
                doomed.append(entry)
            else:
                kept.append(entry)
        if max_bytes is not None:
            kept_bytes = sum(entry.size_bytes for entry in kept)
            cut = 0
            while kept_bytes > max_bytes and cut < len(kept):
                doomed.append(kept[cut])
                kept_bytes -= kept[cut].size_bytes
                cut += 1
            kept = kept[cut:]
        removed = removed_bytes = 0
        for entry in doomed:
            if not dry_run:
                try:
                    entry.path.unlink()
                except OSError:
                    continue
            removed += 1
            removed_bytes += entry.size_bytes
        return PruneResult(
            examined=len(entries),
            removed=removed,
            removed_bytes=removed_bytes,
            kept=len(kept),
            kept_bytes=sum(entry.size_bytes for entry in kept),
            dry_run=dry_run,
        )


__all__ = [
    "CacheEntryInfo",
    "CacheStats",
    "PruneResult",
    "ScanCache",
    "ENTRY_SUFFIX",
]
