"""The two-level sweep scheduler with cross-scenario scan deduplication.

Naively, an S-scenario sweep costs S full ``Pipeline.run`` calls.  But
the scan cache keys one country's phase-1 result by
``(global fingerprint, country, country-slice fingerprint)`` — and most
(scenario, country) pairs across a matrix share that key: an outage
what-if shares *every* scan with the baseline, a vantage shift or an
evolution step re-keys only the countries it touches.  The
:class:`SweepRunner` therefore works in two levels:

1. **dedup** — flatten the matrix into (scenario, country) tasks, key
   each with the cache fingerprint functions, and group by key so every
   unique key is scanned exactly once;
2. **dispatch** — probe the shared :class:`~repro.cache.ScanCache` for
   hits, then push *all* remaining unique tasks through the execution
   strategy in one pool-filling wave
   (:meth:`~repro.exec.base.ExecutionStrategy.scan_groups`) instead of
   S sequential ``Pipeline.run`` calls.

Each scenario's dataset is then assembled by fanning the shared
partials back out (``Pipeline.assemble``), with scenarios whose configs
are identical (run fingerprint) sharing one dataset *object* — so the
comparison layer's :func:`~repro.analysis.engine.index.ensure_index`
builds each distinct index once.  World *generation* is deduplicated
one level further: configs that differ only in measurement-plane knobs
(fault plan, vantage ranks) describe the same world, which is generated
once and shared across their pipelines (:func:`_world_key`).

The dedup accounting is enforced at runtime the way
:class:`~repro.evolve.series.SnapshotSeries` enforces
``hits == unchanged``: the number of scans actually executed must equal
the unique keys minus the cache hits, and every scenario's every
country must be covered — a violation raises
:class:`SweepIntegrityError` instead of silently over- or
under-scanning.
"""

from __future__ import annotations

import dataclasses
import json
import logging
import time
from typing import TYPE_CHECKING, Optional, Sequence, Union

from repro.datagen.config import WorldConfig

from repro.cache.fingerprint import (
    country_key,
    country_slice_fingerprint,
    global_fingerprint,
    run_fingerprint,
)
from repro.core.crawler import DEFAULT_MAX_DEPTH
from repro.core.dataset import GovernmentHostingDataset
from repro.core.pipeline import Pipeline
from repro.datagen.generator import SyntheticWorld
from repro.exec import ExecutionStrategy, SerialExecutor
from repro.exec.partials import CountryPartial
from repro.faults import FaultPlan
from repro.scenarios.matrix import Scenario, ScenarioMatrix

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cache import ScanCache
    from repro.obs.registry import RunRegistry

logger = logging.getLogger(__name__)


def _world_key(config: WorldConfig) -> str:
    """Identity of the *generated world* a config describes.

    The fault plan and per-country vantage ranks steer the measurement
    plane only -- :mod:`repro.datagen` never reads them -- so configs
    that differ in nothing else describe byte-identical worlds.  The
    runner generates each distinct world once (generation dominates a
    run's cost at bench scales) and hands every sharing pipeline a
    shallow config-swapped view of it.
    """
    neutral = dataclasses.replace(
        config,
        fault_rate=0.0, fault_profile="mixed", fault_seed=None,
        country_overrides=tuple(
            dataclasses.replace(override, vantage_rank=0)
            for override in config.country_overrides
        ),
    )
    # canonical_dict drops now-default overrides, so a config whose only
    # override was a vantage shift keys like the un-overridden baseline.
    return json.dumps(neutral.canonical_dict(), sort_keys=True)


class SweepIntegrityError(RuntimeError):
    """The sweep's dedup accounting failed its runtime verification."""


@dataclasses.dataclass(frozen=True)
class SweepAccounting:
    """What the dedup level saved, in verifiable numbers."""

    #: Scenarios swept (including the baseline).
    scenarios: int
    #: Countries per scenario (the base selection).
    countries: int
    #: Flat (scenario, country) task count: ``scenarios * countries``.
    total_tasks: int
    #: Distinct ``(global, country, slice)`` keys across all tasks.
    unique_keys: int
    #: Unique keys served from the persistent cache.
    cache_hits: int
    #: Unique keys actually scanned this sweep.
    executed: int
    #: Distinct world configs (= pipelines built = datasets assembled).
    distinct_configs: int
    #: Distinct generated worlds (configs differing only in the
    #: measurement plane -- faults, vantage ranks -- share one).
    distinct_worlds: int
    #: Wall seconds of the scan wave.
    scan_wave_s: float

    @property
    def dedup_factor(self) -> float:
        """Tasks per unique key (1.0 = nothing shared)."""
        return self.total_tasks / self.unique_keys if self.unique_keys else 0.0

    def summary(self) -> str:
        """The grep-able one-line dedup accounting."""
        return (
            f"sweep: {self.scenarios} scenarios x {self.countries} countries "
            f"= {self.total_tasks} tasks -> {self.unique_keys} unique scans "
            f"({self.cache_hits} cache hits, {self.executed} executed, "
            f"dedup {self.dedup_factor:.2f}x), "
            f"{self.distinct_configs} distinct configs, "
            f"{self.distinct_worlds} worlds"
        )

    def to_dict(self) -> dict:
        data = dataclasses.asdict(self)
        data["dedup_factor"] = round(self.dedup_factor, 6)
        return data


@dataclasses.dataclass
class ScenarioResult:
    """One scenario's swept outcome."""

    scenario: Scenario
    dataset: GovernmentHostingDataset
    #: Full-config fingerprint; scenarios sharing it share ``dataset``.
    run_fp: str
    #: Countries whose scan key differs from the baseline's (sorted).
    changed_countries: tuple[str, ...]

    @property
    def name(self) -> str:
        return self.scenario.name

    @property
    def shares_baseline_dataset(self) -> bool:
        return not self.changed_countries and self.scenario.kind != "baseline"


@dataclasses.dataclass
class SweepResult:
    """Everything one sweep produced, baseline first."""

    results: tuple[ScenarioResult, ...]
    accounting: SweepAccounting

    @property
    def baseline(self) -> ScenarioResult:
        return self.results[0]

    def by_name(self, name: str) -> ScenarioResult:
        for result in self.results:
            if result.name == name:
                return result
        raise KeyError(f"no scenario named {name!r} in this sweep")

    def __iter__(self):
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)


class SweepRunner:
    """Schedules a compiled scenario matrix as one deduplicated wave."""

    def __init__(
        self,
        matrix: Union[ScenarioMatrix, Sequence[Scenario]],
        max_depth: int = DEFAULT_MAX_DEPTH,
        cache: Optional["ScanCache"] = None,
        executor: Optional[ExecutionStrategy] = None,
        registry: Optional["RunRegistry"] = None,
    ) -> None:
        scenarios = (
            matrix.compile() if isinstance(matrix, ScenarioMatrix)
            else tuple(matrix)
        )
        if not scenarios:
            raise ValueError("a sweep needs at least one scenario")
        names = [scenario.name for scenario in scenarios]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate scenario names in sweep: {names}")
        base_codes = scenarios[0].config.country_codes()
        for scenario in scenarios[1:]:
            if scenario.config.country_codes() != base_codes:
                raise ValueError(
                    f"scenario {scenario.name!r} selects different "
                    f"countries than the baseline; sweeps compare like "
                    f"with like"
                )
        self.scenarios = scenarios
        self.codes = base_codes
        self.max_depth = max_depth
        self.cache = cache
        self._executor = executor
        #: When set, one manifest per distinct config is recorded into
        #: this cross-run registry after assembly.
        self.registry = registry

    # -------------------------------------------------------------- run

    def run(self) -> SweepResult:
        """Dedup, dispatch one scan wave, fan out, assemble, verify."""
        strategy = self._executor or SerialExecutor()
        scenarios = self.scenarios
        codes = self.codes

        # Level 1: one pipeline per distinct config (keyed by the full
        # run fingerprint — configs themselves are not hashable), plus
        # each distinct config's (country, scan key) task list.  The
        # resolved plan matches what Pipeline builds for itself, so the
        # keys here are exactly what `cache.key_for(pipeline, code)`
        # would derive.
        pipelines: dict[str, Pipeline] = {}
        worlds: dict[str, "SyntheticWorld"] = {}
        scenario_fps: list[str] = []
        tasks_by_fp: dict[str, list[tuple[str, str]]] = {}
        for scenario in scenarios:
            config = scenario.config
            plan = FaultPlan.from_config(config)
            fp = run_fingerprint(config, self.max_depth, plan)
            if fp not in pipelines:
                world_key = _world_key(config)
                world = worlds.get(world_key)
                if world is None:
                    world = SyntheticWorld.generate(config)
                    worlds[world_key] = world
                if world.config is not config:
                    # Same world, different measurement plane: share the
                    # expensive substrates, swap in the scenario config.
                    world = dataclasses.replace(world, config=config)
                pipelines[fp] = Pipeline(world, max_depth=self.max_depth)
                global_fp = global_fingerprint(config, self.max_depth, plan)
                tasks_by_fp[fp] = [
                    (code, country_key(
                        global_fp, code,
                        country_slice_fingerprint(config, code),
                    ))
                    for code in codes
                ]
            scenario_fps.append(fp)

        # Flatten to unique keys, first-occurrence order (scenario
        # order, then canonical country order within each scenario).
        unique: dict[str, tuple[str, str]] = {}
        for fp in scenario_fps:
            for code, key in tasks_by_fp[fp]:
                if key not in unique:
                    unique[key] = (fp, code)

        # Level 2a: probe the shared cache for hits.
        partials: dict[str, CountryPartial] = {}
        cache_hits = 0
        if self.cache is not None:
            for key, (fp, code) in unique.items():
                hit = self.cache.load(key, code)
                if hit is not None:
                    partials[key] = hit
                    cache_hits += 1

        # Level 2b: group the misses by their owning pipeline (the one
        # whose scenario saw the key first — by per-country hermeticity
        # any sharing config would scan the identical partial), keeping
        # first-occurrence order, and dispatch them all in ONE wave.
        miss_by_fp: dict[str, tuple[list[str], list[str]]] = {}
        for key, (fp, code) in unique.items():
            if key in partials:
                continue
            group_codes, group_keys = miss_by_fp.setdefault(fp, ([], []))
            group_codes.append(code)
            group_keys.append(key)
        miss_groups = [
            (pipelines[fp], group_codes)
            for fp, (group_codes, _) in miss_by_fp.items()
        ]
        miss_keys = [
            group_keys for _, (_, group_keys) in miss_by_fp.items()
        ]
        wave_started = time.perf_counter()
        executed = 0
        if miss_groups:
            scanned = strategy.scan_groups(miss_groups)
            for (pipeline, group_codes), keys, fresh in zip(
                miss_groups, miss_keys, scanned
            ):
                if len(fresh) != len(group_codes):
                    raise SweepIntegrityError(
                        f"scan wave returned {len(fresh)} partials for "
                        f"{len(group_codes)} submitted countries"
                    )
                for code, key, partial in zip(group_codes, keys, fresh):
                    partials[key] = partial
                    executed += 1
                    if self.cache is not None and pipeline.supports_caching:
                        self.cache.store(
                            key, partial,
                            scan_s=pipeline.scan_seconds.get(code, 0.0),
                        )
        scan_wave_s = time.perf_counter() - wave_started

        # Runtime verification, SnapshotSeries-style: the dedup promise
        # is `executed == unique - hits` with every task covered.
        if cache_hits + executed != len(unique):
            raise SweepIntegrityError(
                f"sweep dedup accounting broken: {cache_hits} hits + "
                f"{executed} executed != {len(unique)} unique keys"
            )
        for fp in scenario_fps:
            for code, key in tasks_by_fp[fp]:
                partial = partials.get(key)
                if partial is None:
                    raise SweepIntegrityError(
                        f"no partial for country {code} under key {key}"
                    )
                if partial.country != code:
                    raise SweepIntegrityError(
                        f"key {key} resolved to country {partial.country}, "
                        f"expected {code}"
                    )

        # Fan out: assemble each distinct config's dataset exactly once
        # (scenarios sharing a fingerprint share the dataset OBJECT, so
        # downstream ensure_index() builds one index for all of them).
        datasets: dict[str, GovernmentHostingDataset] = {}
        for fp, pipeline in pipelines.items():
            ordered = [partials[key] for _, key in tasks_by_fp[fp]]
            datasets[fp] = pipeline.assemble(ordered, executor=strategy)

        if self.registry is not None:
            from repro.obs import RunManifest

            # One manifest per distinct config.  cache=None on purpose:
            # the shared cache's stats describe the whole wave, and
            # stamping sweep-wide accounting onto every per-config
            # manifest would misattribute it.
            for fp, pipeline in pipelines.items():
                self.registry.record(RunManifest.collect(
                    pipeline, datasets[fp], executor=strategy, cache=None,
                ))

        baseline_fp = scenario_fps[0]
        baseline_keys = dict(tasks_by_fp[baseline_fp])
        results = []
        for scenario, fp in zip(scenarios, scenario_fps):
            changed = tuple(sorted(
                code for code, key in tasks_by_fp[fp]
                if baseline_keys[code] != key
            ))
            results.append(ScenarioResult(
                scenario=scenario, dataset=datasets[fp], run_fp=fp,
                changed_countries=changed,
            ))

        accounting = SweepAccounting(
            scenarios=len(scenarios),
            countries=len(codes),
            total_tasks=len(scenarios) * len(codes),
            unique_keys=len(unique),
            cache_hits=cache_hits,
            executed=executed,
            distinct_configs=len(pipelines),
            distinct_worlds=len(worlds),
            scan_wave_s=round(scan_wave_s, 6),
        )
        logger.info("%s", accounting.summary())
        return SweepResult(results=tuple(results), accounting=accounting)


__all__ = [
    "ScenarioResult",
    "SweepAccounting",
    "SweepIntegrityError",
    "SweepResult",
    "SweepRunner",
]
