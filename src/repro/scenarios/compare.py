"""Comparative analysis of a swept scenario matrix against its baseline.

Per scenario, quantifies how the perturbation moved the paper's core
findings:

* **geolocation-verdict flips** — hostnames whose measured server
  country changed (computed only over the countries the scenario
  actually re-keyed; unchanged countries share the baseline's partial
  objects, so they cannot diverge);
* **category-mix deltas** — global URL-share change per hosting
  category plus the aggregate third-party share delta;
* **HHI shifts** — mean per-country serving-network concentration
  change and the biggest per-country movers;
* **outage blast radius** — for outage what-ifs, the countries losing
  more than 10% of their government URLs when the provider's ASNs go
  dark, via :mod:`repro.analysis.resilience` over the shared dataset.

Scenarios that share the baseline's run fingerprint share its dataset
object, so ``ensure_index`` builds one index for the whole group — a
sweep's comparison cost scales with *distinct* datasets, not scenarios.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.analysis.engine.index import CATEGORIES, ensure_index
from repro.analysis.diversification import country_network_hhi
from repro.analysis.resilience import outage_impact
from repro.core.dataset import GovernmentHostingDataset
from repro.scenarios.runner import ScenarioResult, SweepResult

#: A country must lose more than this URL share to count as affected
#: by an outage (the resilience analysis' threshold).
OUTAGE_THRESHOLD = 0.10


@dataclasses.dataclass(frozen=True)
class OutageBlastRadius:
    """Impact summary of one outage what-if."""

    asns: tuple[int, ...]
    names: tuple[str, ...]
    #: Countries losing > 10% of URLs, worst first.
    affected: tuple[tuple[str, float], ...]
    #: Mean URL share lost among affected countries.
    mean_share_lost: float

    @property
    def affected_count(self) -> int:
        return len(self.affected)

    @property
    def worst(self) -> Optional[tuple[str, float]]:
        return self.affected[0] if self.affected else None

    def to_dict(self) -> dict:
        return {
            "asns": list(self.asns),
            "names": list(self.names),
            "affected": [[code, round(share, 6)] for code, share in self.affected],
            "affected_count": self.affected_count,
            "mean_share_lost": round(self.mean_share_lost, 6),
        }


@dataclasses.dataclass(frozen=True)
class ScenarioDivergence:
    """How one scenario's measurement diverges from the baseline."""

    name: str
    kind: str
    description: str
    #: Countries the scenario re-keyed (empty = byte-identical world).
    changed_countries: tuple[str, ...]
    #: The scenario's dataset is the baseline's object (no divergence
    #: possible; outage what-ifs by construction).
    identical_dataset: bool
    #: Hostnames whose measured server country flipped.
    verdict_flips: int
    #: Per-country flip counts, sorted by count descending then code.
    flips_by_country: tuple[tuple[str, int], ...]
    #: Global URL-share delta per hosting category (scenario - baseline).
    category_deltas: tuple[tuple[str, float], ...]
    #: Aggregate third-party (3P Local + Regional + Global) share delta.
    third_party_delta: float
    #: Mean per-country serving-network HHI delta.
    hhi_mean_delta: float
    #: Largest absolute per-country HHI movers, biggest first.
    hhi_top_movers: tuple[tuple[str, float], ...]
    #: Blast radius, for outage scenarios only.
    outage: Optional[OutageBlastRadius] = None

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "description": self.description,
            "changed_countries": list(self.changed_countries),
            "identical_dataset": self.identical_dataset,
            "verdict_flips": self.verdict_flips,
            "flips_by_country": [
                [code, count] for code, count in self.flips_by_country
            ],
            "category_deltas": [
                [label, round(delta, 6)] for label, delta in self.category_deltas
            ],
            "third_party_delta": round(self.third_party_delta, 6),
            "hhi_mean_delta": round(self.hhi_mean_delta, 6),
            "hhi_top_movers": [
                [code, round(delta, 6)] for code, delta in self.hhi_top_movers
            ],
            "outage": self.outage.to_dict() if self.outage else None,
        }


def _server_countries(
    dataset: GovernmentHostingDataset, code: str
) -> dict[str, str]:
    """Measured server country per hostname of one country's slice."""
    country = dataset.countries.get(code)
    if country is None:
        return {}
    return {
        record.hostname: record.server_country
        for record in country.records
    }


def _category_shares(dataset: GovernmentHostingDataset) -> dict[str, float]:
    """Global URL share per category label (0.0 for empty datasets)."""
    index = ensure_index(dataset)
    url_totals, _ = index.global_category_counts()
    total = sum(url_totals)
    return {
        category.value: (url_totals[i] / total if total else 0.0)
        for i, category in enumerate(CATEGORIES)
    }


def compare_scenario(
    result: ScenarioResult,
    baseline: ScenarioResult,
    top_movers: int = 5,
) -> ScenarioDivergence:
    """Divergence of one swept scenario from the sweep's baseline."""
    scenario = result.scenario
    identical = result.dataset is baseline.dataset

    flips_by_country: list[tuple[str, int]] = []
    verdict_flips = 0
    if not identical:
        # Only re-keyed countries can diverge: unchanged ones were fanned
        # out from the very same partial objects.
        for code in result.changed_countries:
            base_verdicts = _server_countries(baseline.dataset, code)
            new_verdicts = _server_countries(result.dataset, code)
            flips = sum(
                1 for hostname, server in new_verdicts.items()
                if hostname in base_verdicts
                and base_verdicts[hostname] != server
            )
            if flips:
                flips_by_country.append((code, flips))
                verdict_flips += flips
        flips_by_country.sort(key=lambda item: (-item[1], item[0]))

    if identical:
        category_deltas = tuple(
            (category.value, 0.0) for category in CATEGORIES
        )
        third_party_delta = 0.0
        hhi_mean_delta = 0.0
        hhi_movers: tuple[tuple[str, float], ...] = ()
    else:
        base_shares = _category_shares(baseline.dataset)
        new_shares = _category_shares(result.dataset)
        category_deltas = tuple(
            (category.value,
             new_shares[category.value] - base_shares[category.value])
            for category in CATEGORIES
        )
        third_party_delta = sum(
            delta for label, delta in category_deltas
            if label != "Govt&SOE"
        )
        base_hhi = country_network_hhi(baseline.dataset)
        new_hhi = country_network_hhi(result.dataset)
        shared = sorted(set(base_hhi) & set(new_hhi))
        deltas = {code: new_hhi[code] - base_hhi[code] for code in shared}
        hhi_mean_delta = (
            sum(deltas.values()) / len(deltas) if deltas else 0.0
        )
        hhi_movers = tuple(sorted(
            ((code, delta) for code, delta in deltas.items() if delta),
            key=lambda item: (-abs(item[1]), item[0]),
        )[:top_movers])

    outage = None
    if scenario.outage_asns:
        # Blast radius is computed over the scenario's (shared) dataset;
        # multiple ASNs compound by taking each country's worst loss.
        worst_loss: dict[str, float] = {}
        for asn in scenario.outage_asns:
            for code, impact in outage_impact(result.dataset, asn).items():
                if impact.url_share_lost > worst_loss.get(code, 0.0):
                    worst_loss[code] = impact.url_share_lost
        affected = tuple(sorted(
            ((code, share) for code, share in worst_loss.items()
             if share > OUTAGE_THRESHOLD),
            key=lambda item: (-item[1], item[0]),
        ))
        mean_lost = (
            sum(share for _, share in affected) / len(affected)
            if affected else 0.0
        )
        outage = OutageBlastRadius(
            asns=scenario.outage_asns,
            names=scenario.outage_names,
            affected=affected,
            mean_share_lost=mean_lost,
        )

    return ScenarioDivergence(
        name=scenario.name,
        kind=scenario.kind,
        description=scenario.description,
        changed_countries=result.changed_countries,
        identical_dataset=identical,
        verdict_flips=verdict_flips,
        flips_by_country=tuple(flips_by_country),
        category_deltas=category_deltas,
        third_party_delta=third_party_delta,
        hhi_mean_delta=hhi_mean_delta,
        hhi_top_movers=hhi_movers,
        outage=outage,
    )


def compare_sweep(
    sweep: SweepResult, top_movers: int = 5
) -> tuple[ScenarioDivergence, ...]:
    """Divergence of every non-baseline scenario, in sweep order."""
    baseline = sweep.baseline
    return tuple(
        compare_scenario(result, baseline, top_movers=top_movers)
        for result in sweep.results[1:]
    )


__all__ = [
    "OUTAGE_THRESHOLD",
    "OutageBlastRadius",
    "ScenarioDivergence",
    "compare_scenario",
    "compare_sweep",
]
