"""Declarative scenario matrices.

A :class:`ScenarioMatrix` starts from one baseline
:class:`~repro.datagen.config.WorldConfig` and adds perturbation axes:

* **vantage** — move selected countries' measurements to an alternate
  VPN exit (``CountryOverride.vantage_rank``), the "Not All Roads Lead
  to Rome" sensitivity axis;
* **faults** — run the same world over an unreliable measurement plane
  (a :mod:`repro.faults` profile at some rate, e.g. the ``dns`` profile
  for authoritative-DNS stress);
* **outage** — a provider-outage what-if: the *measured* world is the
  baseline's (same config, so the sweep shares its scans and dataset
  outright) and :mod:`repro.analysis.resilience` quantifies the blast
  radius of the named provider's ASNs going dark;
* **evolution** — an evolved snapshot (``EvolutionModel`` steps applied
  to the baseline), where only mutated countries re-key.

:meth:`ScenarioMatrix.compile` freezes the matrix into a baseline-first
tuple of :class:`Scenario` objects — pure configs plus outage metadata
— which is all the :class:`~repro.scenarios.runner.SweepRunner` needs:
every deduplication decision falls out of the configs' cache
fingerprints, never out of scenario *kinds*.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Optional, Sequence, Union

from repro.datagen.config import CountryOverride, WorldConfig
from repro.evolve import EvolutionModel, EvolutionRates
from repro.faults.plan import FAULT_PROFILE_NAMES
from repro.measure.vpn import UnknownVantageError, VpnCatalog
from repro.netsim.providers import PROVIDERS_BY_KEY, provider_keys

#: The reserved name of the implicit first scenario.
BASELINE_NAME = "baseline"

#: Every scenario kind a matrix can hold.
SCENARIO_KINDS = ("baseline", "vantage", "faults", "outage", "evolution")


class MatrixError(ValueError):
    """A scenario matrix is malformed (bad kind, name, or parameter)."""


@dataclasses.dataclass(frozen=True)
class Scenario:
    """One compiled cell of the matrix: a name bound to a full config.

    ``config`` alone decides what gets scanned (and deduplicated);
    ``outage_asns`` only parameterize the post-hoc resilience analysis
    of an outage what-if, whose measured world is the baseline's.
    """

    name: str
    kind: str
    config: WorldConfig
    description: str = ""
    #: ASNs taken offline in an ``outage`` scenario's analysis.
    outage_asns: tuple[int, ...] = ()
    #: Display names matching ``outage_asns``.
    outage_names: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in SCENARIO_KINDS:
            raise MatrixError(
                f"unknown scenario kind {self.kind!r}; expected one of "
                f"{', '.join(SCENARIO_KINDS)}"
            )
        if not self.name or "\n" in self.name:
            raise MatrixError(f"invalid scenario name {self.name!r}")


class ScenarioMatrix:
    """Baseline config + perturbation axes, compiled to scenarios."""

    def __init__(self, base: WorldConfig) -> None:
        self.base = base
        self._scenarios: list[Scenario] = []
        self._names: set[str] = {BASELINE_NAME}
        #: Shared vantage catalog for validating ranks at add time.
        self._vpn = VpnCatalog()

    # ------------------------------------------------------------- axes

    def _add(self, scenario: Scenario) -> Scenario:
        if scenario.name in self._names:
            raise MatrixError(f"duplicate scenario name {scenario.name!r}")
        self._names.add(scenario.name)
        self._scenarios.append(scenario)
        return scenario

    def add_vantage(
        self,
        name: str,
        countries: Union[str, Sequence[str]] = "all",
        rank: int = 1,
    ) -> Scenario:
        """Measure from each listed country's rank-``rank`` VPN exit.

        ``countries="all"`` moves every country that *has* that many
        alternate exits (the rest keep their primary and stay
        deduplicated against the baseline); an explicit list is
        validated strictly — an unknown country or exhausted rank
        raises the catalog's descriptive error immediately.
        """
        if rank < 1:
            raise MatrixError(
                f"vantage scenarios need rank >= 1, got {rank}"
            )
        base_codes = self.base.country_codes()
        if isinstance(countries, str):
            if countries != "all":
                raise MatrixError(
                    f"countries must be 'all' or a list, got {countries!r}"
                )
            moved = [
                code for code in base_codes
                if self._vpn.alternate_count(code) >= rank
            ]
        else:
            moved = []
            for code in countries:
                code = code.upper()
                if code not in base_codes:
                    raise MatrixError(
                        f"vantage scenario {name!r} references {code}, "
                        f"which is outside the base country selection"
                    )
                # Raises UnknownVantageError with the country's actual
                # exits when the rank does not exist.
                self._vpn.vantage_at(code, rank)
                moved.append(code)
        if not moved:
            raise MatrixError(
                f"vantage scenario {name!r} moves no countries "
                f"(no alternate exits at rank {rank})"
            )
        overrides = {
            override.country.upper(): override
            for override in self.base.country_overrides
        }
        for code in moved:
            current = overrides.get(code, CountryOverride(country=code))
            overrides[code] = dataclasses.replace(current, vantage_rank=rank)
        config = dataclasses.replace(
            self.base,
            country_overrides=tuple(
                overrides[code] for code in sorted(overrides)
            ),
        )
        return self._add(Scenario(
            name=name, kind="vantage", config=config,
            description=(
                f"rank-{rank} VPN exits for {len(moved)} "
                f"countr{'y' if len(moved) == 1 else 'ies'}"
            ),
        ))

    def add_faults(
        self,
        name: str,
        rate: float,
        profile: str = "mixed",
        fault_seed: Optional[int] = None,
    ) -> Scenario:
        """Run the baseline world over an unreliable measurement plane."""
        if profile not in FAULT_PROFILE_NAMES:
            raise MatrixError(
                f"unknown fault profile {profile!r}; expected one of "
                f"{', '.join(FAULT_PROFILE_NAMES)}"
            )
        if not 0.0 < rate <= 1.0:
            raise MatrixError(
                f"fault scenarios need a rate in (0, 1], got {rate}"
            )
        config = dataclasses.replace(
            self.base, fault_rate=rate, fault_profile=profile,
            fault_seed=fault_seed,
        )
        return self._add(Scenario(
            name=name, kind="faults", config=config,
            description=f"{profile} faults at rate {rate:g}",
        ))

    def add_outage(
        self,
        name: str,
        provider: Optional[str] = None,
        asn: Optional[int] = None,
    ) -> Scenario:
        """A provider-outage what-if over the *baseline* measurement.

        Costs no extra scans: the measured world is byte-identical to
        the baseline's, and the comparison layer computes the blast
        radius of the provider's ASNs from the shared dataset.
        """
        if (provider is None) == (asn is None):
            raise MatrixError(
                "outage scenarios take exactly one of provider= or asn="
            )
        if provider is not None:
            spec = PROVIDERS_BY_KEY.get(provider)
            if spec is None:
                raise MatrixError(
                    f"unknown provider {provider!r}; expected one of "
                    f"{', '.join(provider_keys())}"
                )
            asns, names = (spec.asn,), (spec.name,)
            label = spec.name
        else:
            asns, names = (int(asn),), (f"AS{asn}",)
            label = f"AS{asn}"
        return self._add(Scenario(
            name=name, kind="outage", config=self.base,
            description=f"outage of {label}",
            outage_asns=asns, outage_names=names,
        ))

    def add_evolution(
        self,
        name: str,
        steps: int = 1,
        seed: Optional[int] = None,
        rates: Optional[EvolutionRates] = None,
    ) -> Scenario:
        """An evolved snapshot ``steps`` mutations ahead of the baseline."""
        if steps < 1:
            raise MatrixError(f"evolution needs steps >= 1, got {steps}")
        model = EvolutionModel(
            seed if seed is not None else self.base.seed, rates
        )
        config = self.base
        for step in range(1, steps + 1):
            config = model.evolve(config, step).config
        return self._add(Scenario(
            name=name, kind="evolution", config=config,
            description=f"evolved {steps} step{'s' if steps != 1 else ''}",
        ))

    # ---------------------------------------------------------- compile

    def compile(self) -> tuple[Scenario, ...]:
        """Freeze the matrix: the baseline scenario first, then the
        perturbations in the order they were added."""
        baseline = Scenario(
            name=BASELINE_NAME, kind="baseline", config=self.base,
            description="unperturbed base configuration",
        )
        return (baseline, *self._scenarios)

    def __len__(self) -> int:
        """Scenario count including the implicit baseline."""
        return 1 + len(self._scenarios)

    # ------------------------------------------------------ declarative

    @classmethod
    def from_dict(
        cls, data: dict, base: Optional[WorldConfig] = None
    ) -> "ScenarioMatrix":
        """Build a matrix from its JSON form.

        Schema::

            {"base": {...WorldConfig field overrides...},
             "scenarios": [
               {"name": "...", "kind": "vantage",
                "countries": "all" | ["US", ...], "rank": 1},
               {"name": "...", "kind": "faults",
                "rate": 0.05, "profile": "dns", "fault_seed": null},
               {"name": "...", "kind": "outage",
                "provider": "amazon"}            # or {"asn": 16509}
               {"name": "...", "kind": "evolution",
                "steps": 1, "seed": null, "rates": {...}},
             ]}

        ``base`` field overrides apply on top of the given ``base``
        config (or a default :class:`WorldConfig` when None).
        """
        if not isinstance(data, dict):
            raise MatrixError("matrix document must be a JSON object")
        base_fields = data.get("base", {})
        if not isinstance(base_fields, dict):
            raise MatrixError("matrix 'base' must be an object")
        try:
            if base_fields:
                base = dataclasses.replace(
                    base if base is not None else WorldConfig(),
                    **base_fields,
                )
            elif base is None:
                base = WorldConfig()
        except (TypeError, ValueError) as error:
            raise MatrixError(f"bad matrix base config: {error}") from error
        matrix = cls(base)
        entries = data.get("scenarios", [])
        if not isinstance(entries, list):
            raise MatrixError("matrix 'scenarios' must be a list")
        for position, entry in enumerate(entries):
            if not isinstance(entry, dict):
                raise MatrixError(f"scenario #{position} must be an object")
            kind = entry.get("kind")
            name = entry.get("name")
            if not isinstance(name, str) or not name:
                raise MatrixError(f"scenario #{position} needs a name")
            try:
                if kind == "vantage":
                    matrix.add_vantage(
                        name,
                        countries=entry.get("countries", "all"),
                        rank=int(entry.get("rank", 1)),
                    )
                elif kind == "faults":
                    seed = entry.get("fault_seed")
                    matrix.add_faults(
                        name,
                        rate=float(entry["rate"]),
                        profile=entry.get("profile", "mixed"),
                        fault_seed=None if seed is None else int(seed),
                    )
                elif kind == "outage":
                    asn = entry.get("asn")
                    matrix.add_outage(
                        name,
                        provider=entry.get("provider"),
                        asn=None if asn is None else int(asn),
                    )
                elif kind == "evolution":
                    rates = entry.get("rates")
                    seed = entry.get("seed")
                    matrix.add_evolution(
                        name,
                        steps=int(entry.get("steps", 1)),
                        seed=None if seed is None else int(seed),
                        rates=(
                            EvolutionRates(**rates)
                            if isinstance(rates, dict) else None
                        ),
                    )
                else:
                    raise MatrixError(
                        f"scenario {name!r} has unknown kind {kind!r}; "
                        f"expected one of "
                        f"{', '.join(k for k in SCENARIO_KINDS if k != 'baseline')}"
                    )
            except MatrixError:
                raise
            except UnknownVantageError as error:
                raise MatrixError(
                    f"scenario {name!r}: {error}"
                ) from error
            except KeyError as error:
                raise MatrixError(
                    f"scenario {name!r} is missing field {error}"
                ) from error
            except (TypeError, ValueError) as error:
                raise MatrixError(
                    f"scenario {name!r} is malformed: {error}"
                ) from error
        return matrix

    @classmethod
    def from_json(
        cls, text: str, base: Optional[WorldConfig] = None
    ) -> "ScenarioMatrix":
        """Parse :meth:`from_dict`'s schema from a JSON string."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise MatrixError(f"matrix is not valid JSON: {error}") from error
        return cls.from_dict(data, base=base)


__all__ = [
    "BASELINE_NAME",
    "SCENARIO_KINDS",
    "MatrixError",
    "Scenario",
    "ScenarioMatrix",
]
