"""Scenario sweeps: one measurement matrix, one deduplicated scan wave.

"Not All Roads Lead to Rome" shows the vantage you measure from changes
what you conclude; DNS-resilience work motivates stress and outage
what-ifs.  This package turns those questions into a batch instrument:

* :class:`ScenarioMatrix` declares a baseline world plus perturbation
  axes — alternate VPN vantages per country, fault/DNS-stress profiles,
  provider-outage what-ifs, evolution steps;
* :class:`SweepRunner` compiles the matrix into flat (scenario,
  country) scan tasks, groups them by ``(global fingerprint, country
  slice fingerprint)`` so each unique key is scanned *exactly once*
  (enforced at runtime via :class:`SweepIntegrityError`), shares the
  persistent scan cache, and dispatches the unique set across the
  serial/thread/process executors in one pool-filling wave;
* :func:`compare_sweep` renders per-scenario divergence from the
  baseline — geolocation-verdict flips, category-mix deltas, HHI
  shifts, outage blast radius.

Because deduplication happens on cache *keys*, not scenario kinds, any
scenario pair that happens to agree on a country's world slice shares
that scan — an S-scenario sweep costs about as much as the few slices
that actually differ.
"""

from repro.scenarios.compare import (
    OutageBlastRadius,
    ScenarioDivergence,
    compare_scenario,
    compare_sweep,
)
from repro.scenarios.matrix import (
    BASELINE_NAME,
    SCENARIO_KINDS,
    MatrixError,
    Scenario,
    ScenarioMatrix,
)
from repro.scenarios.runner import (
    ScenarioResult,
    SweepAccounting,
    SweepIntegrityError,
    SweepResult,
    SweepRunner,
)

__all__ = [
    "BASELINE_NAME",
    "SCENARIO_KINDS",
    "MatrixError",
    "OutageBlastRadius",
    "Scenario",
    "ScenarioDivergence",
    "ScenarioMatrix",
    "ScenarioResult",
    "SweepAccounting",
    "SweepIntegrityError",
    "SweepResult",
    "SweepRunner",
    "compare_scenario",
    "compare_sweep",
]
