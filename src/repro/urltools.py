"""Small URL and domain-name utilities shared across the library.

Implements just enough URL handling for the pipeline: extracting
hostnames, paths, and *registrable domains* (the "2LD" of the paper's
Appendix D, i.e. 2LD+TLD, accounting for country-code second-level
registries such as ``com.ar`` or ``co.uk``).
"""

from __future__ import annotations

import functools
from urllib.parse import urlsplit

#: Upper bound on the hostname/domain memo tables.  URL corpora repeat a
#: small set of hostnames thousands of times, so the caches stay tiny in
#: practice; the bound only guards pathological inputs.
_CACHE_SIZE = 65536

#: Second-level labels under which ccTLD registries delegate names; a domain
#: like ``example.com.ar`` has registrable domain ``example.com.ar``, not
#: ``com.ar``.
_CC_SECOND_LEVEL = {
    "com", "org", "net", "edu", "gov", "gob", "gub", "gouv", "govt", "go",
    "mil", "ac", "co", "or", "ne", "in", "web", "fed", "admin", "nic",
}


@functools.lru_cache(maxsize=_CACHE_SIZE)
def hostname_of(url: str) -> str:
    """Lower-cased hostname of a URL (memoized — ``urlsplit`` dominates
    filter time when the same URL or hostname recurs).

    Raises :class:`ValueError` for URLs without a network location.
    """
    parts = urlsplit(url)
    if not parts.hostname:
        raise ValueError(f"URL has no hostname: {url!r}")
    return parts.hostname.lower()


def path_of(url: str) -> str:
    """Path component of a URL ('/' when empty)."""
    return urlsplit(url).path or "/"


@functools.lru_cache(maxsize=_CACHE_SIZE)
def registrable_domain(hostname: str) -> str:
    """The 2LD+TLD a user could register (Appendix D's "2LD").

    ``www.ipc.gob.mx`` -> ``ipc.gob.mx``; ``cdn.example.com`` ->
    ``example.com``.  Single-label names are returned unchanged.
    """
    labels = hostname.lower().rstrip(".").split(".")
    if len(labels) <= 2:
        return ".".join(labels)
    # ccTLD with a delegated second level (e.g. gob.mx, com.ar, gov.uk).
    if len(labels[-1]) == 2 and labels[-2] in _CC_SECOND_LEVEL:
        return ".".join(labels[-3:])
    return ".".join(labels[-2:])


def same_registrable_domain(host_a: str, host_b: str) -> bool:
    """Whether two hostnames share a registrable domain."""
    return registrable_domain(host_a) == registrable_domain(host_b)


def labels_of(hostname: str) -> tuple[str, ...]:
    """DNS labels of a hostname, lower-cased, root dot stripped."""
    return tuple(hostname.lower().rstrip(".").split("."))


__all__ = [
    "hostname_of",
    "path_of",
    "registrable_domain",
    "same_registrable_domain",
    "labels_of",
]
