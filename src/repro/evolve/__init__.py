"""Longitudinal world evolution with incremental delta-scans.

The paper's predecessor measured government hosting a year apart and
found third-party reliance growing; this package makes that setting a
first-class object.  An :class:`EvolutionModel` derives the world
configuration of snapshot T+1 from snapshot T by seeded, pure
per-country mutations — providers gain and lose customers, sites
migrate to hyperscalers, new state-owned enterprises appear, address
space re-registers — while every untouched country keeps a
byte-identical slice of the configuration.

Because the generator is per-country hermetic and the scan cache keys
entries by ``(global fingerprint, country, country-slice fingerprint)``
(see :mod:`repro.cache.fingerprint`), a :class:`SnapshotSeries` run
re-scans exactly the mutated countries of each snapshot and serves the
rest from cache: the incremental hit rate equals the unchanged-country
fraction by construction, and each snapshot's dataset is byte-identical
to a cold run of the same derived configuration.
"""

from repro.evolve.model import EvolutionModel, EvolutionRates, EvolutionStep
from repro.evolve.mutations import MUTATION_KINDS, Mutation
from repro.evolve.series import SnapshotRecord, SnapshotSeries

__all__ = [
    "EvolutionModel",
    "EvolutionRates",
    "EvolutionStep",
    "MUTATION_KINDS",
    "Mutation",
    "SnapshotRecord",
    "SnapshotSeries",
]
