"""The evolution model: snapshot T+1's configuration from snapshot T's.

:meth:`EvolutionModel.evolve` is a pure function of ``(config, step)``
given the model's seed: every per-country decision draws from
``derive_rng(seed, "evolve", step, country)``, a stream that depends on
nothing but those components — not on the country selection, not on
other countries' draws, not on how many snapshots came before.  Two
consequences the series runner relies on:

* determinism — re-deriving any snapshot's configuration from the base
  yields the identical object, so a series can be replayed or extended
  without storing intermediate configs;
* slice stability — a country the step does not touch keeps its
  existing :class:`~repro.datagen.config.CountryOverride` object (or
  absence thereof) byte-for-byte, so its per-country cache key is
  unchanged and its scan is served from cache.

Mutations compose across steps: a country that gains a provider in step
1 and migrates to hyperscalers in step 3 carries both in its override
from step 3 on.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.datagen.config import CountryOverride, WorldConfig
from repro.datagen.seeds import derive_rng
from repro.evolve.mutations import Mutation
from repro.netsim.providers import provider_keys

#: ``hyperscaler_shift`` never exceeds what the drift model accepts.
_MAX_SHIFT = 0.5

#: ``prefix_epoch`` is bounded by the numbering plan's epoch space.
_MAX_EPOCH = 31


@dataclasses.dataclass(frozen=True)
class EvolutionRates:
    """Per-country, per-step probabilities of each mutation kind.

    The defaults model gradual change: with ~26% of countries touched
    per step, a snapshot's incremental run still hits the cache for
    roughly three quarters of the sample.
    """

    provider_gain: float = 0.08
    provider_loss: float = 0.05
    hyperscaler_migration: float = 0.08
    soe_formation: float = 0.04
    prefix_reregistration: float = 0.03

    def __post_init__(self) -> None:
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(
                    f"rate {field.name} must be in [0, 1], got {value!r}"
                )


@dataclasses.dataclass(frozen=True)
class EvolutionStep:
    """One derived snapshot configuration plus its provenance."""

    #: The evolution step number that produced this config (1-based:
    #: step N derives snapshot N from snapshot N-1).
    step: int
    #: The derived configuration (snapshot T+1's world).
    config: WorldConfig
    #: Every mutation the step applied, country order.
    mutations: tuple[Mutation, ...]

    @property
    def changed_countries(self) -> tuple[str, ...]:
        """Countries whose config slice this step rewrote (sorted)."""
        return tuple(sorted({m.country for m in self.mutations}))


class EvolutionModel:
    """Seeded generator of year-over-year configuration change."""

    def __init__(self, seed: int,
                 rates: Optional[EvolutionRates] = None) -> None:
        self.seed = seed
        self.rates = rates if rates is not None else EvolutionRates()

    def evolve(self, config: WorldConfig, step: int) -> EvolutionStep:
        """Derive the next snapshot's configuration from ``config``.

        Pure and replayable: the same ``(config, step)`` always yields
        the same result under the same model seed.
        """
        if step < 1:
            raise ValueError(f"step must be >= 1, got {step}")
        overrides = {
            override.country: override
            for override in config.country_overrides
        }
        mutations: list[Mutation] = []
        for code in config.country_codes():
            mutated, country_mutations = self._evolve_country(
                code, overrides.get(code), step
            )
            if not country_mutations:
                continue
            mutations.extend(country_mutations)
            if mutated.is_default():
                overrides.pop(code, None)
            else:
                overrides[code] = mutated
        new_config = dataclasses.replace(
            config,
            country_overrides=tuple(
                overrides[code] for code in sorted(overrides)
            ),
        )
        return EvolutionStep(
            step=step, config=new_config, mutations=tuple(mutations)
        )

    # ------------------------------------------------------- per country

    def _evolve_country(
        self, code: str, override: Optional[CountryOverride], step: int
    ) -> tuple[CountryOverride, list[Mutation]]:
        rng = derive_rng(self.seed, "evolve", step, code)
        current = override if override is not None else \
            CountryOverride(country=code)
        tilts = dict(current.provider_tilt)
        shift = current.hyperscaler_shift
        soes = current.extra_soes
        epoch = current.prefix_epoch
        mutations: list[Mutation] = []
        rates = self.rates

        if rng.random() < rates.provider_gain:
            key = rng.choice(provider_keys())
            factor = round(1.15 + 0.35 * rng.random(), 4)
            tilts[key] = round(tilts.get(key, 1.0) * factor, 4)
            mutations.append(Mutation(
                country=code, kind="provider-gain",
                detail=(("provider", key), ("factor", factor)),
            ))
        if rng.random() < rates.provider_loss:
            # Losses prefer a provider the country already tilted
            # toward; otherwise any provider's base adoption shrinks.
            boosted = sorted(key for key, value in tilts.items() if value > 1)
            key = rng.choice(boosted) if boosted else \
                rng.choice(provider_keys())
            factor = round(1.15 + 0.35 * rng.random(), 4)
            tilts[key] = round(tilts.get(key, 1.0) / factor, 4)
            mutations.append(Mutation(
                country=code, kind="provider-loss",
                detail=(("provider", key), ("factor", factor)),
            ))
        if rng.random() < rates.hyperscaler_migration and shift < _MAX_SHIFT:
            delta = round(0.01 + 0.04 * rng.random(), 4)
            shift = round(min(_MAX_SHIFT, shift + delta), 4)
            mutations.append(Mutation(
                country=code, kind="hyperscaler-migration",
                detail=(("delta", delta), ("shift", shift)),
            ))
        if rng.random() < rates.soe_formation:
            soes += 1
            mutations.append(Mutation(
                country=code, kind="new-soe",
                detail=(("extra_soes", soes),),
            ))
        if rng.random() < rates.prefix_reregistration and epoch < _MAX_EPOCH:
            epoch += 1
            mutations.append(Mutation(
                country=code, kind="prefix-reregistration",
                detail=(("epoch", epoch),),
            ))

        if not mutations:
            return current, []
        mutated = CountryOverride(
            country=code,
            provider_tilt=tuple(sorted(tilts.items())),
            hyperscaler_shift=shift,
            extra_soes=soes,
            prefix_epoch=epoch,
            # Evolution never moves vantages, but a scenario that did
            # (vantage_rank set on the base snapshot) must keep its
            # vantage through subsequent steps.
            vantage_rank=current.vantage_rank,
        )
        return mutated, mutations


__all__ = ["EvolutionModel", "EvolutionRates", "EvolutionStep"]
