"""Mutation events: what changed between two snapshots, and why.

Each :class:`Mutation` records one seeded decision the
:class:`~repro.evolve.model.EvolutionModel` took for one country.  They
are pure provenance — applying a mutation happens entirely through the
derived :class:`~repro.datagen.config.CountryOverride`; the event
objects exist so manifests, reports and tests can say *which* countries
changed in a step and *how* without diffing configurations.
"""

from __future__ import annotations

import dataclasses

#: The modeled kinds of year-over-year change, in the order the model
#: considers them for each country.
MUTATION_KINDS = (
    "provider-gain",        # a Global provider wins the country's sites
    "provider-loss",        # a Global provider loses them again
    "hyperscaler-migration",  # domestic sites move onto hyperscalers
    "new-soe",              # a new state-owned enterprise network appears
    "prefix-reregistration",  # the country's address space re-registers
)


@dataclasses.dataclass(frozen=True)
class Mutation:
    """One seeded change applied to one country in one evolution step."""

    country: str
    kind: str
    #: Kind-specific payload: the provider key and tilt factor for
    #: provider moves, the shift delta for migrations, the new SOE or
    #: epoch count otherwise.  Values are JSON-ready scalars.
    detail: tuple[tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in MUTATION_KINDS:
            raise ValueError(
                f"unknown mutation kind {self.kind!r}; expected one of "
                f"{', '.join(MUTATION_KINDS)}"
            )

    def to_dict(self) -> dict:
        """JSON-ready rendering for manifests and series reports."""
        return {
            "country": self.country,
            "kind": self.kind,
            "detail": {key: value for key, value in self.detail},
        }


__all__ = ["MUTATION_KINDS", "Mutation"]
