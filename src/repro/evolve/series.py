"""The snapshot-series runner: N worlds, one cache, incremental scans.

:class:`SnapshotSeries` drives ``Pipeline.run`` once per snapshot over
a shared :class:`~repro.cache.ScanCache`.  Snapshot 0 measures the base
configuration; each later snapshot's configuration is derived by the
:class:`~repro.evolve.model.EvolutionModel` from its predecessor.
Because unchanged countries keep their cache keys, every incremental
snapshot re-scans exactly the countries its evolution step touched —
the runner *asserts* this (``verify_hit_rates``): a snapshot whose
misses are not exactly its changed countries means the hermeticity
contract broke, which is a bug, not a degradation.

Each snapshot's accounting is a fresh
:class:`~repro.cache.CacheStats` (the shared cache's cumulative stats
are preserved in :attr:`SnapshotSeries.total_stats`), and when
observability is on the per-snapshot hit rate is exported as a gauge.
With ``collect_manifests`` the runner emits one
:class:`~repro.obs.RunManifest` per snapshot whose ``evolution`` block
chains it to its parent: the parent's run fingerprint, the mutation
seed, the step number and the changed-country list.
"""

from __future__ import annotations

import dataclasses
import logging
from typing import TYPE_CHECKING, Optional, Union

from repro.cache import CacheStats, ScanCache, run_fingerprint
from repro.core.pipeline import DEFAULT_MAX_DEPTH, Pipeline
from repro.datagen.config import WorldConfig
from repro.datagen.generator import SyntheticWorld
from repro.evolve.model import EvolutionModel, EvolutionRates
from repro.evolve.mutations import Mutation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.dataset import GovernmentHostingDataset
    from repro.exec import ExecutionStrategy
    from repro.obs import Observability, RunManifest
    from repro.obs.registry import RunRegistry

logger = logging.getLogger(__name__)


@dataclasses.dataclass
class SnapshotRecord:
    """One measured snapshot of a series."""

    #: Position in the series (0 = the base snapshot).
    step: int
    #: Display label ("T+0", "T+1", ...).
    label: str
    #: The configuration this snapshot measured.
    config: WorldConfig
    #: The measured dataset.
    dataset: "GovernmentHostingDataset"
    #: Run fingerprint of this snapshot (manifest identity).
    fingerprint: str
    #: Cache accounting of this snapshot alone.
    cache_stats: Optional[CacheStats]
    #: Mutations the evolution step applied to *reach* this snapshot
    #: (empty for the base snapshot).
    mutations: tuple[Mutation, ...]
    #: Countries the step rewrote (sorted; empty for the base).
    changed_countries: tuple[str, ...]
    #: The previous snapshot's fingerprint (None for the base).
    parent_fingerprint: Optional[str]
    #: Provenance manifest, when the series collects them.
    manifest: Optional["RunManifest"] = None

    @property
    def expected_hit_rate(self) -> Optional[float]:
        """Unchanged-country fraction (None for the base snapshot)."""
        if self.parent_fingerprint is None:
            return None
        total = len(self.config.country_codes())
        if total == 0:
            return 0.0
        return (total - len(self.changed_countries)) / total


class SeriesIntegrityError(RuntimeError):
    """An incremental snapshot's cache behavior broke the contract."""


class SnapshotSeries:
    """Run a longitudinal series of snapshots incrementally."""

    def __init__(
        self,
        base_config: WorldConfig,
        snapshots: int,
        *,
        evolution_seed: int = 1,
        rates: Optional[EvolutionRates] = None,
        cache: Optional[Union[ScanCache, str]] = None,
        max_depth: int = DEFAULT_MAX_DEPTH,
        executor: Optional["ExecutionStrategy"] = None,
        obs: Optional["Observability"] = None,
        collect_manifests: bool = False,
        verify_hit_rates: bool = True,
        registry: Optional["RunRegistry"] = None,
    ) -> None:
        if snapshots < 1:
            raise ValueError(f"snapshots must be >= 1, got {snapshots}")
        self.base_config = base_config
        self.snapshots = snapshots
        self.model = EvolutionModel(evolution_seed, rates)
        self.cache = ScanCache(cache) if isinstance(cache, str) else cache
        self.max_depth = max_depth
        self.executor = executor
        self.obs = obs
        self.collect_manifests = collect_manifests
        self.verify_hit_rates = verify_hit_rates
        #: When set, every snapshot's manifest (built even if
        #: ``collect_manifests`` is off) is appended to this cross-run
        #: registry, chaining the whole series into queryable history.
        self.registry = registry
        #: Aggregated cache accounting across every snapshot run so far.
        self.total_stats = CacheStats()

    def run(self) -> list[SnapshotRecord]:
        """Measure every snapshot; returns the records in series order."""
        records: list[SnapshotRecord] = []
        config = self.base_config
        parent_fingerprint: Optional[str] = None
        mutations: tuple[Mutation, ...] = ()
        for step in range(self.snapshots):
            record = self._run_snapshot(
                step, config, mutations, parent_fingerprint
            )
            records.append(record)
            parent_fingerprint = record.fingerprint
            if step + 1 < self.snapshots:
                evolution = self.model.evolve(config, step + 1)
                config = evolution.config
                mutations = evolution.mutations
        return records

    # --------------------------------------------------------- internals

    def _run_snapshot(
        self,
        step: int,
        config: WorldConfig,
        mutations: tuple[Mutation, ...],
        parent_fingerprint: Optional[str],
    ) -> SnapshotRecord:
        world = SyntheticWorld.generate(config)
        pipeline = Pipeline(world, max_depth=self.max_depth, obs=self.obs)
        snapshot_stats: Optional[CacheStats] = None
        if self.cache is not None:
            # Fresh per-snapshot accounting; the cumulative view lives
            # in total_stats.
            self.cache.stats = CacheStats()
        dataset = pipeline.run(executor=self.executor, cache=self.cache)
        if self.cache is not None:
            snapshot_stats = self.cache.stats
            self._accumulate(snapshot_stats)
        changed = tuple(sorted({m.country for m in mutations}))
        record = SnapshotRecord(
            step=step,
            label=f"T+{step}",
            config=config,
            dataset=dataset,
            fingerprint=run_fingerprint(
                config, pipeline.crawler.max_depth, pipeline.fault_plan
            ),
            cache_stats=snapshot_stats,
            mutations=mutations,
            changed_countries=changed,
            parent_fingerprint=parent_fingerprint,
        )
        self._observe(record)
        if (self.verify_hit_rates and snapshot_stats is not None
                and parent_fingerprint is not None):
            self._verify(record, snapshot_stats)
        if self.collect_manifests or self.registry is not None:
            from repro.obs import RunManifest

            manifest = RunManifest.collect(
                pipeline, dataset, executor=self.executor,
                cache=self.cache, obs=self.obs,
                evolution=self.evolution_provenance(record),
            )
            if self.collect_manifests:
                record.manifest = manifest
            if self.registry is not None:
                self.registry.record(manifest)
        return record

    def evolution_provenance(self, record: SnapshotRecord) -> Optional[dict]:
        """The manifest ``evolution`` block chaining ``record`` to its
        parent (None for the base snapshot — it was not evolved)."""
        if record.parent_fingerprint is None:
            return None
        return {
            "parent_fingerprint": record.parent_fingerprint,
            "seed": self.model.seed,
            "step": record.step,
            "changed_countries": list(record.changed_countries),
            "mutations": [m.to_dict() for m in record.mutations],
        }

    def _accumulate(self, stats: CacheStats) -> None:
        total = self.total_stats
        total.hits += stats.hits
        total.misses += stats.misses
        total.stores += stats.stores
        total.evicted += stats.evicted
        total.bytes_read += stats.bytes_read
        total.bytes_written += stats.bytes_written
        total.time_saved_s += stats.time_saved_s

    def _observe(self, record: SnapshotRecord) -> None:
        if self.obs is None or record.cache_stats is None:
            return
        metrics = self.obs.metrics
        prefix = f"evolve.snapshot.{record.step}"
        metrics.gauge(f"{prefix}.hit_rate", record.cache_stats.hit_rate)
        metrics.gauge(f"{prefix}.changed_countries",
                      len(record.changed_countries))
        expected = record.expected_hit_rate
        if expected is not None:
            metrics.gauge(f"{prefix}.expected_hit_rate", expected)

    def _verify(self, record: SnapshotRecord, stats: CacheStats) -> None:
        """Incremental contract: misses are exactly the changed countries.

        Only binding when the parent snapshot populated the same cache
        (which :meth:`run` guarantees); a mismatch means a supposedly
        untouched country's key or bytes moved — a hermeticity bug.
        """
        expected_misses = len(record.changed_countries)
        total = len(record.config.country_codes())
        if stats.misses != expected_misses or \
                stats.hits != total - expected_misses:
            raise SeriesIntegrityError(
                f"snapshot {record.label}: expected "
                f"{total - expected_misses} hits / {expected_misses} misses "
                f"(changed: {', '.join(record.changed_countries) or 'none'}) "
                f"but observed {stats.hits} hits / {stats.misses} misses — "
                "the per-country hermeticity contract is broken"
            )
        logger.info(
            "snapshot %s: %s (expected hit rate %.0f%%)",
            record.label, stats.summary(),
            100.0 * (record.expected_hit_rate or 0.0),
        )


__all__ = [
    "SeriesIntegrityError",
    "SnapshotRecord",
    "SnapshotSeries",
]
