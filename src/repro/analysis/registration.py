"""Domestic vs. international hosting (Section 6, Figures 6 and 8).

Two views per government URL: the WHOIS country of registration of the
serving organization, and the validated physical server location.
URLs whose server location was excluded by the geolocation process are
dropped from the location view only.

Dataset-level functions accept a dataset (an index is built
transparently and cached on it) or a prebuilt
:class:`~repro.analysis.engine.AnalysisIndex`;
:func:`registration_split` / :func:`server_split` keep the raw
record-pool signatures.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable

from repro.analysis.engine.index import DatasetOrIndex, ensure_index
from repro.analysis.hosting import Weighting
from repro.core.dataset import UrlRecord
from repro.world.countries import get_country
from repro.world.regions import Region


@dataclasses.dataclass(frozen=True)
class LocationSplit:
    """Domestic/international fractions for one view."""

    domestic: float
    international: float

    def __post_init__(self) -> None:
        total = self.domestic + self.international
        if total and abs(total - 1.0) > 1e-9:
            raise ValueError("fractions must sum to 1 (or both be 0)")


def _split(domestic_count: float, total: float) -> LocationSplit:
    if total <= 0:
        return LocationSplit(0.0, 0.0)
    domestic = domestic_count / total
    return LocationSplit(domestic=domestic, international=1.0 - domestic)


def registration_split(records: Iterable[UrlRecord]) -> LocationSplit:
    """WHOIS view over a pool of records."""
    total = 0
    domestic = 0
    for record in records:
        total += 1
        if record.registration_domestic:
            domestic += 1
    return _split(domestic, total)


def server_split(records: Iterable[UrlRecord]) -> LocationSplit:
    """Server-location view; excluded records are skipped."""
    total = 0
    domestic = 0
    for record in records:
        if record.server_country is None:
            continue
        total += 1
        if record.server_country == record.country:
            domestic += 1
    return _split(domestic, total)


def _split_of_counts(counts: tuple[int, int, int, int], view: str) -> LocationSplit:
    """Build one view's split from an index location tally."""
    total, registration_domestic, located, server_domestic = counts
    if view == "whois":
        return _split(registration_domestic, total)
    return _split(server_domestic, located)


def global_split(dataset: DatasetOrIndex) -> dict[str, LocationSplit]:
    """Figure 6: global WHOIS and geolocation splits."""
    index = ensure_index(dataset)
    total = registration_domestic = located = server_domestic = 0
    for counts in index.location_counts().values():
        total += counts[0]
        registration_domestic += counts[1]
        located += counts[2]
        server_domestic += counts[3]
    return {
        "whois": _split(registration_domestic, total),
        "geolocation": _split(server_domestic, located),
    }


def country_split(dataset: DatasetOrIndex) -> dict[str, dict[str, LocationSplit]]:
    """Per-country WHOIS and geolocation splits."""
    index = ensure_index(dataset)
    result: dict[str, dict[str, LocationSplit]] = {}
    for code, counts in sorted(index.location_counts().items()):
        result[code] = {
            "whois": _split_of_counts(counts, "whois"),
            "geolocation": _split_of_counts(counts, "geolocation"),
        }
    return result


def regional_split(
    dataset: DatasetOrIndex,
    view: str = "geolocation",
    weighting: Weighting = "country",
) -> dict[Region, LocationSplit]:
    """Figure 8: domestic/international split per region.

    ``view`` selects registration ('whois') or server location
    ('geolocation').
    """
    if view not in ("whois", "geolocation"):
        raise ValueError(f"unknown view {view!r}")
    index = ensure_index(dataset)
    by_region: dict[Region, list[tuple[int, int, int, int]]] = {}
    for code, counts in index.location_counts().items():
        by_region.setdefault(get_country(code).region, []).append(counts)
    result: dict[Region, LocationSplit] = {}
    for region, tallies in by_region.items():
        if weighting == "country":
            splits = [_split_of_counts(counts, view) for counts in tallies]
            splits = [s for s in splits if s.domestic + s.international > 0]
            if not splits:
                result[region] = LocationSplit(0.0, 0.0)
                continue
            domestic = sum(s.domestic for s in splits) / len(splits)
            result[region] = LocationSplit(domestic, 1.0 - domestic)
        else:
            total = sum(
                counts[0] if view == "whois" else counts[2] for counts in tallies
            )
            domestic = sum(
                counts[1] if view == "whois" else counts[3] for counts in tallies
            )
            result[region] = _split(domestic, total)
    return result


__all__ = [
    "LocationSplit",
    "registration_split",
    "server_split",
    "global_split",
    "country_split",
    "regional_split",
]
