"""Domestic vs. international hosting (Section 6, Figures 6 and 8).

Two views per government URL: the WHOIS country of registration of the
serving organization, and the validated physical server location.
URLs whose server location was excluded by the geolocation process are
dropped from the location view only.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable

from repro.analysis.hosting import Weighting
from repro.core.dataset import GovernmentHostingDataset, UrlRecord
from repro.world.countries import get_country
from repro.world.regions import Region


@dataclasses.dataclass(frozen=True)
class LocationSplit:
    """Domestic/international fractions for one view."""

    domestic: float
    international: float

    def __post_init__(self) -> None:
        total = self.domestic + self.international
        if total and abs(total - 1.0) > 1e-9:
            raise ValueError("fractions must sum to 1 (or both be 0)")


def _split(domestic_count: float, total: float) -> LocationSplit:
    if total <= 0:
        return LocationSplit(0.0, 0.0)
    domestic = domestic_count / total
    return LocationSplit(domestic=domestic, international=1.0 - domestic)


def registration_split(records: Iterable[UrlRecord]) -> LocationSplit:
    """WHOIS view over a pool of records."""
    total = 0
    domestic = 0
    for record in records:
        total += 1
        if record.registration_domestic:
            domestic += 1
    return _split(domestic, total)


def server_split(records: Iterable[UrlRecord]) -> LocationSplit:
    """Server-location view; excluded records are skipped."""
    total = 0
    domestic = 0
    for record in records:
        if record.server_country is None:
            continue
        total += 1
        if record.server_country == record.country:
            domestic += 1
    return _split(domestic, total)


def global_split(dataset: GovernmentHostingDataset) -> dict[str, LocationSplit]:
    """Figure 6: global WHOIS and geolocation splits."""
    records = list(dataset.iter_records())
    return {
        "whois": registration_split(records),
        "geolocation": server_split(records),
    }


def country_split(dataset: GovernmentHostingDataset) -> dict[str, dict[str, LocationSplit]]:
    """Per-country WHOIS and geolocation splits."""
    result: dict[str, dict[str, LocationSplit]] = {}
    for code, country_dataset in sorted(dataset.countries.items()):
        if not country_dataset.records:
            continue
        result[code] = {
            "whois": registration_split(country_dataset.records),
            "geolocation": server_split(country_dataset.records),
        }
    return result


def regional_split(
    dataset: GovernmentHostingDataset,
    view: str = "geolocation",
    weighting: Weighting = "country",
) -> dict[Region, LocationSplit]:
    """Figure 8: domestic/international split per region.

    ``view`` selects registration ('whois') or server location
    ('geolocation').
    """
    if view not in ("whois", "geolocation"):
        raise ValueError(f"unknown view {view!r}")
    split_fn = registration_split if view == "whois" else server_split
    by_region: dict[Region, list] = {}
    for code, country_dataset in dataset.countries.items():
        if not country_dataset.records:
            continue
        by_region.setdefault(get_country(code).region, []).append(country_dataset)
    result: dict[Region, LocationSplit] = {}
    for region, country_datasets in by_region.items():
        if weighting == "country":
            splits = [split_fn(cd.records) for cd in country_datasets]
            splits = [s for s in splits if s.domestic + s.international > 0]
            if not splits:
                result[region] = LocationSplit(0.0, 0.0)
                continue
            domestic = sum(s.domestic for s in splits) / len(splits)
            result[region] = LocationSplit(domestic, 1.0 - domestic)
        else:
            pooled = [record for cd in country_datasets for record in cd.records]
            result[region] = split_fn(pooled)
    return result


__all__ = [
    "LocationSplit",
    "registration_split",
    "server_split",
    "global_split",
    "country_split",
    "regional_split",
]
