"""Explanatory OLS regression (Appendix E, Figure 12, Table 7).

Regresses the percentage of each country's government URLs served from
abroad on six standardized country-level features: the ICT Development
Index, the Economic Freedom Index, GDP per capita, the Human
Development Index, the Network Readiness Index, and the number of
Internet users.  Reports coefficients with 95% confidence intervals and
p-values, plus Variance Inflation Factors for multicollinearity.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np
from scipy import stats

from repro.analysis.engine.index import DatasetOrIndex, ensure_index
from repro.world.countries import get_country

#: Feature order used throughout (matches the paper's Equation 1 naming).
FEATURE_NAMES = ("IDI", "econ_freedom", "GDP", "HDI", "NRI", "internet_users")


@dataclasses.dataclass(frozen=True)
class Coefficient:
    """One estimated regression coefficient."""

    name: str
    estimate: float
    stderr: float
    ci_low: float
    ci_high: float
    p_value: float

    @property
    def significant(self) -> bool:
        """Significance at the 5% level."""
        return self.p_value < 0.05


@dataclasses.dataclass(frozen=True)
class RegressionResult:
    """Complete OLS output for Figure 12."""

    coefficients: dict[str, Coefficient]
    intercept: float
    r_squared: float
    n_observations: int

    def coefficient(self, name: str) -> Coefficient:
        return self.coefficients[name]


def _standardize(matrix: np.ndarray) -> np.ndarray:
    if matrix.size == 0:
        return matrix
    mean = matrix.mean(axis=0)
    std = matrix.std(axis=0, ddof=0)
    std[std == 0] = 1.0
    return (matrix - mean) / std


def feature_matrix(
    dataset: DatasetOrIndex,
) -> tuple[list[str], np.ndarray, np.ndarray]:
    """Country codes, standardized feature matrix and outcome vector.

    The outcome follows the Figure 12 caption: the percentage of a
    country's *server IPs* located outside the country (standardized,
    like every feature).
    """
    index = ensure_index(dataset)
    codes: list[str] = []
    raw_features: list[list[float]] = []
    outcomes: list[float] = []
    for code, (foreign_ips, total_ips) in index.address_location_counts().items():
        country = get_country(code)
        intl = foreign_ips / total_ips if total_ips else 0.0
        codes.append(code)
        raw_features.append([
            country.idi,
            country.efi,
            country.gdp_per_capita_kusd,
            country.hdi if country.hdi is not None else 0.8,
            country.nri,
            country.internet_users_m,
        ])
        outcomes.append(intl)
    features = _standardize(np.array(raw_features, dtype=float))
    outcome = np.array(outcomes, dtype=float)
    outcome = (outcome - outcome.mean()) / (outcome.std() or 1.0)
    return codes, features, outcome


def fit_ols(features: np.ndarray, outcome: np.ndarray) -> RegressionResult:
    """Fit the Appendix E OLS model over prepared matrices."""
    n, k = features.shape
    if n <= k + 1:
        raise ValueError("not enough countries for the regression")
    design = np.column_stack([np.ones(n), features])
    beta, _, _, _ = np.linalg.lstsq(design, outcome, rcond=None)
    residuals = outcome - design @ beta
    dof = n - (k + 1)
    sigma2 = float(residuals @ residuals) / dof
    covariance = sigma2 * np.linalg.inv(design.T @ design)
    stderrs = np.sqrt(np.diag(covariance))
    t_crit = stats.t.ppf(0.975, dof)

    coefficients: dict[str, Coefficient] = {}
    for index, name in enumerate(FEATURE_NAMES):
        estimate = float(beta[index + 1])
        stderr = float(stderrs[index + 1])
        t_stat = estimate / stderr if stderr > 0 else math.inf
        p_value = float(2 * stats.t.sf(abs(t_stat), dof))
        coefficients[name] = Coefficient(
            name=name,
            estimate=estimate,
            stderr=stderr,
            ci_low=estimate - t_crit * stderr,
            ci_high=estimate + t_crit * stderr,
            p_value=p_value,
        )
    total_ss = float(((outcome - outcome.mean()) ** 2).sum())
    residual_ss = float(residuals @ residuals)
    r_squared = 1.0 - residual_ss / total_ss if total_ss > 0 else 0.0
    return RegressionResult(
        coefficients=coefficients,
        intercept=float(beta[0]),
        r_squared=r_squared,
        n_observations=n,
    )


def explanatory_regression(dataset: DatasetOrIndex) -> RegressionResult:
    """Fit the Appendix E OLS model."""
    _, features, outcome = feature_matrix(dataset)
    return fit_ols(features, outcome)


def vifs_of_features(features: np.ndarray) -> dict[str, float]:
    """Table 7 VIFs over a prepared feature matrix."""
    n, k = features.shape
    vifs: dict[str, float] = {}
    for j, name in enumerate(FEATURE_NAMES):
        target = features[:, j]
        others = np.delete(features, j, axis=1)
        design = np.column_stack([np.ones(n), others])
        beta, _, _, _ = np.linalg.lstsq(design, target, rcond=None)
        predicted = design @ beta
        ss_res = float(((target - predicted) ** 2).sum())
        ss_tot = float(((target - target.mean()) ** 2).sum())
        r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 0.0
        vifs[name] = 1.0 / (1.0 - r2) if r2 < 1.0 else math.inf
    return vifs


def variance_inflation_factors(
    dataset: DatasetOrIndex,
) -> dict[str, float]:
    """Table 7: VIF of each explanatory feature.

    VIF_j = 1 / (1 - R_j^2), where R_j^2 comes from regressing feature j
    on the remaining features.
    """
    _, features, _ = feature_matrix(dataset)
    return vifs_of_features(features)


__all__ = [
    "FEATURE_NAMES",
    "Coefficient",
    "RegressionResult",
    "feature_matrix",
    "fit_ols",
    "vifs_of_features",
    "explanatory_regression",
    "variance_inflation_factors",
]
