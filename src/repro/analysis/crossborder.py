"""Cross-border dependency analyses (Section 6.3, Figure 9, Table 5).

Flows of government URLs onto foreign countries -- by organization
registration (Figure 9a) or server location (Figure 9b) -- plus the
in-region retention shares of Table 5, the regional-affinity hosts,
GDPR compliance of EU members and arbitrary bilateral shares (Mexico to
the US, New Zealand to Australia, ...).

All entry points accept a dataset (an index is built transparently and
cached on it) or a prebuilt :class:`~repro.analysis.engine.AnalysisIndex`;
the flows come straight out of the index's per-(source, destination)
tables instead of a record scan per call.
"""

from __future__ import annotations

import dataclasses
from typing import Literal

from repro.analysis.engine.index import DatasetOrIndex, ensure_index
from repro.world.cities import EXTRA_TERRITORIES
from repro.world.countries import COUNTRIES
from repro.world.regions import Region

Basis = Literal["server", "registration"]

#: EU member states, including hosting-only territories in our world model.
EU_MEMBER_CODES = frozenset(
    {code for code, country in COUNTRIES.items() if country.eu_member}
    | {"AT", "SK", "FI", "IE", "LU"}
)


@dataclasses.dataclass(frozen=True)
class CrossBorderFlow:
    """URLs of one government relying on one foreign country."""

    source: str
    destination: str
    url_count: int
    byte_count: int


def region_of(code: str) -> Region:
    """World Bank region of a sample country or hosting-only territory."""
    country = COUNTRIES.get(code)
    if country is not None:
        return country.region
    if code in EXTRA_TERRITORIES:
        return EXTRA_TERRITORIES[code][1]
    raise KeyError(f"unknown country code {code!r}")


def flows(
    dataset: DatasetOrIndex, basis: Basis = "server"
) -> list[CrossBorderFlow]:
    """Figure 9: all cross-border (source, destination) flows."""
    index = ensure_index(dataset)
    return [
        CrossBorderFlow(source=s, destination=d, url_count=u, byte_count=b)
        for s, d, u, b in index.crossborder_flow_table(basis)
    ]


def same_region_share(
    dataset: DatasetOrIndex, basis: Basis = "server"
) -> dict[Region, float]:
    """Table 5: share of cross-border dependencies staying in-region."""
    in_region: dict[Region, int] = {}
    total: dict[Region, int] = {}
    for flow in flows(dataset, basis):
        source_region = region_of(flow.source)
        total[source_region] = total.get(source_region, 0) + flow.url_count
        if region_of(flow.destination) is source_region:
            in_region[source_region] = (
                in_region.get(source_region, 0) + flow.url_count
            )
    return {
        region: in_region.get(region, 0) / count
        for region, count in total.items()
        if count > 0
    }


def regional_affinity(
    dataset: DatasetOrIndex, basis: Basis = "server"
) -> dict[Region, dict[str, float]]:
    """Section 6.3: who hosts the *in-region* cross-border dependencies.

    For each region, the share of in-region cross-border URLs each
    destination country hosts (the paper: South Africa 100% of SSA,
    Brazil 85% of LAC, Japan ~60% of EAP, Germany 36% of ECA).
    """
    per_region: dict[Region, dict[str, int]] = {}
    for flow in flows(dataset, basis):
        source_region = region_of(flow.source)
        if region_of(flow.destination) is not source_region:
            continue
        hosts = per_region.setdefault(source_region, {})
        hosts[flow.destination] = hosts.get(flow.destination, 0) + flow.url_count
    result: dict[Region, dict[str, float]] = {}
    for region, hosts in per_region.items():
        region_total = sum(hosts.values())
        result[region] = {
            code: count / region_total for code, count in sorted(hosts.items())
        }
    return result


def gdpr_compliance(dataset: DatasetOrIndex) -> float:
    """Section 6.3: fraction of EU-government URLs served inside the EU."""
    index = ensure_index(dataset)
    total = 0
    compliant = 0
    for code, counts in index.location_counts().items():
        if code not in EU_MEMBER_CODES:
            continue
        total += counts[2]       # records with a validated location
        compliant += counts[3]   # served domestically (EU by definition)
    for (source, destination), (url_count, _) in index.crossborder_counts(
        "server"
    ).items():
        if source in EU_MEMBER_CODES and destination in EU_MEMBER_CODES:
            compliant += url_count
    return compliant / total if total else 0.0


def bilateral_share(
    dataset: DatasetOrIndex,
    source: str,
    destination: str,
    basis: Basis = "server",
) -> float:
    """Share of ``source``'s URLs depending on ``destination``.

    E.g. the paper finds 79.22% of Mexico's URLs served from the US and
    40% of New Zealand's from Australia.
    """
    source = source.upper()
    destination = destination.upper()
    index = ensure_index(dataset)
    index.span_of(source)  # KeyError for unknown countries, as before
    counts = index.location_counts().get(source, (0, 0, 0, 0))
    if basis == "registration":
        total = counts[0]
        domestic = counts[1]
    else:
        total = counts[2]
        domestic = counts[3]
    if destination == source:
        matching = domestic
    else:
        matching = index.crossborder_counts(basis).get(
            (source, destination), (0, 0)
        )[0]
    return matching / total if total else 0.0


def foreign_share_by_destination(
    dataset: DatasetOrIndex, basis: Basis = "server"
) -> dict[str, float]:
    """Share of all cross-border URLs each destination country hosts.

    The paper: servers in North America and Western Europe host 57% of
    URLs crossing their country's borders.
    """
    all_flows = flows(dataset, basis)
    grand_total = sum(flow.url_count for flow in all_flows)
    if grand_total == 0:
        return {}
    by_destination: dict[str, int] = {}
    for flow in all_flows:
        by_destination[flow.destination] = (
            by_destination.get(flow.destination, 0) + flow.url_count
        )
    return {
        code: count / grand_total for code, count in sorted(by_destination.items())
    }


__all__ = [
    "Basis",
    "EU_MEMBER_CODES",
    "CrossBorderFlow",
    "region_of",
    "flows",
    "same_region_share",
    "regional_affinity",
    "gdpr_compliance",
    "bilateral_share",
    "foreign_share_by_destination",
]
