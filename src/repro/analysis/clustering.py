"""Country-similarity clustering (Section 5.3, Figure 5).

Each country's serving strategy is summarized as a 4-dimensional
signature (its URL or byte fractions over the hosting categories);
Hierarchical Agglomerative Clustering with Ward linkage groups the
signatures, yielding the three-branch dendrograms of Figure 5 whose
main branches correspond to the dominant hosting source.
"""

from __future__ import annotations

import numpy as np
from scipy.cluster import hierarchy

from repro.categories import CATEGORY_ORDER, HostingCategory
from repro.core.dataset import GovernmentHostingDataset


def country_signatures(
    dataset: GovernmentHostingDataset, by_bytes: bool = False
) -> tuple[list[str], np.ndarray]:
    """Country codes plus the signature matrix (rows sum to 1).

    Column order follows :data:`~repro.categories.CATEGORY_ORDER`.
    """
    codes: list[str] = []
    rows: list[list[float]] = []
    for code, country_dataset in sorted(dataset.countries.items()):
        if not country_dataset.records:
            continue
        mix = (
            country_dataset.category_byte_fractions()
            if by_bytes
            else country_dataset.category_url_fractions()
        )
        codes.append(code)
        rows.append([mix[category] for category in CATEGORY_ORDER])
    return codes, np.array(rows, dtype=float)


def ward_linkage(signatures: np.ndarray) -> np.ndarray:
    """Ward-distance HCA linkage matrix over signature rows."""
    if len(signatures) < 2:
        raise ValueError("clustering needs at least two countries")
    return hierarchy.linkage(signatures, method="ward")


def cluster_assignments(
    codes: list[str], linkage: np.ndarray, n_clusters: int = 3
) -> dict[str, int]:
    """Flat cluster labels (1-based) after cutting the dendrogram."""
    labels = hierarchy.fcluster(linkage, t=n_clusters, criterion="maxclust")
    return dict(zip(codes, (int(label) for label in labels)))


def dominant_category_of_cluster(
    codes: list[str],
    signatures: np.ndarray,
    assignments: dict[str, int],
    cluster: int,
) -> HostingCategory:
    """The category dominating a cluster's mean signature.

    The paper observes each dendrogram branch corresponds to a principal
    hosting source; this makes that correspondence explicit.
    """
    member_rows = [
        signatures[index]
        for index, code in enumerate(codes)
        if assignments[code] == cluster
    ]
    if not member_rows:
        raise ValueError(f"cluster {cluster} has no members")
    mean = np.mean(member_rows, axis=0)
    return CATEGORY_ORDER[int(np.argmax(mean))]


def dendrogram_order(linkage: np.ndarray, codes: list[str]) -> list[str]:
    """Leaf ordering of the dendrogram (the x-axis of Figure 5)."""
    order = hierarchy.leaves_list(linkage)
    return [codes[index] for index in order]


__all__ = [
    "country_signatures",
    "ward_linkage",
    "cluster_assignments",
    "dominant_category_of_cluster",
    "dendrogram_order",
]
