"""Single-pass columnar analysis engine for the Section 5-7 report layer.

:mod:`repro.analysis.engine.index` holds the columnar
:class:`AnalysisIndex`; :mod:`repro.analysis.engine.baseline` keeps the
pre-engine record-loop implementations as the equivalence-test and
benchmark reference.
"""

from repro.analysis.engine.index import (
    CATEGORIES,
    AnalysisIndex,
    DatasetOrIndex,
    ensure_index,
    underlying_dataset,
)

__all__ = [
    "CATEGORIES",
    "AnalysisIndex",
    "DatasetOrIndex",
    "ensure_index",
    "underlying_dataset",
]
