"""Columnar analysis index over an assembled dataset.

Rendering the full paper report used to walk ``iter_records()`` about
fifteen times: every Section 5-7 analysis re-derived its own per-country
tallies from the same million-record dataset.  :class:`AnalysisIndex`
replaces those repeated record scans with **one** pass that transposes
the per-country record lists into compact parallel columns (stdlib
``array`` buffers: category codes, sizes, ASNs, addresses, interned
country/registration/server ids, boolean flags), plus lazily memoized
aggregate tables derived from the columns with NumPy -- per-country
category URL/byte totals, registration and server-location splits,
per-(source, destination) cross-border flows, per-(country, ASN)
provider footprints, HHI inputs and the Table 3 summary counts.

Exactness contract
------------------
Every aggregate reproduces the record-loop implementations *bit for
bit*.  All tallies are integer counts and integer byte sums, which the
legacy float accumulators represent exactly (every intermediate value
is an integer far below 2**53), and the final float divisions and
float summations happen in the same order as the record loops, so each
derived fraction, mean and HHI is the identical double.  The
equivalence suite (``tests/analysis/test_engine_equivalence.py``)
asserts this against the reference implementations in
:mod:`repro.analysis.engine.baseline`, including byte-identical
paper-report text.

Mutability contract
-------------------
The index snapshots the records at build time.  Records are immutable
once materialized (the pipeline never rewrites a ``CountryDataset``),
so the index cached on a dataset by :meth:`AnalysisIndex.ensure` never
needs invalidation.  The per-record ``country`` field is assumed to
match the ``CountryDataset`` key it lives under -- true for every
dataset the pipeline or ``repro.io`` produces.

Concurrency contract
--------------------
:meth:`AnalysisIndex.ensure` and every memoized aggregate table are
safe to race from many threads (the query service serves one shared
index to all clients): the dataset-level cache is built under a
per-dataset lock, and table memoization double-checks under a
per-index reentrant lock (``functools.cached_property`` stopped
locking in Python 3.12).  At most one thread ever builds the index or
a given table; losers of the race read the winner's memo, so results
are reference-identical across threads.
"""

from __future__ import annotations

import threading
import time
from array import array
from typing import Iterator, Optional, Union

import numpy as np

from repro.categories import HostingCategory
from repro.core.dataset import DatasetSummary, GovernmentHostingDataset
from repro.obs import events as obs_events
from repro.urltools import registrable_domain
from repro.world.countries import COUNTRIES

#: Category code space of the ``categories`` column, in declaration order.
CATEGORIES: tuple[HostingCategory, ...] = tuple(HostingCategory)
_CATEGORY_CODE = {category: code for code, category in enumerate(CATEGORIES)}

#: Attribute under which :meth:`AnalysisIndex.ensure` caches the index.
_CACHE_ATTRIBUTE = "_analysis_index"

#: Attribute under which :meth:`AnalysisIndex.ensure` parks the
#: per-dataset build lock (created lazily under :data:`_ENSURE_GUARD`).
_BUILD_LOCK_ATTRIBUTE = "_analysis_index_build_lock"

#: Guards only the *creation* of per-dataset build locks -- never held
#: while an index builds, so unrelated datasets build concurrently.
_ENSURE_GUARD = threading.Lock()


class locked_cached_property:
    """``functools.cached_property`` with double-checked locking.

    Python 3.12 removed ``cached_property``'s class-level lock, so two
    threads touching an unmemoized table at once could each compute it
    -- or, worse, interleave on tables that read other tables.  This
    descriptor memoizes into the instance ``__dict__`` exactly like
    ``cached_property`` (hits stay a plain dict read, no lock) but
    computes under the instance's ``_memo_lock``.  The lock is
    reentrant: tables may read other tables while building.
    """

    def __init__(self, func):
        self.func = func
        self.attrname = func.__name__
        self.__doc__ = func.__doc__

    def __set_name__(self, owner, name) -> None:
        self.attrname = name

    def __get__(self, instance, owner=None):
        if instance is None:
            return self
        cache = instance.__dict__
        try:
            return cache[self.attrname]
        except KeyError:
            pass
        with instance._memo_lock:
            if self.attrname not in cache:
                # Observability only: a no-op unless a collection scope
                # is active on this thread (zero-perturbation rule).
                # The memoized fast path above bypasses __get__ via the
                # instance __dict__, so only builds and lock-race hits
                # are observable here.
                obs_events.emit("memo.build", table=self.attrname,
                                index=type(instance).__name__)
                cache[self.attrname] = self.func(instance)
            else:
                obs_events.emit("memo.hit", table=self.attrname,
                                index=type(instance).__name__)
            return cache[self.attrname]


class _Interner(dict):
    """Dense first-seen interning: ``interner[key]`` assigns the next id."""

    __slots__ = ("table",)

    def __init__(self) -> None:
        super().__init__()
        self.table: list = []

    def __missing__(self, key) -> int:
        index = len(self.table)
        self[key] = index
        self.table.append(key)
        return index


class _Columns:
    """NumPy views over the columnar buffers (zero-copy where possible)."""

    __slots__ = (
        "sizes", "addresses", "asns", "categories",
        "gov", "anycast", "countries", "registered", "server",
        "organizations",
    )

    def __init__(self, index: "AnalysisIndex") -> None:
        self.sizes = _view(index._size_col, np.int64)
        self.addresses = _view(index._addr_col, np.int64)
        self.asns = _view(index._asn_col, np.int64)
        self.categories = _view(index._cat_col, np.uint8)
        self.gov = _view(index._gov_col, np.uint8)
        self.anycast = _view(index._anycast_col, np.uint8)
        self.countries = _view(index._cc_col, np.intc)
        self.registered = _view(index._reg_col, np.intc)
        self.server = _view(index._srv_col, np.intc)
        self.organizations = _view(index._org_col, np.intc)


def _view(column: array, dtype) -> np.ndarray:
    if not len(column):
        return np.zeros(0, dtype=dtype)
    return np.frombuffer(column, dtype=dtype)


class AnalysisIndex:
    """One-pass columnar index with memoized Section 5-7 aggregate tables.

    Build with :meth:`build` (always a fresh scan) or :meth:`ensure`
    (transparently builds once and caches the index on the dataset).
    Every aggregate accessor is lazy and memoized: the first caller of a
    table family pays one vectorized pass over the columns, every later
    caller -- including every other analysis sharing the table -- reads
    the memo.
    """

    def __init__(self, dataset: GovernmentHostingDataset) -> None:
        build_start = time.perf_counter()
        self._dataset = dataset
        self._memo_lock = threading.RLock()
        self._size_col = array("q")
        self._addr_col = array("q")
        self._asn_col = array("q")
        self._cat_col = array("B")
        self._gov_col = array("B")
        self._anycast_col = array("B")
        self._cc_col = array("i")
        self._reg_col = array("i")
        self._srv_col = array("i")
        self._org_col = array("i")
        self._countries = _Interner()
        self._countries[None] = -1  # excluded server locations
        self._organizations = _Interner()
        #: (code, country id, start, stop) per country, dataset order.
        self._spans: list[tuple[str, int, int, int]] = []
        self._span_by_code: dict[str, tuple[int, int, int]] = {}
        self._crossborder_tables: dict[str, dict] = {}
        self._crossborder_flow_tables: dict[str, tuple] = {}
        self._crossborder_flow_slices: dict[str, dict] = {}
        self._scan(dataset)
        #: Wall seconds the columnar scan took (observability only;
        #: never feeds back into any analysis result).
        self.build_seconds = time.perf_counter() - build_start

    # ------------------------------------------------------------ build

    @classmethod
    def build(cls, dataset: GovernmentHostingDataset) -> "AnalysisIndex":
        """Construct a fresh index: the one record scan of an analysis run."""
        return cls(dataset)

    @classmethod
    def ensure(
        cls, source: Union[GovernmentHostingDataset, "AnalysisIndex"]
    ) -> "AnalysisIndex":
        """Return ``source`` if it already is an index, else build-and-cache.

        The built index is cached on the dataset instance, so every
        analysis function called with the same dataset shares one index
        (records are immutable once materialized -- no invalidation).

        Concurrent first calls on the same dataset build exactly once:
        the check-then-set runs under a per-dataset lock (itself
        created under a tiny global guard), so racing threads block on
        the one build instead of each scanning the records.  The hot
        path -- an already-cached index -- stays a lock-free getattr.
        """
        if isinstance(source, cls):
            return source
        index = getattr(source, _CACHE_ATTRIBUTE, None)
        if index is not None:
            return index
        with _ENSURE_GUARD:
            lock = getattr(source, _BUILD_LOCK_ATTRIBUTE, None)
            if lock is None:
                lock = threading.Lock()
                setattr(source, _BUILD_LOCK_ATTRIBUTE, lock)
        with lock:
            index = getattr(source, _CACHE_ATTRIBUTE, None)
            if index is None:
                index = cls.build(source)
                setattr(source, _CACHE_ATTRIBUTE, index)
        return index

    def _scan(self, dataset: GovernmentHostingDataset) -> None:
        cat_code = _CATEGORY_CODE
        countries = self._countries
        organizations = self._organizations
        for code, country_dataset in dataset.countries.items():
            country_id = countries[code]
            records = country_dataset.records
            start = len(self._size_col)
            if records:
                # C-level transpose of the per-country record list; the
                # column order mirrors the UrlRecord field order.
                (_, _, _, sizes, _, _, addresses, asns, organizations_, regs,
                 govs, cats, servers, anycasts, _) = zip(*records)
                self._size_col.extend(sizes)
                self._addr_col.extend(addresses)
                self._asn_col.extend(asns)
                self._cat_col.extend(map(cat_code.__getitem__, cats))
                self._gov_col.extend(govs)
                self._anycast_col.extend(anycasts)
                self._cc_col.extend([country_id] * len(records))
                self._reg_col.extend(map(countries.__getitem__, regs))
                self._srv_col.extend(map(countries.__getitem__, servers))
                self._org_col.extend(map(organizations.__getitem__, organizations_))
            stop = len(self._size_col)
            self._spans.append((code, country_id, start, stop))
            self._span_by_code[code] = (country_id, start, stop)

    # ------------------------------------------------------- basic shape

    @property
    def dataset(self) -> GovernmentHostingDataset:
        """The dataset the index was built from."""
        return self._dataset

    @property
    def record_count(self) -> int:
        return len(self._size_col)

    def span_of(self, code: str) -> tuple[int, int, int]:
        """(country id, start, stop) of ``code``; KeyError when unknown."""
        return self._span_by_code[code]

    def _populated_spans(self) -> Iterator[tuple[str, int, int, int]]:
        for code, country_id, start, stop in self._spans:
            if stop > start:
                yield code, country_id, start, stop

    @locked_cached_property
    def _cols(self) -> _Columns:
        return _Columns(self)

    # -------------------------------------------------- category tables

    @locked_cached_property
    def _category_table(self) -> dict[str, tuple[tuple[int, ...], tuple[int, ...]]]:
        cols = self._cols
        n_categories = len(CATEGORIES)
        table: dict[str, tuple[tuple[int, ...], tuple[int, ...]]] = {}
        for code, _country_id, start, stop in self._populated_spans():
            codes = cols.categories[start:stop]
            url_counts = np.bincount(codes, minlength=n_categories)
            byte_sums = np.bincount(
                codes, weights=cols.sizes[start:stop], minlength=n_categories
            )
            table[code] = (
                tuple(int(value) for value in url_counts),
                tuple(int(value) for value in byte_sums),
            )
        return table

    def category_counts(self) -> dict[str, tuple[tuple[int, ...], tuple[int, ...]]]:
        """Per-country ``(URL counts, byte sums)`` per category code.

        Keys follow dataset order and omit countries without records;
        tuples follow :data:`CATEGORIES` (``HostingCategory``) order.
        """
        return self._category_table

    @locked_cached_property
    def _global_category_totals(self) -> tuple[tuple[int, ...], tuple[int, ...]]:
        url_totals = [0] * len(CATEGORIES)
        byte_totals = [0] * len(CATEGORIES)
        for url_counts, byte_sums in self._category_table.values():
            for i, value in enumerate(url_counts):
                url_totals[i] += value
            for i, value in enumerate(byte_sums):
                byte_totals[i] += value
        return tuple(url_totals), tuple(byte_totals)

    def global_category_counts(self) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """Dataset-wide ``(URL counts, byte sums)`` per category code."""
        return self._global_category_totals

    # -------------------------------------------------- location tables

    @locked_cached_property
    def _location_table(self) -> dict[str, tuple[int, int, int, int]]:
        cols = self._cols
        table: dict[str, tuple[int, int, int, int]] = {}
        for code, country_id, start, stop in self._populated_spans():
            registered = cols.registered[start:stop]
            server = cols.server[start:stop]
            table[code] = (
                stop - start,
                int(np.count_nonzero(registered == country_id)),
                int(np.count_nonzero(server >= 0)),
                int(np.count_nonzero(server == country_id)),
            )
        return table

    def location_counts(self) -> dict[str, tuple[int, int, int, int]]:
        """Per-country ``(records, registration-domestic, located, server-domestic)``.

        ``located`` counts records whose server location was validated
        (the geolocation view's denominator); keys follow dataset order
        and omit countries without records.
        """
        return self._location_table

    # ------------------------------------------------ cross-border flows

    def crossborder_counts(
        self, basis: str = "server"
    ) -> dict[tuple[str, str], tuple[int, int]]:
        """``(source, destination) -> (URL count, byte count)`` flows.

        ``basis`` selects the destination view: the validated server
        country, or -- for ``"registration"`` -- the WHOIS registration
        country (mirroring ``crossborder._destination``).  Domestic and
        unlocated records carry no flow.
        """
        key = "registration" if basis == "registration" else "server"
        table = self._crossborder_tables.get(key)
        if table is None:
            with self._memo_lock:
                table = self._crossborder_tables.get(key)
                if table is None:
                    table = self._build_crossborder(key)
                    self._crossborder_tables[key] = table
        return table

    def _build_crossborder(self, basis: str) -> dict[tuple[str, str], tuple[int, int]]:
        cols = self._cols
        destination_col = cols.registered if basis == "registration" else cols.server
        country_table = self._countries.table
        table: dict[tuple[str, str], tuple[int, int]] = {}
        for code, country_id, start, stop in self._populated_spans():
            destinations = destination_col[start:stop]
            if basis == "registration":
                mask = destinations != country_id
            else:
                mask = (destinations >= 0) & (destinations != country_id)
            if not mask.any():
                continue
            selected = destinations[mask]
            unique, inverse = np.unique(selected, return_inverse=True)
            url_counts = np.bincount(inverse)
            byte_sums = np.bincount(inverse, weights=cols.sizes[start:stop][mask])
            for i, destination_id in enumerate(unique.tolist()):
                table[(code, country_table[destination_id])] = (
                    int(url_counts[i]),
                    int(byte_sums[i]),
                )
        return table

    def crossborder_flow_table(
        self, basis: str = "server"
    ) -> tuple[tuple[str, str, int, int], ...]:
        """The sorted flow table: ``(source, destination, urls, bytes)``.

        The immutable, memoized form of :meth:`crossborder_counts`
        already sorted by ``(source, destination)`` -- what a query
        service answers ``/v1/crossborder`` from without re-sorting the
        dict per request (the old p95 tail: every first-hit-per-thread
        rebuilt and re-sorted the full table).
        """
        key = "registration" if basis == "registration" else "server"
        memo = self._crossborder_flow_tables.get(key)
        if memo is None:
            with self._memo_lock:
                memo = self._crossborder_flow_tables.get(key)
                if memo is None:
                    memo = tuple(
                        (s, d, u, b)
                        for (s, d), (u, b)
                        in sorted(self.crossborder_counts(key).items())
                    )
                    self._crossborder_flow_tables[key] = memo
        return memo

    def crossborder_flow_slices(
        self, basis: str = "server"
    ) -> dict[str, tuple[int, int]]:
        """Per-source ``[start, stop)`` ranges into the sorted flow table.

        Since :meth:`crossborder_flow_table` sorts by source first, one
        source's flows are a contiguous run; a per-source query is a
        slice, not a filter pass over every flow.
        """
        key = "registration" if basis == "registration" else "server"
        memo = self._crossborder_flow_slices.get(key)
        if memo is None:
            with self._memo_lock:
                memo = self._crossborder_flow_slices.get(key)
                if memo is None:
                    memo = {}
                    table = self.crossborder_flow_table(key)
                    for position, (source, _, _, _) in enumerate(table):
                        if source not in memo:
                            memo[source] = (position, position + 1)
                        else:
                            memo[source] = (memo[source][0], position + 1)
                    self._crossborder_flow_slices[key] = memo
        return memo

    # --------------------------------------------------- provider tables

    @locked_cached_property
    def _asn_info(self) -> tuple[
        dict[str, dict[int, tuple[int, int]]],  # per-country ASN stats
        dict[int, str],                          # first-seen organization
        tuple[int, ...],                         # global first-seen order
        dict[int, set],                          # continents served
        set,                                     # government-operated ASNs
    ]:
        cols = self._cols
        organization_table = self._organizations.table
        per_country: dict[str, dict[int, tuple[int, int]]] = {}
        organization_by_asn: dict[int, str] = {}
        first_seen: list[int] = []
        continents: dict[int, set] = {}
        gov_asns: set = set()
        for code, _country_id, start, stop in self._populated_spans():
            span_asns = cols.asns[start:stop]
            unique, first, inverse = np.unique(
                span_asns, return_index=True, return_inverse=True
            )
            order = np.argsort(first)
            url_counts = np.bincount(inverse)
            byte_sums = np.bincount(inverse, weights=cols.sizes[start:stop])
            country = COUNTRIES.get(code)
            stats: dict[int, tuple[int, int]] = {}
            for i in order.tolist():
                asn = int(unique[i])
                stats[asn] = (int(url_counts[i]), int(byte_sums[i]))
                if asn not in organization_by_asn:
                    first_seen.append(asn)
                    organization_by_asn[asn] = organization_table[
                        cols.organizations[start + int(first[i])]
                    ]
                if country is not None:
                    continents.setdefault(asn, set()).add(country.continent)
            per_country[code] = stats
            gov_mask = cols.gov[start:stop] != 0
            if gov_mask.any():
                gov_asns.update(
                    int(asn) for asn in np.unique(span_asns[gov_mask])
                )
        return per_country, organization_by_asn, tuple(first_seen), continents, gov_asns

    def asn_counts(self) -> dict[str, dict[int, tuple[int, int]]]:
        """Per-country ``asn -> (URL count, byte sum)`` tables.

        Outer keys follow dataset order (countries with records only);
        inner keys follow each ASN's first appearance in that country's
        records -- the insertion order the HHI computation depends on.
        """
        return self._asn_info[0]

    def organization_by_asn(self) -> dict[int, str]:
        """First-seen organization name per ASN, in record order."""
        return self._asn_info[1]

    def asn_first_seen(self) -> tuple[int, ...]:
        """Every ASN in global first-appearance order."""
        return self._asn_info[2]

    def continents_by_asn(self) -> dict[int, set]:
        """Continents each ASN serves governments on (Global definition)."""
        return self._asn_info[3]

    def gov_asns(self) -> set:
        """ASNs carrying at least one government-operated record."""
        return self._asn_info[4]

    @locked_cached_property
    def _country_totals(self) -> tuple[dict[str, int], dict[str, int]]:
        url_totals: dict[str, int] = {}
        byte_totals: dict[str, int] = {}
        for code, (url_counts, byte_sums) in self._category_table.items():
            url_totals[code] = sum(url_counts)
            byte_totals[code] = sum(byte_sums)
        return url_totals, byte_totals

    def country_url_totals(self) -> dict[str, int]:
        """Record count per country (countries with records only)."""
        return self._country_totals[0]

    def country_byte_totals(self) -> dict[str, int]:
        """Byte sum per country (countries with records only)."""
        return self._country_totals[1]

    # ------------------------------------------------- regression inputs

    @locked_cached_property
    def _address_location_table(self) -> dict[str, tuple[int, int]]:
        cols = self._cols
        table: dict[str, tuple[int, int]] = {}
        for code, country_id, start, stop in sorted(self._populated_spans()):
            server = cols.server[start:stop]
            included = server >= 0
            if not included.any():
                continue
            addresses = cols.addresses[start:stop]
            domestic = np.unique(addresses[server == country_id])
            foreign = np.unique(addresses[included & (server != country_id)])
            table[code] = (
                int(foreign.size),
                int(np.union1d(domestic, foreign).size),
            )
        return table

    def address_location_counts(self) -> dict[str, tuple[int, int]]:
        """Per-country ``(foreign server IPs, total server IPs)`` counts.

        Sorted by country code; countries without any located record are
        omitted -- exactly the Appendix E outcome-variable inputs.
        """
        return self._address_location_table

    # -------------------------------------------------- hostname tables

    @locked_cached_property
    def _domains_by_country(self) -> dict[str, set[str]]:
        return {
            code: {
                registrable_domain(hostname)
                for hostname in self._dataset.countries[code].hostnames
            }
            for code, _country_id, start, stop in self._populated_spans()
        }

    def domains_by_country(self) -> dict[str, set[str]]:
        """Registrable government domains per country (dataset order)."""
        return self._domains_by_country

    # ------------------------------------------------------ summary

    @locked_cached_property
    def _summary(self) -> DatasetSummary:
        cols = self._cols
        dataset = self._dataset
        landing = sum(cd.landing_count for cd in dataset.countries.values())
        total = self.record_count
        hostnames: set[str] = set()
        for country_dataset in dataset.countries.values():
            hostnames |= country_dataset.hostnames
        anycast_mask = cols.anycast != 0
        unique_server_ids = np.unique(cols.server)
        return DatasetSummary(
            landing_urls=landing,
            internal_urls=max(0, total - landing),
            total_unique_urls=total,
            unique_hostnames=len(hostnames),
            ases=len(self.organization_by_asn()),
            government_ases=len(self.gov_asns()),
            unique_addresses=int(np.unique(cols.addresses).size),
            anycast_addresses=int(np.unique(cols.addresses[anycast_mask]).size),
            countries_with_servers=int(np.count_nonzero(unique_server_ids >= 0)),
        )

    def summary(self) -> DatasetSummary:
        """The Table 3 headline numbers (equals ``dataset.summarize()``)."""
        return self._summary


#: Either a dataset or a prebuilt index -- what every rewritten Section
#: 5-7 analysis function accepts.
DatasetOrIndex = Union[GovernmentHostingDataset, AnalysisIndex]


def ensure_index(source: DatasetOrIndex) -> AnalysisIndex:
    """Resolve ``source`` to an :class:`AnalysisIndex` (building if needed)."""
    return AnalysisIndex.ensure(source)


def underlying_dataset(source: DatasetOrIndex) -> GovernmentHostingDataset:
    """The dataset behind ``source`` (identity for plain datasets)."""
    if isinstance(source, AnalysisIndex):
        return source.dataset
    return source


__all__ = [
    "CATEGORIES",
    "AnalysisIndex",
    "DatasetOrIndex",
    "ensure_index",
    "locked_cached_property",
    "underlying_dataset",
]
