"""Reference record-loop implementations of the Section 5-7 analyses.

Each ``baseline_*`` function is the pre-index implementation of the
corresponding analysis, kept verbatim: one (or more) full passes over
``dataset.iter_records()`` / ``country_dataset.records`` per call.
They serve two purposes:

* the equivalence suite (``tests/analysis/test_engine_equivalence.py``)
  asserts that the :class:`~repro.analysis.engine.AnalysisIndex`-backed
  rewrites return **exactly equal** results -- same float arithmetic,
  same ordering, same types;
* the report benchmark (``benchmarks/bench_report_analysis.py``)
  measures the index speedup against these loops.

Nothing here is exported through ``repro.analysis.engine`` -- import it
explicitly.  Production code must use the index-backed analyses.
"""

from __future__ import annotations

import statistics
from typing import Optional

import numpy as np

from repro.analysis.crossborder import (
    Basis,
    CrossBorderFlow,
    EU_MEMBER_CODES,
    region_of,
)
from repro.analysis.diversification import dominant_category, hhi
from repro.analysis.hosting import Weighting, _mean_mixes, category_fractions
from repro.analysis.providers import ProviderFootprint
from repro.analysis.registration import (
    LocationSplit,
    _split,
    registration_split,
    server_split,
)
from repro.analysis.regression import (
    FEATURE_NAMES,
    RegressionResult,
    _standardize,
    fit_ols,
    vifs_of_features,
)
from repro.categories import CATEGORY_ORDER, HostingCategory
from repro.core.dataset import CountryDataset, GovernmentHostingDataset
from repro.reporting.figures import render_histogram
from repro.reporting.tables import render_table
from repro.urltools import registrable_domain
from repro.websim.topsites import COMPARISON_COUNTRIES, TopsiteHosting
from repro.world.countries import COUNTRIES, get_country
from repro.world.regions import Region


# ---------------------------------------------------------------------------
# Hosting trends (Section 5)
# ---------------------------------------------------------------------------

def baseline_global_breakdown(
    dataset: GovernmentHostingDataset,
) -> dict[str, dict[HostingCategory, float]]:
    records = list(dataset.iter_records())
    return {
        "urls": category_fractions(records, by_bytes=False),
        "bytes": category_fractions(records, by_bytes=True),
    }


def baseline_country_breakdown(
    dataset: GovernmentHostingDataset,
) -> dict[str, dict[str, dict[HostingCategory, float]]]:
    result: dict[str, dict[str, dict[HostingCategory, float]]] = {}
    for code, country_dataset in sorted(dataset.countries.items()):
        if not country_dataset.records:
            continue
        result[code] = {
            "urls": category_fractions(country_dataset.records, by_bytes=False),
            "bytes": category_fractions(country_dataset.records, by_bytes=True),
        }
    return result


def baseline_regional_breakdown(
    dataset: GovernmentHostingDataset,
    by_bytes: bool = False,
    weighting: Weighting = "country",
) -> dict[Region, dict[HostingCategory, float]]:
    by_region: dict[Region, list] = {}
    for code, country_dataset in dataset.countries.items():
        if not country_dataset.records:
            continue
        region = get_country(code).region
        by_region.setdefault(region, []).append(country_dataset)
    result: dict[Region, dict[HostingCategory, float]] = {}
    for region, country_datasets in by_region.items():
        if weighting == "country":
            mixes = [
                category_fractions(cd.records, by_bytes=by_bytes)
                for cd in country_datasets
            ]
            result[region] = _mean_mixes(mixes)
        else:
            pooled = [record for cd in country_datasets for record in cd.records]
            result[region] = category_fractions(pooled, by_bytes=by_bytes)
    return result


def baseline_country_majority(
    dataset: GovernmentHostingDataset, by_bytes: bool = True
) -> dict[str, str]:
    result: dict[str, str] = {}
    for code, country_dataset in sorted(dataset.countries.items()):
        if not country_dataset.records:
            continue
        mix = category_fractions(country_dataset.records, by_bytes=by_bytes)
        third_party = sum(
            share for category, share in mix.items() if category.is_third_party
        )
        result[code] = "3P" if third_party > 0.5 else "Govt&SOE"
    return result


# ---------------------------------------------------------------------------
# Registration and server locations (Section 6)
# ---------------------------------------------------------------------------

def baseline_global_split(
    dataset: GovernmentHostingDataset,
) -> dict[str, LocationSplit]:
    records = list(dataset.iter_records())
    return {
        "whois": registration_split(records),
        "geolocation": server_split(records),
    }


def baseline_country_split(
    dataset: GovernmentHostingDataset,
) -> dict[str, dict[str, LocationSplit]]:
    result: dict[str, dict[str, LocationSplit]] = {}
    for code, country_dataset in sorted(dataset.countries.items()):
        if not country_dataset.records:
            continue
        result[code] = {
            "whois": registration_split(country_dataset.records),
            "geolocation": server_split(country_dataset.records),
        }
    return result


def baseline_regional_split(
    dataset: GovernmentHostingDataset,
    view: str = "geolocation",
    weighting: Weighting = "country",
) -> dict[Region, LocationSplit]:
    if view not in ("whois", "geolocation"):
        raise ValueError(f"unknown view {view!r}")
    split_fn = registration_split if view == "whois" else server_split
    by_region: dict[Region, list] = {}
    for code, country_dataset in dataset.countries.items():
        if not country_dataset.records:
            continue
        by_region.setdefault(get_country(code).region, []).append(country_dataset)
    result: dict[Region, LocationSplit] = {}
    for region, country_datasets in by_region.items():
        if weighting == "country":
            splits = [split_fn(cd.records) for cd in country_datasets]
            splits = [s for s in splits if s.domestic + s.international > 0]
            if not splits:
                result[region] = LocationSplit(0.0, 0.0)
                continue
            domestic = sum(s.domestic for s in splits) / len(splits)
            result[region] = LocationSplit(domestic, 1.0 - domestic)
        else:
            pooled = [record for cd in country_datasets for record in cd.records]
            result[region] = split_fn(pooled)
    return result


# ---------------------------------------------------------------------------
# Cross-border dependencies (Section 6.3)
# ---------------------------------------------------------------------------

def _record_destination(record, basis: Basis):
    if basis == "registration":
        return record.registered_country
    return record.server_country


def baseline_flows(
    dataset: GovernmentHostingDataset, basis: Basis = "server"
) -> list[CrossBorderFlow]:
    counts: dict[tuple[str, str], list[int]] = {}
    for record in dataset.iter_records():
        destination = _record_destination(record, basis)
        if destination is None or destination == record.country:
            continue
        key = (record.country, destination)
        bucket = counts.setdefault(key, [0, 0])
        bucket[0] += 1
        bucket[1] += record.size_bytes
    return [
        CrossBorderFlow(source=s, destination=d, url_count=u, byte_count=b)
        for (s, d), (u, b) in sorted(counts.items())
    ]


def baseline_same_region_share(
    dataset: GovernmentHostingDataset, basis: Basis = "server"
) -> dict[Region, float]:
    in_region: dict[Region, int] = {}
    total: dict[Region, int] = {}
    for flow in baseline_flows(dataset, basis):
        source_region = region_of(flow.source)
        total[source_region] = total.get(source_region, 0) + flow.url_count
        if region_of(flow.destination) is source_region:
            in_region[source_region] = (
                in_region.get(source_region, 0) + flow.url_count
            )
    return {
        region: in_region.get(region, 0) / count
        for region, count in total.items()
        if count > 0
    }


def baseline_regional_affinity(
    dataset: GovernmentHostingDataset, basis: Basis = "server"
) -> dict[Region, dict[str, float]]:
    per_region: dict[Region, dict[str, int]] = {}
    for flow in baseline_flows(dataset, basis):
        source_region = region_of(flow.source)
        if region_of(flow.destination) is not source_region:
            continue
        hosts = per_region.setdefault(source_region, {})
        hosts[flow.destination] = hosts.get(flow.destination, 0) + flow.url_count
    result: dict[Region, dict[str, float]] = {}
    for region, hosts in per_region.items():
        region_total = sum(hosts.values())
        result[region] = {
            code: count / region_total for code, count in sorted(hosts.items())
        }
    return result


def baseline_gdpr_compliance(dataset: GovernmentHostingDataset) -> float:
    total = 0
    compliant = 0
    for record in dataset.iter_records():
        if record.country not in EU_MEMBER_CODES:
            continue
        if record.server_country is None:
            continue
        total += 1
        if record.server_country in EU_MEMBER_CODES:
            compliant += 1
    return compliant / total if total else 0.0


def baseline_bilateral_share(
    dataset: GovernmentHostingDataset,
    source: str,
    destination: str,
    basis: Basis = "server",
) -> float:
    source = source.upper()
    destination = destination.upper()
    total = 0
    matching = 0
    for record in dataset.countries[source].records:
        dest = _record_destination(record, basis)
        if basis == "server" and dest is None:
            continue
        total += 1
        if dest == destination:
            matching += 1
    return matching / total if total else 0.0


def baseline_foreign_share_by_destination(
    dataset: GovernmentHostingDataset, basis: Basis = "server"
) -> dict[str, float]:
    all_flows = baseline_flows(dataset, basis)
    grand_total = sum(flow.url_count for flow in all_flows)
    if grand_total == 0:
        return {}
    by_destination: dict[str, int] = {}
    for flow in all_flows:
        by_destination[flow.destination] = (
            by_destination.get(flow.destination, 0) + flow.url_count
        )
    return {
        code: count / grand_total for code, count in sorted(by_destination.items())
    }


# ---------------------------------------------------------------------------
# Global providers (Section 7.1)
# ---------------------------------------------------------------------------

def _baseline_continents_served(dataset: GovernmentHostingDataset) -> dict[int, set]:
    continents: dict[int, set] = {}
    for record in dataset.iter_records():
        country = COUNTRIES.get(record.country)
        if country is None:
            continue
        continents.setdefault(record.asn, set()).add(country.continent)
    return continents


def baseline_global_provider_asns(dataset: GovernmentHostingDataset) -> set[int]:
    continents = _baseline_continents_served(dataset)
    gov_asns = {r.asn for r in dataset.iter_records() if r.gov_operated}
    return {
        asn
        for asn, cset in continents.items()
        if len(cset) >= 2 and asn not in gov_asns
    }


def baseline_global_provider_footprints(
    dataset: GovernmentHostingDataset,
) -> list[ProviderFootprint]:
    global_asns = baseline_global_provider_asns(dataset)
    countries_by_asn: dict[int, set[str]] = {}
    name_by_asn: dict[int, str] = {}
    for record in dataset.iter_records():
        if record.asn not in global_asns:
            continue
        countries_by_asn.setdefault(record.asn, set()).add(record.country)
        name_by_asn.setdefault(record.asn, record.organization)
    footprints = [
        ProviderFootprint(
            asn=asn,
            name=name_by_asn[asn],
            country_count=len(countries),
            countries=tuple(sorted(countries)),
        )
        for asn, countries in countries_by_asn.items()
    ]
    footprints.sort(key=lambda fp: (-fp.country_count, fp.asn))
    return footprints


def baseline_provider_byte_reliance(
    dataset: GovernmentHostingDataset,
) -> dict[tuple[int, str], float]:
    global_asns = baseline_global_provider_asns(dataset)
    country_totals: dict[str, int] = {}
    pair_bytes: dict[tuple[int, str], int] = {}
    for record in dataset.iter_records():
        country_totals[record.country] = (
            country_totals.get(record.country, 0) + record.size_bytes
        )
        if record.asn in global_asns:
            key = (record.asn, record.country)
            pair_bytes[key] = pair_bytes.get(key, 0) + record.size_bytes
    return {
        (asn, country): byte_count / country_totals[country]
        for (asn, country), byte_count in sorted(pair_bytes.items())
        if country_totals[country] > 0
    }


def baseline_top_reliances(
    dataset: GovernmentHostingDataset, limit: int = 5
) -> list[tuple[str, int, str, float]]:
    reliance = baseline_provider_byte_reliance(dataset)
    names: dict[int, str] = {}
    for record in dataset.iter_records():
        names.setdefault(record.asn, record.organization)
    ranked = sorted(reliance.items(), key=lambda item: -item[1])[:limit]
    return [
        (names.get(asn, f"AS{asn}"), asn, country, fraction)
        for (asn, country), fraction in ranked
    ]


# ---------------------------------------------------------------------------
# Diversification (Section 7.2)
# ---------------------------------------------------------------------------

def _baseline_network_shares(
    country_dataset: CountryDataset, by_bytes: bool
) -> dict[int, float]:
    totals: dict[int, float] = {}
    for record in country_dataset.records:
        weight = record.size_bytes if by_bytes else 1.0
        totals[record.asn] = totals.get(record.asn, 0.0) + weight
    return totals


def baseline_country_network_hhi(
    dataset: GovernmentHostingDataset, by_bytes: bool = False
) -> dict[str, float]:
    result: dict[str, float] = {}
    for code, country_dataset in sorted(dataset.countries.items()):
        shares = _baseline_network_shares(country_dataset, by_bytes)
        if shares:
            result[code] = hhi(list(shares.values()))
    return result


def baseline_hhi_by_dominant_category(
    dataset: GovernmentHostingDataset, by_bytes: bool = False
) -> dict[HostingCategory, list[float]]:
    values = baseline_country_network_hhi(dataset, by_bytes=by_bytes)
    groups: dict[HostingCategory, list[float]] = {}
    for code, value in values.items():
        country_dataset = dataset.countries[code]
        group = dominant_category(country_dataset)
        if group is None:
            continue
        groups.setdefault(group, []).append(value)
    return groups


def baseline_single_network_dependence(
    dataset: GovernmentHostingDataset, threshold: float = 0.5
) -> dict[HostingCategory, tuple[int, int]]:
    result: dict[HostingCategory, tuple[int, int]] = {}
    for code, country_dataset in sorted(dataset.countries.items()):
        group = dominant_category(country_dataset)
        if group is None:
            continue
        shares = _baseline_network_shares(country_dataset, by_bytes=True)
        total = sum(shares.values())
        top_share = max(shares.values()) / total if total else 0.0
        above, size = result.get(group, (0, 0))
        result[group] = (above + (1 if top_share > threshold else 0), size + 1)
    return result


# ---------------------------------------------------------------------------
# Outage-impact simulation (Section 7.2 extension)
# ---------------------------------------------------------------------------

def baseline_outage_impact(dataset: GovernmentHostingDataset, asn: int) -> dict:
    from repro.analysis.resilience import OutageImpact

    impacts: dict[str, OutageImpact] = {}
    for code, country_dataset in sorted(dataset.countries.items()):
        if not country_dataset.records:
            continue
        total_urls = len(country_dataset.records)
        total_bytes = sum(r.size_bytes for r in country_dataset.records)
        lost_urls = 0
        lost_bytes = 0
        for record in country_dataset.records:
            if record.asn == asn:
                lost_urls += 1
                lost_bytes += record.size_bytes
        if lost_urls == 0:
            continue
        impacts[code] = OutageImpact(
            country=code,
            asn=asn,
            url_share_lost=lost_urls / total_urls if total_urls else 0.0,
            byte_share_lost=lost_bytes / total_bytes if total_bytes else 0.0,
        )
    return impacts


def baseline_single_points_of_failure(
    dataset: GovernmentHostingDataset, threshold: float = 0.5
) -> dict[str, tuple[int, float]]:
    result: dict[str, tuple[int, float]] = {}
    for code, country_dataset in sorted(dataset.countries.items()):
        if not country_dataset.records:
            continue
        by_asn: dict[int, int] = {}
        for record in country_dataset.records:
            by_asn[record.asn] = by_asn.get(record.asn, 0) + record.size_bytes
        total = sum(by_asn.values())
        if total == 0:
            continue
        top_asn = max(by_asn, key=by_asn.get)
        share = by_asn[top_asn] / total
        if share > threshold:
            result[code] = (top_asn, share)
    return result


def baseline_worst_global_outage(
    dataset: GovernmentHostingDataset,
) -> tuple[int, int, float]:
    # First-seen organization per ASN, mirroring the index's
    # organization_by_asn() so both implementations break exact
    # (affected, mean_loss) ties on the same (name, asn) order.
    names: dict[int, str] = {}
    for record in dataset.iter_records():
        names.setdefault(record.asn, record.organization)
    worst = (0, 0, 0.0)
    worst_tie = ("", 0)
    for asn in sorted(names):
        impacts = baseline_outage_impact(dataset, asn)
        affected = [i for i in impacts.values() if i.url_share_lost > 0.10]
        if not affected:
            continue
        mean_loss = sum(i.url_share_lost for i in affected) / len(affected)
        candidate = (asn, len(affected), mean_loss)
        tie = (names.get(asn, ""), asn)
        if (candidate[1], candidate[2]) > (worst[1], worst[2]) or (
            (candidate[1], candidate[2]) == (worst[1], worst[2])
            and tie < worst_tie
        ):
            worst = candidate
            worst_tie = tie
    return worst


# ---------------------------------------------------------------------------
# Explanatory regression (Appendix E)
# ---------------------------------------------------------------------------

def baseline_feature_matrix(
    dataset: GovernmentHostingDataset,
) -> tuple[list[str], np.ndarray, np.ndarray]:
    codes: list[str] = []
    raw_features: list[list[float]] = []
    outcomes: list[float] = []
    for code, country_dataset in sorted(dataset.countries.items()):
        included = country_dataset.included_records()
        if not included:
            continue
        country = get_country(code)
        domestic_ips = {r.address for r in included if r.server_country == code}
        foreign_ips = {r.address for r in included if r.server_country != code}
        total_ips = len(domestic_ips | foreign_ips)
        intl = len(foreign_ips) / total_ips if total_ips else 0.0
        codes.append(code)
        raw_features.append([
            country.idi,
            country.efi,
            country.gdp_per_capita_kusd,
            country.hdi if country.hdi is not None else 0.8,
            country.nri,
            country.internet_users_m,
        ])
        outcomes.append(intl)
    features = _standardize(np.array(raw_features, dtype=float))
    outcome = np.array(outcomes, dtype=float)
    outcome = (outcome - outcome.mean()) / (outcome.std() or 1.0)
    return codes, features, outcome


def baseline_explanatory_regression(
    dataset: GovernmentHostingDataset,
) -> RegressionResult:
    _, features, outcome = baseline_feature_matrix(dataset)
    return fit_ols(features, outcome)


def baseline_variance_inflation_factors(
    dataset: GovernmentHostingDataset,
) -> dict[str, float]:
    _, features, _ = baseline_feature_matrix(dataset)
    return vifs_of_features(features)


# ---------------------------------------------------------------------------
# Topsites comparison subsets (Section 5.1/6.1)
# ---------------------------------------------------------------------------

def baseline_government_subset_breakdown(
    dataset: GovernmentHostingDataset,
    countries: tuple[str, ...] = COMPARISON_COUNTRIES,
) -> dict[str, dict[TopsiteHosting, float]]:
    from repro.analysis.topsites import _GOV_TO_COMPARISON

    url_totals = {label: 0.0 for label in TopsiteHosting}
    byte_totals = {label: 0.0 for label in TopsiteHosting}
    for code in countries:
        country_dataset = dataset.countries.get(code)
        if country_dataset is None:
            continue
        for record in country_dataset.records:
            label = _GOV_TO_COMPARISON[record.category]
            url_totals[label] += 1
            byte_totals[label] += record.size_bytes
    url_sum = sum(url_totals.values()) or 1.0
    byte_sum = sum(byte_totals.values()) or 1.0
    return {
        "urls": {label: value / url_sum for label, value in url_totals.items()},
        "bytes": {label: value / byte_sum for label, value in byte_totals.items()},
    }


def baseline_government_subset_location(
    dataset: GovernmentHostingDataset,
    countries: tuple[str, ...] = COMPARISON_COUNTRIES,
) -> dict[str, LocationSplit]:
    records = []
    for code in countries:
        country_dataset = dataset.countries.get(code)
        if country_dataset is not None:
            records.extend(country_dataset.records)
    return {
        "whois": registration_split(records),
        "geolocation": server_split(records),
    }


# ---------------------------------------------------------------------------
# Extensions (DNS dependency, HTTPS adoption)
# ---------------------------------------------------------------------------

def baseline_domains_by_country(
    dataset: GovernmentHostingDataset,
) -> dict[str, set[str]]:
    result: dict[str, set[str]] = {}
    for record in dataset.iter_records():
        result.setdefault(record.country, set()).add(
            registrable_domain(record.hostname)
        )
    return result


def baseline_global_third_party_dns_share(
    world, dataset: GovernmentHostingDataset
) -> float:
    total = 0
    third_party = 0
    for domains in baseline_domains_by_country(dataset).values():
        for domain in domains:
            delegation = world.nameservers.lookup(domain)
            if delegation is None:
                continue
            total += 1
            third_party += not delegation.self_hosted
    return third_party / total if total else 0.0


def baseline_global_https_prevalence(
    world, dataset: GovernmentHostingDataset
) -> tuple[float, float]:
    total = have = valid = 0
    for country_dataset in dataset.countries.values():
        for hostname in {record.hostname for record in country_dataset.records}:
            total += 1
            certificate = world.certificates.get(hostname)
            if certificate is None:
                continue
            have += 1
            valid += certificate.valid
    if total == 0:
        return (0.0, 0.0)
    return (have / total, valid / total)


# ---------------------------------------------------------------------------
# Full paper report (record-loop rendering, verbatim pre-index)
# ---------------------------------------------------------------------------

def _section(title: str) -> str:
    rule = "=" * len(title)
    return f"\n{title}\n{rule}\n"


def _baseline_hosting_section(dataset: GovernmentHostingDataset) -> str:
    parts = [_section("Trends in government hosting (Section 5)")]
    breakdown = baseline_global_breakdown(dataset)
    parts.append(render_table(
        ["category", "URLs", "bytes"],
        [[str(c), f"{breakdown['urls'][c]:.2f}", f"{breakdown['bytes'][c]:.2f}"]
         for c in CATEGORY_ORDER],
        title="Global prevalence (Figure 2)",
    ))
    regional = baseline_regional_breakdown(dataset, by_bytes=True)
    parts.append("")
    parts.append(render_table(
        ["region"] + [str(c) for c in CATEGORY_ORDER],
        [[region.name] + [f"{mix[c]:.2f}" for c in CATEGORY_ORDER]
         for region, mix in sorted(regional.items(), key=lambda kv: kv[0].name)],
        title="Regional byte mixes (Figure 4b)",
    ))
    majority = baseline_country_majority(dataset)
    third_party = sorted(c for c, label in majority.items() if label == "3P")
    parts.append(
        f"\nMajority third-party countries (Figure 1): {len(third_party)} of "
        f"{len(majority)} -- {' '.join(third_party)}"
    )
    return "\n".join(parts)


def _baseline_location_section(dataset: GovernmentHostingDataset) -> str:
    parts = [_section("Registration and server locations (Section 6)")]
    splits = baseline_global_split(dataset)
    parts.append(render_table(
        ["view", "domestic", "international"],
        [[view, f"{split.domestic:.2f}", f"{split.international:.2f}"]
         for view, split in splits.items()],
        title="Global domestic/international (Figure 6)",
    ))
    location = baseline_regional_split(dataset, view="geolocation", weighting="url")
    parts.append("")
    parts.append(render_table(
        ["region", "domestic"],
        [[region.name, f"{split.domestic:.2f}"]
         for region, split in sorted(location.items(),
                                     key=lambda kv: kv[1].domestic)],
        title="Server location per region (Figure 8b)",
    ))
    retention = baseline_same_region_share(dataset)
    parts.append("")
    parts.append(render_table(
        ["region", "% in-region"],
        [[region.name, f"{share * 100:.1f}"]
         for region, share in sorted(retention.items(), key=lambda kv: -kv[1])],
        title="Cross-border dependencies staying in-region (Table 5)",
    ))
    affinity = baseline_regional_affinity(dataset)
    for region, hosts in sorted(affinity.items(), key=lambda kv: kv[0].name):
        leader = max(hosts, key=hosts.get)
        parts.append(f"  {region.name}: {leader} hosts {hosts[leader]:.0%} "
                     f"of in-region cross-border URLs")
    destinations = baseline_foreign_share_by_destination(dataset)
    if destinations:
        top = sorted(destinations.items(), key=lambda kv: -kv[1])[:5]
        parts.append("  top foreign destinations: " + ", ".join(
            f"{code} {share:.0%}" for code, share in top))
    parts.append(
        f"  GDPR compliance of EU members: {baseline_gdpr_compliance(dataset):.1%}"
    )
    return "\n".join(parts)


def _baseline_centralization_section(dataset: GovernmentHostingDataset) -> str:
    parts = [_section("Global providers and diversification (Section 7)")]
    footprints = baseline_global_provider_footprints(dataset)
    if footprints:
        parts.append(render_histogram(
            [f"{fp.name} (AS{fp.asn})" for fp in footprints[:10]],
            [fp.country_count for fp in footprints[:10]],
            title="Countries per Global provider (Figure 10)",
        ))
    reliances = baseline_top_reliances(dataset, 5)
    parts.append("")
    parts.append(render_table(
        ["provider", "country", "byte share"],
        [[name, country, f"{fraction:.0%}"]
         for name, _asn, country, fraction in reliances],
        title="Deepest single-provider reliances",
    ))
    groups = baseline_hhi_by_dominant_category(dataset, by_bytes=True)
    dependence = baseline_single_network_dependence(dataset)
    rows = []
    for category in (HostingCategory.GOVT_SOE, HostingCategory.P3_LOCAL,
                     HostingCategory.P3_GLOBAL):
        values = groups.get(category, [])
        above, total = dependence.get(category, (0, 0))
        rows.append([
            str(category),
            f"{statistics.median(values):.2f}" if values else "-",
            f"{above}/{total}" if total else "-",
        ])
    parts.append("")
    parts.append(render_table(
        ["dominant source", "median HHI", ">50% single network"],
        rows, title="Diversification (Figure 11)",
    ))
    return "\n".join(parts)


def _baseline_regression_section(dataset: GovernmentHostingDataset) -> str:
    parts = [_section("Explanatory factors (Appendix E)")]
    try:
        result = baseline_explanatory_regression(dataset)
    except ValueError:
        return parts[0] + "not enough countries for the regression"
    vifs = baseline_variance_inflation_factors(dataset)
    parts.append(render_table(
        ["feature", "estimate", "p-value", "VIF"],
        [[name,
          f"{result.coefficient(name).estimate:+.3f}",
          f"{result.coefficient(name).p_value:.3f}",
          f"{vifs[name]:.2f}"]
         for name in FEATURE_NAMES],
        title="OLS over offshore-hosting shares (Figure 12, Table 7)",
    ))
    parts.append(f"R^2 = {result.r_squared:.2f}, n = {result.n_observations}")
    return "\n".join(parts)


def baseline_render_paper_report(
    dataset: GovernmentHostingDataset,
    world: Optional[object] = None,
) -> str:
    """The full evaluation report rendered with record loops only."""
    summary = dataset.summarize()
    header = (
        "OF CHOICES AND CONTROL -- reproduction report\n"
        f"{summary.total_unique_urls:,} URLs / "
        f"{summary.unique_hostnames:,} hostnames / "
        f"{summary.ases} ASes / {summary.unique_addresses} addresses / "
        f"{summary.countries_with_servers} server countries\n"
    )
    sections = [
        header,
        _baseline_hosting_section(dataset),
        _baseline_location_section(dataset),
        _baseline_centralization_section(dataset),
        _baseline_regression_section(dataset),
    ]
    if world is not None:
        have, valid = baseline_global_https_prevalence(world, dataset)
        dns_share = baseline_global_third_party_dns_share(world, dataset)
        sections.append(_section("Extensions") + (
            f"valid HTTPS on government hostnames: {valid:.1%}\n"
            f"government domains on third-party DNS: {dns_share:.1%}"
        ))
    return "\n".join(sections) + "\n"


__all__ = [name for name in dir() if name.startswith("baseline_")]
