"""Hosting-trend analyses (Section 5, Figures 1, 2 and 4).

Fractions of URLs and bytes served by each hosting category, globally,
per region and per country.  Global prevalence (Figure 2) is computed
URL/byte-weighted over the whole dataset; regional breakdowns
(Figure 4) default to country-mean weighting so giant crawls (Belgium,
Hungary) do not erase the regional signal -- both weightings are
exposed.
"""

from __future__ import annotations

from typing import Iterable, Literal

from repro.categories import HostingCategory
from repro.core.dataset import GovernmentHostingDataset, UrlRecord
from repro.world.countries import get_country
from repro.world.regions import Region

Weighting = Literal["url", "country"]


def category_fractions(
    records: Iterable[UrlRecord], by_bytes: bool = False
) -> dict[HostingCategory, float]:
    """Fraction of URLs (or bytes) served by each category."""
    totals = {category: 0.0 for category in HostingCategory}
    for record in records:
        totals[record.category] += record.size_bytes if by_bytes else 1.0
    grand_total = sum(totals.values())
    if grand_total == 0:
        return totals
    return {cat: value / grand_total for cat, value in totals.items()}


def global_breakdown(
    dataset: GovernmentHostingDataset,
) -> dict[str, dict[HostingCategory, float]]:
    """Figure 2: global prevalence of each category, by URLs and bytes."""
    records = list(dataset.iter_records())
    return {
        "urls": category_fractions(records, by_bytes=False),
        "bytes": category_fractions(records, by_bytes=True),
    }


def country_breakdown(
    dataset: GovernmentHostingDataset,
) -> dict[str, dict[str, dict[HostingCategory, float]]]:
    """Per-country URL and byte category mixes."""
    result: dict[str, dict[str, dict[HostingCategory, float]]] = {}
    for code, country_dataset in sorted(dataset.countries.items()):
        if not country_dataset.records:
            continue
        result[code] = {
            "urls": country_dataset.category_url_fractions(),
            "bytes": country_dataset.category_byte_fractions(),
        }
    return result


def _mean_mixes(
    mixes: list[dict[HostingCategory, float]]
) -> dict[HostingCategory, float]:
    if not mixes:
        return {category: 0.0 for category in HostingCategory}
    return {
        category: sum(mix[category] for mix in mixes) / len(mixes)
        for category in HostingCategory
    }


def regional_breakdown(
    dataset: GovernmentHostingDataset,
    by_bytes: bool = False,
    weighting: Weighting = "country",
) -> dict[Region, dict[HostingCategory, float]]:
    """Figure 4: category mix per World Bank region.

    ``weighting='country'`` averages per-country mixes (each government
    counts once); ``'url'`` pools all records of the region.
    """
    by_region: dict[Region, list] = {}
    for code, country_dataset in dataset.countries.items():
        if not country_dataset.records:
            continue
        region = get_country(code).region
        by_region.setdefault(region, []).append(country_dataset)
    result: dict[Region, dict[HostingCategory, float]] = {}
    for region, country_datasets in by_region.items():
        if weighting == "country":
            mixes = [
                cd.category_byte_fractions() if by_bytes else cd.category_url_fractions()
                for cd in country_datasets
            ]
            result[region] = _mean_mixes(mixes)
        else:
            pooled = [record for cd in country_datasets for record in cd.records]
            result[region] = category_fractions(pooled, by_bytes=by_bytes)
    return result


def country_majority(
    dataset: GovernmentHostingDataset, by_bytes: bool = True
) -> dict[str, str]:
    """Figure 1: whether each country's traffic is majority third-party.

    Returns ``"3P"`` or ``"Govt&SOE"`` per country code.
    """
    result: dict[str, str] = {}
    for code, country_dataset in sorted(dataset.countries.items()):
        if not country_dataset.records:
            continue
        mix = (
            country_dataset.category_byte_fractions()
            if by_bytes
            else country_dataset.category_url_fractions()
        )
        third_party = sum(
            share for category, share in mix.items() if category.is_third_party
        )
        result[code] = "3P" if third_party > 0.5 else "Govt&SOE"
    return result


__all__ = [
    "Weighting",
    "category_fractions",
    "global_breakdown",
    "country_breakdown",
    "regional_breakdown",
    "country_majority",
]
