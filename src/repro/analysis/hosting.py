"""Hosting-trend analyses (Section 5, Figures 1, 2 and 4).

Fractions of URLs and bytes served by each hosting category, globally,
per region and per country.  Global prevalence (Figure 2) is computed
URL/byte-weighted over the whole dataset; regional breakdowns
(Figure 4) default to country-mean weighting so giant crawls (Belgium,
Hungary) do not erase the regional signal -- both weightings are
exposed.

Dataset-level functions accept either a dataset (an
:class:`~repro.analysis.engine.AnalysisIndex` is built transparently
and cached on it) or a prebuilt index; :func:`category_fractions`
keeps the raw record-pool signature for callers holding record lists.
"""

from __future__ import annotations

from typing import Iterable, Literal, Sequence

from repro.analysis.engine.index import DatasetOrIndex, ensure_index
from repro.categories import HostingCategory
from repro.core.dataset import UrlRecord
from repro.world.countries import get_country
from repro.world.regions import Region

Weighting = Literal["url", "country"]


def category_fractions(
    records: Iterable[UrlRecord], by_bytes: bool = False
) -> dict[HostingCategory, float]:
    """Fraction of URLs (or bytes) served by each category."""
    totals = {category: 0.0 for category in HostingCategory}
    for record in records:
        totals[record.category] += record.size_bytes if by_bytes else 1.0
    grand_total = sum(totals.values())
    if grand_total == 0:
        return totals
    return {cat: value / grand_total for cat, value in totals.items()}


def fractions_of_counts(counts: Sequence[int]) -> dict[HostingCategory, float]:
    """:func:`category_fractions` over per-category integer tallies.

    ``counts`` follows ``HostingCategory`` declaration order (the index
    category-code space); the float arithmetic matches the record loop
    exactly.
    """
    totals = {
        category: float(count) for category, count in zip(HostingCategory, counts)
    }
    grand_total = sum(totals.values())
    if grand_total == 0:
        return totals
    return {cat: value / grand_total for cat, value in totals.items()}


def global_breakdown(
    dataset: DatasetOrIndex,
) -> dict[str, dict[HostingCategory, float]]:
    """Figure 2: global prevalence of each category, by URLs and bytes.

    Both weightings come from one set of index tallies -- no record
    list is materialized.
    """
    index = ensure_index(dataset)
    url_counts, byte_sums = index.global_category_counts()
    return {
        "urls": fractions_of_counts(url_counts),
        "bytes": fractions_of_counts(byte_sums),
    }


def country_breakdown(
    dataset: DatasetOrIndex,
) -> dict[str, dict[str, dict[HostingCategory, float]]]:
    """Per-country URL and byte category mixes."""
    index = ensure_index(dataset)
    result: dict[str, dict[str, dict[HostingCategory, float]]] = {}
    for code, (url_counts, byte_sums) in sorted(index.category_counts().items()):
        result[code] = {
            "urls": fractions_of_counts(url_counts),
            "bytes": fractions_of_counts(byte_sums),
        }
    return result


def _mean_mixes(
    mixes: list[dict[HostingCategory, float]]
) -> dict[HostingCategory, float]:
    if not mixes:
        return {category: 0.0 for category in HostingCategory}
    return {
        category: sum(mix[category] for mix in mixes) / len(mixes)
        for category in HostingCategory
    }


def regional_breakdown(
    dataset: DatasetOrIndex,
    by_bytes: bool = False,
    weighting: Weighting = "country",
) -> dict[Region, dict[HostingCategory, float]]:
    """Figure 4: category mix per World Bank region.

    ``weighting='country'`` averages per-country mixes (each government
    counts once); ``'url'`` pools all records of the region -- summing
    the per-country tallies, without materializing a pooled record
    list.
    """
    index = ensure_index(dataset)
    by_region: dict[Region, list[tuple[tuple[int, ...], tuple[int, ...]]]] = {}
    for code, counts in index.category_counts().items():
        region = get_country(code).region
        by_region.setdefault(region, []).append(counts)
    result: dict[Region, dict[HostingCategory, float]] = {}
    for region, tallies in by_region.items():
        if weighting == "country":
            mixes = [
                fractions_of_counts(byte_sums if by_bytes else url_counts)
                for url_counts, byte_sums in tallies
            ]
            result[region] = _mean_mixes(mixes)
        else:
            pooled = [0] * len(HostingCategory)
            for url_counts, byte_sums in tallies:
                selected = byte_sums if by_bytes else url_counts
                for i, value in enumerate(selected):
                    pooled[i] += value
            result[region] = fractions_of_counts(pooled)
    return result


def country_majority(
    dataset: DatasetOrIndex, by_bytes: bool = True
) -> dict[str, str]:
    """Figure 1: whether each country's traffic is majority third-party.

    Returns ``"3P"`` or ``"Govt&SOE"`` per country code.
    """
    index = ensure_index(dataset)
    result: dict[str, str] = {}
    for code, (url_counts, byte_sums) in sorted(index.category_counts().items()):
        mix = fractions_of_counts(byte_sums if by_bytes else url_counts)
        third_party = sum(
            share for category, share in mix.items() if category.is_third_party
        )
        result[code] = "3P" if third_party > 0.5 else "Govt&SOE"
    return result


__all__ = [
    "Weighting",
    "category_fractions",
    "fractions_of_counts",
    "global_breakdown",
    "country_breakdown",
    "regional_breakdown",
    "country_majority",
]
