"""Analyses of Sections 5-7 and Appendices D/E.

Each module implements the computation behind one or more figures or
tables of the paper; the ``benchmarks/`` directory wires them to
regeneration targets.
"""

from repro.analysis.engine import AnalysisIndex, ensure_index
from repro.analysis.hosting import (
    category_fractions,
    global_breakdown,
    regional_breakdown,
    country_breakdown,
    country_majority,
)
from repro.analysis.registration import (
    LocationSplit,
    global_split,
    regional_split,
    country_split,
)
from repro.analysis.crossborder import (
    CrossBorderFlow,
    flows,
    same_region_share,
    regional_affinity,
    gdpr_compliance,
    bilateral_share,
)
from repro.analysis.providers import (
    ProviderFootprint,
    global_provider_footprints,
    provider_byte_reliance,
    top_reliances,
)
from repro.analysis.diversification import (
    hhi,
    country_network_hhi,
    hhi_by_dominant_category,
    single_network_dependence,
)
from repro.analysis.clustering import (
    country_signatures,
    ward_linkage,
    cluster_assignments,
)
from repro.analysis.regression import (
    RegressionResult,
    explanatory_regression,
    variance_inflation_factors,
)
from repro.analysis.topsites import (
    TopsiteReport,
    analyze_topsites,
    government_subset_breakdown,
)
from repro.analysis.dnsdep import (
    DnsDependencyReport,
    country_dns_dependency,
    managed_dns_footprints,
    global_third_party_dns_share,
)
from repro.analysis.https_adoption import (
    HttpsReport,
    country_https_adoption,
    global_https_prevalence,
    https_development_correlation,
)
from repro.analysis.resilience import (
    OutageImpact,
    outage_impact,
    single_points_of_failure,
    worst_global_outage,
)
from repro.analysis.longitudinal import (
    CategoryMigration,
    CountryDelta,
    TrendPoint,
    TrendReport,
    compare_snapshots,
    compute_trends,
    trend_summary,
)
from repro.analysis.affordability import (
    AffordabilityReport,
    country_affordability,
    affordability_ranking,
    affordability_gap,
)

__all__ = [
    "AnalysisIndex",
    "ensure_index",
    "category_fractions",
    "global_breakdown",
    "regional_breakdown",
    "country_breakdown",
    "country_majority",
    "LocationSplit",
    "global_split",
    "regional_split",
    "country_split",
    "CrossBorderFlow",
    "flows",
    "same_region_share",
    "regional_affinity",
    "gdpr_compliance",
    "bilateral_share",
    "ProviderFootprint",
    "global_provider_footprints",
    "provider_byte_reliance",
    "top_reliances",
    "hhi",
    "country_network_hhi",
    "hhi_by_dominant_category",
    "single_network_dependence",
    "country_signatures",
    "ward_linkage",
    "cluster_assignments",
    "RegressionResult",
    "explanatory_regression",
    "variance_inflation_factors",
    "TopsiteReport",
    "analyze_topsites",
    "government_subset_breakdown",
    "DnsDependencyReport",
    "country_dns_dependency",
    "managed_dns_footprints",
    "global_third_party_dns_share",
    "HttpsReport",
    "country_https_adoption",
    "global_https_prevalence",
    "https_development_correlation",
    "OutageImpact",
    "outage_impact",
    "single_points_of_failure",
    "worst_global_outage",
    "CountryDelta",
    "CategoryMigration",
    "TrendPoint",
    "TrendReport",
    "compare_snapshots",
    "compute_trends",
    "trend_summary",
    "AffordabilityReport",
    "country_affordability",
    "affordability_ranking",
    "affordability_gap",
]
