"""HTTPS adoption on government sites (extension).

Reproduces the flavour of Singanamalla et al. ("Accept the Risk and
Continue", IMC 2020), which the paper builds on: a large share of
government sites worldwide lacks valid HTTPS, and adoption tracks
digital development.  Measured over the synthetic world's certificate
store and the crawled hostname set.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.analysis.engine.index import DatasetOrIndex, underlying_dataset
from repro.datagen.generator import SyntheticWorld
from repro.world.countries import get_country


@dataclasses.dataclass(frozen=True)
class HttpsReport:
    """HTTPS posture of one country's government hostnames."""

    country: str
    hostnames: int
    with_certificate: float
    with_valid_certificate: float
    egdi: Optional[float]


def country_https_adoption(
    world: SyntheticWorld, dataset: DatasetOrIndex
) -> dict[str, HttpsReport]:
    """Per-country certificate and validity rates over measured hostnames."""
    dataset = underlying_dataset(dataset)
    reports: dict[str, HttpsReport] = {}
    for code, country_dataset in sorted(dataset.countries.items()):
        hostnames = country_dataset.hostnames
        if not hostnames:
            continue
        have = 0
        valid = 0
        for hostname in hostnames:
            certificate = world.certificates.get(hostname)
            if certificate is None:
                continue
            have += 1
            valid += certificate.valid
        count = len(hostnames)
        reports[code] = HttpsReport(
            country=code,
            hostnames=count,
            with_certificate=have / count if count else 0.0,
            with_valid_certificate=valid / count if count else 0.0,
            egdi=get_country(code).egdi,
        )
    return reports


def global_https_prevalence(
    world: SyntheticWorld, dataset: DatasetOrIndex
) -> tuple[float, float]:
    """(certificate rate, valid-certificate rate) over all hostnames.

    Hostname sets are memoized on each ``CountryDataset``, so repeated
    calls (and the paper report) never rebuild them from the records.
    """
    total = have = valid = 0
    dataset = underlying_dataset(dataset)
    for country_dataset in dataset.countries.values():
        for hostname in country_dataset.hostnames:
            total += 1
            certificate = world.certificates.get(hostname)
            if certificate is None:
                continue
            have += 1
            valid += certificate.valid
    if total == 0:
        return (0.0, 0.0)
    return (have / total, valid / total)


def https_development_correlation(
    world: SyntheticWorld, dataset: DatasetOrIndex
) -> float:
    """Pearson correlation between EGDI and valid-HTTPS rates."""
    import math

    pairs = [
        (report.egdi, report.with_valid_certificate)
        for report in country_https_adoption(world, dataset).values()
        if report.egdi is not None and report.hostnames >= 3
    ]
    if len(pairs) < 3:
        raise ValueError("not enough countries for a correlation")
    xs, ys = zip(*pairs)
    n = len(pairs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in pairs)
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    if var_x == 0 or var_y == 0:
        return 0.0
    return cov / math.sqrt(var_x * var_y)


__all__ = [
    "HttpsReport",
    "country_https_adoption",
    "global_https_prevalence",
    "https_development_correlation",
]
