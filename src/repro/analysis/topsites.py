"""Governments vs. topsites comparison (Section 5.1/6.1, Figures 3 and 7,
Appendix D).

Applies the paper's topsites methodology to the CrUX-style popular
sites of the 14 comparison countries: scrape one level past the landing
page, detect self-hosting via the CNAME/SAN heuristic, classify the
remaining sites by their serving provider, and geolocate the servers --
then put the results side by side with the same countries' government
numbers.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.categories import HostingCategory
from repro.core.crawler import Crawler
from repro.core.geolocation import Geolocator
from repro.analysis.engine.index import DatasetOrIndex, ensure_index
from repro.analysis.providers import global_provider_asns
from repro.analysis.registration import LocationSplit, _split
from repro.datagen.generator import SyntheticWorld
from repro.netsim.dns import DnsError
from repro.urltools import registrable_domain
from repro.websim.browser import Browser
from repro.websim.topsites import COMPARISON_COUNTRIES, TopsiteHosting
from repro.world.countries import get_country

#: Government categories mapped onto the comparison's four labels.
_GOV_TO_COMPARISON = {
    HostingCategory.GOVT_SOE: TopsiteHosting.SELF_HOSTING,
    HostingCategory.P3_GLOBAL: TopsiteHosting.GLOBAL,
    HostingCategory.P3_LOCAL: TopsiteHosting.LOCAL,
    HostingCategory.P3_REGIONAL: TopsiteHosting.FOREIGN,
}


@dataclasses.dataclass(frozen=True)
class TopsiteRecord:
    """Measured facts about one popular site."""

    hostname: str
    country: str
    url_count: int
    byte_count: int
    hosting: TopsiteHosting
    registered_country: str
    server_country: Optional[str]


@dataclasses.dataclass
class TopsiteReport:
    """All topsite measurements across the comparison countries."""

    records: list[TopsiteRecord]

    def hosting_fractions(self, by_bytes: bool = False) -> dict[TopsiteHosting, float]:
        """Figure 3 (right): URL/byte fractions per hosting label."""
        totals = {label: 0.0 for label in TopsiteHosting}
        for record in self.records:
            weight = record.byte_count if by_bytes else record.url_count
            totals[record.hosting] += weight
        grand_total = sum(totals.values())
        if grand_total == 0:
            return totals
        return {label: value / grand_total for label, value in totals.items()}

    def location_split(self) -> LocationSplit:
        """Figure 7 (right, geolocation): domestic vs. international."""
        total = 0
        domestic = 0
        for record in self.records:
            if record.server_country is None:
                continue
            total += record.url_count
            if record.server_country == record.country:
                domestic += record.url_count
        if total == 0:
            return LocationSplit(0.0, 0.0)
        return LocationSplit(domestic / total, 1.0 - domestic / total)

    def registration_location_split(self) -> LocationSplit:
        """Figure 7 (right, WHOIS): domestic vs. international registration."""
        total = 0
        domestic = 0
        for record in self.records:
            total += record.url_count
            if record.registered_country == record.country:
                domestic += record.url_count
        if total == 0:
            return LocationSplit(0.0, 0.0)
        return LocationSplit(domestic / total, 1.0 - domestic / total)


class TopsiteAnalyzer:
    """Implements the Appendix D methodology over a synthetic world."""

    def __init__(
        self,
        world: SyntheticWorld,
        geolocator: Geolocator,
        global_asns: set[int],
    ) -> None:
        self._world = world
        self._geolocator = geolocator
        self._global_asns = global_asns
        self._crawler = Crawler(Browser(world.web), max_depth=1)

    def analyze_site(self, topsite) -> Optional[TopsiteRecord]:
        """Measure a single topsite (None if it cannot be resolved)."""
        world = self._world
        vantage = world.vpn.vantage_for(topsite.country)
        crawl = self._crawler.crawl([topsite.landing_url], vantage)
        url_count = len(crawl.archive)
        byte_count = crawl.archive.total_bytes()
        try:
            resolution = world.resolver.resolve(
                topsite.hostname, vantage.lat, vantage.lon
            )
        except DnsError:
            return None
        whois_record = world.whois.query_ip(resolution.address)
        hosting = self._classify(topsite, whois_record)
        verdict = self._geolocator.locate(resolution.address, topsite.country)
        return TopsiteRecord(
            hostname=topsite.hostname,
            country=topsite.country,
            url_count=url_count,
            byte_count=byte_count,
            hosting=hosting,
            registered_country=whois_record.registration_country,
            server_country=verdict.country,
        )

    def _classify(self, topsite, whois_record) -> TopsiteHosting:
        if self._is_self_hosted(topsite.hostname):
            return TopsiteHosting.SELF_HOSTING
        if whois_record.asn in self._global_asns:
            return TopsiteHosting.GLOBAL
        if whois_record.registration_country == topsite.country:
            return TopsiteHosting.LOCAL
        return TopsiteHosting.FOREIGN

    def _is_self_hosted(self, hostname: str) -> bool:
        """The CNAME/SAN self-hosting heuristic of Appendix D."""
        cname = self._world.resolver.first_cname(hostname)
        if cname is None:
            return False
        site_2ld = registrable_domain(hostname)
        cname_2ld = registrable_domain(cname)
        if cname_2ld == site_2ld:
            return True
        certificate = self._world.certificates.get(hostname)
        if certificate is not None:
            san_2lds = {registrable_domain(name) for name in certificate.sans}
            if cname_2ld in san_2lds:
                return True
        return False


def analyze_topsites(
    world: SyntheticWorld,
    dataset: DatasetOrIndex,
    geolocator: Optional[Geolocator] = None,
) -> TopsiteReport:
    """Run the full Appendix D analysis for the comparison countries.

    ``dataset`` supplies the measured Global-provider footprints; a
    fresh geolocator is built when none is passed.
    """
    if geolocator is None:
        from repro.core.pipeline import Pipeline

        pipeline = Pipeline(world)
        geolocator = pipeline.geolocator

    # First pass: resolve every topsite so the multi-continent footprint of
    # providers appearing only in the topsite data is also visible (the
    # paper identifies "CDN providers" directly).
    global_asns = set(global_provider_asns(dataset))
    continents_by_asn: dict[int, set] = {}
    for code in COMPARISON_COUNTRIES:
        vantage = world.vpn.vantage_for(code) if code in world.topsites else None
        for topsite in world.topsites.get(code, []):
            try:
                resolution = world.resolver.resolve(
                    topsite.hostname, vantage.lat, vantage.lon
                )
            except DnsError:
                continue
            whois_record = world.whois.query_ip(resolution.address)
            continents_by_asn.setdefault(whois_record.asn, set()).add(
                get_country(code).continent
            )
    global_asns.update(
        asn for asn, cset in continents_by_asn.items() if len(cset) >= 2
    )

    analyzer = TopsiteAnalyzer(world, geolocator, global_asns=global_asns)
    records: list[TopsiteRecord] = []
    for code in COMPARISON_COUNTRIES:
        for topsite in world.topsites.get(code, []):
            record = analyzer.analyze_site(topsite)
            if record is not None:
                records.append(record)
    return TopsiteReport(records=records)


def government_subset_breakdown(
    dataset: DatasetOrIndex,
    countries: tuple[str, ...] = COMPARISON_COUNTRIES,
) -> dict[str, dict[TopsiteHosting, float]]:
    """Figure 3 (left): the same countries' government mixes, relabeled."""
    index = ensure_index(dataset)
    category_counts = index.category_counts()
    url_totals = {label: 0.0 for label in TopsiteHosting}
    byte_totals = {label: 0.0 for label in TopsiteHosting}
    for code in countries:
        counts = category_counts.get(code)
        if counts is None:
            continue
        url_counts, byte_sums = counts
        for position, category in enumerate(HostingCategory):
            label = _GOV_TO_COMPARISON[category]
            url_totals[label] += url_counts[position]
            byte_totals[label] += byte_sums[position]
    url_sum = sum(url_totals.values()) or 1.0
    byte_sum = sum(byte_totals.values()) or 1.0
    return {
        "urls": {label: value / url_sum for label, value in url_totals.items()},
        "bytes": {label: value / byte_sum for label, value in byte_totals.items()},
    }


def government_subset_location(
    dataset: DatasetOrIndex,
    countries: tuple[str, ...] = COMPARISON_COUNTRIES,
) -> dict[str, LocationSplit]:
    """Figure 7 (left): the same countries' government location splits."""
    index = ensure_index(dataset)
    location_counts = index.location_counts()
    total = registration_domestic = located = server_domestic = 0
    for code in countries:
        counts = location_counts.get(code)
        if counts is None:
            continue
        total += counts[0]
        registration_domestic += counts[1]
        located += counts[2]
        server_domestic += counts[3]
    return {
        "whois": _split(registration_domestic, total),
        "geolocation": _split(server_domestic, located),
    }


__all__ = [
    "TopsiteRecord",
    "TopsiteReport",
    "TopsiteAnalyzer",
    "analyze_topsites",
    "government_subset_breakdown",
    "government_subset_location",
]
