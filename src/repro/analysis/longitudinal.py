"""Longitudinal trend analysis over N measurement snapshots (extension).

The paper's predecessor (Kumar et al., "Each at Its Own Pace") measured
third-party dependency twice a year apart and found it *increasing*
across countries.  This module generalizes that two-snapshot delta into
a trend engine over any number of snapshots — e.g. a
:class:`~repro.evolve.SnapshotSeries` run — computing:

* **centralization drift** — per-country serving-network HHI series and
  the sample-mean HHI curve (is hosting concentrating?);
* **category migration flows** — countries whose dominant byte source
  moved between Govt&SOE / third-party local / third-party global
  between adjacent snapshots (who left self-hosting for the cloud?);
* **provider consolidation** — the Global-provider census per snapshot:
  how many providers, how many country relationships, and how large a
  share the biggest provider holds.

The original two-snapshot API (:func:`compare_snapshots`,
:func:`trend_summary`) remains, now with explicit *skip-or-zero*
semantics for countries present in only one snapshot.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

from repro.analysis.diversification import country_network_hhi
from repro.analysis.engine.index import DatasetOrIndex, ensure_index
from repro.analysis.hosting import fractions_of_counts
from repro.analysis.providers import global_provider_footprints
from repro.categories import HostingCategory

#: How :func:`compare_snapshots` treats countries measured in only one
#: snapshot (or with records in only one).
MISSING_CHOICES = ("skip", "zero")


@dataclasses.dataclass(frozen=True)
class CountryDelta:
    """Change in one country's third-party reliance between snapshots."""

    country: str
    third_party_before: float
    third_party_after: float

    @property
    def delta(self) -> float:
        return self.third_party_after - self.third_party_before


def _third_party_share_of_counts(url_counts: Sequence[int]) -> float:
    mix = fractions_of_counts(url_counts)
    return sum(share for cat, share in mix.items() if cat.is_third_party)


def _third_party_shares(snapshot: DatasetOrIndex) -> dict[str, float]:
    """Per-country third-party URL share (countries with records only)."""
    index = ensure_index(snapshot)
    return {
        code: _third_party_share_of_counts(url_counts)
        for code, (url_counts, _) in index.category_counts().items()
        if sum(url_counts)
    }


def compare_snapshots(
    before: DatasetOrIndex,
    after: DatasetOrIndex,
    missing: str = "skip",
) -> dict[str, CountryDelta]:
    """Per-country third-party URL-share deltas between two snapshots.

    A country measured in only one snapshot — absent from the other, or
    present with zero records (fully faulted) — never raises.
    ``missing="skip"`` (the default, and the historical behavior)
    omits it; ``missing="zero"`` keeps it with the unmeasured side's
    share as 0.0, so a newly measured country shows up as its full
    share gained.
    """
    if missing not in MISSING_CHOICES:
        raise ValueError(
            f"missing must be one of {', '.join(MISSING_CHOICES)}, "
            f"got {missing!r}"
        )
    before_shares = _third_party_shares(before)
    after_shares = _third_party_shares(after)
    if missing == "skip":
        codes = sorted(set(before_shares) & set(after_shares))
    else:
        codes = sorted(set(before_shares) | set(after_shares))
    return {
        code: CountryDelta(
            country=code,
            third_party_before=before_shares.get(code, 0.0),
            third_party_after=after_shares.get(code, 0.0),
        )
        for code in codes
    }


def trend_summary(deltas: dict[str, CountryDelta]) -> dict[str, float]:
    """Aggregate trend: mean delta and the share of countries increasing.

    Snapshots with no overlapping measured countries yield the
    well-defined empty trend (all zeros) rather than an exception.
    """
    if not deltas:
        return {"mean_delta": 0.0, "share_increasing": 0.0, "countries": 0.0}
    values = [d.delta for d in deltas.values()]
    increasing = sum(1 for v in values if v > 0)
    return {
        "mean_delta": sum(values) / len(values),
        "share_increasing": increasing / len(values),
        "countries": float(len(values)),
    }


# ===================================================== N-snapshot trends

@dataclasses.dataclass(frozen=True)
class TrendPoint:
    """One snapshot's position on the aggregate trend curves."""

    label: str
    #: Countries with records in this snapshot.
    countries: int
    #: Sample-mean third-party URL share.
    mean_third_party_share: float
    #: Sample-mean serving-network HHI (centralization).
    mean_hhi: float
    #: Global providers measured in this snapshot.
    provider_count: int
    #: (provider, country) reliance relationships in this snapshot.
    provider_relationships: int
    #: Share of those relationships the single largest provider holds —
    #: the consolidation curve's y-axis.
    top_provider_share: float

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class CategoryMigration:
    """One country's dominant byte source moving between snapshots."""

    country: str
    from_label: str
    to_label: str
    from_category: str
    to_category: str

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class TrendReport:
    """The full longitudinal rendering of an N-snapshot series."""

    labels: tuple[str, ...]
    points: tuple[TrendPoint, ...]
    #: Per-country HHI per snapshot; None where the country had no
    #: records in that snapshot.
    hhi_series: dict[str, tuple[Optional[float], ...]]
    #: Per-country third-party URL share per snapshot (None as above).
    third_party_series: dict[str, tuple[Optional[float], ...]]
    #: Dominant-category changes between adjacent snapshots.
    migrations: tuple[CategoryMigration, ...]

    @property
    def snapshot_count(self) -> int:
        return len(self.labels)

    @property
    def hhi_drift(self) -> float:
        """Mean-HHI change from the first snapshot to the last."""
        if len(self.points) < 2:
            return 0.0
        return self.points[-1].mean_hhi - self.points[0].mean_hhi

    @property
    def third_party_drift(self) -> float:
        """Mean third-party-share change from first to last snapshot."""
        if len(self.points) < 2:
            return 0.0
        return (self.points[-1].mean_third_party_share
                - self.points[0].mean_third_party_share)

    def to_dict(self) -> dict:
        """JSON-ready rendering (the ``trends`` endpoint's payload)."""
        return {
            "labels": list(self.labels),
            "points": [point.to_dict() for point in self.points],
            "hhi_drift": self.hhi_drift,
            "third_party_drift": self.third_party_drift,
            "hhi_series": {code: list(series)
                           for code, series in self.hhi_series.items()},
            "third_party_series": {
                code: list(series)
                for code, series in self.third_party_series.items()
            },
            "migrations": [m.to_dict() for m in self.migrations],
        }


def _dominant_categories(snapshot: DatasetOrIndex) -> dict[str, str]:
    """Per-country dominant byte source, measured countries only."""
    index = ensure_index(snapshot)
    result: dict[str, str] = {}
    for code, (_, byte_counts) in index.category_counts().items():
        mix = fractions_of_counts(byte_counts)
        if not any(mix.values()):
            continue
        best = max(mix.values())
        for category in HostingCategory:
            if mix.get(category, 0.0) == best:
                result[code] = str(category)
                break
    return result


def compute_trends(
    snapshots: Sequence[DatasetOrIndex],
    labels: Optional[Sequence[str]] = None,
) -> TrendReport:
    """Build the :class:`TrendReport` of an ordered snapshot series.

    ``labels`` defaults to "T+0", "T+1", ...; a single snapshot yields
    the degenerate but well-formed one-point report (no migrations, no
    drift).
    """
    if not snapshots:
        raise ValueError("compute_trends requires at least one snapshot")
    if labels is None:
        labels = tuple(f"T+{i}" for i in range(len(snapshots)))
    else:
        labels = tuple(labels)
        if len(labels) != len(snapshots):
            raise ValueError(
                f"{len(snapshots)} snapshots but {len(labels)} labels"
            )
    indexes = [ensure_index(snapshot) for snapshot in snapshots]

    per_snapshot_hhi = [country_network_hhi(index) for index in indexes]
    per_snapshot_share = [_third_party_shares(index) for index in indexes]
    per_snapshot_dominant = [_dominant_categories(index) for index in indexes]

    points = []
    for label, index, hhi_map, share_map in zip(
        labels, indexes, per_snapshot_hhi, per_snapshot_share
    ):
        footprints = global_provider_footprints(index)
        relationships = sum(fp.country_count for fp in footprints)
        points.append(TrendPoint(
            label=label,
            countries=len(share_map),
            mean_third_party_share=(
                sum(share_map.values()) / len(share_map) if share_map else 0.0
            ),
            mean_hhi=(
                sum(hhi_map.values()) / len(hhi_map) if hhi_map else 0.0
            ),
            provider_count=len(footprints),
            provider_relationships=relationships,
            top_provider_share=(
                footprints[0].country_count / relationships
                if relationships else 0.0
            ),
        ))

    codes = sorted(set().union(*per_snapshot_share)) \
        if per_snapshot_share else []
    hhi_series = {
        code: tuple(hhi_map.get(code) for hhi_map in per_snapshot_hhi)
        for code in codes
    }
    third_party_series = {
        code: tuple(share_map.get(code) for share_map in per_snapshot_share)
        for code in codes
    }

    migrations = []
    for position in range(1, len(indexes)):
        before = per_snapshot_dominant[position - 1]
        after = per_snapshot_dominant[position]
        for code in sorted(set(before) & set(after)):
            if before[code] != after[code]:
                migrations.append(CategoryMigration(
                    country=code,
                    from_label=labels[position - 1],
                    to_label=labels[position],
                    from_category=before[code],
                    to_category=after[code],
                ))

    return TrendReport(
        labels=labels,
        points=tuple(points),
        hhi_series=hhi_series,
        third_party_series=third_party_series,
        migrations=tuple(migrations),
    )


__all__ = [
    "MISSING_CHOICES",
    "CategoryMigration",
    "CountryDelta",
    "TrendPoint",
    "TrendReport",
    "compare_snapshots",
    "compute_trends",
    "trend_summary",
]
