"""Longitudinal comparison of two measurement snapshots (extension).

The paper's predecessor (Kumar et al., "Each at Its Own Pace") measured
third-party dependency twice a year apart and found it *increasing*
across countries.  This module compares two
:class:`~repro.core.dataset.GovernmentHostingDataset` snapshots -- e.g.
two worlds generated with different ``third_party_drift`` -- and
reports per-country dependency deltas.
"""

from __future__ import annotations

import dataclasses

from repro.core.dataset import GovernmentHostingDataset


@dataclasses.dataclass(frozen=True)
class CountryDelta:
    """Change in one country's third-party reliance between snapshots."""

    country: str
    third_party_before: float
    third_party_after: float

    @property
    def delta(self) -> float:
        return self.third_party_after - self.third_party_before


def _third_party_share(dataset: GovernmentHostingDataset, code: str) -> float:
    country_dataset = dataset.countries[code]
    mix = country_dataset.category_url_fractions()
    return sum(share for cat, share in mix.items() if cat.is_third_party)


def compare_snapshots(
    before: GovernmentHostingDataset,
    after: GovernmentHostingDataset,
) -> dict[str, CountryDelta]:
    """Per-country third-party URL-share deltas between two snapshots."""
    deltas: dict[str, CountryDelta] = {}
    for code in sorted(set(before.countries) & set(after.countries)):
        if not before.countries[code].records or not after.countries[code].records:
            continue
        deltas[code] = CountryDelta(
            country=code,
            third_party_before=_third_party_share(before, code),
            third_party_after=_third_party_share(after, code),
        )
    return deltas


def trend_summary(deltas: dict[str, CountryDelta]) -> dict[str, float]:
    """Aggregate trend: mean delta and the share of countries increasing.

    Snapshots with no overlapping measured countries yield the
    well-defined empty trend (all zeros) rather than an exception.
    """
    if not deltas:
        return {"mean_delta": 0.0, "share_increasing": 0.0, "countries": 0.0}
    values = [d.delta for d in deltas.values()]
    increasing = sum(1 for v in values if v > 0)
    return {
        "mean_delta": sum(values) / len(values),
        "share_increasing": increasing / len(values),
        "countries": float(len(values)),
    }


__all__ = ["CountryDelta", "compare_snapshots", "trend_summary"]
