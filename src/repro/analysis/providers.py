"""Global-provider analyses (Section 7.1, Figure 10).

Identifies Global providers from the measured dataset (non-government
networks serving governments across multiple continents), counts how
many countries rely on each, and computes per-(provider, country) byte
reliance -- the inputs of Figure 10's histogram and CDF.

All entry points accept a dataset (an index is built transparently and
cached on it) or a prebuilt :class:`~repro.analysis.engine.AnalysisIndex`;
the provider footprints come out of the index's per-(country, ASN)
tables instead of three record scans per call.
"""

from __future__ import annotations

import dataclasses

from repro.analysis.engine.index import DatasetOrIndex, ensure_index


@dataclasses.dataclass(frozen=True)
class ProviderFootprint:
    """One Global provider's measured footprint."""

    asn: int
    name: str
    country_count: int
    countries: tuple[str, ...]


def global_provider_asns(dataset: DatasetOrIndex) -> set[int]:
    """ASNs meeting the Global definition in the measured data."""
    index = ensure_index(dataset)
    continents = index.continents_by_asn()
    gov_asns = index.gov_asns()
    return {
        asn
        for asn, cset in continents.items()
        if len(cset) >= 2 and asn not in gov_asns
    }


def global_provider_footprints(
    dataset: DatasetOrIndex,
) -> list[ProviderFootprint]:
    """Figure 10 (histogram): countries relying on each Global provider."""
    index = ensure_index(dataset)
    global_asns = global_provider_asns(index)
    names = index.organization_by_asn()
    countries_by_asn: dict[int, set[str]] = {}
    for code, stats in index.asn_counts().items():
        for asn in stats:
            if asn in global_asns:
                countries_by_asn.setdefault(asn, set()).add(code)
    footprints = [
        ProviderFootprint(
            asn=asn,
            name=names[asn],
            country_count=len(countries),
            countries=tuple(sorted(countries)),
        )
        for asn, countries in countries_by_asn.items()
    ]
    footprints.sort(key=lambda fp: (-fp.country_count, fp.asn))
    return footprints


def provider_byte_reliance(
    dataset: DatasetOrIndex,
) -> dict[tuple[int, str], float]:
    """Byte share each Global provider serves of each country's total.

    The Figure 10 CDF is the distribution of these values; the text
    highlights the top ones (Amazon 97% for an East Asian country,
    Cloudflare 72% for an Eastern European one, Hetzner 57% for a
    Scandinavian one).
    """
    index = ensure_index(dataset)
    global_asns = global_provider_asns(index)
    country_totals = index.country_byte_totals()
    pair_bytes: dict[tuple[int, str], int] = {}
    for code, stats in index.asn_counts().items():
        for asn, (_url_count, byte_sum) in stats.items():
            if asn in global_asns:
                pair_bytes[(asn, code)] = byte_sum
    return {
        (asn, country): byte_count / country_totals[country]
        for (asn, country), byte_count in sorted(pair_bytes.items())
        if country_totals[country] > 0
    }


def top_reliances(
    dataset: DatasetOrIndex, limit: int = 5
) -> list[tuple[str, int, str, float]]:
    """The highest per-country byte reliances on a single Global provider.

    Returns (provider organization, asn, country, byte fraction).
    """
    index = ensure_index(dataset)
    reliance = provider_byte_reliance(index)
    names = index.organization_by_asn()
    ranked = sorted(reliance.items(), key=lambda item: -item[1])[:limit]
    return [
        (names.get(asn, f"AS{asn}"), asn, country, fraction)
        for (asn, country), fraction in ranked
    ]


__all__ = [
    "ProviderFootprint",
    "global_provider_asns",
    "global_provider_footprints",
    "provider_byte_reliance",
    "top_reliances",
]
