"""Global-provider analyses (Section 7.1, Figure 10).

Identifies Global providers from the measured dataset (non-government
networks serving governments across multiple continents), counts how
many countries rely on each, and computes per-(provider, country) byte
reliance -- the inputs of Figure 10's histogram and CDF.
"""

from __future__ import annotations

import dataclasses

from repro.core.dataset import GovernmentHostingDataset
from repro.world.countries import COUNTRIES


@dataclasses.dataclass(frozen=True)
class ProviderFootprint:
    """One Global provider's measured footprint."""

    asn: int
    name: str
    country_count: int
    countries: tuple[str, ...]


def _continents_served(dataset: GovernmentHostingDataset) -> dict[int, set]:
    continents: dict[int, set] = {}
    for record in dataset.iter_records():
        country = COUNTRIES.get(record.country)
        if country is None:
            continue
        continents.setdefault(record.asn, set()).add(country.continent)
    return continents


def global_provider_asns(dataset: GovernmentHostingDataset) -> set[int]:
    """ASNs meeting the Global definition in the measured data."""
    continents = _continents_served(dataset)
    gov_asns = {r.asn for r in dataset.iter_records() if r.gov_operated}
    return {
        asn
        for asn, cset in continents.items()
        if len(cset) >= 2 and asn not in gov_asns
    }


def global_provider_footprints(
    dataset: GovernmentHostingDataset,
) -> list[ProviderFootprint]:
    """Figure 10 (histogram): countries relying on each Global provider."""
    global_asns = global_provider_asns(dataset)
    countries_by_asn: dict[int, set[str]] = {}
    name_by_asn: dict[int, str] = {}
    for record in dataset.iter_records():
        if record.asn not in global_asns:
            continue
        countries_by_asn.setdefault(record.asn, set()).add(record.country)
        name_by_asn.setdefault(record.asn, record.organization)
    footprints = [
        ProviderFootprint(
            asn=asn,
            name=name_by_asn[asn],
            country_count=len(countries),
            countries=tuple(sorted(countries)),
        )
        for asn, countries in countries_by_asn.items()
    ]
    footprints.sort(key=lambda fp: (-fp.country_count, fp.asn))
    return footprints


def provider_byte_reliance(
    dataset: GovernmentHostingDataset,
) -> dict[tuple[int, str], float]:
    """Byte share each Global provider serves of each country's total.

    The Figure 10 CDF is the distribution of these values; the text
    highlights the top ones (Amazon 97% for an East Asian country,
    Cloudflare 72% for an Eastern European one, Hetzner 57% for a
    Scandinavian one).
    """
    global_asns = global_provider_asns(dataset)
    country_totals: dict[str, int] = {}
    pair_bytes: dict[tuple[int, str], int] = {}
    for record in dataset.iter_records():
        country_totals[record.country] = (
            country_totals.get(record.country, 0) + record.size_bytes
        )
        if record.asn in global_asns:
            key = (record.asn, record.country)
            pair_bytes[key] = pair_bytes.get(key, 0) + record.size_bytes
    return {
        (asn, country): byte_count / country_totals[country]
        for (asn, country), byte_count in sorted(pair_bytes.items())
        if country_totals[country] > 0
    }


def top_reliances(
    dataset: GovernmentHostingDataset, limit: int = 5
) -> list[tuple[str, int, str, float]]:
    """The highest per-country byte reliances on a single Global provider.

    Returns (provider organization, asn, country, byte fraction).
    """
    reliance = provider_byte_reliance(dataset)
    names: dict[int, str] = {}
    for record in dataset.iter_records():
        names.setdefault(record.asn, record.organization)
    ranked = sorted(reliance.items(), key=lambda item: -item[1])[:limit]
    return [
        (names.get(asn, f"AS{asn}"), asn, country, fraction)
        for (asn, country), fraction in ranked
    ]


__all__ = [
    "ProviderFootprint",
    "global_provider_asns",
    "global_provider_footprints",
    "provider_byte_reliance",
    "top_reliances",
]
