"""Affordability of government websites (extension).

Habib et al. ("A First Look at Public Service Websites from the
Affordability Lens", WWW 2023 -- cited in the paper's §9) show that
large page weights make public-service sites expensive to visit in
developing countries.  This module computes the same quantities over
the measured dataset: landing-page weight per country, the mobile-data
cost of one visit, and that cost relative to daily income.
"""

from __future__ import annotations

import dataclasses
import statistics

from repro.core.dataset import GovernmentHostingDataset
from repro.world.affordability import daily_income_usd, data_price_usd_per_gb

_BYTES_PER_GB = 1024 ** 3


@dataclasses.dataclass(frozen=True)
class AffordabilityReport:
    """Cost of visiting one country's government landing pages."""

    country: str
    #: Median bytes transferred when loading a landing page tree (depth 0).
    median_landing_bytes: int
    #: USD cost of one median landing-page visit over mobile data.
    visit_cost_usd: float
    #: Visit cost as a share of a day's income (the affordability metric).
    cost_share_of_daily_income: float


def _landing_weights(dataset: GovernmentHostingDataset, code: str) -> list[int]:
    """Total depth-0 bytes per hostname (landing page plus its objects)."""
    weights: dict[str, int] = {}
    for record in dataset.countries[code].records:
        if record.depth == 0:
            weights[record.hostname] = (
                weights.get(record.hostname, 0) + record.size_bytes
            )
    return sorted(weights.values())


def country_affordability(
    dataset: GovernmentHostingDataset, code: str
) -> AffordabilityReport:
    """Affordability metrics for one country."""
    weights = _landing_weights(dataset, code)
    if not weights:
        raise ValueError(f"no landing data for {code}")
    median_bytes = int(statistics.median(weights))
    cost = median_bytes / _BYTES_PER_GB * data_price_usd_per_gb(code)
    return AffordabilityReport(
        country=code,
        median_landing_bytes=median_bytes,
        visit_cost_usd=cost,
        cost_share_of_daily_income=cost / daily_income_usd(code),
    )


def affordability_ranking(
    dataset: GovernmentHostingDataset,
) -> list[AffordabilityReport]:
    """All countries, least affordable first."""
    reports = []
    for code, country_dataset in dataset.countries.items():
        if not country_dataset.records:
            continue
        reports.append(country_affordability(dataset, code))
    reports.sort(key=lambda report: -report.cost_share_of_daily_income)
    return reports


def affordability_gap(
    dataset: GovernmentHostingDataset, quantile: float = 0.25
) -> float:
    """Relative-cost ratio between the poorest and richest country quartiles.

    Habib et al.'s headline: the same page weight costs dramatically
    more (relative to income) in developing countries.
    """
    from repro.world.countries import get_country

    reports = affordability_ranking(dataset)
    if len(reports) < 8:
        raise ValueError("not enough countries for a gap estimate")
    by_income = sorted(
        reports, key=lambda report: get_country(report.country).gdp_per_capita_kusd
    )
    cut = max(1, int(len(by_income) * quantile))
    poor = statistics.mean(
        report.cost_share_of_daily_income for report in by_income[:cut]
    )
    rich = statistics.mean(
        report.cost_share_of_daily_income for report in by_income[-cut:]
    )
    return poor / rich if rich else float("inf")


__all__ = [
    "AffordabilityReport",
    "country_affordability",
    "affordability_ranking",
    "affordability_gap",
]
