"""Diversification of hosting providers (Section 7.2, Figure 11).

Measures each country's concentration across serving networks with the
Herfindahl-Hirschman Index, then groups countries by the dominant
source of their bytes (Govt&SOE, 3P Local, 3P Global) to reproduce the
Figure 11 boxplots and the 63%-vs-32% single-network finding.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.categories import HostingCategory
from repro.core.dataset import CountryDataset, GovernmentHostingDataset


def hhi(shares: Sequence[float]) -> float:
    """Herfindahl-Hirschman Index of a share vector.

    Shares are normalized first, so raw counts are accepted; the result
    lies in (0, 1], with 1 meaning full concentration.
    """
    total = float(sum(shares))
    if total <= 0:
        raise ValueError("shares must have positive mass")
    return sum((value / total) ** 2 for value in shares)


def _network_shares(
    country_dataset: CountryDataset, by_bytes: bool
) -> dict[int, float]:
    totals: dict[int, float] = {}
    for record in country_dataset.records:
        weight = record.size_bytes if by_bytes else 1.0
        totals[record.asn] = totals.get(record.asn, 0.0) + weight
    return totals


def country_network_hhi(
    dataset: GovernmentHostingDataset, by_bytes: bool = False
) -> dict[str, float]:
    """HHI over serving networks (ASes) per country."""
    result: dict[str, float] = {}
    for code, country_dataset in sorted(dataset.countries.items()):
        shares = _network_shares(country_dataset, by_bytes)
        if shares:
            result[code] = hhi(list(shares.values()))
    return result


def dominant_category(
    country_dataset: CountryDataset,
) -> Optional[HostingCategory]:
    """Predominant source of a country's bytes (Figure 11 grouping).

    Returns ``None`` for countries with no byte mass (no records, or
    only zero-size responses).  Ties break deterministically in favour
    of the category declared first in :class:`HostingCategory`, never by
    dict insertion order.
    """
    mix = country_dataset.category_byte_fractions()
    if not any(mix.values()):
        return None
    best = max(mix.values())
    for category in HostingCategory:
        if mix.get(category, 0.0) == best:
            return category
    return None  # pragma: no cover - mix keys are always HostingCategory


def hhi_by_dominant_category(
    dataset: GovernmentHostingDataset, by_bytes: bool = False
) -> dict[HostingCategory, list[float]]:
    """Figure 11: the HHI distribution per dominant-category group."""
    values = country_network_hhi(dataset, by_bytes=by_bytes)
    groups: dict[HostingCategory, list[float]] = {}
    for code, value in values.items():
        country_dataset = dataset.countries[code]
        group = dominant_category(country_dataset)
        if group is None:
            continue
        groups.setdefault(group, []).append(value)
    return groups


def single_network_dependence(
    dataset: GovernmentHostingDataset, threshold: float = 0.5
) -> dict[HostingCategory, tuple[int, int]]:
    """Countries serving more than ``threshold`` of bytes from one network.

    Returns, per dominant-category group, (countries above threshold,
    group size) -- the paper's "63% (12/19) of Govt&SOE countries vs 32%
    (8/25) of Global ones".
    """
    result: dict[HostingCategory, tuple[int, int]] = {}
    for code, country_dataset in sorted(dataset.countries.items()):
        group = dominant_category(country_dataset)
        if group is None:
            continue
        shares = _network_shares(country_dataset, by_bytes=True)
        total = sum(shares.values())
        top_share = max(shares.values()) / total if total else 0.0
        above, size = result.get(group, (0, 0))
        result[group] = (above + (1 if top_share > threshold else 0), size + 1)
    return result


__all__ = [
    "hhi",
    "country_network_hhi",
    "dominant_category",
    "hhi_by_dominant_category",
    "single_network_dependence",
]
