"""Diversification of hosting providers (Section 7.2, Figure 11).

Measures each country's concentration across serving networks with the
Herfindahl-Hirschman Index, then groups countries by the dominant
source of their bytes (Govt&SOE, 3P Local, 3P Global) to reproduce the
Figure 11 boxplots and the 63%-vs-32% single-network finding.

Dataset-level functions accept a dataset (an index is built
transparently and cached on it) or a prebuilt
:class:`~repro.analysis.engine.AnalysisIndex`; :func:`hhi` and
:func:`dominant_category` keep their raw share-vector/``CountryDataset``
signatures.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.engine.index import DatasetOrIndex, ensure_index
from repro.analysis.hosting import fractions_of_counts
from repro.categories import HostingCategory
from repro.core.dataset import CountryDataset


def hhi(shares: Sequence[float]) -> float:
    """Herfindahl-Hirschman Index of a share vector.

    Shares are normalized first, so raw counts are accepted; the result
    lies in (0, 1], with 1 meaning full concentration.
    """
    total = float(sum(shares))
    if total <= 0:
        raise ValueError("shares must have positive mass")
    return sum((value / total) ** 2 for value in shares)


def country_network_hhi(
    dataset: DatasetOrIndex, by_bytes: bool = False
) -> dict[str, float]:
    """HHI over serving networks (ASes) per country."""
    index = ensure_index(dataset)
    counts = index.asn_counts()
    result: dict[str, float] = {}
    for code in sorted(counts):
        stats = counts[code]
        if stats:
            # Values in first-appearance order -- the share order the
            # record loop produced.
            result[code] = hhi([
                byte_sum if by_bytes else url_count
                for url_count, byte_sum in stats.values()
            ])
    return result


def _dominant_of_byte_counts(
    byte_counts: Sequence[int],
) -> Optional[HostingCategory]:
    mix = fractions_of_counts(byte_counts)
    if not any(mix.values()):
        return None
    best = max(mix.values())
    for category in HostingCategory:
        if mix.get(category, 0.0) == best:
            return category
    return None  # pragma: no cover - mix keys are always HostingCategory


def dominant_category(
    country_dataset: CountryDataset,
) -> Optional[HostingCategory]:
    """Predominant source of a country's bytes (Figure 11 grouping).

    Returns ``None`` for countries with no byte mass (no records, or
    only zero-size responses).  Ties break deterministically in favour
    of the category declared first in :class:`HostingCategory`, never by
    dict insertion order.
    """
    mix = country_dataset.category_byte_fractions()
    if not any(mix.values()):
        return None
    best = max(mix.values())
    for category in HostingCategory:
        if mix.get(category, 0.0) == best:
            return category
    return None  # pragma: no cover - mix keys are always HostingCategory


def hhi_by_dominant_category(
    dataset: DatasetOrIndex, by_bytes: bool = False
) -> dict[HostingCategory, list[float]]:
    """Figure 11: the HHI distribution per dominant-category group."""
    index = ensure_index(dataset)
    values = country_network_hhi(index, by_bytes=by_bytes)
    category_counts = index.category_counts()
    groups: dict[HostingCategory, list[float]] = {}
    for code, value in values.items():
        group = _dominant_of_byte_counts(category_counts[code][1])
        if group is None:
            continue
        groups.setdefault(group, []).append(value)
    return groups


def single_network_dependence(
    dataset: DatasetOrIndex, threshold: float = 0.5
) -> dict[HostingCategory, tuple[int, int]]:
    """Countries serving more than ``threshold`` of bytes from one network.

    Returns, per dominant-category group, (countries above threshold,
    group size) -- the paper's "63% (12/19) of Govt&SOE countries vs 32%
    (8/25) of Global ones".
    """
    index = ensure_index(dataset)
    asn_counts = index.asn_counts()
    category_counts = index.category_counts()
    result: dict[HostingCategory, tuple[int, int]] = {}
    for code in sorted(asn_counts):
        group = _dominant_of_byte_counts(category_counts[code][1])
        if group is None:
            continue
        byte_shares = [byte_sum for _url_count, byte_sum in asn_counts[code].values()]
        total = sum(byte_shares)
        top_share = max(byte_shares) / total if total else 0.0
        above, size = result.get(group, (0, 0))
        result[group] = (above + (1 if top_share > threshold else 0), size + 1)
    return result


__all__ = [
    "hhi",
    "country_network_hhi",
    "dominant_category",
    "hhi_by_dominant_category",
    "single_network_dependence",
]
