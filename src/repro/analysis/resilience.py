"""Outage-impact simulation (extension of Section 7.2).

The paper motivates diversification as "reducing the risk of a digital
shutdown caused by organizational failure" and cites the Mirai/Dyn
incident (Kashaf et al.).  This module quantifies that risk directly:
take one serving network offline and measure how much of each
government's web estate becomes unreachable.
"""

from __future__ import annotations

import dataclasses

from repro.core.dataset import GovernmentHostingDataset


@dataclasses.dataclass(frozen=True)
class OutageImpact:
    """Effect of one AS failing on one country."""

    country: str
    asn: int
    url_share_lost: float
    byte_share_lost: float


def outage_impact(
    dataset: GovernmentHostingDataset, asn: int
) -> dict[str, OutageImpact]:
    """Per-country impact of taking ``asn`` offline."""
    impacts: dict[str, OutageImpact] = {}
    for code, country_dataset in sorted(dataset.countries.items()):
        if not country_dataset.records:
            continue
        total_urls = len(country_dataset.records)
        total_bytes = country_dataset.total_bytes
        lost_urls = 0
        lost_bytes = 0
        for record in country_dataset.records:
            if record.asn == asn:
                lost_urls += 1
                lost_bytes += record.size_bytes
        if lost_urls == 0:
            continue
        impacts[code] = OutageImpact(
            country=code,
            asn=asn,
            url_share_lost=lost_urls / total_urls if total_urls else 0.0,
            byte_share_lost=lost_bytes / total_bytes if total_bytes else 0.0,
        )
    return impacts


def single_points_of_failure(
    dataset: GovernmentHostingDataset, threshold: float = 0.5
) -> dict[str, tuple[int, float]]:
    """Countries where one network's failure removes > ``threshold`` of bytes.

    Returns ``country -> (asn, byte share lost)``.
    """
    result: dict[str, tuple[int, float]] = {}
    for code, country_dataset in sorted(dataset.countries.items()):
        if not country_dataset.records:
            continue
        by_asn: dict[int, int] = {}
        for record in country_dataset.records:
            by_asn[record.asn] = by_asn.get(record.asn, 0) + record.size_bytes
        total = sum(by_asn.values())
        if total == 0:
            continue
        top_asn = max(by_asn, key=by_asn.get)
        share = by_asn[top_asn] / total
        if share > threshold:
            result[code] = (top_asn, share)
    return result


def worst_global_outage(
    dataset: GovernmentHostingDataset,
) -> tuple[int, int, float]:
    """The single AS whose failure disrupts the most governments.

    Returns ``(asn, governments affected above 10% of URLs, mean URL
    share lost among affected countries)``.
    """
    asns = {record.asn for record in dataset.iter_records()}
    worst = (0, 0, 0.0)
    for asn in asns:
        impacts = outage_impact(dataset, asn)
        affected = [i for i in impacts.values() if i.url_share_lost > 0.10]
        if not affected:
            continue
        mean_loss = sum(i.url_share_lost for i in affected) / len(affected)
        candidate = (asn, len(affected), mean_loss)
        if (candidate[1], candidate[2]) > (worst[1], worst[2]):
            worst = candidate
    return worst


__all__ = [
    "OutageImpact",
    "outage_impact",
    "single_points_of_failure",
    "worst_global_outage",
]
