"""Outage-impact simulation (extension of Section 7.2).

The paper motivates diversification as "reducing the risk of a digital
shutdown caused by organizational failure" and cites the Mirai/Dyn
incident (Kashaf et al.).  This module quantifies that risk directly:
take one serving network offline and measure how much of each
government's web estate becomes unreachable.

All entry points accept a dataset (an index is built transparently and
cached on it) or a prebuilt :class:`~repro.analysis.engine.AnalysisIndex`.
:func:`worst_global_outage` benefits the most: it sweeps every ASN over
the index's per-(country, ASN) tables -- O(ASNs x countries) table
lookups instead of O(ASNs x records) record scans.
"""

from __future__ import annotations

import dataclasses

from repro.analysis.engine.index import DatasetOrIndex, ensure_index


@dataclasses.dataclass(frozen=True)
class OutageImpact:
    """Effect of one AS failing on one country."""

    country: str
    asn: int
    url_share_lost: float
    byte_share_lost: float


def outage_impact(
    dataset: DatasetOrIndex, asn: int
) -> dict[str, OutageImpact]:
    """Per-country impact of taking ``asn`` offline."""
    index = ensure_index(dataset)
    asn_counts = index.asn_counts()
    url_totals = index.country_url_totals()
    byte_totals = index.country_byte_totals()
    impacts: dict[str, OutageImpact] = {}
    for code in sorted(asn_counts):
        lost = asn_counts[code].get(asn)
        if lost is None:
            continue
        lost_urls, lost_bytes = lost
        total_urls = url_totals[code]
        total_bytes = byte_totals[code]
        impacts[code] = OutageImpact(
            country=code,
            asn=asn,
            url_share_lost=lost_urls / total_urls if total_urls else 0.0,
            byte_share_lost=lost_bytes / total_bytes if total_bytes else 0.0,
        )
    return impacts


def single_points_of_failure(
    dataset: DatasetOrIndex, threshold: float = 0.5
) -> dict[str, tuple[int, float]]:
    """Countries where one network's failure removes > ``threshold`` of bytes.

    Returns ``country -> (asn, byte share lost)``.
    """
    index = ensure_index(dataset)
    asn_counts = index.asn_counts()
    result: dict[str, tuple[int, float]] = {}
    for code in sorted(asn_counts):
        by_asn = {
            asn: byte_sum
            for asn, (_url_count, byte_sum) in asn_counts[code].items()
        }
        total = sum(by_asn.values())
        if total == 0:
            continue
        top_asn = max(by_asn, key=by_asn.get)
        share = by_asn[top_asn] / total
        if share > threshold:
            result[code] = (top_asn, share)
    return result


def worst_global_outage(
    dataset: DatasetOrIndex,
) -> tuple[int, int, float]:
    """The single AS whose failure disrupts the most governments.

    Returns ``(asn, governments affected above 10% of URLs, mean URL
    share lost among affected countries)``.

    Deterministic under ties: when two networks disrupt the same number
    of governments with the same mean loss, the one whose organization
    name (then ASN) sorts first wins — comparative scenario reports
    must name the same provider no matter what order the ASNs were
    encountered in.
    """
    index = ensure_index(dataset)
    names = index.organization_by_asn()
    worst = (0, 0, 0.0)
    worst_tie = ("", 0)
    for asn in sorted(set(index.asn_first_seen())):
        impacts = outage_impact(index, asn)
        affected = [i for i in impacts.values() if i.url_share_lost > 0.10]
        if not affected:
            continue
        mean_loss = sum(i.url_share_lost for i in affected) / len(affected)
        candidate = (asn, len(affected), mean_loss)
        tie = (names.get(asn, ""), asn)
        if (candidate[1], candidate[2]) > (worst[1], worst[2]) or (
            (candidate[1], candidate[2]) == (worst[1], worst[2])
            and tie < worst_tie
        ):
            worst = candidate
            worst_tie = tie
    return worst


__all__ = [
    "OutageImpact",
    "outage_impact",
    "single_points_of_failure",
    "worst_global_outage",
]
