"""E-government DNS dependency (extension).

The paper's related work (Sommese et al. on e-government DNS
resilience; Houser et al.'s longitudinal government-DNS study) reports
a growing reliance on single third-party DNS providers.  This module
measures the same quantities over the synthetic world's authoritative
delegations: per-country third-party DNS shares, managed-DNS provider
footprints, and single-provider dependency.
"""

from __future__ import annotations

import dataclasses

from repro.analysis.engine.index import DatasetOrIndex, ensure_index
from repro.datagen.generator import SyntheticWorld


@dataclasses.dataclass(frozen=True)
class DnsDependencyReport:
    """DNS-dependency summary for one country."""

    country: str
    domains: int
    third_party_share: float
    #: Largest share of the country's domains on one external provider.
    top_provider_share: float
    top_provider_asn: int


def _domains_by_country(
    world: SyntheticWorld, dataset: DatasetOrIndex
) -> dict[str, set[str]]:
    return ensure_index(dataset).domains_by_country()


def country_dns_dependency(
    world: SyntheticWorld, dataset: DatasetOrIndex
) -> dict[str, DnsDependencyReport]:
    """Per-country third-party DNS dependency over measured domains."""
    reports: dict[str, DnsDependencyReport] = {}
    for country, domains in sorted(_domains_by_country(world, dataset).items()):
        total = 0
        third_party = 0
        provider_counts: dict[int, int] = {}
        for domain in domains:
            delegation = world.nameservers.lookup(domain)
            if delegation is None:
                continue
            total += 1
            if not delegation.self_hosted:
                third_party += 1
                provider_counts[delegation.provider_asn] = (
                    provider_counts.get(delegation.provider_asn, 0) + 1
                )
        if total == 0:
            continue
        if provider_counts:
            top_asn = max(provider_counts, key=provider_counts.get)
            top_share = provider_counts[top_asn] / total
        else:
            top_asn, top_share = 0, 0.0
        reports[country] = DnsDependencyReport(
            country=country,
            domains=total,
            third_party_share=third_party / total,
            top_provider_share=top_share,
            top_provider_asn=top_asn,
        )
    return reports


def managed_dns_footprints(
    world: SyntheticWorld, dataset: DatasetOrIndex
) -> dict[int, int]:
    """Countries relying on each external DNS provider (asn -> count)."""
    per_provider: dict[int, set[str]] = {}
    for country, domains in _domains_by_country(world, dataset).items():
        for domain in domains:
            delegation = world.nameservers.lookup(domain)
            if delegation is None or delegation.self_hosted:
                continue
            per_provider.setdefault(delegation.provider_asn, set()).add(country)
    return {asn: len(countries) for asn, countries in sorted(per_provider.items())}


def global_third_party_dns_share(
    world: SyntheticWorld, dataset: DatasetOrIndex
) -> float:
    """Share of all measured government domains on third-party DNS."""
    total = 0
    third_party = 0
    for domains in _domains_by_country(world, dataset).values():
        for domain in domains:
            delegation = world.nameservers.lookup(domain)
            if delegation is None:
                continue
            total += 1
            third_party += not delegation.self_hosted
    return third_party / total if total else 0.0


__all__ = [
    "DnsDependencyReport",
    "country_dns_dependency",
    "managed_dns_footprints",
    "global_third_party_dns_share",
]
