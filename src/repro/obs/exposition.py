"""Prometheus text exposition of a :class:`MetricsRegistry`.

:func:`render_prometheus` renders a registry (or its ``to_dict``
snapshot) in the Prometheus text exposition format (version 0.0.4), so
standard scrapers can be pointed straight at the serve gateway's
``/metrics?format=prometheus``.

Name mapping is **stable** — documented in ``docs/API.md`` and relied
on by dashboards, so treat it as an API:

=================================  =====================================================
registry name                      exposition series
=================================  =====================================================
``serve.requests``                 ``repro_serve_requests_total``
``serve.requests.<ep>``            ``repro_serve_endpoint_requests_total{endpoint="<ep>"}``
``serve.errors``                   ``repro_serve_errors_total``
``serve.errors.<code>``            ``repro_serve_error_code_total{code="<code>"}``
``serve.latency_ms.<ep>``          ``repro_serve_latency_ms_bucket{endpoint="<ep>",le="..."}``
                                   + ``_sum``/``_count`` (histogram family)
``serve.inflight.peak``            ``repro_serve_inflight_peak``
any other counter ``a.b``          ``repro_a_b_total``
any other gauge ``a.b``            ``repro_a_b``
other histogram, numeric buckets   ``repro_a_b_bucket{le="..."}`` + ``repro_a_b_count``
other histogram, string buckets    ``repro_a_b_total{bucket="<b>"}``
=================================  =====================================================

Numeric-bucket histograms are emitted cumulatively with a final
``le="+Inf"`` bucket equal to the total count, exactly as the
exposition grammar requires.  The serve latency families also carry a
``_sum`` series fed by the ``serve.latency_sum_ms.<ep>`` counters the
:class:`~repro.serve.metrics.ServiceMetrics` tracker maintains; those
helper counters are consumed here and never exposed as standalone
series.

Everything is emitted in sorted family order with ``# HELP`` and
``# TYPE`` headers, labels sorted, label values escaped per the
exposition rules — the output is deterministic for a given snapshot.
"""

from __future__ import annotations

import re
from typing import Mapping, Union

from repro.obs.metrics import MetricsRegistry

#: Content-Type of the rendered body (what Prometheus scrapers expect).
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Helper counters folded into the latency histograms' ``_sum`` series.
_LATENCY_SUM_PREFIX = "serve.latency_sum_ms."
_LATENCY_PREFIX = "serve.latency_ms."

_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_]")


def _sanitize(name: str) -> str:
    """Registry name -> exposition metric name body (``repro_`` prefix)."""
    sanitized = _INVALID_CHARS.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return f"repro_{sanitized}"


def _escape_label(value: str) -> str:
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _labels(pairs: Mapping[str, str]) -> str:
    if not pairs:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label(str(value))}"'
        for key, value in sorted(pairs.items())
    )
    return "{" + inner + "}"


def _format_value(value: Union[int, float]) -> str:
    if isinstance(value, bool):  # bools are ints; be explicit
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


class _Family:
    """One exposition family: TYPE/HELP header plus its sample lines."""

    def __init__(self, name: str, kind: str, help_text: str) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.samples: list[str] = []

    def add(self, suffix: str, labels: Mapping[str, str],
            value: Union[int, float]) -> None:
        self.samples.append(
            f"{self.name}{suffix}{_labels(labels)} {_format_value(value)}"
        )

    def render(self) -> str:
        header = [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} {self.kind}",
        ]
        return "\n".join(header + self.samples)


def _family(families: dict[str, _Family], name: str, kind: str,
            help_text: str) -> _Family:
    family = families.get(name)
    if family is None:
        family = families[name] = _Family(name, kind, help_text)
    return family


def _numeric_buckets(buckets: Mapping) -> bool:
    return bool(buckets) and all(
        isinstance(bound, (int, float)) and not isinstance(bound, bool)
        for bound in buckets
    )


def _histogram_series(family: _Family, labels: Mapping[str, str],
                      buckets: Mapping, total_sum=None) -> None:
    """Emit one cumulative ``le`` bucket run plus count (and sum)."""
    cumulative = 0
    for bound in sorted(buckets):
        cumulative += buckets[bound]
        family.add("_bucket", {**labels, "le": str(bound)}, cumulative)
    family.add("_bucket", {**labels, "le": "+Inf"}, cumulative)
    if total_sum is not None:
        family.add("_sum", labels, total_sum)
    family.add("_count", labels, cumulative)


def render_prometheus(
    metrics: Union[MetricsRegistry, Mapping],
) -> str:
    """Render a registry (or its ``to_dict`` snapshot) as exposition text.

    The output ends with a trailing newline, as the format requires.
    """
    snapshot = (metrics.to_dict() if isinstance(metrics, MetricsRegistry)
                else metrics)
    counters: dict = dict(snapshot.get("counters", {}))
    gauges: dict = dict(snapshot.get("gauges", {}))
    histograms: dict = dict(snapshot.get("histograms", {}))

    families: dict[str, _Family] = {}

    # Latency sums are helper counters for the histogram families.
    latency_sums = {
        name[len(_LATENCY_SUM_PREFIX):]: counters.pop(name)
        for name in sorted(counters)
        if name.startswith(_LATENCY_SUM_PREFIX)
    }

    for name in sorted(counters):
        value = counters[name]
        if name == "serve.requests":
            _family(families, "repro_serve_requests_total", "counter",
                    "Total queries answered by the service.") \
                .add("", {}, value)
        elif name.startswith("serve.requests."):
            _family(families, "repro_serve_endpoint_requests_total",
                    "counter", "Queries answered, by endpoint.") \
                .add("", {"endpoint": name[len("serve.requests."):]}, value)
        elif name == "serve.errors":
            _family(families, "repro_serve_errors_total", "counter",
                    "Total failed queries.").add("", {}, value)
        elif name.startswith("serve.errors."):
            _family(families, "repro_serve_error_code_total", "counter",
                    "Failed queries, by error code.") \
                .add("", {"code": name[len("serve.errors."):]}, value)
        else:
            _family(families, _sanitize(name) + "_total", "counter",
                    f"Counter {name}.").add("", {}, value)

    for name in sorted(gauges):
        value = gauges[name]
        if name == "serve.inflight.peak":
            _family(families, "repro_serve_inflight_peak", "gauge",
                    "High-water mark of concurrent in-flight queries.") \
                .add("", {}, value)
        else:
            _family(families, _sanitize(name), "gauge",
                    f"Gauge {name}.").add("", {}, value)

    for name in sorted(histograms):
        # to_dict() stringifies bucket keys for JSON; restore numeric
        # bounds before deciding how to render.
        buckets = _coerce_numeric(histograms[name])
        if name.startswith(_LATENCY_PREFIX):
            endpoint = name[len(_LATENCY_PREFIX):]
            family = _family(
                families, "repro_serve_latency_ms", "histogram",
                "Query latency in milliseconds, power-of-two buckets, "
                "by endpoint.",
            )
            _histogram_series(
                family, {"endpoint": endpoint}, buckets,
                total_sum=latency_sums.get(endpoint),
            )
        elif _numeric_buckets(buckets):
            family = _family(families, _sanitize(name), "histogram",
                             f"Histogram {name}.")
            _histogram_series(family, {}, buckets)
        else:
            family = _family(families, _sanitize(name) + "_total",
                             "counter",
                             f"Histogram {name} (categorical buckets).")
            for bucket in sorted(buckets, key=str):
                family.add("", {"bucket": str(bucket)}, buckets[bucket])

    body = "\n".join(
        families[name].render() for name in sorted(families)
    )
    return body + "\n" if body else ""


def _coerce_numeric(buckets: Mapping) -> dict:
    """Restore numeric bucket bounds from a JSON snapshot's strings."""
    coerced = {}
    for bound, count in buckets.items():
        if isinstance(bound, str) and bound.lstrip("-").isdigit():
            bound = int(bound)
        coerced[bound] = count
    return coerced


__all__ = ["PROMETHEUS_CONTENT_TYPE", "render_prometheus"]
