"""Structured tracing: nested spans over the pipeline's stages.

A :class:`Span` is one timed region of work — ``pipeline.run``, one
country's ``scan``, the ``crawl`` inside it, one geolocation step —
with a name, free-form tags and a list of child spans.  A
:class:`Tracer` hands out spans through a context manager, keeps a
per-thread stack so nesting is correct even when several scans run on
a thread pool, and buffers every completed top-level span for export.

Zero-perturbation contract
--------------------------
Tracing must never change what the pipeline computes.  Spans therefore
draw **only** from :func:`time.perf_counter` — no RNG, no wall-clock
reads on the measurement path, no interaction with the fault layer's
simulated clock — and no measured value ever feeds back into pipeline
state.  The byte-identity suite (``tests/obs/``) holds every executor
to this.

Exports: :meth:`Tracer.to_dict` is the canonical JSON layout (nested
spans with seconds relative to the trace origin); :meth:`Tracer.to_chrome`
renders the same tree as Chrome ``trace_event`` complete events, so a
trace file drops straight into ``about://tracing`` / Perfetto.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from contextlib import contextmanager
from typing import Any, Iterator, Optional

#: Version marker written into every trace export.
TRACE_FORMAT_VERSION = 1


@dataclasses.dataclass
class Span:
    """One timed region of pipeline work.

    Times are raw :func:`time.perf_counter` readings; exports rebase
    them onto the trace origin so they are meaningful across processes.
    """

    name: str
    start_s: float
    end_s: float = 0.0
    tags: dict[str, Any] = dataclasses.field(default_factory=dict)
    children: list["Span"] = dataclasses.field(default_factory=list)

    @property
    def duration_s(self) -> float:
        """Elapsed seconds (0.0 while the span is still open)."""
        return max(0.0, self.end_s - self.start_s)

    def finish(self) -> "Span":
        """Close the span now (idempotent once closed)."""
        if self.end_s == 0.0:
            self.end_s = time.perf_counter()
        return self

    def child(self, name: str, **tags: Any) -> "Span":
        """Open a child span starting now."""
        span = Span(name=name, start_s=time.perf_counter(), tags=dict(tags))
        self.children.append(span)
        return span

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> Optional["Span"]:
        """First descendant (or self) with ``name``, depth-first."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def to_dict(self, origin_s: float) -> dict:
        """Nested JSON form with times relative to ``origin_s``."""
        return {
            "name": self.name,
            "start_s": round(self.start_s - origin_s, 6),
            "duration_s": round(self.duration_s, 6),
            "tags": dict(self.tags),
            "children": [child.to_dict(origin_s) for child in self.children],
        }


class Tracer:
    """Thread-safe span factory and buffer.

    Spans opened on the same thread nest through a thread-local stack;
    spans recorded elsewhere (a worker's scan scope, a process shard)
    are grafted under an explicit parent with :meth:`attach`.  The
    buffer only ever grows by whole, finished top-level spans, so an
    export taken at any time is well-formed.
    """

    def __init__(self) -> None:
        self._local = threading.local()
        self._lock = threading.Lock()
        #: Completed top-level spans, in completion order.
        self.roots: list[Span] = []
        #: perf_counter reading all exported times are relative to.
        self.origin_s = time.perf_counter()

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @contextmanager
    def span(self, name: str, **tags: Any) -> Iterator[Span]:
        """Open a span nested under the thread's current span."""
        span = Span(name=name, start_s=time.perf_counter(), tags=dict(tags))
        stack = self._stack()
        if stack:
            stack[-1].children.append(span)
        stack.append(span)
        try:
            yield span
        finally:
            span.finish()
            stack.pop()
            if not stack:
                with self._lock:
                    self.roots.append(span)

    def attach(self, parent: Span, child: Span) -> None:
        """Graft a foreign (already finished) span under ``parent``."""
        with self._lock:
            parent.children.append(child)

    def find(self, name: str) -> Optional[Span]:
        """First buffered span with ``name``, depth-first over roots."""
        for root in self.roots:
            found = root.find(name)
            if found is not None:
                return found
        return None

    # ------------------------------------------------------------- exports

    def to_dict(self) -> dict:
        """Canonical JSON layout: nested spans, seconds from origin."""
        return {
            "format": TRACE_FORMAT_VERSION,
            "spans": [root.to_dict(self.origin_s) for root in self.roots],
        }

    def to_chrome(self) -> dict:
        """The span tree as Chrome ``trace_event`` complete events.

        Every span becomes one ``"ph": "X"`` event with microsecond
        timestamps relative to the trace origin; load the file in
        ``about://tracing`` or https://ui.perfetto.dev to browse it.
        """
        events = []
        for root in self.roots:
            for span in root.walk():
                events.append({
                    "name": span.name,
                    "ph": "X",
                    "ts": round((span.start_s - self.origin_s) * 1e6, 1),
                    "dur": round(span.duration_s * 1e6, 1),
                    "pid": 0,
                    "tid": 0,
                    "args": dict(span.tags),
                })
        return {"traceEvents": events, "displayTimeUnit": "ms"}


__all__ = ["TRACE_FORMAT_VERSION", "Span", "Tracer"]
