"""Run manifests: every artifact traceable to the run that produced it.

A :class:`RunManifest` is a small JSON document written next to an
exported dataset that records *what produced it*: the content-address
fingerprint of the run (the same
:func:`~repro.cache.fingerprint.run_fingerprint` the scan cache keys
entries by), the seed/scale/country selection, the executor, the fault
profile, the cache's hit/miss accounting, per-stage wall times and the
library versions in play.  Given only the manifest, a reader can
regenerate the dataset bit for bit — or recognize at a glance that two
artifacts came from different runs (different fingerprints) even when
their filenames agree.

Wall times and versions are observability metadata: they vary between
hosts and runs while the fingerprint does not, and nothing in the
manifest feeds back into the pipeline (the zero-perturbation rule).
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import platform
import sys
from typing import TYPE_CHECKING, Mapping, Optional, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cache import ScanCache
    from repro.core.dataset import GovernmentHostingDataset
    from repro.core.pipeline import Pipeline
    from repro.exec import ExecutionStrategy
    from repro.obs import Observability

PathLike = Union[str, pathlib.Path]

#: Version marker written into every manifest.  Version 2 added the
#: ``tool_version`` field; the bump is tolerant in both directions —
#: :meth:`RunManifest.read` accepts every version in
#: :data:`SUPPORTED_MANIFEST_FORMATS`, and a version-1 document loads
#: with ``tool_version="unknown"``.
MANIFEST_FORMAT_VERSION = 2

#: Formats :meth:`RunManifest.read` knows how to load.
SUPPORTED_MANIFEST_FORMATS = (1, 2)


def tool_version() -> str:
    """The installed version of the repro tool itself.

    Resolved from package metadata so an installed wheel reports its
    real version; source checkouts fall back to ``repro.__version__``
    and anything else to ``"unknown"`` — provenance must never make a
    run fail.
    """
    try:
        from importlib import metadata

        return metadata.version("repro")
    except Exception:
        pass
    try:
        from repro import __version__

        return __version__
    except Exception:  # pragma: no cover - defensive
        return "unknown"


def _library_versions() -> dict[str, str]:
    """Versions of everything whose behavior the dataset depends on."""
    import numpy

    from repro import __version__

    return {
        "repro": __version__,
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "implementation": sys.implementation.name,
    }


@dataclasses.dataclass
class RunManifest:
    """Provenance record for one pipeline run."""

    #: Content address of the run's inputs (config + fault plan +
    #: max_depth), shared with the scan cache's key derivation.
    fingerprint: str
    seed: int
    scale: float
    countries: list[str]
    executor: str
    workers: Optional[int]
    max_depth: int
    fault_rate: float
    fault_profile: str
    fault_seed: Optional[int]
    #: Dataset shape (Table 3 summary counts), for eyeballing drift.
    summary: dict[str, int]
    #: Wall seconds per pipeline stage (scan/merge/finalize), from the
    #: tracer when observability was on.
    stage_seconds: dict[str, float]
    #: Cache accounting of the run, or None when caching was off.
    cache: Optional[dict]
    #: Total faults injected/degraded (0/0 for fault-free runs).
    faults: dict[str, int]
    versions: dict[str, str] = dataclasses.field(
        default_factory=_library_versions
    )
    #: Version of the repro tool that produced this manifest (package
    #: metadata; ``"unknown"`` for manifests written before format 2).
    tool_version: str = dataclasses.field(default_factory=tool_version)
    #: Snapshot-chain provenance for evolved runs: the parent
    #: snapshot's fingerprint, the mutation seed, the step number and
    #: the changed-country list (see :mod:`repro.evolve`).  None for
    #: standalone runs; readers on the old layout ignore it
    #: (:meth:`from_dict` filters unknown keys), so the format version
    #: stays 1.
    evolution: Optional[dict] = None
    format: int = MANIFEST_FORMAT_VERSION

    # ----------------------------------------------------------- assembly

    @classmethod
    def collect(
        cls,
        pipeline: "Pipeline",
        dataset: "GovernmentHostingDataset",
        executor: Optional["ExecutionStrategy"] = None,
        cache: Optional["ScanCache"] = None,
        obs: Optional["Observability"] = None,
        evolution: Optional[dict] = None,
    ) -> "RunManifest":
        """Assemble the manifest for one completed ``Pipeline.run``."""
        from repro.cache.fingerprint import run_fingerprint

        config = pipeline.world.config
        summary = dataset.summarize()
        stage_seconds: dict[str, float] = {}
        if obs is not None:
            run_span = obs.tracer.find("pipeline.run")
            if run_span is not None:
                stage_seconds["total"] = round(run_span.duration_s, 6)
                for stage in run_span.children:
                    stage_seconds[stage.name] = round(stage.duration_s, 6)
        fault_total = dataset.faults.total()
        return cls(
            fingerprint=run_fingerprint(
                config, pipeline.crawler.max_depth, pipeline.fault_plan
            ),
            seed=config.seed,
            scale=config.scale,
            countries=sorted(dataset.countries),
            executor=executor.name if executor is not None else "serial",
            workers=getattr(executor, "workers", None),
            max_depth=pipeline.crawler.max_depth,
            fault_rate=config.fault_rate,
            fault_profile=config.fault_profile,
            fault_seed=pipeline.fault_plan.seed if pipeline.fault_plan.enabled
            else config.fault_seed,
            summary={
                field: getattr(summary, field)
                for field in ("landing_urls", "internal_urls",
                              "total_unique_urls", "unique_hostnames", "ases",
                              "unique_addresses")
            },
            stage_seconds=stage_seconds,
            cache=cache.stats.to_dict() if cache is not None else None,
            faults={
                "injected": fault_total.injected,
                "retried": fault_total.retried,
                "recovered": fault_total.recovered,
                "degraded": fault_total.degraded,
            },
            evolution=dict(evolution) if evolution is not None else None,
        )

    # -------------------------------------------------------- persistence

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping) -> "RunManifest":
        """Rebuild a manifest from :meth:`to_dict` output.

        Unknown keys are dropped (newer writers stay loadable) and a
        missing ``tool_version`` — every format-1 manifest — loads as
        ``"unknown"`` rather than claiming the *reader's* version.
        """
        fields = {field.name for field in dataclasses.fields(cls)}
        payload = {key: value for key, value in data.items()
                   if key in fields}
        if "tool_version" not in payload:
            payload["tool_version"] = "unknown"
        return cls(**payload)

    def write(self, path: PathLike) -> pathlib.Path:
        """Write the manifest as stable, sorted JSON."""
        path = pathlib.Path(path)
        path.write_text(
            json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n",
            encoding="utf-8",
        )
        return path

    @classmethod
    def read(cls, path: PathLike) -> "RunManifest":
        """Load a manifest written by :meth:`write`."""
        data = json.loads(pathlib.Path(path).read_text(encoding="utf-8"))
        if data.get("format") not in SUPPORTED_MANIFEST_FORMATS:
            raise ValueError(
                f"{path}: unsupported manifest format {data.get('format')!r}"
            )
        return cls.from_dict(data)


def manifest_path_for(dataset_path: PathLike) -> pathlib.Path:
    """Conventional manifest location: next to the dataset it describes."""
    path = pathlib.Path(dataset_path)
    return path.with_name(path.name + ".manifest.json")


__all__ = [
    "MANIFEST_FORMAT_VERSION",
    "SUPPORTED_MANIFEST_FORMATS",
    "RunManifest",
    "manifest_path_for",
    "tool_version",
]
