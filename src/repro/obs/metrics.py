"""Metrics: counters, gauges and histograms that merge as monoids.

Parallel pipeline runs shard per-country work over threads or
processes, so per-shard metrics must reduce to one registry without
caring how the work was split or in which order shards finished.  The
registry therefore supports exactly the operations that commute:

* **counters** merge by summation;
* **histograms** (bucket -> count maps) merge by per-bucket summation;
* **gauges** merge by maximum — the only order-free choice for a
  "point-in-time" value; record per-shard peaks, not running levels.

Under :meth:`MetricsRegistry.merge` the registry is a commutative
monoid with the empty registry as identity — the same algebraic
contract as ``merge_footprints`` / ``merge_validation`` /
``merge_faults`` in :mod:`repro.exec.partials`, and tested the same
way (``tests/obs/test_metrics.py`` asserts the monoid laws).  That is
what makes merged metrics from thread and process runs deterministic:
every shard's delta is a pure function of its countries, and the
reduction is order-independent.
"""

from __future__ import annotations

import threading
from typing import Mapping, Optional, Union

Number = Union[int, float]


class MetricsRegistry:
    """Named counters, gauges and bucketed histograms.

    Names are dotted strings (``"cache.hits"``, ``"geo.funnel.hoiho"``);
    a name lives in exactly one of the three families.  All mutators
    are cheap dict operations — safe to call on the pipeline's hot
    paths — and reads (:meth:`counter`, :meth:`gauge_value`,
    :meth:`histogram`) never create entries.
    """

    __slots__ = ("_counters", "_gauges", "_histograms")

    def __init__(self) -> None:
        self._counters: dict[str, Number] = {}
        self._gauges: dict[str, Number] = {}
        self._histograms: dict[str, dict[Union[int, str], Number]] = {}

    # ------------------------------------------------------------ mutation

    def count(self, name: str, value: Number = 1) -> None:
        """Add ``value`` to a counter (created at 0)."""
        self._counters[name] = self._counters.get(name, 0) + value

    def gauge(self, name: str, value: Number) -> None:
        """Record a gauge level; merges keep the maximum observed."""
        current = self._gauges.get(name)
        if current is None or value > current:
            self._gauges[name] = value

    def observe(self, name: str, bucket: Union[int, str],
                count: Number = 1) -> None:
        """Add ``count`` to one bucket of a histogram."""
        histogram = self._histograms.setdefault(name, {})
        histogram[bucket] = histogram.get(bucket, 0) + count

    def observe_all(self, name: str,
                    buckets: Mapping[Union[int, str], Number]) -> None:
        """Fold a whole bucket->count mapping into a histogram."""
        histogram = self._histograms.setdefault(name, {})
        for bucket, count in buckets.items():
            histogram[bucket] = histogram.get(bucket, 0) + count

    # ------------------------------------------------------------- reads

    def counter(self, name: str) -> Number:
        """Current counter value (0 when never counted)."""
        return self._counters.get(name, 0)

    def gauge_value(self, name: str) -> Optional[Number]:
        """Current gauge level, or None when never recorded."""
        return self._gauges.get(name)

    def histogram(self, name: str) -> dict[Union[int, str], Number]:
        """Copy of a histogram's buckets (empty when never observed)."""
        return dict(self._histograms.get(name, {}))

    def __bool__(self) -> bool:
        return bool(self._counters or self._gauges or self._histograms)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MetricsRegistry):
            return NotImplemented
        return (self._counters == other._counters
                and self._gauges == other._gauges
                and self._histograms == other._histograms)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<MetricsRegistry {len(self._counters)} counters, "
                f"{len(self._gauges)} gauges, "
                f"{len(self._histograms)} histograms>")

    # ------------------------------------------------------------- merge

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Commutative, associative reduction; ``MetricsRegistry()`` is
        the identity.  Counters and histogram buckets sum; gauges keep
        the maximum."""
        merged = MetricsRegistry()
        for registry in (self, other):
            merged.merge_in(registry)
        return merged

    def merge_in(self, other: "MetricsRegistry") -> None:
        """In-place :meth:`merge` (the driver's absorption hot path)."""
        for name, value in other._counters.items():
            self._counters[name] = self._counters.get(name, 0) + value
        for name, value in other._gauges.items():
            self.gauge(name, value)
        for name, buckets in other._histograms.items():
            self.observe_all(name, buckets)

    def __add__(self, other: "MetricsRegistry") -> "MetricsRegistry":
        if not isinstance(other, MetricsRegistry):
            return NotImplemented
        return self.merge(other)

    # ------------------------------------------------------------ export

    def to_dict(self) -> dict:
        """JSON-serializable snapshot with canonically sorted keys.

        Histogram buckets are emitted under string keys (JSON objects
        have no integer keys); :meth:`from_dict` restores numeric ones.
        """
        return {
            "counters": dict(sorted(self._counters.items())),
            "gauges": dict(sorted(self._gauges.items())),
            "histograms": {
                name: {str(bucket): count
                       for bucket, count in sorted(buckets.items(),
                                                   key=lambda kv: str(kv[0]))}
                for name, buckets in sorted(self._histograms.items())
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`to_dict` output."""
        registry = cls()
        registry._counters.update(data.get("counters", {}))
        registry._gauges.update(data.get("gauges", {}))
        for name, buckets in data.get("histograms", {}).items():
            registry._histograms[name] = {
                (int(bucket) if str(bucket).lstrip("-").isdigit() else bucket):
                    count
                for bucket, count in buckets.items()
            }
        return registry


class ThreadSafeMetricsRegistry(MetricsRegistry):
    """A :class:`MetricsRegistry` whose mutators and snapshots lock.

    The base class stays lock-free on purpose — pipeline shards own
    their registries exclusively and merge after the fact.  Long-lived
    shared registries (the serve layer's per-query metrics) use this
    subclass instead: every mutator, merge and snapshot read runs under
    one internal lock, so concurrent request threads never interleave a
    half-applied update or export a torn snapshot.  The algebra is
    unchanged — it is the same monoid, just fenced.
    """

    __slots__ = ("_metrics_lock",)

    def __init__(self) -> None:
        super().__init__()
        # Reentrant: the base merge_in dispatches back through the
        # overridden gauge/observe_all while the lock is already held.
        self._metrics_lock = threading.RLock()

    # Mutators --------------------------------------------------------

    def count(self, name: str, value: Number = 1) -> None:
        with self._metrics_lock:
            super().count(name, value)

    def gauge(self, name: str, value: Number) -> None:
        with self._metrics_lock:
            super().gauge(name, value)

    def observe(self, name: str, bucket: Union[int, str],
                count: Number = 1) -> None:
        with self._metrics_lock:
            super().observe(name, bucket, count)

    def observe_all(self, name: str,
                    buckets: Mapping[Union[int, str], Number]) -> None:
        with self._metrics_lock:
            super().observe_all(name, buckets)

    def merge_in(self, other: "MetricsRegistry") -> None:
        with self._metrics_lock:
            super().merge_in(other)

    # Snapshot reads --------------------------------------------------

    def counter(self, name: str) -> Number:
        with self._metrics_lock:
            return super().counter(name)

    def gauge_value(self, name: str) -> Optional[Number]:
        with self._metrics_lock:
            return super().gauge_value(name)

    def histogram(self, name: str) -> dict[Union[int, str], Number]:
        with self._metrics_lock:
            return super().histogram(name)

    def to_dict(self) -> dict:
        with self._metrics_lock:
            return super().to_dict()


def merge_metrics(registries) -> MetricsRegistry:
    """Reduce any iterable of registries with the monoid merge."""
    merged = MetricsRegistry()
    for registry in registries:
        merged.merge_in(registry)
    return merged


__all__ = ["MetricsRegistry", "ThreadSafeMetricsRegistry", "merge_metrics"]
