"""Structured observability events: a bounded stream plus a scoped hook.

Two small pieces that the cross-run observability layer shares:

* :class:`EventLog` — a thread-safe, bounded ring of :class:`Event`
  records with monotonically increasing sequence numbers.  Long-lived
  components (the run registry, the serve request tracer, the bench
  sentinel) emit lifecycle events into one log so "what happened, in
  order" is answerable without correlating separate files.  The ring is
  bounded, so an always-on log can never grow without limit.

* :func:`emit` / :func:`collecting` — a per-thread collection scope.
  Instrumented code deep in the analysis engine (index-table memo
  builds, service-level memo hits) calls :func:`emit`; when no scope is
  active this is a single thread-local read and a ``None`` check, cheap
  enough for hot paths and — by the zero-perturbation rule — never
  influencing what the instrumented code computes.  A request tracer
  opens a scope around dispatch and folds whatever was emitted into the
  request's span tags.

Timestamps are :func:`time.perf_counter_ns` readings — monotonic, never
wall-clock, so event deltas cannot go negative under clock adjustment
(the same discipline as :mod:`repro.obs.trace`).
"""

from __future__ import annotations

import dataclasses
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Iterator, Optional

#: Default capacity of an :class:`EventLog` ring.
DEFAULT_EVENT_CAPACITY = 1024


@dataclasses.dataclass(frozen=True)
class Event:
    """One observability event: a kind, a payload, a monotonic stamp."""

    #: Dotted kind string (``"run.recorded"``, ``"request.slow"``,
    #: ``"memo.build"``, ``"bench.gate.failed"``).
    kind: str
    #: Free-form, JSON-ready details.
    payload: dict[str, Any]
    #: Position in the owning log (0-based, gap-free), or -1 for
    #: events captured in a :func:`collecting` scope.
    seq: int = -1
    #: Monotonic nanoseconds (:func:`time.perf_counter_ns`).
    monotonic_ns: int = 0

    def to_dict(self) -> dict:
        return {
            "seq": self.seq,
            "kind": self.kind,
            "monotonic_ns": self.monotonic_ns,
            "payload": dict(self.payload),
        }


class EventLog:
    """Bounded, thread-safe, append-only-in-spirit event ring.

    Appends never block readers for long: the lock only guards the
    deque and the sequence counter.  When the ring is full the oldest
    events fall off, but sequence numbers keep counting — a reader can
    always tell how many events were dropped (``first kept seq > 0``).
    """

    def __init__(self, capacity: int = DEFAULT_EVENT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._events: deque[Event] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._next_seq = 0

    def emit(self, kind: str, **payload: Any) -> Event:
        """Append one event; returns it with its assigned sequence."""
        with self._lock:
            event = Event(
                kind=kind, payload=payload, seq=self._next_seq,
                monotonic_ns=time.perf_counter_ns(),
            )
            self._next_seq += 1
            self._events.append(event)
        return event

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    @property
    def emitted(self) -> int:
        """Total events ever emitted (>= ``len`` once the ring wraps)."""
        with self._lock:
            return self._next_seq

    def tail(self, count: Optional[int] = None) -> tuple[Event, ...]:
        """The newest ``count`` events, oldest first (all when None)."""
        with self._lock:
            events = tuple(self._events)
        if count is None or count >= len(events):
            return events
        return events[len(events) - count:]

    def of_kind(self, kind: str) -> tuple[Event, ...]:
        """Buffered events whose kind matches exactly, oldest first."""
        return tuple(e for e in self.tail() if e.kind == kind)

    def to_dicts(self) -> list[dict]:
        """JSON-ready rendering of the buffered events, oldest first."""
        return [event.to_dict() for event in self.tail()]


# --------------------------------------------------------------- scoping

_SCOPE = threading.local()


def emit(kind: str, **payload: Any) -> None:
    """Record an event into the thread's active collection scope.

    A no-op (one thread-local read) when no scope is active, so
    instrumentation points on warm paths cost almost nothing and never
    perturb what the instrumented code computes.
    """
    sink = getattr(_SCOPE, "sink", None)
    if sink is not None:
        sink.append(Event(kind=kind, payload=payload,
                          monotonic_ns=time.perf_counter_ns()))


@contextmanager
def collecting(sink: Optional[list[Event]] = None
               ) -> Iterator[list[Event]]:
    """Collect every :func:`emit` on this thread into ``sink``.

    Scopes nest: the previous sink is restored on exit, so a traced
    request inside a traced request (or a test inside a test) keeps
    events where they belong.
    """
    if sink is None:
        sink = []
    previous = getattr(_SCOPE, "sink", None)
    _SCOPE.sink = sink
    try:
        yield sink
    finally:
        _SCOPE.sink = previous


__all__ = [
    "DEFAULT_EVENT_CAPACITY",
    "Event",
    "EventLog",
    "collecting",
    "emit",
]
