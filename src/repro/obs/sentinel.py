"""The bench-regression sentinel: declarative gates over BENCH_*.json.

CI used to guard each benchmark with its own inline python heredoc —
six copies of ``json.load`` + ``assert`` drifting independently.  The
sentinel replaces them with one declarative gate table
(:data:`GATES`) evaluated by one command::

    repro-gov obs bench --check BENCH_pipeline.json BENCH_serve.json ...

Each gate names the metric it watches (a dotted path into the bench
document), so a failure is actionable: the sentinel exits non-zero and
prints *which* metric regressed, its value, and the threshold it
crossed — never a bare ``AssertionError``.

Gate kinds:

* ``min`` / ``max`` — numeric threshold; ``--tolerance`` relaxes these
  (a min of 5 with tolerance 0.2 accepts 4.0) so host-speed jitter does
  not flap CI, while exactness gates stay exact;
* ``positive`` — strictly greater than zero;
* ``truthy`` — byte-identity flags and friends;
* ``all_truthy`` — a mapping whose every value must be truthy
  (``byte_identical: {serial, threads, processes}``);
* ``equals`` — two metrics in the same document must agree
  (``hit_rate == expected_hit_rate``);
* ``at_least`` — one metric must be >= another
  (``speedup_x >= threshold_x``);
* ``ordered`` — a metric list must be non-decreasing
  (``p50 <= p95 <= p99``).

The gate table mirrors the assertions the CI heredocs used to make —
byte-identity, hit-rate exactness, speedup floors — so replacing the
heredocs with ``obs bench --check`` keeps the bar where it was.

:func:`trajectory` extends the same idea across *time*: given a
:class:`~repro.obs.registry.RunRegistry`, it compares the latest run of
each fingerprint against the median of its predecessors and flags wall
time inflations and cache hit-rate drops.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import re
import statistics
from typing import Any, Mapping, Optional, Sequence, Union

from repro.obs.registry import RegisteredRun, RunRegistry

PathLike = Union[str, pathlib.Path]

_BENCH_NAME = re.compile(r"BENCH_([a-z0-9_]+)\.json$")


class SentinelError(ValueError):
    """A bench document or gate reference that cannot be evaluated."""


def _lookup(document: Mapping, path: str) -> Any:
    """Resolve a dotted path; raises KeyError naming the missing step."""
    value: Any = document
    for step in path.split("."):
        if not isinstance(value, Mapping) or step not in value:
            raise KeyError(path)
        value = value[step]
    return value


@dataclasses.dataclass(frozen=True)
class Gate:
    """One named expectation over a bench document."""

    #: Dotted path of the watched metric (``"latency.p50_ms"``).
    metric: str
    #: One of min/max/positive/truthy/all_truthy/equals/at_least/ordered.
    kind: str
    #: Numeric threshold for min/max.
    threshold: Optional[float] = None
    #: Second dotted path for equals/at_least; extra paths for ordered.
    reference: Optional[str] = None
    others: tuple[str, ...] = ()
    #: Human explanation shown on failure.
    why: str = ""

    def evaluate(self, bench: Mapping, tolerance: float = 0.0
                 ) -> "GateResult":
        try:
            actual = _lookup(bench, self.metric)
        except KeyError:
            return GateResult(self, ok=False, actual=None,
                              message=f"{self.metric}: metric missing")
        if self.kind == "min":
            limit = self.threshold * (1.0 - tolerance)
            ok = actual >= limit
            message = (f"{self.metric} = {actual} "
                       f"(minimum {round(limit, 6)})")
        elif self.kind == "max":
            limit = self.threshold * (1.0 + tolerance)
            ok = actual <= limit
            message = (f"{self.metric} = {actual} "
                       f"(maximum {round(limit, 6)})")
        elif self.kind == "positive":
            ok = isinstance(actual, (int, float)) and actual > 0
            message = f"{self.metric} = {actual} (must be > 0)"
        elif self.kind == "truthy":
            ok = bool(actual)
            message = f"{self.metric} = {actual!r} (must be truthy)"
        elif self.kind == "all_truthy":
            if not isinstance(actual, Mapping) or not actual:
                ok, message = False, \
                    f"{self.metric} = {actual!r} (expected non-empty map)"
            else:
                failing = sorted(k for k, v in actual.items() if not v)
                ok = not failing
                message = (f"{self.metric}: all true" if ok else
                           f"{self.metric}: false for {', '.join(failing)}")
        elif self.kind in ("equals", "at_least"):
            try:
                expected = _lookup(bench, self.reference)
            except KeyError:
                return GateResult(self, ok=False, actual=actual,
                                  message=f"{self.reference}: "
                                          f"metric missing")
            if self.kind == "equals":
                ok = actual == expected
                relation = "=="
            else:
                ok = actual >= expected
                relation = ">="
            message = (f"{self.metric} = {actual} {relation} "
                       f"{self.reference} = {expected}")
        elif self.kind == "ordered":
            paths = (self.metric,) + self.others
            try:
                values = [_lookup(bench, path) for path in paths]
            except KeyError as exc:
                return GateResult(self, ok=False, actual=None,
                                  message=f"{exc.args[0]}: metric missing")
            ok = all(a <= b for a, b in zip(values, values[1:]))
            message = " <= ".join(f"{p}={v}" for p, v in zip(paths, values))
        else:  # pragma: no cover - table is static
            raise SentinelError(f"unknown gate kind {self.kind!r}")
        return GateResult(self, ok=ok, actual=actual, message=message)


@dataclasses.dataclass(frozen=True)
class GateResult:
    gate: Gate
    ok: bool
    actual: Any
    message: str

    @property
    def metric(self) -> str:
        return self.gate.metric

    def to_dict(self) -> dict:
        return {
            "metric": self.gate.metric,
            "kind": self.gate.kind,
            "ok": self.ok,
            "actual": self.actual,
            "message": self.message,
            "why": self.gate.why,
        }


#: Gate table, by bench kind (the ``<kind>`` of ``BENCH_<kind>.json``).
#: These mirror the assertions CI used to inline per benchmark.
GATES: dict[str, tuple[Gate, ...]] = {
    "pipeline": (
        Gate("speedup", "min", threshold=2.0,
             why="warm cache must beat the cold run"),
        Gate("misses", "max", threshold=0,
             why="a warm identical-config run must not miss"),
        Gate("hits", "min", threshold=1,
             why="the warm run must actually exercise the cache"),
    ),
    "analysis": (
        Gate("identical_output", "truthy",
             why="indexed analysis must match record loops byte for byte"),
        Gate("speedup", "min", threshold=1.0,
             why="the index must not be slower than record loops"),
    ),
    "store": (
        Gate("identical_report", "truthy",
             why="store-backed report must match jsonl bytes"),
        Gate("load_speedup", "min", threshold=1.0,
             why="store open must beat jsonl parsing"),
        Gate("rss_ratio", "max", threshold=1.0,
             why="store analysis must not use more memory than jsonl"),
    ),
    "serve": (
        Gate("identical_to_serial", "truthy",
             why="concurrent responses must match serial byte for byte"),
        Gate("rps", "positive",
             why="throughput was measured at all"),
        Gate("latency.p50_ms", "ordered",
             others=("latency.p95_ms", "latency.p99_ms"),
             why="percentiles must be self-consistent"),
        Gate("requests", "equals", reference="latency.count",
             why="every request must be latency-accounted"),
    ),
    "longitudinal": (
        Gate("hit_rate", "equals", reference="expected_hit_rate",
             why="incremental reuse must be exact, not approximate"),
        Gate("speedup", "min", threshold=5.0,
             why="a one-step delta must be far cheaper than a cold run"),
        Gate("byte_identical", "all_truthy",
             why="incremental snapshots must equal cold runs everywhere"),
    ),
    "scenarios": (
        Gate("gates.unique_scan_exactness.pass", "truthy",
             why="sweep dedup accounting must balance"),
        Gate("gates.unique_scan_exactness.executed", "equals",
             reference="gates.unique_scan_exactness.unique_keys",
             why="a cold sweep executes each unique key exactly once"),
        Gate("gates.speedup.speedup_x", "at_least",
             reference="gates.speedup.threshold_x",
             why="the sweep must clear its own declared bar"),
        Gate("gates.speedup.threshold_x", "min", threshold=4.0,
             why="the declared bar itself must not quietly drop"),
        Gate("gates.executor_identity.pass", "truthy",
             why="every executor must produce identical scenario bytes"),
    ),
}


def bench_kind(path: PathLike) -> str:
    """Infer the gate-table kind from a ``BENCH_<kind>.json`` filename."""
    match = _BENCH_NAME.search(pathlib.Path(path).name)
    if match is None:
        raise SentinelError(
            f"{path}: not a BENCH_<kind>.json file; cannot pick gates"
        )
    kind = match.group(1)
    if kind not in GATES:
        raise SentinelError(
            f"{path}: no gate table for bench kind {kind!r} "
            f"(known: {', '.join(sorted(GATES))})"
        )
    return kind


def evaluate(kind: str, bench: Mapping, tolerance: float = 0.0
             ) -> tuple[GateResult, ...]:
    """Run every gate of one kind over one bench document."""
    if kind not in GATES:
        raise SentinelError(f"no gate table for bench kind {kind!r}")
    return tuple(gate.evaluate(bench, tolerance) for gate in GATES[kind])


@dataclasses.dataclass(frozen=True)
class BenchCheck:
    """Gate results for one bench file."""

    path: str
    kind: str
    results: tuple[GateResult, ...]

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.results)

    @property
    def failures(self) -> tuple[GateResult, ...]:
        return tuple(r for r in self.results if not r.ok)

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "kind": self.kind,
            "ok": self.ok,
            "results": [result.to_dict() for result in self.results],
        }


def check(paths: Sequence[PathLike], tolerance: float = 0.0
          ) -> tuple[BenchCheck, ...]:
    """Evaluate the gate table over a set of bench files.

    Unreadable JSON and unknown kinds raise :class:`SentinelError`;
    failed gates come back as ``ok=False`` results for the caller to
    report (the CLI names each culprit metric and exits non-zero).
    """
    checks = []
    for path in paths:
        kind = bench_kind(path)
        try:
            bench = json.loads(
                pathlib.Path(path).read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            raise SentinelError(f"{path}: unreadable bench JSON ({exc})") \
                from exc
        checks.append(BenchCheck(
            path=str(path), kind=kind,
            results=evaluate(kind, bench, tolerance),
        ))
    return tuple(checks)


# ------------------------------------------------------- run trajectory


@dataclasses.dataclass(frozen=True)
class TrajectoryFinding:
    """A cross-run regression: the latest run fell off its own history."""

    fingerprint: str
    metric: str  # "wall_s" or "hit_rate"
    latest: float
    baseline: float  # median of the predecessors
    ratio: float
    run_id: str

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


def trajectory(registry: RunRegistry, *, tolerance: float = 0.25,
               min_history: int = 2) -> tuple[TrajectoryFinding, ...]:
    """Compare each fingerprint's latest run against its own history.

    For every fingerprint with at least ``min_history`` earlier runs,
    the latest run's total wall time must stay within ``1 + tolerance``
    of the median of its predecessors, and its cache hit rate must not
    drop below ``median - tolerance``.  Runs without the measurement
    (untraced, uncached) are skipped — absence of telemetry is not a
    regression.
    """
    findings: list[TrajectoryFinding] = []
    for fingerprint, runs in registry.by_fingerprint().items():
        if len(runs) < min_history + 1:
            continue
        *history, latest = runs
        findings.extend(_judge(fingerprint, history, latest, tolerance))
    return tuple(findings)


def _judge(fingerprint: str, history: Sequence[RegisteredRun],
           latest: RegisteredRun, tolerance: float
           ) -> list[TrajectoryFinding]:
    findings = []
    walls = [run.wall_s for run in history if run.wall_s is not None]
    if walls and latest.wall_s is not None:
        baseline = statistics.median(walls)
        if baseline > 0 and latest.wall_s > baseline * (1.0 + tolerance):
            findings.append(TrajectoryFinding(
                fingerprint=fingerprint, metric="wall_s",
                latest=round(latest.wall_s, 6),
                baseline=round(baseline, 6),
                ratio=round(latest.wall_s / baseline, 3),
                run_id=latest.id,
            ))
    rates = [run.hit_rate for run in history if run.hit_rate is not None]
    if rates and latest.hit_rate is not None:
        baseline = statistics.median(rates)
        if latest.hit_rate < baseline - tolerance:
            findings.append(TrajectoryFinding(
                fingerprint=fingerprint, metric="hit_rate",
                latest=round(latest.hit_rate, 6),
                baseline=round(baseline, 6),
                ratio=round(latest.hit_rate / baseline, 3) if baseline
                else 0.0,
                run_id=latest.id,
            ))
    return findings


__all__ = [
    "GATES",
    "BenchCheck",
    "Gate",
    "GateResult",
    "SentinelError",
    "TrajectoryFinding",
    "bench_kind",
    "check",
    "evaluate",
    "trajectory",
]
