"""The run registry: an append-only, content-addressed manifest journal.

Every long-lived subsystem already emits a :class:`~repro.obs.RunManifest`
— pipeline runs, snapshot series, sweep executions — but the manifests
land next to their datasets and nothing correlates them across runs.
:class:`RunRegistry` gives them one home: a directory holding a single
``journal.jsonl`` to which each recorded manifest is *appended*, keyed
by the BLAKE2b digest of its canonical JSON.  Content addressing makes
recording idempotent (re-recording an identical manifest is a no-op)
and tamper-evident (a rewritten line no longer matches its id).

The query API answers the questions manual archaeology used to:

* :meth:`RunRegistry.runs` — everything, in append order;
* :meth:`RunRegistry.get` — one run by sequence number or id prefix;
* :meth:`RunRegistry.find` — filter by run fingerprint, config slice
  (seed/scale/executor/fault profile), wall time or cache hit rate;
* :func:`diff_manifests` — what changed between run A and run B:
  config knobs, country selection, dataset shape, per-stage wall
  times, cache behavior and library/tool versions.

Journal format (one JSON object per line, documented in API.md)::

    {"id": "<blake2b-128 hex of canonical manifest JSON>",
     "seq": <0-based append position>,
     "recorded_unix": <wall-clock seconds, provenance only>,
     "manifest": {...RunManifest.to_dict()...}}

``recorded_unix`` is a timestamp, not a duration — the monotonic-clock
rule applies to measured deltas, and nothing ever subtracts two
``recorded_unix`` values to time anything.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import logging
import pathlib
import threading
import time
from typing import TYPE_CHECKING, Iterable, Optional, Union

from repro.obs.events import EventLog
from repro.obs.manifest import RunManifest

if TYPE_CHECKING:  # pragma: no cover - typing only
    pass

PathLike = Union[str, pathlib.Path]

logger = logging.getLogger(__name__)

#: File name of the append-only journal inside a registry directory.
JOURNAL_NAME = "journal.jsonl"

#: Version marker written into every journal record.
REGISTRY_FORMAT_VERSION = 1


class RegistryError(ValueError):
    """A registry directory or reference that cannot be used."""


def manifest_id(manifest: RunManifest) -> str:
    """Content address of a manifest: BLAKE2b-128 over canonical JSON."""
    canonical = json.dumps(manifest.to_dict(), sort_keys=True,
                           separators=(",", ":"))
    return hashlib.blake2b(canonical.encode("utf-8"),
                           digest_size=16).hexdigest()


@dataclasses.dataclass(frozen=True)
class RegisteredRun:
    """One journal entry: a manifest plus its registry identity."""

    #: Content address (32 hex chars) of the manifest.
    id: str
    #: 0-based append position in the journal.
    seq: int
    #: Wall-clock seconds when the run was recorded (provenance only).
    recorded_unix: float
    manifest: RunManifest

    @property
    def fingerprint(self) -> str:
        return self.manifest.fingerprint

    @property
    def wall_s(self) -> Optional[float]:
        """Total run wall seconds, when the run was traced (else None)."""
        return self.manifest.stage_seconds.get("total")

    @property
    def hit_rate(self) -> Optional[float]:
        """Cache hit rate of the run, or None when caching was off."""
        cache = self.manifest.cache
        if cache is None:
            return None
        return cache.get("hit_rate")

    def to_dict(self) -> dict:
        return {
            "id": self.id,
            "seq": self.seq,
            "recorded_unix": self.recorded_unix,
            "manifest": self.manifest.to_dict(),
        }


class RunRegistry:
    """Append-only journal of run manifests under one directory."""

    def __init__(self, directory: PathLike,
                 events: Optional[EventLog] = None) -> None:
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.journal_path = self.directory / JOURNAL_NAME
        self.events = events if events is not None else EventLog()
        self._lock = threading.Lock()
        self._runs: list[RegisteredRun] = []
        self._by_id: dict[str, RegisteredRun] = {}
        self._load()

    # ---------------------------------------------------------- loading

    def _load(self) -> None:
        if not self.journal_path.exists():
            return
        raw = self.journal_path.read_text(encoding="utf-8")
        complete = raw.split("\n")
        if complete and complete[-1] == "":
            complete.pop()  # trailing newline, the normal case
        elif complete:
            # A final fragment without its newline is a torn append from
            # a crashed writer: recover everything before it.
            complete.pop()
            logger.warning(
                "%s: ignoring torn final journal line (interrupted append)",
                self.journal_path,
            )
        for number, line in enumerate(complete, start=1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
                run = RegisteredRun(
                    id=record["id"],
                    seq=record["seq"],
                    recorded_unix=record.get("recorded_unix", 0.0),
                    manifest=RunManifest.from_dict(record["manifest"]),
                )
            except (KeyError, TypeError, ValueError) as exc:
                raise RegistryError(
                    f"{self.journal_path}: line {number} is not a valid "
                    f"journal record ({exc})"
                ) from exc
            if run.id != manifest_id(run.manifest):
                raise RegistryError(
                    f"{self.journal_path}: line {number} id {run.id} does "
                    f"not match its manifest content — journal corrupted "
                    f"or edited"
                )
            if run.seq != len(self._runs):
                raise RegistryError(
                    f"{self.journal_path}: line {number} has seq "
                    f"{run.seq}, expected {len(self._runs)} — the journal "
                    f"is append-only"
                )
            self._runs.append(run)
            self._by_id[run.id] = run

    # --------------------------------------------------------- recording

    def record(self, manifest: RunManifest) -> tuple[RegisteredRun, bool]:
        """Append a manifest; returns ``(run, created)``.

        Idempotent: a manifest whose content address is already in the
        journal returns the existing entry with ``created=False`` and
        writes nothing.
        """
        run_id = manifest_id(manifest)
        with self._lock:
            existing = self._by_id.get(run_id)
            if existing is not None:
                return existing, False
            run = RegisteredRun(
                id=run_id,
                seq=len(self._runs),
                recorded_unix=round(time.time(), 3),
                manifest=manifest,
            )
            line = json.dumps(run.to_dict(), sort_keys=True,
                              separators=(",", ":"))
            with open(self.journal_path, "a", encoding="utf-8") as handle:
                handle.write(line + "\n")
            self._runs.append(run)
            self._by_id[run_id] = run
        self.events.emit("run.recorded", id=run_id, seq=run.seq,
                         fingerprint=manifest.fingerprint)
        return run, True

    # ----------------------------------------------------------- queries

    def __len__(self) -> int:
        with self._lock:
            return len(self._runs)

    def runs(self) -> tuple[RegisteredRun, ...]:
        """Every recorded run, in append order."""
        with self._lock:
            return tuple(self._runs)

    def get(self, ref: str) -> RegisteredRun:
        """Resolve a run by sequence number, full id, or id prefix.

        Prefixes must be unambiguous (>= 4 hex chars); anything that
        does not resolve raises :class:`RegistryError` naming the
        candidates when there are several.
        """
        runs = self.runs()
        text = str(ref).strip()
        if text.isdigit():
            seq = int(text)
            if 0 <= seq < len(runs):
                return runs[seq]
            raise RegistryError(
                f"no run #{seq} in {self.directory} "
                f"({len(runs)} runs recorded)"
            )
        if len(text) < 4:
            raise RegistryError(
                f"run reference {text!r} is too short; use a sequence "
                f"number or at least 4 hex characters of the id"
            )
        matches = [run for run in runs if run.id.startswith(text)]
        if len(matches) == 1:
            return matches[0]
        if not matches:
            raise RegistryError(
                f"no run with id prefix {text!r} in {self.directory}"
            )
        raise RegistryError(
            f"run id prefix {text!r} is ambiguous: "
            + ", ".join(f"#{run.seq} {run.id}" for run in matches)
        )

    def find(
        self,
        *,
        fingerprint: Optional[str] = None,
        seed: Optional[int] = None,
        scale: Optional[float] = None,
        executor: Optional[str] = None,
        fault_profile: Optional[str] = None,
        min_wall_s: Optional[float] = None,
        max_wall_s: Optional[float] = None,
        min_hit_rate: Optional[float] = None,
        max_hit_rate: Optional[float] = None,
    ) -> tuple[RegisteredRun, ...]:
        """Filter runs by fingerprint, config slice, wall time, hit rate.

        Wall-time and hit-rate filters only match runs that *have* the
        measurement (an untraced run has no wall time; an uncached run
        has no hit rate).
        """
        selected: list[RegisteredRun] = []
        for run in self.runs():
            manifest = run.manifest
            if fingerprint is not None and \
                    not manifest.fingerprint.startswith(fingerprint):
                continue
            if seed is not None and manifest.seed != seed:
                continue
            if scale is not None and manifest.scale != scale:
                continue
            if executor is not None and manifest.executor != executor:
                continue
            if fault_profile is not None and \
                    manifest.fault_profile != fault_profile:
                continue
            if min_wall_s is not None or max_wall_s is not None:
                wall = run.wall_s
                if wall is None:
                    continue
                if min_wall_s is not None and wall < min_wall_s:
                    continue
                if max_wall_s is not None and wall > max_wall_s:
                    continue
            if min_hit_rate is not None or max_hit_rate is not None:
                rate = run.hit_rate
                if rate is None:
                    continue
                if min_hit_rate is not None and rate < min_hit_rate:
                    continue
                if max_hit_rate is not None and rate > max_hit_rate:
                    continue
            selected.append(run)
        return tuple(selected)

    def by_fingerprint(self) -> dict[str, tuple[RegisteredRun, ...]]:
        """Runs grouped by run fingerprint, groups in first-seen order."""
        groups: dict[str, list[RegisteredRun]] = {}
        for run in self.runs():
            groups.setdefault(run.fingerprint, []).append(run)
        return {fp: tuple(runs) for fp, runs in groups.items()}


# ------------------------------------------------------------------ diff


def _scalar_changes(a: RunManifest, b: RunManifest,
                    fields: Iterable[str]) -> dict[str, dict]:
    changes = {}
    for name in fields:
        old, new = getattr(a, name), getattr(b, name)
        if old != new:
            changes[name] = {"a": old, "b": new}
    return changes


def _mapping_changes(a: dict, b: dict, *, numeric: bool = False
                     ) -> dict[str, dict]:
    changes: dict[str, dict] = {}
    for key in sorted(set(a) | set(b)):
        old, new = a.get(key), b.get(key)
        if old == new:
            continue
        entry: dict = {"a": old, "b": new}
        if numeric and isinstance(old, (int, float)) \
                and isinstance(new, (int, float)):
            entry["delta"] = round(new - old, 6)
        changes[key] = entry
    return changes


#: Config-level manifest fields compared scalar-wise by the diff.
CONFIG_FIELDS = (
    "seed", "scale", "executor", "workers", "max_depth",
    "fault_rate", "fault_profile", "fault_seed",
)


@dataclasses.dataclass(frozen=True)
class ManifestDiff:
    """What changed between two runs, field by field."""

    a_fingerprint: str
    b_fingerprint: str
    #: Changed config knobs: ``{"seed": {"a": 7, "b": 8}}``.
    config: dict[str, dict]
    #: Country selection drift.
    countries_added: tuple[str, ...]
    countries_removed: tuple[str, ...]
    #: Dataset-shape drift (Table 3 counts), with numeric deltas.
    summary: dict[str, dict]
    #: Per-stage wall-time drift, with deltas (observability metadata —
    #: expected to vary between hosts; the diff reports, never judges).
    stage_seconds: dict[str, dict]
    #: Cache-behavior drift (hits/misses/hit_rate/bytes...).
    cache: dict[str, dict]
    #: Library and tool version drift (includes ``tool_version``).
    versions: dict[str, dict]

    @property
    def same_inputs(self) -> bool:
        """True when both runs measured the same content-addressed
        inputs (equal fingerprints) — any drift is then environmental."""
        return self.a_fingerprint == self.b_fingerprint

    @property
    def changed_fields(self) -> tuple[str, ...]:
        """Names of every changed section, for quick display."""
        names: list[str] = []
        names.extend(f"config.{key}" for key in self.config)
        if self.countries_added or self.countries_removed:
            names.append("countries")
        names.extend(f"summary.{key}" for key in self.summary)
        names.extend(f"stage_seconds.{key}" for key in self.stage_seconds)
        names.extend(f"cache.{key}" for key in self.cache)
        names.extend(f"versions.{key}" for key in self.versions)
        return tuple(names)

    def to_dict(self) -> dict:
        return {
            "a_fingerprint": self.a_fingerprint,
            "b_fingerprint": self.b_fingerprint,
            "same_inputs": self.same_inputs,
            "config": self.config,
            "countries_added": list(self.countries_added),
            "countries_removed": list(self.countries_removed),
            "summary": self.summary,
            "stage_seconds": self.stage_seconds,
            "cache": self.cache,
            "versions": self.versions,
        }


def diff_manifests(a: RunManifest, b: RunManifest) -> ManifestDiff:
    """Structured comparison of two run manifests (A -> B)."""
    a_countries, b_countries = set(a.countries), set(b.countries)
    versions_a = dict(a.versions)
    versions_a["tool_version"] = a.tool_version
    versions_b = dict(b.versions)
    versions_b["tool_version"] = b.tool_version
    return ManifestDiff(
        a_fingerprint=a.fingerprint,
        b_fingerprint=b.fingerprint,
        config=_scalar_changes(a, b, CONFIG_FIELDS),
        countries_added=tuple(sorted(b_countries - a_countries)),
        countries_removed=tuple(sorted(a_countries - b_countries)),
        summary=_mapping_changes(a.summary, b.summary, numeric=True),
        stage_seconds=_mapping_changes(a.stage_seconds, b.stage_seconds,
                                       numeric=True),
        cache=_mapping_changes(a.cache or {}, b.cache or {}, numeric=True),
        versions=_mapping_changes(versions_a, versions_b),
    )


def diff_runs(a: RegisteredRun, b: RegisteredRun) -> ManifestDiff:
    """:func:`diff_manifests` over two registry entries."""
    return diff_manifests(a.manifest, b.manifest)


__all__ = [
    "JOURNAL_NAME",
    "REGISTRY_FORMAT_VERSION",
    "CONFIG_FIELDS",
    "ManifestDiff",
    "RegisteredRun",
    "RegistryError",
    "RunRegistry",
    "diff_manifests",
    "diff_runs",
    "manifest_id",
]
