"""Per-country scan scopes and the deterministic geolocation funnel.

One :class:`ScanObs` accompanies one country through phase 1 exactly
like a :class:`~repro.faults.session.FaultSession` does: it is created
by the pipeline when observability is on, records that country's spans
(``scan`` -> ``directory``/``crawl``/``filter``/``resolve``/``geolocate``
-> per-geolocation-step) and metric deltas, and is absorbed by the
driver's :class:`~repro.obs.Observability` when the scan returns.
Scopes are picklable, so process shards ship them back with their
partials; every metric a scope records is a pure function of
``(world, country)``, which is what keeps the merged registry
identical across executors.

The geolocation-step **funnel** is the one family of metrics that must
*not* be recorded where the work happens: the geolocator's shared
memos mean whichever shard first observes an address pays for its
computation, so computation-site counters would vary with thread
scheduling.  Instead every verdict carries the step that resolved it
(:attr:`~repro.core.geolocation.GeoVerdict.source`, a pure function of
the world) and :func:`funnel_metrics` replays the per-country verdict
sequences on the driver in canonical order, counting each address once
— the exact first-appearance rule ``merge_validation`` already uses —
so the funnel is bit-identical no matter how the scan was sharded.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator, Sequence

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Span

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.exec.partials import CountryPartial

#: Funnel buckets, in Section 3.5 pipeline order.  ``GeoVerdict.source``
#: values map onto the middle four; excluded addresses split into the
#: conflict and unresolved tails.
FUNNEL_STEPS = ("active_probing", "hoiho", "ipmap", "single_radius")


class ScanObs:
    """Spans and metric deltas for one country's phase-1 scan.

    Single-threaded by construction (one scope per scan, one scan per
    worker at a time), so span nesting is a plain stack.  The scope is
    finished and frozen before it is absorbed or pickled.
    """

    def __init__(self, country: str) -> None:
        self.country = country
        self.metrics = MetricsRegistry()
        self.root = Span(name="scan", start_s=time.perf_counter(),
                         tags={"country": country})
        self._stack = [self.root]

    @contextmanager
    def span(self, name: str, **tags) -> Iterator[Span]:
        """Open a stage span nested under the current one."""
        span = self._stack[-1].child(name, **tags)
        self._stack.append(span)
        try:
            yield span
        finally:
            span.finish()
            self._stack.pop()

    def finish(self) -> "ScanObs":
        """Close the scan span (idempotent)."""
        self.root.finish()
        return self

    @property
    def duration_s(self) -> float:
        return self.root.duration_s

    # The span stack is scan-local scratch; a shipped scope is always
    # finished, so only the durable pieces cross process boundaries.
    def __getstate__(self) -> tuple:
        return (self.country, self.metrics, self.finish().root)

    def __setstate__(self, state: tuple) -> None:
        self.country, self.metrics, self.root = state
        self._stack = [self.root]

    def geolocation_steps(self, step_seconds: dict[str, float],
                          step_counts: dict[str, int]) -> None:
        """Emit per-geolocation-step child spans under the current span.

        Call inside the ``geolocate`` span.  The buckets come from
        timing each ``locate`` call and attributing it to the step
        named by the verdict's ``source`` (``None`` becomes
        ``unresolved``).  Bucket spans are laid end to end from the
        geolocate span's start so the sum of their extents equals the
        measured time — readable in ``about://tracing`` without
        pretending we know each lookup's true interleaving.
        """
        geolocate = self._stack[-1]
        cursor = geolocate.start_s
        for step in (*FUNNEL_STEPS, "unresolved"):
            seconds = step_seconds.get(step, 0.0)
            count = step_counts.get(step, 0)
            if count == 0:
                continue
            span = Span(name=f"geo.{step}", start_s=cursor,
                        end_s=cursor + seconds, tags={"addresses": count})
            geolocate.children.append(span)
            cursor += seconds

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ScanObs {self.country} {self.duration_s:.3f}s>"


def funnel_metrics(partials: Sequence["CountryPartial"],
                   metrics: MetricsRegistry) -> None:
    """Tally the Section 3.5 funnel from per-country verdict sequences.

    ``partials`` must be in canonical country order; each address
    counts once, at its first appearance in that traversal (the
    ``merge_validation`` rule), so the counters are executor-independent.
    """
    counted: set[int] = set()
    for partial in partials:
        for verdict in partial.verdicts:
            if verdict.address in counted:
                continue
            counted.add(verdict.address)
            metrics.count("geo.addresses")
            if verdict.claimed_country is not None:
                metrics.count("geo.funnel.ipinfo_claimed")
            if verdict.anycast:
                metrics.count("geo.funnel.anycast")
                if verdict.country is not None:
                    metrics.count("geo.funnel.anycast_in_country")
                continue
            source = verdict.source
            if source in FUNNEL_STEPS and not verdict.conflict:
                metrics.count(f"geo.funnel.{source}")
            if verdict.conflict:
                metrics.count("geo.funnel.conflict")
            if verdict.country is None:
                metrics.count("geo.funnel.excluded")


__all__ = ["FUNNEL_STEPS", "ScanObs", "funnel_metrics"]
