"""Deterministic tracing, metrics and run manifests for the pipeline.

``repro.obs`` is the observability layer: pass an
:class:`Observability` to :class:`~repro.core.pipeline.Pipeline` and a
run records a nested span tree (``pipeline.run`` -> per-country
``scan`` -> ``crawl``/``filter``/``resolve``/``geolocate`` ->
per-geolocation-step), a merged :class:`MetricsRegistry` (cache,
faults, crawl/filter tallies, the Section 3.5 geolocation funnel) and
enough context for a :class:`RunManifest` that makes any exported
artifact traceable to the run that produced it.

The layer is **zero-perturbation** by design: a run with observability
on produces a dataset and report byte-identical to one with it off,
under every executor, faulted or not, cold or warm cache.  The
instrumentation only reads ``time.perf_counter`` and counts values the
pipeline already computed — it never draws from an RNG, touches the
fault layer's simulated clock, or feeds a measurement back into
pipeline state.  ``tests/obs/test_zero_perturbation.py`` enforces this
across the whole executor/fault/cache matrix.

Per-worker metric shards merge on the driver as commutative monoids
(:meth:`MetricsRegistry.merge`), the same algebra as the pipeline's
footprint/validation/fault reductions, so thread and process runs
yield deterministic merged metrics.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import TYPE_CHECKING, Callable, Iterator, Optional, Sequence

from repro.obs.events import Event, EventLog
from repro.obs.manifest import (
    MANIFEST_FORMAT_VERSION,
    SUPPORTED_MANIFEST_FORMATS,
    RunManifest,
    manifest_path_for,
    tool_version,
)
from repro.obs.metrics import (
    MetricsRegistry,
    ThreadSafeMetricsRegistry,
    merge_metrics,
)
from repro.obs.exposition import PROMETHEUS_CONTENT_TYPE, render_prometheus
from repro.obs.registry import (
    ManifestDiff,
    RegisteredRun,
    RegistryError,
    RunRegistry,
    diff_manifests,
    diff_runs,
)
from repro.obs.scan import FUNNEL_STEPS, ScanObs, funnel_metrics
from repro.obs.trace import TRACE_FORMAT_VERSION, Span, Tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cache import ScanCache
    from repro.exec.partials import CountryPartial
    from repro.faults.report import FaultReport

#: Heartbeat callback: (country, seconds, completed, expected-or-None).
ProgressCallback = Callable[[str, float, int, Optional[int]], None]


class Observability:
    """One run's tracer, metrics registry and scan-scope collector.

    The driver's pipeline owns one instance per observed run.  Worker
    processes get their own ``capture_only`` instance: it buffers each
    scan's scope instead of merging it, so the shard can ship scopes
    back with its partials and the *driver* absorbs them in submission
    order — keeping long-lived worker pools from accumulating state.
    """

    def __init__(
        self,
        progress: Optional[ProgressCallback] = None,
        capture_only: bool = False,
    ) -> None:
        self.tracer = Tracer()
        self.metrics = MetricsRegistry()
        self.progress = progress
        self.capture_only = capture_only
        #: Number of scans the current run will perform (set by the
        #: pipeline before the fan-out; feeds the progress heartbeat).
        self.expected_scans: Optional[int] = None
        self._lock = threading.Lock()
        self._absorbed = 0
        #: Span under which absorbed scan scopes nest (the run's scan
        #: phase span while a run is active).
        self._scan_parent: Optional[Span] = None
        #: Captured scopes awaiting pickup (capture-only mode).
        self._pending: list[ScanObs] = []

    # -------------------------------------------------------- scan scopes

    def scan_scope(self, country: str) -> ScanObs:
        """Open the per-country scope one scan records into."""
        return ScanObs(country)

    def absorb_scan(self, scope: ScanObs) -> None:
        """Fold one finished scan scope into the run's trace + metrics.

        Thread-safe; metric absorption is a commutative merge, so the
        registry is deterministic no matter which shard finishes first.
        In capture-only mode the scope is buffered for :meth:`take_scans`
        instead.
        """
        scope.finish()
        if self.capture_only:
            with self._lock:
                self._pending.append(scope)
            return
        with self._lock:
            self.metrics.merge_in(scope.metrics)
            parent = self._scan_parent
            if parent is not None:
                parent.children.append(scope.root)
            else:
                self.tracer.roots.append(scope.root)
            self._absorbed += 1
            completed = self._absorbed
        if self.progress is not None:
            self.progress(scope.country, scope.duration_s, completed,
                          self.expected_scans)

    def take_scans(self) -> list[ScanObs]:
        """Drain buffered scopes (capture-only workers)."""
        with self._lock:
            pending, self._pending = self._pending, []
        return pending

    # --------------------------------------------------------- run phases

    @contextmanager
    def run_scope(self, executor: str, countries: int) -> Iterator[Span]:
        """The root ``pipeline.run`` span of one driver-side run."""
        self.expected_scans = countries
        with self.tracer.span("pipeline.run", executor=executor,
                              countries=countries) as span:
            try:
                yield span
            finally:
                self._scan_parent = None
                self.expected_scans = None

    @contextmanager
    def phase(self, name: str, **tags) -> Iterator[Span]:
        """One driver-side stage span (``scan``/``merge``/``finalize``).

        The ``scan`` phase additionally becomes the graft point for
        absorbed per-country scopes while it is open.
        """
        with self.tracer.span(name, **tags) as span:
            if name == "scan":
                self._scan_parent = span
            try:
                yield span
            finally:
                if name == "scan":
                    self._scan_parent = None
                    # Scopes were grafted in completion order (threads)
                    # or submission order (serial/processes); canonical
                    # country order keeps the tree shape deterministic.
                    span.children.sort(
                        key=lambda child: str(child.tags.get("country", ""))
                    )

    # ----------------------------------------------------- driver metrics

    def record_partials(self, partials: Sequence["CountryPartial"]) -> None:
        """Metrics derivable from the partials themselves.

        These cover cache hits too (a warm start runs no scan scopes),
        and replay in canonical order, so they are executor- and
        cache-state-independent.
        """
        metrics = self.metrics
        for partial in partials:
            metrics.count("filter.discarded_urls", partial.discarded_url_count)
            metrics.count("resolve.unresolved_hostnames",
                          len(partial.unresolved_hostnames))
            metrics.count("directory.landing_urls", partial.landing_count)
            metrics.observe_all("crawl.depth", partial.depth_histogram)
        funnel_metrics(partials, metrics)

    def record_faults(self, report: "FaultReport") -> None:
        """Fold the run's merged fault accounting into the metrics."""
        total = report.total()
        if total.injected == 0:
            return
        metrics = self.metrics
        metrics.count("faults.injected", total.injected)
        metrics.count("faults.retried", total.retried)
        metrics.count("faults.recovered", total.recovered)
        metrics.count("faults.degraded", total.degraded)
        metrics.count("faults.backoff_ms", total.backoff_ms)

    def record_cache(self, cache: "ScanCache") -> None:
        """Fold the run's cache accounting into the metrics."""
        stats = cache.stats
        metrics = self.metrics
        metrics.count("cache.hits", stats.hits)
        metrics.count("cache.misses", stats.misses)
        metrics.count("cache.stores", stats.stores)
        metrics.count("cache.evicted", stats.evicted)
        metrics.count("cache.bytes_read", stats.bytes_read)
        metrics.count("cache.bytes_written", stats.bytes_written)
        metrics.count("cache.time_saved_s", round(stats.time_saved_s, 6))


__all__ = [
    "FUNNEL_STEPS",
    "MANIFEST_FORMAT_VERSION",
    "PROMETHEUS_CONTENT_TYPE",
    "SUPPORTED_MANIFEST_FORMATS",
    "TRACE_FORMAT_VERSION",
    "Event",
    "EventLog",
    "ManifestDiff",
    "MetricsRegistry",
    "Observability",
    "RegisteredRun",
    "RegistryError",
    "RunManifest",
    "RunRegistry",
    "ScanObs",
    "Span",
    "ThreadSafeMetricsRegistry",
    "Tracer",
    "diff_manifests",
    "diff_runs",
    "funnel_metrics",
    "manifest_path_for",
    "merge_metrics",
    "render_prometheus",
    "tool_version",
]
