"""Pluggable execution layer for the measurement pipeline.

``Pipeline.run(countries, executor=...)`` accepts any
:class:`~repro.exec.base.ExecutionStrategy`:

* :class:`SerialExecutor` — one country after another (default);
* :class:`ThreadExecutor` — a thread pool sharing the driver's world;
* :class:`ProcessExecutor` — a process pool whose workers rebuild the
  world deterministically from its ``WorldConfig``.

All strategies produce **bit-identical** datasets: per-country work is
independent, and the two cross-country reductions (provider footprints,
validation stats) are merged with order-independent functions in
:mod:`repro.exec.partials`.
"""

from typing import Optional

from repro.exec.base import ExecutionStrategy
from repro.exec.partials import (
    CountryPartial,
    HostAnnotation,
    merge_faults,
    merge_footprints,
    merge_validation,
)
from repro.exec.processes import ProcessExecutor
from repro.exec.serial import SerialExecutor
from repro.exec.threads import ThreadExecutor

#: CLI names of the available strategies.
EXECUTOR_NAMES = ("serial", "threads", "processes")


def make_executor(
    name: str, workers: Optional[int] = None
) -> ExecutionStrategy:
    """Build a strategy from its CLI name (``--executor``/``--workers``)."""
    if name == "serial":
        return SerialExecutor()
    if name == "threads":
        return ThreadExecutor(workers=workers)
    if name == "processes":
        return ProcessExecutor(workers=workers)
    raise ValueError(
        f"unknown executor {name!r}; expected one of {', '.join(EXECUTOR_NAMES)}"
    )


__all__ = [
    "ExecutionStrategy",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "CountryPartial",
    "HostAnnotation",
    "merge_faults",
    "merge_footprints",
    "merge_validation",
    "EXECUTOR_NAMES",
    "make_executor",
]
