"""The default single-worker strategy: one country after another."""

from __future__ import annotations

import logging
from typing import TYPE_CHECKING, Sequence

from repro.exec.base import ExecutionStrategy
from repro.exec.partials import CountryPartial

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.pipeline import Pipeline

logger = logging.getLogger(__name__)


class SerialExecutor(ExecutionStrategy):
    """Runs every country inline on the calling thread."""

    name = "serial"

    def scan(
        self, pipeline: "Pipeline", codes: Sequence[str]
    ) -> list[CountryPartial]:
        logger.debug("scanning %d countries inline", len(codes))
        return [pipeline.scan_partial(code) for code in codes]


__all__ = ["SerialExecutor"]
