"""Picklable per-country partial results and their deterministic merges.

The pipeline's per-country phase-1 work (crawl, filter, map, geolocate)
has no cross-country data dependency, so executors run it in any order
and on any number of workers.  Two reductions *do* cross countries:

* the :class:`~repro.core.classification.ProviderFootprint` every AS
  accumulates (the paper's Global-provider definition needs the full
  footprint before categories can be assigned), and
* the Table 4 :class:`~repro.core.geolocation.ValidationStats`, which
  count each server address exactly once.

Both are merged here with explicitly order-independent functions: the
footprint is a set union, and the validation tally is *replayed* in
canonical country order from the per-country verdict sequences, so the
result is bit-identical to a serial run no matter how the phase-1 work
was sharded or in which order shards completed.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Iterable, Optional, Sequence

from repro.core.classification import ProviderFootprint
from repro.core.geolocation import GeoVerdict, ValidationMethod, ValidationStats
from repro.core.urlfilter import FilterVia
from repro.faults.report import FaultReport, merge_fault_reports


@dataclasses.dataclass(frozen=True, slots=True)
class HostAnnotation:
    """Per-hostname phase-1 facts (everything but the hosting category)."""

    address: int
    asn: int
    organization: str
    registered_country: str
    gov_operated: bool
    server_country: Optional[str]
    anycast: bool
    validation: ValidationMethod


#: Compact per-URL observation: (url, hostname, size_bytes, via, depth).
UrlObservation = tuple[str, str, int, FilterVia, int]


class CountryPartial:
    """Everything phase-1 learned about one country.

    Picklable, so process workers can ship it back to the driver; small,
    because URLs are stored as tuples and per-host facts are factored
    out of the per-URL rows.

    The *bulk* of a partial — ``hosts`` and ``urls``, everything record
    assembly needs and nothing the driver's merges touch — may be given
    directly or through a deferred ``bulk`` loader returning the
    ``(hosts, urls)`` pair.  The scan cache uses the latter: a warm
    start reads and integrity-checks every entry up front but unpickles
    the bulk only when (and if) the records are materialized.  Loaders
    must be pure, so a deferred partial equals its eager twin no matter
    when the bulk is first touched.
    """

    __slots__ = (
        "country", "landing_count", "discarded_url_count",
        "unresolved_hostnames", "depth_histogram", "verdicts",
        "footprint", "faults", "_hosts", "_urls", "_load_bulk",
    )

    def __init__(
        self,
        country: str,
        landing_count: int,
        discarded_url_count: int,
        unresolved_hostnames: list[str],
        depth_histogram: dict[int, int],
        hosts: Optional[dict[str, HostAnnotation]] = None,
        urls: Optional[list[UrlObservation]] = None,
        verdicts: tuple[GeoVerdict, ...] = (),
        footprint: Optional[ProviderFootprint] = None,
        faults: Optional[FaultReport] = None,
        bulk: Optional[Callable[[], tuple[dict, list]]] = None,
    ) -> None:
        if (bulk is None) == (hosts is None):
            raise ValueError("pass either hosts/urls or a bulk loader")
        self.country = country
        self.landing_count = landing_count
        self.discarded_url_count = discarded_url_count
        self.unresolved_hostnames = unresolved_hostnames
        #: URL counts per discovery depth.
        self.depth_histogram = depth_histogram
        #: Geolocation verdicts in deterministic (sorted-hostname) order,
        #: one per resolved hostname — the replay input for the stats merge.
        self.verdicts = verdicts
        #: Continental footprint observed by this country alone.
        self.footprint = footprint if footprint is not None else ProviderFootprint()
        #: Fault accounting for this country's scan (empty when fault
        #: injection is disabled); merged on the driver with
        #: :func:`merge_faults` — a commutative monoid, like the footprint.
        self.faults = faults if faults is not None else FaultReport()
        self._hosts = hosts
        self._urls = urls
        self._load_bulk = bulk

    def _materialize(self) -> None:
        hosts, urls = self._load_bulk()
        self._hosts = hosts
        self._urls = urls
        self._load_bulk = None

    @property
    def hosts(self) -> dict[str, HostAnnotation]:
        """Phase-1 annotations per confirmed government hostname."""
        if self._hosts is None:
            self._materialize()
        return self._hosts

    @property
    def urls(self) -> list[UrlObservation]:
        """Accepted URLs, in archive order."""
        if self._urls is None:
            self._materialize()
        return self._urls

    # Pickling materializes the bulk: process workers and the cache
    # always ship complete partials.
    def __getstate__(self) -> tuple:
        return (
            self.country, self.landing_count, self.discarded_url_count,
            self.unresolved_hostnames, self.depth_histogram, self.hosts,
            self.urls, self.verdicts, self.footprint, self.faults,
        )

    def __setstate__(self, state: tuple) -> None:
        (self.country, self.landing_count, self.discarded_url_count,
         self.unresolved_hostnames, self.depth_histogram, self._hosts,
         self._urls, self.verdicts, self.footprint, self.faults) = state
        self._load_bulk = None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CountryPartial):
            return NotImplemented
        return self.__getstate__() == other.__getstate__()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        bulk = (
            "bulk deferred" if self._hosts is None
            else f"{len(self._hosts)} hosts, {len(self._urls)} urls"
        )
        return f"<CountryPartial {self.country}: {bulk}>"


def merge_faults(partials: Iterable[CountryPartial]) -> FaultReport:
    """Union of the per-country fault reports (order-independent)."""
    return merge_fault_reports(partial.faults for partial in partials)


def merge_footprints(partials: Iterable[CountryPartial]) -> ProviderFootprint:
    """Union of the per-country footprints (order-independent)."""
    merged = ProviderFootprint()
    for partial in partials:
        merged = merged.merge(partial.footprint)
    return merged


def merge_validation(partials: Sequence[CountryPartial]) -> ValidationStats:
    """Replay the Table 4 tally over per-country verdict sequences.

    ``partials`` must be in canonical country order (the order the
    countries were submitted, which is also the order a serial run
    processes them).  Each address is counted once, at its first
    appearance in that canonical traversal — exactly the serial
    geolocator's count-on-first-observation rule — so the merged stats
    are identical to a serial run regardless of how the scan phase was
    sharded.  Internally the reduction is a sum of per-country deltas
    via :meth:`ValidationStats.merge`, which is associative with
    identity ``ValidationStats()``.
    """
    counted: set[int] = set()
    total = ValidationStats()
    for partial in partials:
        delta = ValidationStats()
        for verdict in partial.verdicts:
            if verdict.address in counted:
                continue
            counted.add(verdict.address)
            delta.tally(verdict)
        total = total.merge(delta)
    return total


__all__ = [
    "HostAnnotation",
    "UrlObservation",
    "CountryPartial",
    "merge_faults",
    "merge_footprints",
    "merge_validation",
]
