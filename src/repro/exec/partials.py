"""Picklable per-country partial results and their deterministic merges.

The pipeline's per-country phase-1 work (crawl, filter, map, geolocate)
has no cross-country data dependency, so executors run it in any order
and on any number of workers.  Two reductions *do* cross countries:

* the :class:`~repro.core.classification.ProviderFootprint` every AS
  accumulates (the paper's Global-provider definition needs the full
  footprint before categories can be assigned), and
* the Table 4 :class:`~repro.core.geolocation.ValidationStats`, which
  count each server address exactly once.

Both are merged here with explicitly order-independent functions: the
footprint is a set union, and the validation tally is *replayed* in
canonical country order from the per-country verdict sequences, so the
result is bit-identical to a serial run no matter how the phase-1 work
was sharded or in which order shards completed.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Optional, Sequence

from repro.core.classification import ProviderFootprint
from repro.core.geolocation import GeoVerdict, ValidationMethod, ValidationStats
from repro.core.urlfilter import FilterVia
from repro.faults.report import FaultReport, merge_fault_reports


@dataclasses.dataclass(frozen=True, slots=True)
class HostAnnotation:
    """Per-hostname phase-1 facts (everything but the hosting category)."""

    address: int
    asn: int
    organization: str
    registered_country: str
    gov_operated: bool
    server_country: Optional[str]
    anycast: bool
    validation: ValidationMethod


#: Compact per-URL observation: (url, hostname, size_bytes, via, depth).
UrlObservation = tuple[str, str, int, FilterVia, int]


@dataclasses.dataclass
class CountryPartial:
    """Everything phase-1 learned about one country.

    Picklable, so process workers can ship it back to the driver; small,
    because URLs are stored as tuples and per-host facts are factored
    out of the per-URL rows.
    """

    country: str
    landing_count: int
    discarded_url_count: int
    unresolved_hostnames: list[str]
    depth_histogram: dict[int, int]
    #: Phase-1 annotations per confirmed government hostname.
    hosts: dict[str, HostAnnotation]
    #: Accepted URLs, in archive order.
    urls: list[UrlObservation]
    #: Geolocation verdicts in deterministic (sorted-hostname) order,
    #: one per resolved hostname — the replay input for the stats merge.
    verdicts: tuple[GeoVerdict, ...]
    #: Continental footprint observed by this country alone.
    footprint: ProviderFootprint
    #: Fault accounting for this country's scan (empty when fault
    #: injection is disabled); merged on the driver with
    #: :func:`merge_faults` — a commutative monoid, like the footprint.
    faults: FaultReport = dataclasses.field(default_factory=FaultReport)


def merge_faults(partials: Iterable[CountryPartial]) -> FaultReport:
    """Union of the per-country fault reports (order-independent)."""
    return merge_fault_reports(partial.faults for partial in partials)


def merge_footprints(partials: Iterable[CountryPartial]) -> ProviderFootprint:
    """Union of the per-country footprints (order-independent)."""
    merged = ProviderFootprint()
    for partial in partials:
        merged = merged.merge(partial.footprint)
    return merged


def merge_validation(partials: Sequence[CountryPartial]) -> ValidationStats:
    """Replay the Table 4 tally over per-country verdict sequences.

    ``partials`` must be in canonical country order (the order the
    countries were submitted, which is also the order a serial run
    processes them).  Each address is counted once, at its first
    appearance in that canonical traversal — exactly the serial
    geolocator's count-on-first-observation rule — so the merged stats
    are identical to a serial run regardless of how the scan phase was
    sharded.  Internally the reduction is a sum of per-country deltas
    via :meth:`ValidationStats.merge`, which is associative with
    identity ``ValidationStats()``.
    """
    counted: set[int] = set()
    total = ValidationStats()
    for partial in partials:
        delta = ValidationStats()
        for verdict in partial.verdicts:
            if verdict.address in counted:
                continue
            counted.add(verdict.address)
            delta.tally(verdict)
        total = total.merge(delta)
    return total


__all__ = [
    "HostAnnotation",
    "UrlObservation",
    "CountryPartial",
    "merge_faults",
    "merge_footprints",
    "merge_validation",
]
