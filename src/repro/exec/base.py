"""Execution strategies for the measurement pipeline.

A strategy answers two questions: how to fan the per-country phase-1
scans out over workers, and how to run the cheap phase-2 finalization
(categorize + record assembly) once the cross-country barrier has been
resolved.  Strategies never decide *what* to compute — the pipeline
does — and every strategy must return phase-1 partials in submission
order so the driver's merges are deterministic.
"""

from __future__ import annotations

import abc
import time
from typing import TYPE_CHECKING, Callable, Sequence, TypeVar

from repro.exec.partials import CountryPartial

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (pipeline imports us)
    from repro.cache import ScanCache
    from repro.core.pipeline import Pipeline

T = TypeVar("T")


class ExecutionStrategy(abc.ABC):
    """How per-country pipeline work is scheduled onto workers."""

    #: Human-readable strategy name (CLI value, log labels).
    name: str = "abstract"

    @abc.abstractmethod
    def scan(
        self, pipeline: "Pipeline", codes: Sequence[str]
    ) -> list[CountryPartial]:
        """Run phase 1 for every country, returning partials in the
        order of ``codes`` regardless of completion order."""

    def scan_groups(
        self, groups: Sequence[tuple["Pipeline", Sequence[str]]]
    ) -> list[list[CountryPartial]]:
        """Phase 1 for several pipelines' country batches in one wave.

        The scenario sweep deduplicates its (scenario, country) matrix
        down to unique scan tasks grouped by pipeline (one pipeline per
        distinct world config) and dispatches them all here at once, so
        a pooled strategy can fill its workers across group boundaries
        instead of draining between per-scenario batches.  Results come
        back as one list per group, each in that group's submission
        order.  The default runs the groups sequentially through
        :meth:`scan`; pooled strategies override this to submit every
        task up front.
        """
        return [self.scan(pipeline, list(codes)) for pipeline, codes in groups]

    def scan_cached(
        self,
        pipeline: "Pipeline",
        codes: Sequence[str],
        cache: "ScanCache",
    ) -> list[CountryPartial]:
        """Phase 1 with a warm start: serve hits, fan out only misses.

        Hits are loaded from the cache; misses keep their submission
        order and go through :meth:`scan` — whatever worker fabric this
        strategy owns — then get stored back tagged with their *own*
        scan's wall seconds (``Pipeline.scan_seconds``, which every
        strategy records per country), so future hits report the time
        actually saved rather than an even split of the batch.  The
        batch average remains the fallback for strategies that did not
        report a per-country figure.  The combined partials come back
        in the order of ``codes``, so a warm run merges exactly like a
        cold one and the resulting dataset is byte-identical either way.
        """
        keyed = [(code, cache.key_for(pipeline, code)) for code in codes]
        partials: dict[str, CountryPartial] = {}
        misses: list[tuple[str, str]] = []
        for code, key in keyed:
            hit = cache.load(key, code)
            if hit is None:
                misses.append((code, key))
            else:
                partials[code] = hit
        if misses:
            start = time.perf_counter()
            fresh = self.scan(pipeline, [code for code, _ in misses])
            per_country = (time.perf_counter() - start) / len(misses)
            for (code, key), partial in zip(misses, fresh):
                scan_s = pipeline.scan_seconds.get(code.upper(), per_country)
                cache.store(key, partial, scan_s=scan_s)
                partials[code] = partial
        return [partials[code] for code, _ in keyed]

    def finalize(
        self,
        pipeline: "Pipeline",
        partials: Sequence[CountryPartial],
        finalize_one: Callable[[CountryPartial], T],
    ) -> list[T]:
        """Run phase 2 over the partials (default: in order, inline)."""
        return [finalize_one(partial) for partial in partials]

    def close(self) -> None:
        """Release worker resources (no-op for in-process strategies)."""

    def __enter__(self) -> "ExecutionStrategy":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} name={self.name!r}>"


__all__ = ["ExecutionStrategy"]
