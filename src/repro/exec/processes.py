"""Process-pool execution strategy.

Sidesteps the GIL for the CPU-bound scan phase.  Worker processes do
not receive the (unpicklable) synthetic world; each one deterministically
*rebuilds* it from the pipeline's :class:`~repro.datagen.config.WorldConfig`
in the pool initializer — world generation is a pure function of its
config — and keeps a private :class:`~repro.core.pipeline.Pipeline` for
the life of the pool.  Workers return picklable
:class:`~repro.exec.partials.CountryPartial` objects; all cross-country
state (provider footprints, validation stats) is merged on the driver.

The per-worker rebuild is a fixed cost amortized over the worker's
whole shard, so processes win once the scan work dwarfs world
generation (large scales, many countries); below that, threads or
serial execution are faster.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import logging
import os
from typing import TYPE_CHECKING, Callable, Optional, Sequence, TypeVar

from repro.datagen.config import WorldConfig
from repro.exec.base import ExecutionStrategy
from repro.exec.partials import CountryPartial

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.pipeline import Pipeline
    from repro.obs.scan import ScanObs

logger = logging.getLogger(__name__)

T = TypeVar("T")

#: The rebuilt pipeline of the current worker process.
_WORKER_PIPELINE: Optional["Pipeline"] = None

#: One worker task's result: the partial plus its scan's wall seconds
#: and (when the pool observes) the per-country observability scope.
_ScanResult = tuple[CountryPartial, Optional[float], Optional["ScanObs"]]


def _init_worker(config: WorldConfig, max_depth: int, observe: bool) -> None:
    """Pool initializer: rebuild the world and pipeline once per worker.

    ``observe`` gives the worker pipeline a capture-only observability
    sink: scopes are buffered per task and shipped back with the
    partial instead of merging in the worker, so a long-lived pool
    never accumulates spans and the *driver* performs every merge (in
    submission order — the same discipline as the data reductions).
    """
    global _WORKER_PIPELINE
    from repro.core.pipeline import Pipeline
    from repro.datagen.generator import SyntheticWorld

    world = SyntheticWorld.generate(config)
    obs = None
    if observe:
        from repro.obs import Observability

        obs = Observability(capture_only=True)
    _WORKER_PIPELINE = Pipeline(world, max_depth=max_depth, obs=obs)


def _scan_one(code: str) -> _ScanResult:
    """Worker task: phase 1 for a single country."""
    pipeline = _WORKER_PIPELINE
    assert pipeline is not None, "worker initializer did not run"
    partial = pipeline.scan_partial(code)
    scope = None
    if pipeline.obs is not None:
        captured = pipeline.obs.take_scans()
        scope = captured[-1] if captured else None
    return partial, pipeline.scan_seconds.get(code.upper()), scope


#: Sweep workers keep one rebuilt pipeline per distinct world config
#: (hashable key: the config itself plus the crawl depth), so a
#: multi-scenario wave re-generates each world at most once per worker
#: instead of restarting the pool per config.
_SWEEP_PIPELINES: dict[tuple[WorldConfig, int], "Pipeline"] = {}


def _sweep_scan_one(
    config: WorldConfig, max_depth: int, code: str
) -> tuple[CountryPartial, Optional[float]]:
    """Sweep worker task: phase 1 for one (config, country) pair."""
    key = (config, max_depth)
    pipeline = _SWEEP_PIPELINES.get(key)
    if pipeline is None:
        from repro.core.pipeline import Pipeline
        from repro.datagen.generator import SyntheticWorld

        pipeline = Pipeline(SyntheticWorld.generate(config), max_depth=max_depth)
        _SWEEP_PIPELINES[key] = pipeline
    partial = pipeline.scan_partial(code)
    return partial, pipeline.scan_seconds.get(code.upper())


class ProcessExecutor(ExecutionStrategy):
    """Fans per-country work out over a ``ProcessPoolExecutor``."""

    name = "processes"

    def __init__(self, workers: Optional[int] = None) -> None:
        if workers is not None and workers < 1:
            raise ValueError("workers must be a positive integer")
        self.workers = workers or os.cpu_count() or 1
        self._pool: Optional[concurrent.futures.ProcessPoolExecutor] = None
        self._pool_key: Optional[tuple[WorldConfig, int, bool]] = None
        #: Separate multi-config pool for sweep waves: its workers build
        #: pipelines lazily per task config instead of in an initializer,
        #: so it never restarts between scenarios.
        self._sweep_pool: Optional[concurrent.futures.ProcessPoolExecutor] = None

    def _ensure_pool(
        self, config: WorldConfig, max_depth: int, observe: bool
    ) -> concurrent.futures.ProcessPoolExecutor:
        key = (config, max_depth, observe)
        if self._pool is not None and self._pool_key != key:
            # The pool's workers hold a pipeline for a different world.
            self.close()
        if self._pool is None:
            logger.debug(
                "starting process pool: workers=%d observe=%s",
                self.workers, observe,
            )
            self._pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_init_worker,
                initargs=(config, max_depth, observe),
            )
            self._pool_key = key
        return self._pool

    def scan(
        self, pipeline: "Pipeline", codes: Sequence[str]
    ) -> list[CountryPartial]:
        if not pipeline.supports_process_execution:
            raise ValueError(
                "ProcessExecutor requires the pipeline's default geolocator "
                "and a config-derived fault plan; custom objects cannot be "
                "rebuilt inside worker processes — use SerialExecutor or "
                "ThreadExecutor"
            )
        obs = pipeline.obs
        pool = self._ensure_pool(
            pipeline.world.config, pipeline.crawler.max_depth, obs is not None
        )
        # map preserves submission order, so merges stay deterministic.
        results: list[_ScanResult] = list(pool.map(_scan_one, codes))
        partials: list[CountryPartial] = []
        for code, (partial, seconds, scope) in zip(codes, results):
            if seconds is not None:
                pipeline.scan_seconds[code.upper()] = seconds
            if obs is not None and scope is not None:
                # Absorbing in submission order keeps the merged trace
                # and metrics identical across executors.
                obs.absorb_scan(scope)
            partials.append(partial)
        return partials

    def _ensure_sweep_pool(self) -> concurrent.futures.ProcessPoolExecutor:
        if self._sweep_pool is None:
            logger.debug("starting sweep process pool: workers=%d", self.workers)
            self._sweep_pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.workers
            )
        return self._sweep_pool

    def scan_groups(
        self, groups: Sequence[tuple["Pipeline", Sequence[str]]]
    ) -> list[list[CountryPartial]]:
        for pipeline, _ in groups:
            if not pipeline.supports_process_execution:
                raise ValueError(
                    "ProcessExecutor requires the pipeline's default "
                    "geolocator and a config-derived fault plan; custom "
                    "objects cannot be rebuilt inside worker processes — "
                    "use SerialExecutor or ThreadExecutor"
                )
            if pipeline.obs is not None:
                raise ValueError(
                    "sweep scan waves do not ship observability scopes "
                    "across the process boundary; trace sweeps with the "
                    "serial or thread executor"
                )
        pool = self._ensure_sweep_pool()
        # One pool-filling wave: every task of every group is submitted
        # before any result is collected, so workers drain the whole
        # sweep instead of idling at per-scenario batch boundaries.
        submitted = []
        for pipeline, codes in groups:
            config = pipeline.world.config
            if config.countries is not None and not isinstance(
                config.countries, tuple
            ):
                # Workers key their pipeline memo by the config, which
                # must hash; a list-valued country selection is the one
                # unhashable field a caller can reach.
                config = dataclasses.replace(
                    config, countries=tuple(config.countries)
                )
            max_depth = pipeline.crawler.max_depth
            submitted.append([
                pool.submit(_sweep_scan_one, config, max_depth, code)
                for code in codes
            ])
        results: list[list[CountryPartial]] = []
        for (pipeline, codes), futures in zip(groups, submitted):
            partials: list[CountryPartial] = []
            for code, future in zip(codes, futures):
                partial, seconds = future.result()
                if seconds is not None:
                    pipeline.scan_seconds[code.upper()] = seconds
                partials.append(partial)
            results.append(partials)
        return results

    def finalize(
        self,
        pipeline: "Pipeline",
        partials: Sequence[CountryPartial],
        finalize_one: Callable[[CountryPartial], T],
    ) -> list[T]:
        # Phase 2 needs the driver's merged footprint and is cheap
        # relative to the scan; a thread map avoids re-shipping the
        # partials across the process boundary.
        with concurrent.futures.ThreadPoolExecutor(
            max_workers=min(self.workers, 8), thread_name_prefix="repro-finalize"
        ) as pool:
            return list(pool.map(finalize_one, partials))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
            self._pool_key = None
        if self._sweep_pool is not None:
            self._sweep_pool.shutdown(wait=True)
            self._sweep_pool = None


__all__ = ["ProcessExecutor"]
