"""Thread-pool execution strategy.

Shares the driver's :class:`~repro.core.pipeline.Pipeline` across
threads: the scan phase only *reads* the synthetic world, and every
cache it touches (DNS, WHOIS, ping memo, geolocation verdicts) is a
pure memo — concurrent fills can at worst duplicate work, never change
a value.  Cross-country reductions happen on the driver after the
barrier, so no shared accumulator is mutated from workers.

Threads help when the scan blocks on I/O-like layers; for the fully
CPU-bound synthetic scan the GIL caps the speedup, which is why
:class:`~repro.exec.processes.ProcessExecutor` exists.
"""

from __future__ import annotations

import concurrent.futures
import logging
from typing import TYPE_CHECKING, Callable, Optional, Sequence, TypeVar

from repro.exec.base import ExecutionStrategy
from repro.exec.partials import CountryPartial

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.pipeline import Pipeline

logger = logging.getLogger(__name__)

T = TypeVar("T")


class ThreadExecutor(ExecutionStrategy):
    """Fans per-country work out over a ``ThreadPoolExecutor``."""

    name = "threads"

    def __init__(self, workers: Optional[int] = None) -> None:
        if workers is not None and workers < 1:
            raise ValueError("workers must be a positive integer")
        self.workers = workers
        self._pool: Optional[concurrent.futures.ThreadPoolExecutor] = None

    def _ensure_pool(self) -> concurrent.futures.ThreadPoolExecutor:
        if self._pool is None:
            logger.debug("starting thread pool: workers=%s", self.workers)
            self._pool = concurrent.futures.ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-scan"
            )
        return self._pool

    def scan(
        self, pipeline: "Pipeline", codes: Sequence[str]
    ) -> list[CountryPartial]:
        # Executor.map preserves submission order, so the driver's
        # merges see partials in canonical country order even when
        # shards complete out of order.
        return list(self._ensure_pool().map(pipeline.scan_partial, codes))

    def scan_groups(
        self, groups: Sequence[tuple["Pipeline", Sequence[str]]]
    ) -> list[list[CountryPartial]]:
        # Submit every task across every group before collecting any
        # result: one pool-filling wave, so a small group never leaves
        # threads idle while a large one still has queued work.
        pool = self._ensure_pool()
        submitted = [
            [pool.submit(pipeline.scan_partial, code) for code in codes]
            for pipeline, codes in groups
        ]
        return [[future.result() for future in group] for group in submitted]

    def finalize(
        self,
        pipeline: "Pipeline",
        partials: Sequence[CountryPartial],
        finalize_one: Callable[[CountryPartial], T],
    ) -> list[T]:
        return list(self._ensure_pool().map(finalize_one, partials))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


__all__ = ["ThreadExecutor"]
